"""Figure 13 — Maintenance cost per update vs dataset size.

Paper setup: after the initial join at timestamp 0, the simulation runs
and the average maintenance cost *per object update* is measured (the
paper averages over ``[T_M, 4·T_M]``; we run a scaled number of steps).
MTB-Join vs ETP-Join.

Paper observations: MTB-Join beats ETP-Join by ~10–400× in response
time, the gap widening with dataset size — ETP-Join must re-traverse
both trees on every result change *and* every update, while MTB-Join
performs one tightly time-constrained probe per update.  This figure is
the paper's headline result ("several orders of magnitude").
"""

from __future__ import annotations

import pytest

from _harness import (
    OBS_DIR,
    PROFILE,
    T_M,
    build_engine,
    measured_maintenance,
    record_row,
    scenario_for,
)

FIGURE = "Figure 13: maintenance cost per update vs dataset size"


@pytest.mark.parametrize("n", PROFILE["sizes"])
@pytest.mark.parametrize("algorithm", ["etp", "mtb"])
def test_fig13_maintenance(n, algorithm, benchmark):
    scenario = scenario_for(n)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    steps = PROFILE["maintenance_steps"]

    def maintain():
        return measured_maintenance(engine, scenario, steps)

    series = "ETP-Join" if algorithm == "etp" else "MTB-Join"
    driver, per_update = benchmark.pedantic(maintain, rounds=1, iterations=1)
    assert driver.total_updates() > 0
    if engine.obs is not None:  # REPRO_OBS=1: keep the phase/tick timeline
        engine.export_obs(
            OBS_DIR / f"fig13_timeline_{algorithm}_{n}.json",
            meta={"bench": FIGURE, "series": series, "x": n},
        )
    record_row(
        FIGURE, series, n,
        per_update.io_total,
        per_update.pair_tests,
        per_update.cpu_seconds,
    )
