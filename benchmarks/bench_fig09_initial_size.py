"""Figure 9 — Initial join cost vs dataset size.

Paper setup: the full initial join for NaiveJoin, ETP-Join and MTB-Join
at dataset sizes 1K–100K (scaled here), all other parameters default.

Paper observations: NaiveJoin is far costlier than both competitors and
its gap grows rapidly with size (half an hour at 100K); MTB-Join beats
ETP-Join by up to ~4× in both I/O and response time despite computing
results for a longer interval, thanks to the improvement techniques.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_initial_join,
    record_row,
    scenario_for,
)

FIGURE = "Figure 9: initial join vs dataset size"


def _series(algorithm: str) -> str:
    return {"naive": "NaiveJoin", "etp": "ETP-Join", "mtb": "MTB-Join"}[algorithm]


def _run(n: int, algorithm: str, benchmark) -> None:
    scenario = scenario_for(n)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    benchmark.pedantic(lambda: measured_initial_join(engine), rounds=1, iterations=1)
    tracker = engine.tracker
    record_row(
        FIGURE, _series(algorithm), n,
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )
    assert engine.result_at(engine.now) is not None


@pytest.mark.parametrize("n", PROFILE["naive_sizes"])
def test_fig09_naivejoin(n, benchmark):
    _run(n, "naive", benchmark)


@pytest.mark.parametrize("n", PROFILE["sizes"])
def test_fig09_etpjoin(n, benchmark):
    _run(n, "etp", benchmark)


@pytest.mark.parametrize("n", PROFILE["sizes"])
def test_fig09_mtbjoin(n, benchmark):
    _run(n, "mtb", benchmark)
