"""Delta-ledger cost: maintenance overhead and enumeration rate.

Standalone script (not a pytest-benchmark figure): drives the serial
and columnar engines over the same workload with ``deltas`` off and on
and reports

* **overhead** — wall-clock ratio of the deltas-on run over the
  deltas-off run.  The write path is one plain-scalar append per store
  transition, so the ratio must stay under ``OVERHEAD_FLOOR``;
* **enumeration rate** — events per second when re-enumerating every
  tick's netted stream ``REREAD_ROUNDS`` times.  Events materialize
  once per tick and are memoized, so re-enumeration is constant-delay
  tuple iteration and must clear ``ENUM_FLOOR_EVS``;
* a fold-throughput figure (events applied per second rebuilding the
  store via :func:`repro.deltas.fold_events`) for context, unfloored.

Results go to ``BENCH_deltas.json`` at the repo root; the script exits
non-zero when a floor is missed.  ``REPRO_DELTAS_SMOKE=1`` runs the
serial engine only (the CI ``deltas`` job).

Run with::

    PYTHONPATH=src python benchmarks/bench_deltas.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.core import ColumnarJoinEngine, ContinuousJoinEngine, JoinConfig
from repro.deltas import fold_events
from repro.metrics import monotonic_clock
from repro.workloads import UpdateStream, make_workload

N_PER_SIDE = 400  # 800 moving objects in the join
STEPS = 8
T_M = 10.0
MAX_SPEED = 4.0
OBJECT_SIZE_PCT = 1.5
SEED = 20080407  # ICDE 2008
ALGORITHM = "mtb"
REREAD_ROUNDS = 50
REPEATS = 3  # best-of, to shave scheduler noise off the ratio

OVERHEAD_FLOOR = 2.0  # deltas-on wall clock <= 2.0x deltas-off
ENUM_FLOOR_EVS = 50_000.0  # re-enumeration events/s


def make_ticks(scenario):
    stream = UpdateStream(scenario, seed=SEED + 1)
    return list(stream.by_timestamp(t_start=1.0, t_end=float(STEPS)))


def build(kind: str, deltas: bool):
    scenario = make_workload(
        N_PER_SIDE,
        "uniform",
        max_speed=MAX_SPEED,
        object_size_pct=OBJECT_SIZE_PCT,
        t_m=T_M,
        seed=SEED,
    )
    config = JoinConfig(t_m=T_M, node_capacity=8, deltas=deltas)
    cls = ContinuousJoinEngine if kind == "serial" else ColumnarJoinEngine
    return scenario, cls(scenario.set_a, scenario.set_b, ALGORITHM, config)


def run_once(kind: str, deltas: bool) -> float:
    """Wall-clock seconds for one full maintenance run."""
    scenario, engine = build(kind, deltas)
    ticks = make_ticks(scenario)
    start = monotonic_clock()
    engine.run_initial_join()
    for t, batch in ticks:
        if kind == "serial":
            engine.tick(t)
            for obj in batch:
                engine.apply_update(obj)
        else:
            engine.tick(t)
            engine.apply_updates(batch)
    engine.prune_expired()
    return monotonic_clock() - start


def measure_enumeration(kind: str) -> dict:
    """Event count, re-enumeration rate, and fold throughput."""
    scenario, engine = build(kind, deltas=True)
    engine.run_initial_join()
    for t, batch in make_ticks(scenario):
        engine.tick(t)
        if kind == "serial":
            for obj in batch:
                engine.apply_update(obj)
        else:
            engine.apply_updates(batch)
    ledger = engine.ledger
    n_events = sum(len(ledger.events_at(t)) for t in ledger.ticks())
    start = monotonic_clock()
    seen = 0
    for _ in range(REREAD_ROUNDS):
        for t in ledger.ticks():
            for event in ledger.events_at(t):
                seen += event.sign  # touch the event, keep the loop honest
    enum_s = monotonic_clock() - start
    start = monotonic_clock()
    view = fold_events(ledger)
    fold_s = monotonic_clock() - start
    store = engine._strategy.store if kind == "serial" else engine.store
    assert view.rows() == store.interval_rows(), "fold drifted from the store"
    return {
        "events": n_events,
        "net_balance": seen // REREAD_ROUNDS,
        "enum_events_per_s": round(REREAD_ROUNDS * n_events / max(enum_s, 1e-9)),
        "fold_events_per_s": round(n_events / max(fold_s, 1e-9)),
    }


def run_engine(kind: str) -> dict:
    off_s = min(run_once(kind, deltas=False) for _ in range(REPEATS))
    on_s = min(run_once(kind, deltas=True) for _ in range(REPEATS))
    row = {
        "engine": kind,
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "overhead": round(on_s / off_s, 3),
    }
    row.update(measure_enumeration(kind))
    print(
        f"{kind:>8}: {row['events']} events, overhead {row['overhead']:.2f}x, "
        f"enum {row['enum_events_per_s']:,} ev/s, "
        f"fold {row['fold_events_per_s']:,} ev/s"
    )
    return row


def main() -> int:
    smoke = os.environ.get("REPRO_DELTAS_SMOKE", "") not in ("", "0")
    kinds = ["serial"] if smoke else ["serial", "columnar"]
    rows = [run_engine(kind) for kind in kinds]

    out = {
        "n_per_side": N_PER_SIDE,
        "steps": STEPS,
        "algorithm": ALGORITHM,
        "overhead_floor": OVERHEAD_FLOOR,
        "enum_floor_events_per_s": ENUM_FLOOR_EVS,
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_deltas.json"
    path.write_text(json.dumps(out, indent=2))
    print(f"wrote {path}")

    failed = False
    for row in rows:
        if row["overhead"] > OVERHEAD_FLOOR:
            print(
                f"FLOOR MISSED: {row['engine']} ledger overhead "
                f"{row['overhead']:.2f}x > {OVERHEAD_FLOOR}x"
            )
            failed = True
        if row["enum_events_per_s"] < ENUM_FLOOR_EVS:
            print(
                f"FLOOR MISSED: {row['engine']} enumeration "
                f"{row['enum_events_per_s']:,} ev/s < {ENUM_FLOOR_EVS:,.0f}"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
