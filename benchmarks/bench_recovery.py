"""Crash-recovery cost: checkpoint-interval sweep on the sharded engine.

Standalone script (not a pytest-benchmark figure): drives a 4-shard /
4-worker join over a 2k-object workload with a deterministic kill fault
(every worker dies at its Nth tick command), so the supervisor performs
one full respawn + checkpoint/replay recovery per slot.  Sweeping the
checkpoint interval shows the tradeoff the fault-tolerance design
makes: short intervals mean frequent checkpoint traffic but short
replay logs; long intervals the reverse.  Results go to
``BENCH_recovery.json`` at the repo root.

The baseline is a *cold shard build*: constructing the same sharded
engine from scratch in-process and dividing by the shard count.  That
is what recovery would cost with no checkpoint/replay machinery at all
(rebuild from the original objects, losing all accumulated state).

Acceptance floor (the fault-tolerance PR criterion): mean recovery of
one worker slot must stay within ``RECOVERY_FLOOR`` x one cold shard
build at the default checkpoint interval.  The script exits non-zero
when the floor is missed.

``REPRO_RECOVERY_SMOKE=1`` runs only the default-interval cell (the CI
``chaos`` job).

Run with::

    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.core import JoinConfig
from repro.metrics import monotonic_clock
from repro.par import ShardedJoinEngine
from repro.workloads import UpdateStream, make_workload

N_PER_SIDE = 1000  # 2k moving objects in the join
STEPS = 8
T_M = 60.0
MAX_SPEED = 2.0
OBJECT_SIZE_PCT = 0.1
SEED = 20080407  # ICDE 2008
ALGORITHM = "tc"
SHARDS = 4
WORKERS = 4
KILL_NTH = 4  # each worker dies at its 4th tick command
INTERVALS = [2, 4, 8, 16]
DEFAULT_INTERVAL = 8

RECOVERY_FLOOR = 2.0  # x one cold shard build


def make_ticks(scenario):
    stream = UpdateStream(scenario, seed=SEED + 1)
    return list(stream.by_timestamp(t_start=1.0, t_end=float(STEPS)))


def base_config(**overrides) -> JoinConfig:
    return JoinConfig(
        t_m=T_M,
        shard_timeout=60.0,
        shard_heartbeat=0.01,
        **overrides,
    )


def cold_shard_build_s(scenario) -> float:
    """Seconds to build one shard of the join from nothing, in-process."""
    start = monotonic_clock()
    engine = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, ALGORITHM, base_config(),
        shards=SHARDS, workers=0,
    )
    engine.run_initial_join()
    elapsed = monotonic_clock() - start
    engine.close()
    return elapsed / SHARDS


def run_case(scenario, ticks, interval: int) -> dict:
    config = base_config(
        checkpoint_interval=interval,
        faults=f"kill:op=tick,nth={KILL_NTH}",
    )
    engine = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, ALGORITHM, config,
        shards=SHARDS, workers=WORKERS,
    )
    engine.run_initial_join()
    start = monotonic_clock()
    for t, batch in ticks:
        engine.step(t, batch)
    run_s = monotonic_clock() - start
    stats = engine.fault_stats()
    engine.close()
    recoveries = max(1, stats.recoveries)
    return {
        "checkpoint_interval": interval,
        "run_s": round(run_s, 3),
        "worker_deaths": stats.worker_deaths,
        "recoveries": stats.recoveries,
        "respawns": stats.respawns,
        "checkpoints": stats.checkpoints,
        "replayed_commands": stats.replayed_commands,
        "recovery_total_s": round(stats.recovery_seconds, 4),
        "recovery_mean_s": round(stats.recovery_seconds / recoveries, 4),
    }


def main() -> int:
    smoke = os.environ.get("REPRO_RECOVERY_SMOKE", "") not in ("", "0")
    intervals = [DEFAULT_INTERVAL] if smoke else INTERVALS

    scenario = make_workload(
        N_PER_SIDE,
        "uniform",
        max_speed=MAX_SPEED,
        object_size_pct=OBJECT_SIZE_PCT,
        t_m=T_M,
        seed=SEED,
    )
    ticks = make_ticks(scenario)

    cold_s = cold_shard_build_s(scenario)
    print(f"cold shard build: {cold_s:.3f}s (one of {SHARDS} shards)")

    rows = []
    for interval in intervals:
        row = run_case(scenario, ticks, interval)
        rows.append(row)
        print(
            f"interval {interval:3d}: {row['recoveries']} recoveries, "
            f"mean {row['recovery_mean_s']:.3f}s, "
            f"{row['replayed_commands']} cmds replayed, "
            f"{row['checkpoints']} checkpoints"
        )

    failures = []
    gate = next(
        (r for r in rows if r["checkpoint_interval"] == DEFAULT_INTERVAL),
        rows[-1],
    )
    if gate["recoveries"] < 1:
        failures.append("the kill fault never fired: nothing was measured")
    elif gate["recovery_mean_s"] > RECOVERY_FLOOR * cold_s:
        failures.append(
            f"mean recovery {gate['recovery_mean_s']:.3f}s at interval "
            f"{gate['checkpoint_interval']} > {RECOVERY_FLOOR}x cold shard "
            f"build ({cold_s:.3f}s)"
        )

    out = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
    out.write_text(
        json.dumps(
            {
                "description": (
                    "shard crash-recovery cost vs checkpoint interval"
                ),
                "workload": {
                    "n_per_side": N_PER_SIDE,
                    "distribution": "uniform",
                    "algorithm": ALGORITHM,
                    "t_m": T_M,
                    "max_speed": MAX_SPEED,
                    "object_size_pct": OBJECT_SIZE_PCT,
                    "steps": STEPS,
                    "seed": SEED,
                },
                "topology": {"shards": SHARDS, "workers": WORKERS},
                "fault": f"kill:op=tick,nth={KILL_NTH}",
                "smoke": smoke,
                "cold_shard_build_s": round(cold_s, 4),
                "floors": {"recovery_vs_cold_build": RECOVERY_FLOOR},
                "results": rows,
                "passed": not failures,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {out}")
    for failure in failures:
        print(f"FLOOR MISSED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
