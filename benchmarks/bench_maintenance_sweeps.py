"""§VI-D.2 parameter sweeps — maintenance cost vs T_M, distribution,
speed and object size.

The paper reports that varying these parameters gives "very similar
behavior" to Figure 13 (details deferred to the technical report).
These benches regenerate the sweeps so the claim can be checked: in
every cell MTB-Join's per-update cost should be a small fraction of
ETP-Join's.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_maintenance,
    record_row,
    scenario_for,
)
from repro.workloads import DISTRIBUTIONS

_N = max(200, PROFILE["default_n"] // 2)
_STEPS = PROFILE["maintenance_steps"]
_ALGOS = [("etp", "ETP-Join"), ("mtb", "MTB-Join")]


def _record(figure: str, series: str, x, engine, per_update) -> None:
    record_row(
        figure, series, x,
        per_update.io_total,
        per_update.pair_tests,
        per_update.cpu_seconds,
    )


@pytest.mark.parametrize("t_m", [60.0, 120.0, 240.0])
@pytest.mark.parametrize("algorithm,series", _ALGOS)
def test_sweep_maximum_update_interval(t_m, algorithm, series, benchmark):
    scenario = scenario_for(_N, t_m=t_m)
    engine = build_engine(scenario, algorithm, t_m=t_m)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, _STEPS),
        rounds=1, iterations=1,
    )
    _record("Sweep (VI-D.2): maintenance vs T_M", series, t_m, engine, per_update)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("algorithm,series", _ALGOS)
def test_sweep_distribution(distribution, algorithm, series, benchmark):
    scenario = scenario_for(_N, distribution=distribution)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, _STEPS),
        rounds=1, iterations=1,
    )
    _record(
        "Sweep (VI-D.2): maintenance vs distribution",
        series, distribution, engine, per_update,
    )


@pytest.mark.parametrize("speed", [1.0, 3.0, 5.0])
@pytest.mark.parametrize("algorithm,series", _ALGOS)
def test_sweep_speed(speed, algorithm, series, benchmark):
    scenario = scenario_for(_N, max_speed=speed)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, _STEPS),
        rounds=1, iterations=1,
    )
    _record("Sweep (VI-D.2): maintenance vs max speed", series, speed, engine, per_update)


@pytest.mark.parametrize("size_pct", [0.05, 0.2, 0.8])
@pytest.mark.parametrize("algorithm,series", _ALGOS)
def test_sweep_object_size(size_pct, algorithm, series, benchmark):
    scenario = scenario_for(_N, object_size_pct=size_pct)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, _STEPS),
        rounds=1, iterations=1,
    )
    _record(
        "Sweep (VI-D.2): maintenance vs object size",
        series, f"{size_pct}%", engine, per_update,
    )
