"""Scalar vs. vectorized pair-test throughput (the kernels PR criterion).

Standalone script (not a pytest-benchmark figure): times the three
kernelized call sites — all-pairs constraint grid, plane sweep, and the
IC entry filter — on seeded random box batches of growing size, and
writes the measurements to ``BENCH_kernels.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernels.py

The acceptance bar is a >= 3x speedup for the vectorized path on
batches of 64 boxes and up; the script exits non-zero if any such
configuration misses it.
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

from repro.metrics import monotonic_clock

from repro.geometry import (
    Box,
    KineticBatch,
    KineticBox,
    all_pairs_intersection,
    batch_filter_against,
    intersection_interval,
    ps_intersection,
)

SIZES = [16, 64, 128, 256, 512]
WINDOW = (0.0, 20.0)
SPEEDUP_FLOOR = 3.0
FLOOR_FROM = 64


def make_boxes(rng: random.Random, n: int):
    """Random rigid movers; density scales so selectivity stays sane."""
    space = 60.0 * (n / 64.0) ** 0.5
    boxes = []
    for _ in range(n):
        x, y = rng.uniform(0, space), rng.uniform(0, space)
        w, h = rng.uniform(0.1, 5.0), rng.uniform(0.1, 5.0)
        vx, vy = rng.uniform(-3, 3), rng.uniform(-3, 3)
        boxes.append(KineticBox.rigid(Box(x, x + w, y, y + h), vx, vy, rng.uniform(0, 2)))
    return boxes


def timed(fn, min_repeat: int = 3, min_time: float = 0.15) -> float:
    """Best-of wall time per call, repeated until the clock is trustworthy."""
    best = float("inf")
    repeats = 0
    start_all = monotonic_clock()
    while repeats < min_repeat or monotonic_clock() - start_all < min_time:
        start = monotonic_clock()
        fn()
        best = min(best, monotonic_clock() - start)
        repeats += 1
    return best


def bench_all_pairs(boxes_a, boxes_b):
    t0, t1 = WINDOW
    scalar = timed(lambda: all_pairs_intersection(boxes_a, boxes_b, t0, t1, use_kernels=False))
    vector = timed(lambda: all_pairs_intersection(boxes_a, boxes_b, t0, t1, use_kernels=True))
    return scalar, vector


def bench_ps(boxes_a, boxes_b):
    t0, t1 = WINDOW
    scalar = timed(lambda: ps_intersection(boxes_a, boxes_b, t0, t1, use_kernels=False))
    vector = timed(lambda: ps_intersection(boxes_a, boxes_b, t0, t1, use_kernels=True))
    return scalar, vector


def bench_filter(boxes, probe):
    t0, t1 = WINDOW

    def scalar_filter():
        return [kb for kb in boxes if intersection_interval(kb, probe, t0, t1) is not None]

    batch = KineticBatch.from_boxes(boxes)

    def vector_filter():
        return batch_filter_against(batch, probe, t0, t1)

    return timed(scalar_filter), timed(vector_filter)


def main() -> int:
    rng = random.Random(20080405)
    rows = []
    failures = []
    for n in SIZES:
        boxes_a = make_boxes(rng, n)
        boxes_b = make_boxes(rng, n)
        for name, (scalar_s, vector_s) in {
            "all_pairs": bench_all_pairs(boxes_a, boxes_b),
            "plane_sweep": bench_ps(boxes_a, boxes_b),
            "ic_filter": bench_filter(boxes_a, boxes_b[0]),
        }.items():
            speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
            rows.append(
                {
                    "kernel": name,
                    "batch_size": n,
                    "scalar_s": scalar_s,
                    "vectorized_s": vector_s,
                    "speedup": round(speedup, 2),
                    "scalar_pairs_per_s": round(n * n / scalar_s)
                    if name != "ic_filter"
                    else round(n / scalar_s),
                    "vectorized_pairs_per_s": round(n * n / vector_s)
                    if name != "ic_filter"
                    else round(n / vector_s),
                }
            )
            print(
                f"{name:12s} n={n:4d}  scalar {scalar_s * 1e3:8.3f} ms  "
                f"vector {vector_s * 1e3:8.3f} ms  speedup {speedup:6.1f}x"
            )
            if n >= FLOOR_FROM and speedup < SPEEDUP_FLOOR:
                failures.append((name, n, speedup))

    out = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    out.write_text(
        json.dumps(
            {
                "description": "scalar vs vectorized pair-test throughput",
                "window": list(WINDOW),
                "speedup_floor": SPEEDUP_FLOOR,
                "floor_applies_from_batch_size": FLOOR_FROM,
                "results": rows,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {out}")
    if failures:
        for name, n, speedup in failures:
            print(f"FAIL: {name} n={n} speedup {speedup:.1f}x < {SPEEDUP_FLOOR}x")
        return 1
    print(f"all batches >= {FLOOR_FROM} boxes beat the {SPEEDUP_FLOOR}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
