"""Extension — continuous self-join (interest management) scaling.

The paper's introduction motivates intersection joins with interest
management in large distributed simulations, which is a *self*-join of
one entity set.  This bench scales the self-join engine across dataset
sizes and reports the per-update maintenance cost — the metric that
determines how many entities a single coordinator can sustain.
"""

from __future__ import annotations

import pytest

from _harness import PROFILE, SEED, T_M, record_row, scenario_for
from repro.core import ContinuousSelfJoinEngine, JoinConfig
from repro.workloads import UpdateStream

FIGURE = "Extension (intro): continuous self-join maintenance"


@pytest.mark.parametrize("n", PROFILE["sizes"])
def test_selfjoin_maintenance(n, benchmark):
    scenario = scenario_for(n)
    engine = ContinuousSelfJoinEngine(scenario.set_a, JoinConfig(t_m=T_M))
    stream = UpdateStream(scenario, seed=SEED + 3)
    shadow_b = {o.oid: o for o in scenario.set_b}
    steps = PROFILE["maintenance_steps"]

    def run():
        engine.run_initial_join()
        engine.tracker.reset()
        updates = 0
        with engine.tracker.timed():
            for step in range(1, steps + 1):
                t = float(step)
                engine.tick(t)
                for obj in stream.updates_for(t, {**engine.objects, **shadow_b}):
                    if obj.oid in engine.objects:
                        engine.apply_update(obj)
                        updates += 1
                    else:
                        shadow_b[obj.oid] = obj
        return max(1, updates), engine.tracker.snapshot()

    updates, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    per_update = cost.scaled(updates)
    record_row(FIGURE, "self-join (MTB)", n,
               per_update.io_total, per_update.pair_tests,
               per_update.cpu_seconds)
