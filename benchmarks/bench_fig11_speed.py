"""Figure 11 — Initial join cost vs maximum object speed.

Paper setup: maximum speeds 1–5 (default workload otherwise), MTB-Join
vs ETP-Join.  Paper observation: MTB-Join outperforms ETP-Join at every
speed; cost grows with speed for both (faster objects sweep more space
and meet more often).
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_initial_join,
    record_row,
    scenario_for,
)

FIGURE = "Figure 11: initial join vs maximum object speed"


@pytest.mark.parametrize("speed", PROFILE["speeds"])
@pytest.mark.parametrize("algorithm", ["etp", "mtb"])
def test_fig11_speed(speed, algorithm, benchmark):
    scenario = scenario_for(PROFILE["default_n"], max_speed=speed)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    benchmark.pedantic(lambda: measured_initial_join(engine), rounds=1, iterations=1)
    tracker = engine.tracker
    series = "ETP-Join" if algorithm == "etp" else "MTB-Join"
    record_row(
        FIGURE, series, speed,
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )
