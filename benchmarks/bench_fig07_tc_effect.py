"""Figure 7 — Effect of TC processing on the initial join.

Paper setup: the initial join computed with and without the time
constraint, *no* improvement techniques, varying dataset size.  The
"Non Time-Constrained" series is NaiveJoin over ``[0, ∞)``; the
"Time-Constrained" series is the same traversal over ``[0, T_M]``.
Paper observation: non-TC costs up to ~5× more I/O and response time,
growing with dataset size (every node eventually overlaps every other
node when the window is unbounded).
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    obs_recording,
    record_row,
    scenario_for,
)
from repro.geometry import INF
from repro.join import naive_join

FIGURE = "Figure 7: TC vs non-TC initial join (no improvement techniques)"


def _run(n: int, constrained: bool, benchmark) -> None:
    scenario = scenario_for(n)
    engine = build_engine(scenario, "naive", t_m=T_M)
    tree_a = engine._strategy.tree_a
    tree_b = engine._strategy.tree_b
    tracker = engine.tracker
    t_end = T_M if constrained else INF

    def initial_join():
        engine.storage.buffer.clear()
        tracker.reset()
        with tracker.timed():
            return naive_join(tree_a, tree_b, 0.0, t_end, tracker)

    series = "Time-Constrained" if constrained else "Non Time-Constrained"
    # Pay the build's write-back before attaching the recorder, so the
    # recording holds exactly the measured join (clear/reset inside the
    # measured call are then no-ops for the I/O accounting).
    engine.storage.buffer.clear()
    tracker.reset()
    with obs_recording(tracker, FIGURE, series, n):
        result = benchmark.pedantic(initial_join, rounds=1, iterations=1)
    assert result, "initial join found no pairs — workload too sparse"
    record_row(
        FIGURE, series, n,
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )


@pytest.mark.parametrize("n", PROFILE["naive_sizes"])
def test_fig07_non_time_constrained(n, benchmark):
    _run(n, constrained=False, benchmark=benchmark)


@pytest.mark.parametrize("n", PROFILE["naive_sizes"])
def test_fig07_time_constrained(n, benchmark):
    _run(n, constrained=True, benchmark=benchmark)
