"""Figure 10 — Initial join cost vs data distribution.

Paper setup: uniform / Gaussian / battlefield datasets, default size,
comparing MTB-Join against ETP-Join (NaiveJoin was dropped after
Figure 9 as uncompetitive).  The paper plots *relative* cost: MTB-Join
saves about half the I/O in every distribution, and up to 86% of the
response time on the battlefield dataset.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_initial_join,
    record_row,
    scenario_for,
)

FIGURE = "Figure 10: initial join vs data distribution"

#: The paper's three distributions; the road-network workload is an
#: extension and gets its own series below.
PAPER_DISTRIBUTIONS = ("uniform", "gaussian", "battlefield")


@pytest.mark.parametrize("distribution", PAPER_DISTRIBUTIONS + ("road",))
@pytest.mark.parametrize("algorithm", ["etp", "mtb"])
def test_fig10_distribution(distribution, algorithm, benchmark):
    scenario = scenario_for(PROFILE["default_n"], distribution=distribution)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    benchmark.pedantic(lambda: measured_initial_join(engine), rounds=1, iterations=1)
    tracker = engine.tracker
    series = "ETP-Join" if algorithm == "etp" else "MTB-Join"
    if distribution == "road":
        series += " (road ext.)"
    record_row(
        FIGURE, series, distribution,
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )
