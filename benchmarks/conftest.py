"""Pytest glue for the benchmark suite: table printing at session end.

See :mod:`_harness` for the actual harness; this file only wires the
pytest hooks so that running ``pytest benchmarks/ --benchmark-only``
prints the paper-figure tables after the pytest-benchmark summary.
"""

from __future__ import annotations

import pytest

from _harness import emit_tables, record_row


def pytest_sessionfinish(session, exitstatus):  # noqa: D103 - pytest hook
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    write = reporter.write_line if reporter else print
    emit_tables(write)


@pytest.fixture
def figure_row():
    """Fixture alias for :func:`_harness.record_row`."""
    return record_row
