"""Ablation (beyond the paper's figures) — MTB bucket granularity.

§IV-C discusses the trade-off behind the bucket length ``T_M / m``:
larger ``m`` gives each bucket tree a smaller latest-update time (a
stricter Theorem-2 constraint) but more trees to maintain and more
bucket-pair combinations to join.  The paper follows the B^x-tree and
fixes ``m = 2``.  This bench sweeps ``m ∈ {1, 2, 4, 8}`` (``m = 1`` is
plain TC-Join over a single bucket) to expose the trade-off curve.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_maintenance,
    record_row,
    scenario_for,
)

FIGURE = "Ablation: MTB bucket granularity m (bucket length T_M/m)"


@pytest.mark.parametrize("m", [1, 2, 4, 8])
def test_ablation_buckets(m, benchmark):
    scenario = scenario_for(PROFILE["default_n"])
    engine = build_engine(scenario, "mtb", t_m=T_M, buckets_per_tm=m)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, PROFILE["maintenance_steps"]),
        rounds=1, iterations=1,
    )
    record_row(
        FIGURE, f"m={m}", PROFILE["default_n"],
        per_update.io_total,
        per_update.pair_tests,
        per_update.cpu_seconds,
    )
