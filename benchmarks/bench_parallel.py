"""Maintenance-tick throughput: serial vs group-commit vs sharded.

Standalone script (not a pytest-benchmark figure): drives the same
Figure-13-style maintenance workload — N objects per side, one
same-timestamp update batch per tick — through four engine
configurations and writes the measurements to ``BENCH_parallel.json``
at the repo root:

- ``serial``        one :meth:`apply_update` call per object
  (``batch_updates=False``), the seed engine's per-update path;
- ``batched``       the same engine group-committing each tick's batch
  through :meth:`apply_updates`;
- ``sharded K/0``   :class:`~repro.par.ShardedJoinEngine`, K shards
  executed in-process;
- ``sharded K/W``   the same, fanned out to W pipe-connected worker
  processes via the fused :meth:`~repro.par.ShardedJoinEngine.step`.

All four produce bit-exact answers (enforced by the differential suite
in ``tests/join/test_differential.py`` and ``tests/par``); this script
measures only throughput.  Configurations are timed in interleaved
rounds (every mode once per round, best-of across rounds) so drift in
machine load biases no single mode.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py

Acceptance floors (the parallel-engine PR criterion): the batched
group-commit path must reach >= 1.5x the serial per-update throughput,
and the sharded engine at 4 workers / 4 shards >= 2x.  The script
exits non-zero if either floor is missed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.metrics import monotonic_clock
from repro.par import ShardedJoinEngine
from repro.workloads import UpdateStream, make_workload

N_PER_SIDE = 1000
STEPS = 8
T_M = 60.0
MAX_SPEED = 2.0
OBJECT_SIZE_PCT = 0.1
SEED = 20080407  # ICDE 2008
ALGORITHM = "tc"
SHARDS = 4
WORKERS = 4
ROUNDS = 4

BATCHED_FLOOR = 1.5
SHARDED_FLOOR = 2.0


def make_ticks(scenario):
    """The pre-materialized ``(t, batch)`` feed every mode replays."""
    stream = UpdateStream(scenario, seed=SEED + 1)
    return list(stream.by_timestamp(t_start=1.0, t_end=float(STEPS)))


def run_serial(scenario, ticks) -> float:
    config = JoinConfig(t_m=T_M, batch_updates=False)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=ALGORITHM, config=config
    )
    engine.run_initial_join()
    start = monotonic_clock()
    for t, batch in ticks:
        engine.tick(t)
        for obj in batch:
            engine.apply_update(obj)
        engine.result_at(t)
    return monotonic_clock() - start


def run_batched(scenario, ticks) -> float:
    config = JoinConfig(t_m=T_M)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=ALGORITHM, config=config
    )
    engine.run_initial_join()
    start = monotonic_clock()
    for t, batch in ticks:
        engine.tick(t)
        engine.apply_updates(batch)
        engine.result_at(t)
    return monotonic_clock() - start


def run_sharded(scenario, ticks, workers: int) -> float:
    config = JoinConfig(t_m=T_M)
    with ShardedJoinEngine(
        scenario.set_a,
        scenario.set_b,
        algorithm=ALGORITHM,
        config=config,
        shards=SHARDS,
        workers=workers,
    ) as engine:
        engine.run_initial_join()
        start = monotonic_clock()
        for t, batch in ticks:
            engine.step(t, batch)
        return monotonic_clock() - start


def main() -> int:
    scenario = make_workload(
        N_PER_SIDE,
        "uniform",
        max_speed=MAX_SPEED,
        object_size_pct=OBJECT_SIZE_PCT,
        t_m=T_M,
        seed=SEED,
    )
    ticks = make_ticks(scenario)
    n_updates = sum(len(batch) for _t, batch in ticks)
    print(
        f"workload: {N_PER_SIDE}/side, {STEPS} ticks, "
        f"{n_updates} updates, algorithm={ALGORITHM}"
    )

    modes = {
        "serial": lambda: run_serial(scenario, ticks),
        "batched": lambda: run_batched(scenario, ticks),
        f"sharded {SHARDS}/0": lambda: run_sharded(scenario, ticks, 0),
        f"sharded {SHARDS}/{WORKERS}": lambda: run_sharded(
            scenario, ticks, WORKERS
        ),
    }
    best = {name: float("inf") for name in modes}
    for rnd in range(ROUNDS):
        for name, fn in modes.items():
            elapsed = fn()
            best[name] = min(best[name], elapsed)
            print(f"  round {rnd}: {name:12s} {elapsed:7.3f} s")

    serial_s = best["serial"]
    rows = []
    for name, elapsed in best.items():
        speedup = serial_s / elapsed
        rows.append(
            {
                "mode": name,
                "best_s": round(elapsed, 4),
                "speedup_vs_serial": round(speedup, 3),
                "ticks_per_s": round(STEPS / elapsed, 2),
                "updates_per_s": round(n_updates / elapsed, 1),
            }
        )
        print(f"{name:12s} best {elapsed:7.3f} s  speedup {speedup:5.2f}x")

    by_mode = {row["mode"]: row for row in rows}
    failures = []
    batched_speedup = by_mode["batched"]["speedup_vs_serial"]
    if batched_speedup < BATCHED_FLOOR:
        failures.append(
            f"batched group-commit {batched_speedup:.2f}x < {BATCHED_FLOOR}x"
        )
    sharded_key = f"sharded {SHARDS}/{WORKERS}"
    sharded_speedup = by_mode[sharded_key]["speedup_vs_serial"]
    if sharded_speedup < SHARDED_FLOOR:
        failures.append(f"{sharded_key} {sharded_speedup:.2f}x < {SHARDED_FLOOR}x")

    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(
        json.dumps(
            {
                "description": "maintenance-tick throughput, serial vs "
                "group-commit vs sharded",
                "workload": {
                    "n_per_side": N_PER_SIDE,
                    "steps": STEPS,
                    "updates": n_updates,
                    "algorithm": ALGORITHM,
                    "t_m": T_M,
                    "max_speed": MAX_SPEED,
                    "object_size_pct": OBJECT_SIZE_PCT,
                    "seed": SEED,
                },
                "shards": SHARDS,
                "workers": WORKERS,
                "rounds": ROUNDS,
                "floors": {
                    "batched": BATCHED_FLOOR,
                    "sharded": SHARDED_FLOOR,
                },
                "results": rows,
                "passed": not failures,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"floors met: batched >= {BATCHED_FLOOR}x, "
        f"sharded {SHARDS}/{WORKERS} >= {SHARDED_FLOOR}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
