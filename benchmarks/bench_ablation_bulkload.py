"""Ablation (beyond the paper's figures) — bulk loading vs insertion.

The paper builds its TPR*-trees by repeated insertion.  The STR bulk
loader (``repro.index.bulk``) is an engineering addition: this bench
quantifies what it buys — construction cost — and what it costs — join
quality of the packed tree versus the insert-built tree on the same
Figure-8-style workload.
"""

from __future__ import annotations

from _harness import PROFILE, T_M, record_row, scenario_for
from repro.index import TPRStarTree, TreeStorage, bulk_load
from repro.join import JoinTechniques, improved_join

FIGURE = "Ablation: STR bulk load vs insertion build"


def _measure(benchmark, build):
    storage = TreeStorage()

    def run():
        storage.tracker.reset()
        with storage.tracker.timed():
            trees = build(storage)
        build_cost = storage.tracker.snapshot()
        storage.buffer.clear()
        storage.tracker.reset()
        with storage.tracker.timed():
            improved_join(
                trees[0], trees[1], 0.0, T_M, JoinTechniques.all(),
                storage.tracker,
            )
        return build_cost, storage.tracker.snapshot()

    return benchmark.pedantic(run, rounds=1, iterations=1)


def test_insert_built(benchmark):
    scenario = scenario_for(PROFILE["default_n"])

    def build(storage):
        trees = []
        for dataset in (scenario.set_a, scenario.set_b):
            tree = TPRStarTree(storage=storage, horizon=T_M)
            for obj in dataset:
                tree.insert(obj, 0.0)
            trees.append(tree)
        return trees

    build_cost, join_cost = _measure(benchmark, build)
    record_row(FIGURE, "insert: build", PROFILE["default_n"],
               build_cost.io_total, build_cost.pair_tests, build_cost.cpu_seconds)
    record_row(FIGURE, "insert: join", PROFILE["default_n"],
               join_cost.io_total, join_cost.pair_tests, join_cost.cpu_seconds)


def test_bulk_loaded(benchmark):
    scenario = scenario_for(PROFILE["default_n"])

    def build(storage):
        return [
            bulk_load(dataset, t0=0.0, storage=storage, horizon=T_M)
            for dataset in (scenario.set_a, scenario.set_b)
        ]

    build_cost, join_cost = _measure(benchmark, build)
    record_row(FIGURE, "bulk: build", PROFILE["default_n"],
               build_cost.io_total, build_cost.pair_tests, build_cost.cpu_seconds)
    record_row(FIGURE, "bulk: join", PROFILE["default_n"],
               join_cost.io_total, join_cost.pair_tests, join_cost.cpu_seconds)
