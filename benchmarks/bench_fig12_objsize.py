"""Figure 12 — Initial join cost vs moving-object size.

Paper setup: object sides 0.05%–0.8% of the space side (default
workload otherwise), MTB-Join vs ETP-Join.  Paper observation: MTB-Join
wins at every size; bigger objects mean more intersections and higher
absolute cost for both algorithms.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_initial_join,
    record_row,
    scenario_for,
)

FIGURE = "Figure 12: initial join vs object size (% of space side)"


@pytest.mark.parametrize("size_pct", PROFILE["object_sizes"])
@pytest.mark.parametrize("algorithm", ["etp", "mtb"])
def test_fig12_objsize(size_pct, algorithm, benchmark):
    scenario = scenario_for(PROFILE["default_n"], object_size_pct=size_pct)
    engine = build_engine(scenario, algorithm, t_m=T_M)
    benchmark.pedantic(lambda: measured_initial_join(engine), rounds=1, iterations=1)
    tracker = engine.tracker
    series = "ETP-Join" if algorithm == "etp" else "MTB-Join"
    record_row(
        FIGURE, series, f"{size_pct}%",
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )
