"""Figure 8 — Effect of the improvement techniques on join cost.

Paper setup: the join computed over the *fixed* interval ``[0, T_M]``
(so the time constraint is identical for every configuration) with the
technique combinations None / IC / PS / DS+PS / IC+PS / ALL.

Paper observations: response time falls monotonically as techniques are
added, with a total speedup of ~6×; only PS reduces I/O (~60%), DS and
IC cut CPU work; IC+PS beats DS+PS.
"""

from __future__ import annotations

import pytest

from _harness import PROFILE, T_M, build_engine, record_row, scenario_for
from repro.join import JoinTechniques, improved_join

FIGURE = "Figure 8: improvement-technique ablation (fixed interval [0, T_M])"

CONFIGS = [
    ("None", JoinTechniques(use_ps=False, use_ds=False, use_ic=False)),
    ("IC", JoinTechniques(use_ps=False, use_ds=False, use_ic=True)),
    ("PS", JoinTechniques(use_ps=True, use_ds=False, use_ic=False)),
    ("DS+PS", JoinTechniques(use_ps=True, use_ds=True, use_ic=False)),
    ("IC+PS", JoinTechniques(use_ps=True, use_ds=False, use_ic=True)),
    ("ALL", JoinTechniques(use_ps=True, use_ds=True, use_ic=True)),
]


@pytest.mark.parametrize("label,techniques", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_fig08_techniques(label, techniques, benchmark):
    scenario = scenario_for(PROFILE["default_n"])
    engine = build_engine(scenario, "tc", t_m=T_M)
    tree_a = engine._strategy.tree_a
    tree_b = engine._strategy.tree_b
    tracker = engine.tracker

    def join():
        engine.storage.buffer.clear()
        tracker.reset()
        with tracker.timed():
            return improved_join(tree_a, tree_b, 0.0, T_M, techniques, tracker)

    result = benchmark.pedantic(join, rounds=1, iterations=1)
    assert result, "join found no pairs — workload too sparse"
    record_row(
        FIGURE, label, PROFILE["default_n"],
        tracker.page_reads + tracker.page_writes,
        tracker.pair_tests,
        tracker.cpu_seconds,
    )
