"""Scaling study: the columnar engine from 1k to 100k objects per side.

Standalone script (not a pytest-benchmark figure).  For each dataset
size ``n`` it builds a constant-density uniform workload (space side
grows as ``1000 * sqrt(n/1000)``, so the expected join selectivity per
object is size-invariant), runs the columnar engine through a fixed
number of maintenance ticks fed by the vectorized update stream, and
records build / initial-join / tick throughput to ``BENCH_scale.json``
at the repo root.

Every cell runs in its own forked child process, so ``peak_rss_mb`` is
a *per-cell* measurement (``ru_maxrss`` is monotone within a process;
in one process the largest cell would mask all the others).  Cells also
report ``store_mb``, the result store's own resident bytes via
``approx_bytes()`` — the column the ColumnResultStore exists to shrink.

At the sizes where the serial seed engine is still practical (1k, 10k)
the same pre-materialized update batches are replayed through the
object-path :class:`~repro.core.engine.ContinuousJoinEngine` group
commit, so the speedup column compares identical work.  At n=100k a
4-shard columnar-worker cell (``shard_engine="columnar"``) runs beside
the serial columnar engine for the sharded speedup column.

Acceptance floors (the script exits non-zero when missed):

- at n=10k the columnar engine sustains >= ``COLUMNAR_FLOOR``x the
  seed engine's tick throughput;
- at n=100k the mean maintenance tick stays under
  ``TICK_FLOOR_100K_S`` seconds;
- at n=100k the columnar cell's peak RSS stays under
  ``RSS_FLOOR_100K_MB`` MiB;
- at n=100k the 4-shard columnar-worker engine sustains >=
  ``SHARDED_FLOOR``x the serial columnar tick throughput.

A 1M-per-side *storage* cell always runs: it saves one side as an
RPROCOL3 slab image and reloads it through ``map_columns`` — measuring
that a million objects come back without full deserialization.  The
full 1M *join* cell stays best-effort behind ``REPRO_SCALE_1M=1``,
recorded but never gated.  ``REPRO_SCALE_SMOKE=1`` runs the n=10k
cells (columnar, seed baseline, and a 2-shard columnar-worker cell
with ``workers=2``) plus a smoke RSS floor — the CI ``scale`` job.

Run with::

    PYTHONPATH=src python benchmarks/bench_scale.py
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import resource
import sys
import tempfile
from pathlib import Path

from repro.core import ColumnarJoinEngine, ContinuousJoinEngine, JoinConfig
from repro.metrics import monotonic_clock
from repro.workloads import VectorUpdateStream, make_workload_arrays

SIZES = [1_000, 10_000, 100_000]
SEED_BASELINE_SIZES = {1_000, 10_000}
STEPS = 6
STEPS_1M = 3
T_M = 60.0
MAX_SPEED = 2.0
OBJECT_SIZE_PCT = 0.1
SEED = 20080407  # ICDE 2008
ALGORITHM = "tc"
N_1M = 1_000_000

COLUMNAR_FLOOR = 3.0  # x seed tick throughput at n=10k
TICK_FLOOR_100K_S = 1.4  # mean maintenance tick ceiling at n=100k
RSS_FLOOR_100K_MB = 450.0  # per-cell peak RSS ceiling at n=100k
RSS_FLOOR_SMOKE_MB = 300.0  # per-cell peak RSS ceiling at n=10k (CI smoke)
SHARDED_FLOOR = 1.5  # x serial columnar tick throughput at n=100k


def space_for(n: int) -> float:
    """Constant-density space side: 1000 at n=1k, growing with sqrt(n)."""
    return 1000.0 * math.sqrt(n / 1000.0)


def workload(n: int):
    return make_workload_arrays(
        n,
        "uniform",
        space_size=space_for(n),
        max_speed=MAX_SPEED,
        object_size_pct=OBJECT_SIZE_PCT,
        t_m=T_M,
        seed=SEED,
    )


def peak_rss_mb() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage / 1024.0  # linux reports KiB


def _cell_child(fn, args, conn):
    try:
        result = fn(*args)
        result["peak_rss_mb"] = round(peak_rss_mb(), 1)
        conn.send(("ok", result))
    except BaseException as exc:  # report, don't hang the parent
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def run_cell(fn, *args) -> dict:
    """Run one benchmark cell in a forked child for isolated RSS.

    The parent only orchestrates (its resident set is the interpreter
    plus imports), so the child's ``ru_maxrss`` is dominated by the
    cell's own allocations.
    """
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_cell_child, args=(fn, args, child_conn))
    proc.start()
    child_conn.close()
    try:
        status, payload = parent_conn.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(f"benchmark cell died (exit {proc.exitcode})")
    proc.join()
    if status != "ok":
        raise RuntimeError(f"benchmark cell failed: {payload}")
    return payload


def store_mb(store) -> float:
    return round(store.approx_bytes() / (1024.0 * 1024.0), 1)


def run_columnar(n: int, steps: int) -> dict:
    arrays = workload(n)
    t0 = monotonic_clock()
    engine = ColumnarJoinEngine(
        arrays.columns_a(),
        arrays.columns_b(),
        algorithm=ALGORITHM,
        config=JoinConfig(t_m=T_M),
    )
    build_s = monotonic_clock() - t0
    t0 = monotonic_clock()
    engine.run_initial_join()
    initial_s = monotonic_clock() - t0
    initial_pairs = len(engine.store)
    stream = VectorUpdateStream(arrays, seed=SEED + 1)
    t0 = monotonic_clock()
    for step in range(1, steps + 1):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
        engine.result_at(t)
    tick_s = monotonic_clock() - t0
    return {
        "n_per_side": n,
        "engine": "columnar",
        "steps": steps,
        "updates": engine.update_count,
        "build_s": round(build_s, 4),
        "initial_join_s": round(initial_s, 4),
        "initial_pairs": initial_pairs,
        "tick_loop_s": round(tick_s, 4),
        "tick_mean_s": round(tick_s / steps, 4),
        "ticks_per_s": round(steps / tick_s, 3),
        "updates_per_s": round(engine.update_count / tick_s, 1),
        "store_mb": store_mb(engine.store),
    }


def run_seed_baseline(n: int, steps: int) -> dict:
    """The object-path group commit replaying the *same* update batches."""
    arrays = workload(n)
    scenario = arrays.to_scenario()
    stream = VectorUpdateStream(arrays, seed=SEED + 1)
    ticks = []
    for step in range(1, steps + 1):
        upd_a, upd_b = stream.updates_at(float(step))
        ticks.append((float(step), upd_a.objects() + upd_b.objects()))
    t0 = monotonic_clock()
    engine = ContinuousJoinEngine.create(
        scenario.set_a,
        scenario.set_b,
        algorithm=ALGORITHM,
        config=JoinConfig(t_m=T_M),
    )
    build_s = monotonic_clock() - t0
    t0 = monotonic_clock()
    engine.run_initial_join()
    initial_s = monotonic_clock() - t0
    initial_pairs = len(engine._strategy.store)
    t0 = monotonic_clock()
    for t, batch in ticks:
        engine.tick(t)
        engine.apply_updates(batch)
        engine.result_at(t)
    tick_s = monotonic_clock() - t0
    return {
        "n_per_side": n,
        "engine": "seed",
        "steps": steps,
        "updates": engine.update_count,
        "build_s": round(build_s, 4),
        "initial_join_s": round(initial_s, 4),
        "initial_pairs": initial_pairs,
        "tick_loop_s": round(tick_s, 4),
        "tick_mean_s": round(tick_s / steps, 4),
        "ticks_per_s": round(steps / tick_s, 3),
        "updates_per_s": round(engine.update_count / tick_s, 1),
        "store_mb": store_mb(engine._strategy.store),
    }


def run_sharded_columnar(n: int, steps: int, shards: int, workers: int) -> dict:
    """K-way sharded engine with columnar per-shard workers."""
    from repro.par import ShardedJoinEngine

    arrays = workload(n)
    scenario = arrays.to_scenario()
    config = JoinConfig(t_m=T_M, shard_engine="columnar")
    t0 = monotonic_clock()
    engine = ShardedJoinEngine(
        scenario.set_a,
        scenario.set_b,
        algorithm=ALGORITHM,
        config=config,
        shards=shards,
        workers=workers,
    )
    build_s = monotonic_clock() - t0
    t0 = monotonic_clock()
    engine.run_initial_join()
    initial_s = monotonic_clock() - t0
    stream = VectorUpdateStream(arrays, seed=SEED + 1)
    t0 = monotonic_clock()
    updates = 0
    for step in range(1, steps + 1):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        updates += len(upd_a) + len(upd_b)
        engine.apply_update_columns(upd_a, upd_b)
        engine.result_at(t)
    tick_s = monotonic_clock() - t0
    merged = engine.merged_store()
    row = {
        "n_per_side": n,
        "engine": f"sharded-columnar/{shards}x{workers}",
        "shards": shards,
        "workers": workers,
        "steps": steps,
        "updates": updates,
        "build_s": round(build_s, 4),
        "initial_join_s": round(initial_s, 4),
        "initial_pairs": len(merged),
        "tick_loop_s": round(tick_s, 4),
        "tick_mean_s": round(tick_s / steps, 4),
        "ticks_per_s": round(steps / tick_s, 3),
        "updates_per_s": round(updates / tick_s, 1),
        "store_mb": store_mb(merged),
    }
    engine.close()
    return row


def run_mmap_1m() -> dict:
    """Save one 1M-object side as an RPROCOL3 image and map it back.

    The point of the format: a million objects reload as zero-copy
    views plus lazily recomputed shift planes — no per-object
    deserialization, no second resident copy of the slabs.
    """
    from repro.storage import map_columns, save_columns_file

    arrays = workload(N_1M)
    cols = arrays.columns_a()
    n = len(cols)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "side_a.rcol3"
        t0 = monotonic_clock()
        nbytes = save_columns_file(path, cols)
        save_s = monotonic_clock() - t0
        del cols, arrays
        t0 = monotonic_clock()
        mapped = map_columns(path)
        map_s = monotonic_clock() - t0
        t0 = monotonic_clock()
        batch = mapped.batch()  # touches (and CRC-checks) every slab
        touch_s = monotonic_clock() - t0
        assert batch.n == n
    return {
        "n_objects": n,
        "engine": "mmap-rprocol3",
        "file_mb": round(nbytes / (1024.0 * 1024.0), 1),
        "save_s": round(save_s, 4),
        "map_open_s": round(map_s, 6),
        "first_touch_s": round(touch_s, 4),
    }


def main() -> int:
    smoke = os.environ.get("REPRO_SCALE_SMOKE") == "1"
    with_1m = os.environ.get("REPRO_SCALE_1M") == "1"
    sizes = [10_000] if smoke else list(SIZES)

    rows = []
    for n in sizes:
        print(f"== n = {n:,} per side (space {space_for(n):.0f}) ==")
        row = run_cell(run_columnar, n, STEPS)
        rows.append(row)
        print(
            f"  columnar: build {row['build_s']:.2f}s, "
            f"initial {row['initial_join_s']:.2f}s ({row['initial_pairs']} pairs), "
            f"tick {row['tick_mean_s']:.3f}s ({row['updates_per_s']:.0f} upd/s), "
            f"rss {row['peak_rss_mb']:.0f} MiB, store {row['store_mb']:.1f} MiB"
        )
        if n in SEED_BASELINE_SIZES:
            base = run_cell(run_seed_baseline, n, STEPS)
            rows.append(base)
            speedup = base["tick_mean_s"] / row["tick_mean_s"]
            row["speedup_vs_seed"] = round(speedup, 2)
            print(
                f"  seed:     build {base['build_s']:.2f}s, "
                f"initial {base['initial_join_s']:.2f}s, "
                f"tick {base['tick_mean_s']:.3f}s "
                f"(rss {base['peak_rss_mb']:.0f} MiB, "
                f"store {base['store_mb']:.1f} MiB) "
                f"-> columnar {speedup:.1f}x"
            )
        if n == 100_000 and not smoke:
            sharded = run_cell(run_sharded_columnar, n, STEPS, 4, 0)
            rows.append(sharded)
            sharded_speedup = row["tick_mean_s"] / sharded["tick_mean_s"]
            sharded["speedup_vs_serial"] = round(sharded_speedup, 2)
            print(
                f"  sharded:  4 shards, tick {sharded['tick_mean_s']:.3f}s "
                f"(rss {sharded['peak_rss_mb']:.0f} MiB) "
                f"-> {sharded_speedup:.1f}x serial columnar"
            )
        if n == 10_000 and smoke:
            sharded = run_cell(run_sharded_columnar, n, STEPS, 2, 2)
            rows.append(sharded)
            print(
                f"  sharded:  2 shards x 2 workers, "
                f"tick {sharded['tick_mean_s']:.3f}s "
                f"(rss {sharded['peak_rss_mb']:.0f} MiB)"
            )

    print(f"== n = {N_1M:,} single side: RPROCOL3 mmap reload ==")
    mmap_row = run_cell(run_mmap_1m)
    rows.append(mmap_row)
    print(
        f"  save {mmap_row['save_s']:.2f}s ({mmap_row['file_mb']:.0f} MiB), "
        f"open {mmap_row['map_open_s'] * 1000.0:.1f}ms, "
        f"first touch {mmap_row['first_touch_s']:.2f}s, "
        f"rss {mmap_row['peak_rss_mb']:.0f} MiB"
    )

    if with_1m:
        print(f"== n = {N_1M:,} per side join (best effort) ==")
        row = run_cell(run_columnar, N_1M, STEPS_1M)
        row["best_effort"] = True
        rows.append(row)
        print(
            f"  columnar: tick {row['tick_mean_s']:.3f}s, "
            f"rss {row['peak_rss_mb']:.0f} MiB"
        )

    failures = []
    by_cell = {(r.get("n_per_side"), r["engine"]): r for r in rows}
    cell_10k = by_cell.get((10_000, "columnar"))
    if cell_10k is not None and "speedup_vs_seed" in cell_10k:
        if cell_10k["speedup_vs_seed"] < COLUMNAR_FLOOR:
            failures.append(
                f"columnar {cell_10k['speedup_vs_seed']:.2f}x seed at n=10k "
                f"< {COLUMNAR_FLOOR}x floor"
            )
    if smoke and cell_10k is not None:
        if cell_10k["peak_rss_mb"] > RSS_FLOOR_SMOKE_MB:
            failures.append(
                f"peak RSS {cell_10k['peak_rss_mb']:.0f} MiB at n=10k "
                f"> {RSS_FLOOR_SMOKE_MB:.0f} MiB smoke floor"
            )
    cell_100k = by_cell.get((100_000, "columnar"))
    if cell_100k is not None:
        if cell_100k["tick_mean_s"] > TICK_FLOOR_100K_S:
            failures.append(
                f"mean tick {cell_100k['tick_mean_s']:.2f}s at n=100k "
                f"> {TICK_FLOOR_100K_S}s floor"
            )
        if cell_100k["peak_rss_mb"] > RSS_FLOOR_100K_MB:
            failures.append(
                f"peak RSS {cell_100k['peak_rss_mb']:.0f} MiB at n=100k "
                f"> {RSS_FLOOR_100K_MB:.0f} MiB floor"
            )
    cell_sharded = by_cell.get((100_000, "sharded-columnar/4x0"))
    if cell_sharded is not None:
        if cell_sharded["speedup_vs_serial"] < SHARDED_FLOOR:
            failures.append(
                f"sharded columnar {cell_sharded['speedup_vs_serial']:.2f}x "
                f"serial at n=100k < {SHARDED_FLOOR}x floor"
            )

    out = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    out.write_text(
        json.dumps(
            {
                "description": "columnar engine scaling, constant density",
                "workload": {
                    "distribution": "uniform",
                    "algorithm": ALGORITHM,
                    "t_m": T_M,
                    "max_speed": MAX_SPEED,
                    "object_size_pct": OBJECT_SIZE_PCT,
                    "space_rule": "1000 * sqrt(n / 1000)",
                    "seed": SEED,
                },
                "smoke": smoke,
                "floors": {
                    "columnar_vs_seed_10k": COLUMNAR_FLOOR,
                    "tick_mean_s_100k": TICK_FLOOR_100K_S,
                    "peak_rss_mb_100k": RSS_FLOOR_100K_MB,
                    "peak_rss_mb_smoke": RSS_FLOOR_SMOKE_MB,
                    "sharded_vs_serial_100k": SHARDED_FLOOR,
                },
                "peak_rss_mb_100k": (
                    None if cell_100k is None else cell_100k["peak_rss_mb"]
                ),
                "results": rows,
                "passed": not failures,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {out}")
    for failure in failures:
        print(f"FLOOR MISSED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
