"""Scaling study: the columnar engine from 1k to 100k objects per side.

Standalone script (not a pytest-benchmark figure).  For each dataset
size ``n`` it builds a constant-density uniform workload (space side
grows as ``1000 * sqrt(n/1000)``, so the expected join selectivity per
object is size-invariant), runs the columnar engine through a fixed
number of maintenance ticks fed by the vectorized update stream, and
records build / initial-join / tick throughput to ``BENCH_scale.json``
at the repo root.

At the sizes where the serial seed engine is still practical (1k, 10k)
the same pre-materialized update batches are replayed through the
object-path :class:`~repro.core.engine.ContinuousJoinEngine` group
commit, so the speedup column compares identical work.

Acceptance floors (the columnar-engine PR criteria; the script exits
non-zero when missed):

- at n=10k the columnar engine sustains >= ``COLUMNAR_FLOOR``x the
  seed engine's tick throughput;
- at n=100k the mean maintenance tick stays under
  ``TICK_FLOOR_100K_S`` seconds.

The 1M-per-side cell is best-effort: enabled with ``REPRO_SCALE_1M=1``,
recorded but never gated.  ``REPRO_SCALE_SMOKE=1`` runs only the n=10k
cell plus its seed baseline (the CI ``scale`` job).  Peak RSS is
sampled after the n=100k cell (satellite of the ``__slots__`` pass).

Run with::

    PYTHONPATH=src python benchmarks/bench_scale.py
"""

from __future__ import annotations

import json
import math
import os
import resource
import sys
from pathlib import Path

from repro.core import ColumnarJoinEngine, ContinuousJoinEngine, JoinConfig
from repro.metrics import monotonic_clock
from repro.workloads import UpdateStream, VectorUpdateStream, make_workload_arrays

SIZES = [1_000, 10_000, 100_000]
SEED_BASELINE_SIZES = {1_000, 10_000}
STEPS = 6
STEPS_1M = 3
T_M = 60.0
MAX_SPEED = 2.0
OBJECT_SIZE_PCT = 0.1
SEED = 20080407  # ICDE 2008
ALGORITHM = "tc"

COLUMNAR_FLOOR = 3.0  # x seed tick throughput at n=10k
TICK_FLOOR_100K_S = 5.0  # mean maintenance tick ceiling at n=100k


def space_for(n: int) -> float:
    """Constant-density space side: 1000 at n=1k, growing with sqrt(n)."""
    return 1000.0 * math.sqrt(n / 1000.0)


def workload(n: int):
    return make_workload_arrays(
        n,
        "uniform",
        space_size=space_for(n),
        max_speed=MAX_SPEED,
        object_size_pct=OBJECT_SIZE_PCT,
        t_m=T_M,
        seed=SEED,
    )


def peak_rss_mb() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage / 1024.0  # linux reports KiB


def run_columnar(n: int, steps: int) -> dict:
    arrays = workload(n)
    t0 = monotonic_clock()
    engine = ColumnarJoinEngine(
        arrays.columns_a(),
        arrays.columns_b(),
        algorithm=ALGORITHM,
        config=JoinConfig(t_m=T_M),
    )
    build_s = monotonic_clock() - t0
    t0 = monotonic_clock()
    engine.run_initial_join()
    initial_s = monotonic_clock() - t0
    initial_pairs = len(engine.store)
    stream = VectorUpdateStream(arrays, seed=SEED + 1)
    t0 = monotonic_clock()
    for step in range(1, steps + 1):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
        engine.result_at(t)
    tick_s = monotonic_clock() - t0
    return {
        "n_per_side": n,
        "engine": "columnar",
        "steps": steps,
        "updates": engine.update_count,
        "build_s": round(build_s, 4),
        "initial_join_s": round(initial_s, 4),
        "initial_pairs": initial_pairs,
        "tick_loop_s": round(tick_s, 4),
        "tick_mean_s": round(tick_s / steps, 4),
        "ticks_per_s": round(steps / tick_s, 3),
        "updates_per_s": round(engine.update_count / tick_s, 1),
    }


def run_seed_baseline(n: int, steps: int) -> dict:
    """The object-path group commit replaying the *same* update batches."""
    arrays = workload(n)
    scenario = arrays.to_scenario()
    stream = VectorUpdateStream(arrays, seed=SEED + 1)
    ticks = []
    for step in range(1, steps + 1):
        upd_a, upd_b = stream.updates_at(float(step))
        ticks.append((float(step), upd_a.objects() + upd_b.objects()))
    t0 = monotonic_clock()
    engine = ContinuousJoinEngine.create(
        scenario.set_a,
        scenario.set_b,
        algorithm=ALGORITHM,
        config=JoinConfig(t_m=T_M),
    )
    build_s = monotonic_clock() - t0
    t0 = monotonic_clock()
    engine.run_initial_join()
    initial_s = monotonic_clock() - t0
    initial_pairs = len(engine._strategy.store)
    t0 = monotonic_clock()
    for t, batch in ticks:
        engine.tick(t)
        engine.apply_updates(batch)
        engine.result_at(t)
    tick_s = monotonic_clock() - t0
    return {
        "n_per_side": n,
        "engine": "seed",
        "steps": steps,
        "updates": engine.update_count,
        "build_s": round(build_s, 4),
        "initial_join_s": round(initial_s, 4),
        "initial_pairs": initial_pairs,
        "tick_loop_s": round(tick_s, 4),
        "tick_mean_s": round(tick_s / steps, 4),
        "ticks_per_s": round(steps / tick_s, 3),
        "updates_per_s": round(engine.update_count / tick_s, 1),
    }


def main() -> int:
    smoke = os.environ.get("REPRO_SCALE_SMOKE") == "1"
    with_1m = os.environ.get("REPRO_SCALE_1M") == "1"
    sizes = [10_000] if smoke else list(SIZES)

    rows = []
    rss_100k_mb = None
    for n in sizes:
        print(f"== n = {n:,} per side (space {space_for(n):.0f}) ==")
        row = run_columnar(n, STEPS)
        rows.append(row)
        print(
            f"  columnar: build {row['build_s']:.2f}s, "
            f"initial {row['initial_join_s']:.2f}s ({row['initial_pairs']} pairs), "
            f"tick {row['tick_mean_s']:.3f}s ({row['updates_per_s']:.0f} upd/s)"
        )
        if n == 100_000:
            rss_100k_mb = round(peak_rss_mb(), 1)
            print(f"  peak RSS after 100k cell: {rss_100k_mb:.0f} MiB")
        if n in SEED_BASELINE_SIZES:
            base = run_seed_baseline(n, STEPS)
            rows.append(base)
            speedup = base["tick_mean_s"] / row["tick_mean_s"]
            row["speedup_vs_seed"] = round(speedup, 2)
            print(
                f"  seed:     build {base['build_s']:.2f}s, "
                f"initial {base['initial_join_s']:.2f}s, "
                f"tick {base['tick_mean_s']:.3f}s -> columnar {speedup:.1f}x"
            )

    if with_1m:
        print("== n = 1,000,000 per side (best effort) ==")
        row = run_columnar(1_000_000, STEPS_1M)
        row["best_effort"] = True
        rows.append(row)
        print(f"  columnar: tick {row['tick_mean_s']:.3f}s")

    failures = []
    by_cell = {(r["n_per_side"], r["engine"]): r for r in rows}
    cell_10k = by_cell.get((10_000, "columnar"))
    if cell_10k is not None and "speedup_vs_seed" in cell_10k:
        if cell_10k["speedup_vs_seed"] < COLUMNAR_FLOOR:
            failures.append(
                f"columnar {cell_10k['speedup_vs_seed']:.2f}x seed at n=10k "
                f"< {COLUMNAR_FLOOR}x floor"
            )
    cell_100k = by_cell.get((100_000, "columnar"))
    if cell_100k is not None and cell_100k["tick_mean_s"] > TICK_FLOOR_100K_S:
        failures.append(
            f"mean tick {cell_100k['tick_mean_s']:.2f}s at n=100k "
            f"> {TICK_FLOOR_100K_S}s floor"
        )

    out = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    out.write_text(
        json.dumps(
            {
                "description": "columnar engine scaling, constant density",
                "workload": {
                    "distribution": "uniform",
                    "algorithm": ALGORITHM,
                    "t_m": T_M,
                    "max_speed": MAX_SPEED,
                    "object_size_pct": OBJECT_SIZE_PCT,
                    "space_rule": "1000 * sqrt(n / 1000)",
                    "seed": SEED,
                },
                "smoke": smoke,
                "floors": {
                    "columnar_vs_seed_10k": COLUMNAR_FLOOR,
                    "tick_mean_s_100k": TICK_FLOOR_100K_S,
                },
                "peak_rss_mb_100k": rss_100k_mb,
                "results": rows,
                "passed": not failures,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {out}")
    for failure in failures:
        print(f"FLOOR MISSED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
