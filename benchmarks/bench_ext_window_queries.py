"""§V extension — TC processing applied to continuous window queries.

The paper argues TC processing "can be applied to a wide range of
continuous query types" and sketches the continuous window query.  This
bench quantifies that claim on our implementation: the identical
:class:`ContinuousWindowEngine` maintains a batch of moving window
queries with

* **naive horizons** — evaluation over ``[t, ∞)``
  (``time_constrained=False``), versus
* **TC horizons** — the Theorem-1/2 windows (``time_constrained=True``).

Index maintenance is identical in both runs; only the evaluation
horizon differs, so the gap isolates the §V claim.
"""

from __future__ import annotations

from _harness import PROFILE, SEED, T_M, record_row, scenario_for
from repro.core import JoinConfig
from repro.geometry import Box, KineticBox
from repro.queries import ContinuousWindowEngine
from repro.workloads import UpdateStream

FIGURE = "Extension (V): continuous window queries, naive vs TC horizons"
N_WINDOWS = 10


def _windows():
    return {
        9_000_000 + i: KineticBox.rigid(
            Box(90.0 * i, 90.0 * i + 150.0, 100.0, 400.0),
            (-1) ** i * 0.7, 0.5, 0.0,
        )
        for i in range(N_WINDOWS)
    }


def _run(benchmark, time_constrained: bool, series: str) -> None:
    scenario = scenario_for(PROFILE["default_n"])
    engine = ContinuousWindowEngine(
        scenario.set_a, _windows(), JoinConfig(t_m=T_M),
        time_constrained=time_constrained,
    )
    stream = UpdateStream(scenario, seed=SEED + 2)
    shadow_b = {o.oid: o for o in scenario.set_b}

    def run():
        # The index-driven horizon difference shows in the initial
        # evaluation (tree probes per window); include it in the
        # measured region.
        engine.tracker.reset()
        with engine.tracker.timed():
            engine.evaluate_initial()
            for step in range(1, PROFILE["maintenance_steps"] + 1):
                t = float(step)
                engine.tick(t)
                for obj in stream.updates_for(t, {**engine.objects, **shadow_b}):
                    if obj.oid in engine.objects:
                        engine.apply_update(obj)
                    else:
                        shadow_b[obj.oid] = obj
        return engine.tracker.snapshot()

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(FIGURE, series, PROFILE["default_n"],
               cost.io_total, cost.pair_tests, cost.cpu_seconds)


def test_window_queries_tc(benchmark):
    _run(benchmark, time_constrained=True, series="TC horizons")


def test_window_queries_naive(benchmark):
    _run(benchmark, time_constrained=False, series="naive [t, inf)")
