"""Shared benchmark harness (imported by conftest and the bench files).

Every ``bench_figXX_*.py`` file regenerates one table/figure of the
paper's §VI.  Each test measures one (algorithm, parameter) cell,
records a row via :func:`record_row`, and the conftest session-finish
hook prints the assembled paper-style tables — so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures both pytest-benchmark
timings and the I/O / pair-test series the paper plots.

Scale: the paper runs 1K–100K objects on a C++/testbed stack; the
default sizes here are scaled so the full suite completes in minutes of
pure Python while preserving every *relative* comparison.  Set
``REPRO_BENCH_SCALE=medium`` or ``large`` for bigger runs.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.join import JoinTechniques
from repro.metrics import CostTracker
from repro.obs import ObsRecorder
from repro.workloads import Scenario, UpdateStream, make_workload

# ----------------------------------------------------------------------
# Scale profiles
# ----------------------------------------------------------------------
_PROFILES = {
    "small": {
        "sizes": [200, 500, 1000],
        "naive_sizes": [200, 500, 1000],
        "default_n": 1000,
        "maintenance_steps": 8,
        "speeds": [1.0, 2.0, 3.0, 4.0, 5.0],
        "object_sizes": [0.05, 0.1, 0.2, 0.4, 0.8],
    },
    "medium": {
        "sizes": [500, 1000, 2000, 4000],
        "naive_sizes": [500, 1000, 2000],
        "default_n": 2000,
        "maintenance_steps": 12,
        "speeds": [1.0, 2.0, 3.0, 4.0, 5.0],
        "object_sizes": [0.05, 0.1, 0.2, 0.4, 0.8],
    },
    "large": {
        "sizes": [1000, 2000, 5000, 10000],
        "naive_sizes": [1000, 2000],
        "default_n": 5000,
        "maintenance_steps": 20,
        "speeds": [1.0, 2.0, 3.0, 4.0, 5.0],
        "object_sizes": [0.05, 0.1, 0.2, 0.4, 0.8],
    },
}

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
if SCALE not in _PROFILES:
    raise RuntimeError(f"REPRO_BENCH_SCALE must be one of {sorted(_PROFILES)}")
PROFILE = _PROFILES[SCALE]

#: The paper's default parameters (Table I).
T_M = 60.0
MAX_SPEED = 2.0
OBJECT_SIZE_PCT = 0.1
SEED = 20080407  # ICDE 2008


# ----------------------------------------------------------------------
# Workload / engine helpers
# ----------------------------------------------------------------------
@lru_cache(maxsize=32)
def scenario_for(
    n: int,
    distribution: str = "uniform",
    max_speed: float = MAX_SPEED,
    object_size_pct: float = OBJECT_SIZE_PCT,
    t_m: float = T_M,
) -> Scenario:
    """Cached deterministic workload for a parameter cell."""
    return make_workload(
        n,
        distribution,
        max_speed=max_speed,
        object_size_pct=object_size_pct,
        t_m=t_m,
        seed=SEED,
    )


def build_engine(
    scenario: Scenario,
    algorithm: str,
    t_m: float = T_M,
    techniques: Optional[JoinTechniques] = None,
    buckets_per_tm: Optional[int] = None,
    buffer_pages: Optional[int] = None,
) -> ContinuousJoinEngine:
    """Fresh engine (fresh simulated disk + buffer) over a scenario."""
    kwargs = {"t_m": t_m}
    if buckets_per_tm is not None:
        kwargs["buckets_per_tm"] = buckets_per_tm
    if buffer_pages is not None:
        kwargs["buffer_pages"] = buffer_pages
    config = JoinConfig(**kwargs)
    return ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=config, techniques=techniques,
    )


def run_maintenance(
    engine: ContinuousJoinEngine, scenario: Scenario, steps: int
) -> SimulationDriver:
    """Run ``steps`` timestamps of updates after the initial join."""
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=SEED + 1))
    driver.run(steps)
    return driver


def measured_initial_join(engine: ContinuousJoinEngine) -> None:
    """Run the initial join from a cold buffer with zeroed counters.

    After this, ``engine.tracker`` holds exactly the initial join's cost
    (the paper measures the join, not index construction).
    """
    engine.storage.buffer.clear()
    engine.tracker.reset()
    engine.run_initial_join()


def measured_maintenance(
    engine: ContinuousJoinEngine, scenario: Scenario, steps: int
) -> "tuple[SimulationDriver, object]":
    """Initial join, then ``steps`` timestamps of maintenance.

    Returns the driver and the amortized per-update cost snapshot
    (the paper's Figure 13 metric).
    """
    engine.run_initial_join()
    engine.tracker.reset()
    driver = run_maintenance(engine, scenario, steps)
    return driver, driver.amortized_cost()


# ----------------------------------------------------------------------
# Observability artifacts
# ----------------------------------------------------------------------
#: Recordings are written here when ``REPRO_OBS`` is set; render them
#: afterwards with ``python -m repro.obs report benchmarks/out/obs``.
OBS_DIR = Path(os.environ.get("REPRO_OBS_DIR", Path(__file__).parent / "out" / "obs"))
OBS_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0")


@contextmanager
def obs_recording(tracker: CostTracker, figure: str, series: str, x: object):
    """Record the enclosed measured section into one exported JSON file.

    No-op unless ``REPRO_OBS`` is set.  A fresh recorder is attached for
    the duration (displacing the engine's own, if any), so the exported
    ``totals`` equal exactly the counters the figure table reports for
    this cell.
    """
    if not OBS_ENABLED:
        yield None
        return
    recorder = ObsRecorder(
        "bench", meta={"figure": figure, "series": series, "x": x}
    )
    previous = tracker.obs
    recorder.attach(tracker)
    try:
        yield recorder
    finally:
        recorder.detach()
        tracker.attach_obs(previous)
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", f"{figure}_{series}_{x}").strip("_")
        recorder.export_json(OBS_DIR / f"{slug}.json")


# ----------------------------------------------------------------------
# Paper-style result tables
# ----------------------------------------------------------------------
_ROWS: Dict[str, List[Tuple]] = {}


def record_row(
    figure: str, series: str, x: object, io: int, pair_tests: int, cpu_s: float
) -> None:
    """Record one data point of one figure's series."""
    _ROWS.setdefault(figure, []).append((series, x, io, pair_tests, cpu_s))


def emit_tables(write) -> None:
    """Print all recorded figure tables through ``write(line)``."""
    if not _ROWS:
        return
    write("")
    write("=" * 78)
    write(f"Paper-figure reproduction tables (scale profile: {SCALE})")
    write("=" * 78)
    for figure in sorted(_ROWS):
        write("")
        write(f"--- {figure} ---")
        write(
            f"{'series':>24s} {'x':>12s} {'I/O':>10s} "
            f"{'pair tests':>12s} {'CPU (s)':>10s}"
        )
        for series, x, io, tests, cpu in _ROWS[figure]:
            write(f"{series:>24s} {str(x):>12s} {io:>10d} {tests:>12d} {cpu:>10.3f}")
    write("=" * 78)
