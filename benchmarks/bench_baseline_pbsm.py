"""Related-work baseline (§VII) — PBSM vs tree-based initial join.

Patel & DeWitt's partition-based spatial-merge join computes the
intersection join without any index.  It cannot *maintain* a continuous
answer (each run is from scratch), but it is the natural reference for
the one-off initial join: how much of MTB-Join's initial cost is the
traversal, and how much is inherent to the result size?
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_initial_join,
    record_row,
    scenario_for,
)
from repro.join import pbsm_join
from repro.metrics import CostTracker

FIGURE = "Baseline (VII): PBSM (no index) vs MTB-Join initial join"


@pytest.mark.parametrize("n", PROFILE["sizes"])
def test_pbsm_initial(n, benchmark):
    scenario = scenario_for(n)
    tracker = CostTracker()

    def run():
        tracker.reset()
        with tracker.timed():
            return pbsm_join(
                scenario.set_a, scenario.set_b, 0.0, T_M,
                space_size=scenario.space_size, tracker=tracker,
            )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result is not None
    record_row(FIGURE, "PBSM", n, 0, tracker.pair_tests, tracker.cpu_seconds)


@pytest.mark.parametrize("n", PROFILE["sizes"])
def test_mtb_initial_reference(n, benchmark):
    scenario = scenario_for(n)
    engine = build_engine(scenario, "mtb", t_m=T_M)
    benchmark.pedantic(lambda: measured_initial_join(engine), rounds=1, iterations=1)
    tracker = engine.tracker
    record_row(FIGURE, "MTB-Join", n,
               tracker.page_reads + tracker.page_writes,
               tracker.pair_tests, tracker.cpu_seconds)
