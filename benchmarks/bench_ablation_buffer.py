"""Ablation (beyond the paper's figures) — LRU buffer sensitivity.

The paper fixes a 50-page LRU buffer (following the TP-query paper).
This bench sweeps the buffer size to show how the MTB-Join maintenance
I/O degrades as the buffer shrinks below the working set, and saturates
once the hot node set is resident.
"""

from __future__ import annotations

import pytest

from _harness import (
    PROFILE,
    T_M,
    build_engine,
    measured_maintenance,
    record_row,
    scenario_for,
)

FIGURE = "Ablation: LRU buffer size (pages) for MTB-Join maintenance"


@pytest.mark.parametrize("pages", [5, 10, 25, 50, 100, 200])
def test_ablation_buffer(pages, benchmark):
    scenario = scenario_for(PROFILE["default_n"])
    engine = build_engine(scenario, "mtb", t_m=T_M, buffer_pages=pages)
    _driver, per_update = benchmark.pedantic(
        lambda: measured_maintenance(engine, scenario, PROFILE["maintenance_steps"]),
        rounds=1, iterations=1,
    )
    record_row(
        FIGURE, f"{pages} pages", PROFILE["default_n"],
        per_update.io_total,
        per_update.pair_tests,
        per_update.cpu_seconds,
    )
