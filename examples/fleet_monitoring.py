#!/usr/bin/env python
"""Fleet collision monitoring: a continuous *self*-join with alerting.

A delivery fleet of autonomous vehicles shares one airspace/roadspace.
The operations center needs, at every timestamp, which pairs of
vehicles' safety envelopes intersect — a continuous self-join of one
moving-object set — and wants a log entry the moment a conflict starts
or clears, not a nightly dump of the full answer.

Demonstrates:

* :class:`repro.core.ContinuousSelfJoinEngine` (interest management on
  a single dataset);
* delta-based alerting with :class:`repro.core.ChangeMonitor`-style
  diffs (here hand-rolled over the self-join, which the monitor class
  does for the two-set engine);
* persistence: the final bucket trees are saved to real page files with
  :func:`repro.index.save_tree` and read back.

Run:  python examples/fleet_monitoring.py
"""

import os
import tempfile

import numpy as np

from repro.core import ContinuousSelfJoinEngine, JoinConfig
from repro.core.events import ResultDelta
from repro.geometry import Box
from repro.index import collect_forest_stats, load_tree, save_tree
from repro.objects import MovingObject

N_VEHICLES = 200
AREA = 400.0
ENVELOPE = 6.0       # safety envelope half-side
T_M = 15.0
SIM_STEPS = 40


def make_fleet(rng: np.random.Generator) -> list:
    fleet = []
    for i in range(N_VEHICLES):
        x, y = rng.uniform(0, AREA, size=2)
        angle = rng.uniform(0, 2 * np.pi)
        speed = rng.uniform(0.5, 2.5)
        fleet.append(
            MovingObject(
                i,
                Box(x - ENVELOPE, x + ENVELOPE, y - ENVELOPE, y + ENVELOPE),
                speed * np.cos(angle),
                speed * np.sin(angle),
                t_ref=0.0,
            )
        )
    return fleet


def main() -> None:
    rng = np.random.default_rng(99)
    engine = ContinuousSelfJoinEngine(make_fleet(rng), JoinConfig(t_m=T_M))
    engine.run_initial_join()
    last = engine.result_at()
    print(f"t=0: {len(last)} conflicting pairs at start\n")

    conflict_log = []
    for t in range(1, SIM_STEPS + 1):
        engine.tick(float(t))
        for vehicle in list(engine.objects.values()):
            if rng.random() < 0.2 or t - vehicle.t_ref >= T_M:
                pos = vehicle.mbr_at(float(t))
                angle = rng.uniform(0, 2 * np.pi)
                speed = rng.uniform(0.5, 2.5)
                engine.apply_update(
                    MovingObject(
                        vehicle.oid, pos,
                        speed * np.cos(angle), speed * np.sin(angle),
                        t_ref=float(t),
                    )
                )
        current = engine.result_at()
        delta = ResultDelta.between(last, current)
        last = current
        for pair in sorted(delta.entered):
            conflict_log.append((t, "CONFLICT", pair))
        for pair in sorted(delta.left):
            conflict_log.append((t, "clear", pair))

    print(f"{len(conflict_log)} alert events over {SIM_STEPS} timestamps; last 8:")
    for t, kind, (a, b) in conflict_log[-8:]:
        print(f"  t={t:3d}  {kind:8s}  vehicles {a} and {b}")

    busiest = max(
        engine.objects,
        key=lambda oid: len(engine.partners_of(oid)),
        default=None,
    )
    print(f"\nbusiest vehicle: {busiest} "
          f"(conflicts with {sorted(engine.partners_of(busiest))})")

    # Persist each bucket tree to a real page file and read it back.
    out_dir = tempfile.mkdtemp()
    for bucket, _end, tree in engine.forest.trees():
        path = os.path.join(out_dir, f"fleet_bucket_{bucket}.db")
        save_tree(tree, path)
        reloaded = load_tree(path)
        print(f"\nbucket {bucket}: saved {len(tree)} vehicles to {path}, "
              f"reloaded {len(reloaded)} (height {reloaded.height})")
    stats = collect_forest_stats(engine.forest, engine.now)
    for bucket, s in stats.items():
        print(f"bucket {bucket}: {s.object_count} vehicles, height {s.height}, "
              f"leaf fill {s.avg_leaf_fill:.0%}")


if __name__ == "__main__":
    main()
