#!/usr/bin/env python
"""Police dispatch: which communities does each patrol car cover?

The paper's Figure 1(a): police cars drive around a city, each covering
a circular emergency-response region; the dispatcher must continuously
know which (rectangular) communities every car covers.

This example runs the full two-step pipeline:

1. **Filter step** — a continuous intersection join between the cars'
   coverage MBRs (set A) and the static communities (set B), maintained
   by the MTB-Join engine as cars report position/velocity updates.
2. **Refinement step** — the exact circle-vs-rectangle test from
   :mod:`repro.refine`, applied to the filter survivors.

Run:  python examples/police_dispatch.py
"""

import numpy as np

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.geometry import Box
from repro.objects import MovingObject
from repro.refine import Circle, refine_pairs

CITY = 500.0            # city side length
N_CARS = 25
N_COMMUNITIES = 40
COVERAGE_RADIUS = 18.0  # emergency response radius per car
T_M = 20.0              # cars report at least every 20 ticks
SIM_STEPS = 30


def make_cars(rng: np.random.Generator) -> list:
    cars = []
    for i in range(N_CARS):
        x, y = rng.uniform(0, CITY, size=2)
        angle = rng.uniform(0, 2 * np.pi)
        speed = rng.uniform(0.5, 3.0)
        # The car's *coverage disk* is what joins against communities;
        # its MBR is the disk's bounding square.
        r = COVERAGE_RADIUS
        cars.append(
            MovingObject(
                i,
                Box(x - r, x + r, y - r, y + r),
                speed * np.cos(angle),
                speed * np.sin(angle),
                t_ref=0.0,
            )
        )
    return cars


def make_communities(rng: np.random.Generator) -> list:
    communities = []
    for i in range(N_COMMUNITIES):
        x, y = rng.uniform(0, CITY - 60, size=2)
        w, h = rng.uniform(20, 60, size=2)
        # Communities do not move: velocity (0, 0).
        communities.append(
            MovingObject(10_000 + i, Box(x, x + w, y, y + h), 0.0, 0.0, t_ref=0.0)
        )
    return communities


def main() -> None:
    rng = np.random.default_rng(5)
    cars = make_cars(rng)
    communities = make_communities(rng)
    coverage_shapes = {car.oid: Circle(0.0, 0.0, COVERAGE_RADIUS) for car in cars}

    engine = ContinuousJoinEngine.create(
        cars, communities, algorithm="mtb", config=JoinConfig(t_m=T_M)
    )
    engine.run_initial_join()

    for t in range(1, SIM_STEPS + 1):
        engine.tick(float(t))
        # A few cars report new headings each tick; everyone reports at
        # least every T_M ticks (here: random ~25% per tick).
        for car in list(engine.objects_a.values()):
            if rng.random() < 0.25 or t - car.t_ref >= T_M:
                pos = car.mbr_at(float(t))
                angle = rng.uniform(0, 2 * np.pi)
                speed = rng.uniform(0.5, 3.0)
                engine.apply_update(
                    MovingObject(
                        car.oid, pos,
                        speed * np.cos(angle), speed * np.sin(angle),
                        t_ref=float(t),
                    )
                )

        mbr_pairs = engine.result_at()
        exact_pairs = refine_pairs(
            mbr_pairs,
            engine.objects_a,
            engine.objects_b,
            coverage_shapes,
            {},  # communities use their MBR rectangles
            float(t),
        )
        if t % 5 == 0:
            dropped = len(mbr_pairs) - len(exact_pairs)
            print(f"t={t:3d}: {len(exact_pairs):3d} car→community coverages "
                  f"(filter step: {len(mbr_pairs)}, refinement dropped {dropped})")

    # Final dispatch table for a few cars.
    print("\ncoverage at end of simulation:")
    final = refine_pairs(
        engine.result_at(), engine.objects_a, engine.objects_b,
        coverage_shapes, {}, engine.now,
    )
    by_car: dict = {}
    for car_id, community_id in final:
        by_car.setdefault(car_id, []).append(community_id - 10_000)
    for car_id in sorted(by_car)[:8]:
        print(f"  car {car_id:2d} covers communities {sorted(by_car[car_id])}")


if __name__ == "__main__":
    main()
