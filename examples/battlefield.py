#!/usr/bin/env python
"""Battlefield alert: which warships are inside a bomber's attack range?

The paper's Figure 1(b): a fleet of warships fights a bomber squadron;
every warship whose body intersects a bomber's sector-shaped attack
range must be alerted continuously.

Demonstrates:

* the **battlefield workload** (two opposing clusters converging);
* the continuous intersection join as the filter step;
* **sector-shaped** attack ranges in the refinement step;
* per-timestamp alerting with maintenance costs.

Run:  python examples/battlefield.py
"""

import math

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.refine import Sector, refine_pairs
from repro.workloads import UpdateStream, battlefield_workload

N_PER_SIDE = 150
T_M = 25.0
ARENA = 300.0                # small arena so the armies actually meet
ATTACK_RANGE = 12.0          # bomber attack-sector radius
ATTACK_HALF_ANGLE = math.pi / 5
SIM_STEPS = 60


def main() -> None:
    scenario = battlefield_workload(
        N_PER_SIDE, seed=13, space_size=ARENA, max_speed=3.0,
        object_size_pct=1.2, t_m=T_M,
    )
    warships = scenario.set_a     # moving left → right
    bombers = scenario.set_b      # moving right → left

    # Each bomber's attack range is a sector ahead of it.  The MBR used
    # by the filter step must bound the sector, so bombers are indexed
    # with an enlarged MBR.
    sector = Sector(0.0, 0.0, ATTACK_RANGE, math.pi, ATTACK_HALF_ANGLE)
    grown = []
    for bomber in bombers:
        smbr = sector.mbr()
        cx, cy = bomber.kbox.mbr.center
        vx, vy = bomber.velocity
        from repro.geometry import Box
        from repro.objects import MovingObject

        grown.append(
            MovingObject(
                bomber.oid,
                Box(cx + smbr.x_lo, cx + smbr.x_hi, cy + smbr.y_lo, cy + smbr.y_hi),
                vx, vy, t_ref=0.0,
            )
        )
    bomber_shapes = {b.oid: sector for b in grown}

    engine = ContinuousJoinEngine.create(
        warships, grown, algorithm="mtb", config=JoinConfig(t_m=T_M)
    )
    engine.run_initial_join()
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=3))

    peak_alerts = 0
    for _ in range(SIM_STEPS):
        stats = driver.step()
        filter_pairs = engine.result_at()
        alerts = refine_pairs(
            filter_pairs, engine.objects_a, engine.objects_b,
            {},              # warships: their rectangular hulls
            bomber_shapes,   # bombers: exact attack sectors
            engine.now,
        )
        peak_alerts = max(peak_alerts, len(alerts))
        if stats.timestamp % 5 == 0:
            print(f"t={stats.timestamp:4.0f}  threats(filter)={len(filter_pairs):4d}  "
                  f"alerts(exact)={len(alerts):4d}  updates={stats.n_updates:3d}  "
                  f"io={stats.cost.io_total:4d}")

    amortized = driver.amortized_cost()
    print(f"\npeak simultaneous alerts: {peak_alerts}")
    print(f"maintenance cost per bomber/warship update: "
          f"{amortized.io_total} I/Os, {amortized.pair_tests} pair tests, "
          f"{amortized.cpu_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
