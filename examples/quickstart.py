#!/usr/bin/env python
"""Quickstart: a continuous intersection join in ~40 lines.

Two sets of moving rectangles, an MTB-Join engine, a few timestamps of
simulated updates — and the continuously maintained answer, checked
against brute force at every step.

Run:  python examples/quickstart.py
"""

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.join import brute_force_pairs_at
from repro.workloads import UpdateStream, uniform_workload


def main() -> None:
    # 1. Generate a workload: 400 objects per set, uniform positions,
    #    objects sized 0.5% of the space side, T_M = 30 timestamps.
    scenario = uniform_workload(
        400, seed=42, max_speed=2.0, object_size_pct=0.5, t_m=30.0
    )
    config = JoinConfig(t_m=30.0)

    # 2. Build the engine with the paper's best algorithm (MTB-Join).
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm="mtb", config=config
    )
    cost = engine.run_initial_join()
    print(f"initial join: {len(engine.result_at())} pairs, "
          f"{cost.io_total} I/Os, {cost.pair_tests} pair tests")

    # 3. Drive the simulation: every object updates within T_M.
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=7))
    for _ in range(20):
        stats = driver.step()
        answer = engine.result_at()
        oracle = brute_force_pairs_at(
            engine.objects_a.values(), engine.objects_b.values(), engine.now
        )
        assert answer == oracle, "maintained answer diverged from oracle!"
        print(f"t={stats.timestamp:4.0f}  updates={stats.n_updates:3d}  "
              f"pairs={stats.result_size:3d}  io={stats.cost.io_total:4d}  "
              f"tests={stats.cost.pair_tests:6d}")

    amortized = driver.amortized_cost()
    print(f"\nmaintenance, amortized per update: "
          f"{amortized.io_total} I/Os, {amortized.pair_tests} pair tests")


if __name__ == "__main__":
    main()
