#!/usr/bin/env python
"""Interest management for a large-scale distributed simulation.

The paper's introduction cites military simulations and massively
multiplayer games where each of up to 100,000 entities has an *interest
range*, and the primitive data-management operation is an intersection
join of those ranges — every entity must know which other entities it
can currently perceive.

This example compares the algorithms the paper compares: how much does
it cost to keep the interest graph current under a realistic update
stream?  (Sizes are scaled down so the example runs in seconds; raise
``N_ENTITIES`` to approach paper scale.)

It also exercises the §V extension: a continuous *window query* watches
one sector of the arena, and a continuous *kNN query* tracks the five
entities nearest a commander unit.

Run:  python examples/interest_management.py
"""

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.geometry import Box, KineticBox
from repro.queries import ContinuousKNNEngine, ContinuousWindowEngine
from repro.workloads import UpdateStream, uniform_workload

N_ENTITIES = 300     # per faction
T_M = 30.0
SIM_STEPS = 25


def main() -> None:
    scenario = uniform_workload(
        N_ENTITIES, seed=21, max_speed=2.0, object_size_pct=1.0, t_m=T_M
    )
    config = JoinConfig(t_m=T_M)

    print(f"interest join: {N_ENTITIES} vs {N_ENTITIES} entities, "
          f"T_M={T_M:g}\n")
    print(f"{'algorithm':10s} {'init io':>8s} {'init tests':>11s} "
          f"{'maint io/upd':>13s} {'maint tests/upd':>16s} {'cpu ms/upd':>11s}")
    for algo in ("etp", "tc", "mtb"):
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm=algo, config=config
        )
        init = engine.run_initial_join()
        driver = SimulationDriver(engine, UpdateStream(scenario, seed=4))
        driver.run(SIM_STEPS)
        amortized = driver.amortized_cost()
        print(f"{algo:10s} {init.io_total:8d} {init.pair_tests:11d} "
              f"{amortized.io_total:13d} {amortized.pair_tests:16d} "
              f"{amortized.cpu_seconds * 1e3:11.3f}")

    # §V extensions on faction A.
    print("\ncontinuous window query: arena sector [200,400]×[200,400]")
    window = {9_000_000: KineticBox.rigid(Box(200, 400, 200, 400), 0, 0, 0.0)}
    weng = ContinuousWindowEngine(scenario.set_a, window, config)
    weng.evaluate_initial()
    print(f"  t=0: {len(weng.result_for(9_000_000))} entities in sector")

    print("continuous 5-NN of the commander unit at (500, 500):")
    keng = ContinuousKNNEngine(
        scenario.set_a,
        KineticBox.moving_point(500, 500, 0.5, 0.5, 0.0),
        k=5,
        config=config,
        max_speed=scenario.max_speed,
    )
    stream = UpdateStream(scenario, seed=4)
    objects = {o.oid: o for o in scenario.set_a}
    shadow = {o.oid: o for o in scenario.set_b}
    for t in range(1, 11):
        keng.tick(float(t))
        weng.tick(float(t))
        for obj in stream.updates_for(float(t), {**objects, **shadow}):
            if obj.oid in objects:
                objects[obj.oid] = obj
                keng.apply_update(obj)
                weng.apply_update(obj)
            else:
                shadow[obj.oid] = obj
        if t % 5 == 0:
            nn = ", ".join(f"{oid}@{d:.1f}" for d, oid in keng.knn())
            print(f"  t={t:2d}: 5-NN = [{nn}]  "
                  f"(candidates tracked: {keng.candidate_count}); "
                  f"sector holds {len(weng.result_for(9_000_000))} entities")


if __name__ == "__main__":
    main()
