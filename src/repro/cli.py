"""Command-line interface: run experiments without writing code.

Subcommands
-----------

``generate``
    Generate a workload and print its summary statistics.
``run``
    Run a continuous join (initial join + maintenance simulation) with
    one algorithm and print per-step and amortized costs.
``compare``
    Run the same scenario under several algorithms and print a
    comparison table (the quick-look version of the paper's Figure 13).
``stats``
    Build an index over a workload and print tree-quality statistics.

Examples::

    python -m repro run --algorithm mtb --objects 1000 --steps 20
    python -m repro compare --objects 500 --algorithms tc,mtb,etp
    python -m repro stats --objects 2000 --bulk-load
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from .index import TPRStarTree, bulk_load, collect_tree_stats
from .workloads import (
    DISTRIBUTIONS,
    UpdateStream,
    load_scenario,
    make_workload,
    save_scenario,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous intersection joins over moving objects "
        "(ICDE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--objects", type=int, default=500,
                       help="objects per dataset (default 500)")
        p.add_argument("--distribution", choices=DISTRIBUTIONS,
                       default="uniform")
        p.add_argument("--max-speed", type=float, default=2.0)
        p.add_argument("--object-size", type=float, default=0.1,
                       help="object side as %% of space side")
        p.add_argument("--tm", type=float, default=60.0,
                       help="maximum update interval T_M")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--scenario", metavar="PATH", default=None,
                       help="load the workload from a saved JSON scenario "
                            "instead of generating one")

    p_gen = sub.add_parser("generate", help="generate and describe a workload")
    add_workload_args(p_gen)
    p_gen.add_argument("--save", metavar="PATH", default=None,
                       help="also save the generated scenario as JSON")

    p_run = sub.add_parser("run", help="run one continuous join")
    add_workload_args(p_run)
    p_run.add_argument("--algorithm", choices=("naive", "etp", "tc", "mtb"),
                       default="mtb")
    p_run.add_argument("--steps", type=int, default=10,
                       help="maintenance timestamps to simulate")

    p_cmp = sub.add_parser("compare", help="compare algorithms on one scenario")
    add_workload_args(p_cmp)
    p_cmp.add_argument("--algorithms", default="tc,mtb",
                       help="comma-separated list, e.g. tc,mtb,etp")
    p_cmp.add_argument("--steps", type=int, default=10)

    p_stats = sub.add_parser("stats", help="index-quality statistics")
    add_workload_args(p_stats)
    p_stats.add_argument("--bulk-load", action="store_true",
                         help="build via STR bulk loading instead of inserts")

    p_show = sub.add_parser("show", help="ASCII animation of a running join")
    add_workload_args(p_show)
    p_show.add_argument("--steps", type=int, default=5,
                        help="timestamps to render")
    p_show.add_argument("--width", type=int, default=72)
    p_show.add_argument("--height", type=int, default=20)
    return parser


def _scenario(args: argparse.Namespace):
    if getattr(args, "scenario", None):
        scenario = load_scenario(args.scenario)
        # The engine's T_M must match the scenario's update contract —
        # a smaller engine T_M would break the Theorem-1 guarantee.
        args.tm = scenario.t_m
        return scenario
    return make_workload(
        args.objects,
        args.distribution,
        max_speed=args.max_speed,
        object_size_pct=args.object_size,
        t_m=args.tm,
        seed=args.seed,
    )


def _cmd_generate(args: argparse.Namespace, out) -> int:
    scenario = _scenario(args)
    out.write(f"distribution : {scenario.distribution}\n")
    out.write(f"objects      : {scenario.n_objects} per set\n")
    out.write(f"space        : {scenario.space_size:g} x {scenario.space_size:g}\n")
    out.write(f"object side  : {scenario.object_side:g}\n")
    out.write(f"max speed    : {scenario.max_speed:g}\n")
    out.write(f"T_M          : {scenario.t_m:g}\n")
    xs = [o.kbox.mbr.center[0] for o in scenario.set_a]
    out.write(f"A centroid x : {sum(xs) / len(xs):.1f}\n")
    xs_b = [o.kbox.mbr.center[0] for o in scenario.set_b]
    out.write(f"B centroid x : {sum(xs_b) / len(xs_b):.1f}\n")
    if args.save:
        save_scenario(scenario, args.save)
        out.write(f"saved        : {args.save}\n")
    return 0


def _run_one(args: argparse.Namespace, algorithm: str, out, verbose: bool):
    scenario = _scenario(args)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=JoinConfig(t_m=args.tm),
    )
    initial = engine.run_initial_join()
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=args.seed + 1))
    engine.tracker.reset()
    for _ in range(args.steps):
        stats = driver.step()
        if verbose:
            out.write(
                f"t={stats.timestamp:5.0f}  updates={stats.n_updates:4d}  "
                f"pairs={stats.result_size:5d}  io={stats.cost.io_total:5d}  "
                f"tests={stats.cost.pair_tests:7d}\n"
            )
    per_update = driver.amortized_cost()
    return initial, per_update, len(engine.result_at())


def _cmd_run(args: argparse.Namespace, out) -> int:
    initial, per_update, pairs = _run_one(args, args.algorithm, out, verbose=True)
    out.write(f"\ninitial join : {initial.io_total} I/Os, "
              f"{initial.pair_tests} pair tests, {initial.cpu_seconds:.3f}s\n")
    out.write(f"per update   : {per_update.io_total} I/Os, "
              f"{per_update.pair_tests} pair tests, "
              f"{per_update.cpu_seconds * 1e3:.3f} ms\n")
    out.write(f"current pairs: {pairs}\n")
    return 0


def _cmd_compare(args: argparse.Namespace, out) -> int:
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    out.write(
        f"{'algorithm':>10s} {'init io':>9s} {'init tests':>11s} "
        f"{'io/upd':>8s} {'tests/upd':>10s} {'ms/upd':>8s}\n"
    )
    for algorithm in algorithms:
        initial, per_update, _pairs = _run_one(args, algorithm, out, verbose=False)
        out.write(
            f"{algorithm:>10s} {initial.io_total:9d} {initial.pair_tests:11d} "
            f"{per_update.io_total:8d} {per_update.pair_tests:10d} "
            f"{per_update.cpu_seconds * 1e3:8.3f}\n"
        )
    return 0


def _cmd_stats(args: argparse.Namespace, out) -> int:
    scenario = _scenario(args)
    if args.bulk_load:
        tree = bulk_load(scenario.set_a, t0=0.0, horizon=args.tm)
        how = "bulk-loaded (STR)"
    else:
        tree = TPRStarTree(horizon=args.tm)
        for obj in scenario.set_a:
            tree.insert(obj, 0.0)
        how = "insert-built"
    stats = collect_tree_stats(tree, 0.0)
    out.write(f"tree           : {how}\n")
    out.write(f"objects        : {stats.object_count}\n")
    out.write(f"height         : {stats.height}\n")
    out.write(f"nodes          : {stats.node_count} ({stats.leaf_count} leaves)\n")
    out.write(f"avg fanout     : {stats.avg_fanout:.1f}\n")
    out.write(f"avg leaf fill  : {stats.avg_leaf_fill:.0%}\n")
    out.write(f"sibling overlap: {stats.sibling_overlap_area:.1f}\n")
    return 0


def _cmd_show(args: argparse.Namespace, out) -> int:
    from .viz import render_frame, render_legend

    scenario = _scenario(args)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(t_m=args.tm),
    )
    engine.run_initial_join()
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=args.seed + 1))
    out.write(render_legend() + "\n")
    for step in range(args.steps + 1):
        pairs = engine.result_at()
        out.write(f"\n--- t={engine.now:g}  pairs={len(pairs)} ---\n")
        out.write(
            render_frame(
                engine.objects_a.values(), engine.objects_b.values(),
                engine.now, scenario.space_size,
                width=args.width, height=args.height, pairs=pairs,
            )
            + "\n"
        )
        if step < args.steps:
            driver.step()
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "show": _cmd_show,
    }
    return handlers[args.command](args, out)
