"""Cost accounting: disk I/O, intersection tests, monotonic timers.

The paper reports *number of disk I/Os* and *total response time* for
every experiment.  A single :class:`CostTracker` instance is threaded
through the storage layer and the join algorithms so benchmarks can read
both metrics after a run.  Trackers nest: a tracker can snapshot and
diff, which is how per-update maintenance costs are amortized.

This module is also the package's **single sanctioned clock source**
(the RC002 contract, mirroring how :mod:`repro.geometry.constants` is
the single source of tolerances): every layer that needs a real-time
reading imports :func:`monotonic_clock` from here instead of touching
:mod:`time` itself.  The simulation-time layers (``core``, ``join``,
``index``) never read the real clock at all — the domain lint
(:mod:`repro.check.lint`) enforces both halves.

Phase-level *attribution* of these counters (which tick, which join,
which tree descent an increment belongs to) lives in :mod:`repro.obs`:
an :class:`~repro.obs.ObsRecorder` attached via :meth:`CostTracker.
attach_obs` receives a copy of every increment on its innermost open
span.  With no recorder attached the counters behave exactly as before
(one predictable-branch test per increment).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports us)
    from .obs.recorder import ObsRecorder

__all__ = ["CostTracker", "CostSnapshot", "COUNTER_KEYS", "monotonic_clock"]

#: The one sanctioned monotonic clock of the package (RC002).  Everything
#: that measures elapsed real time — stopwatches, obs span timers,
#: benchmarks — routes through this name.
monotonic_clock = time.perf_counter

#: Names of the attributable integer counters, in snapshot order.
COUNTER_KEYS = ("page_reads", "page_writes", "pair_tests", "node_visits")


class CostSnapshot:
    """Immutable copy of a tracker's counters at one point in time."""

    __slots__ = ("page_reads", "page_writes", "pair_tests", "node_visits", "cpu_seconds")

    def __init__(
        self,
        page_reads: int,
        page_writes: int,
        pair_tests: int,
        node_visits: int,
        cpu_seconds: float,
    ):
        self.page_reads = page_reads
        self.page_writes = page_writes
        self.pair_tests = pair_tests
        self.node_visits = node_visits
        self.cpu_seconds = cpu_seconds

    @property
    def io_total(self) -> int:
        """Reads plus writes — the paper's "I/O cost"."""
        return self.page_reads + self.page_writes

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            self.page_reads - other.page_reads,
            self.page_writes - other.page_writes,
            self.pair_tests - other.pair_tests,
            self.node_visits - other.node_visits,
            self.cpu_seconds - other.cpu_seconds,
        )

    def scaled(self, divisor: float) -> "CostSnapshot":
        """Amortized copy (e.g. per-update maintenance cost)."""
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        return CostSnapshot(
            int(self.page_reads / divisor),
            int(self.page_writes / divisor),
            int(self.pair_tests / divisor),
            int(self.node_visits / divisor),
            self.cpu_seconds / divisor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "io_total": self.io_total,
            "pair_tests": self.pair_tests,
            "node_visits": self.node_visits,
            "cpu_seconds": self.cpu_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"CostSnapshot(io={self.io_total}, tests={self.pair_tests}, "
            f"visits={self.node_visits}, cpu={self.cpu_seconds:.4f}s)"
        )


class CostTracker:
    """Mutable counters incremented by storage and join code.

    * ``page_reads`` / ``page_writes`` — buffer-pool misses, the honest
      disk I/O count of the simulated disk substrate;
    * ``pair_tests`` — exact moving-rectangle intersection tests, the
      dominant CPU term;
    * ``node_visits`` — index nodes visited by traversals;
    * a monotonic stopwatch accumulating time inside :meth:`timed`.

    When an :class:`~repro.obs.ObsRecorder` is attached (see
    :meth:`attach_obs`), every increment is *additionally* delivered to
    the recorder's innermost open span, which is how ``repro.obs``
    attributes cost to phases without changing any of the totals here.
    """

    __slots__ = (
        "page_reads",
        "page_writes",
        "pair_tests",
        "node_visits",
        "cpu_seconds",
        "obs",
        "_timed_depth",
        "_timed_t0",
    )

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.pair_tests = 0
        self.node_visits = 0
        self.cpu_seconds = 0.0
        #: Attached :class:`~repro.obs.ObsRecorder`, or ``None``.
        self.obs: Optional["ObsRecorder"] = None
        self._timed_depth = 0
        self._timed_t0 = 0.0

    # ------------------------------------------------------------------
    def count_read(self, n: int = 1) -> None:
        self.page_reads += n
        if self.obs is not None:
            self.obs.count("page_reads", n)

    def count_write(self, n: int = 1) -> None:
        self.page_writes += n
        if self.obs is not None:
            self.obs.count("page_writes", n)

    def count_pair_tests(self, n: int = 1) -> None:
        self.pair_tests += n
        if self.obs is not None:
            self.obs.count("pair_tests", n)

    def count_node_visit(self, n: int = 1) -> None:
        self.node_visits += n
        if self.obs is not None:
            self.obs.count("node_visits", n)

    # ------------------------------------------------------------------
    def attach_obs(self, recorder: Optional["ObsRecorder"]) -> None:
        """Attach (or with ``None`` detach) an observability recorder.

        From this point on every counter increment also lands on the
        recorder's innermost open span; the tracker's own totals are
        unaffected, which is what keeps the span rollup bit-exact
        against them.
        """
        self.obs = recorder

    # ------------------------------------------------------------------
    def timed(self) -> "_Stopwatch":
        """Context manager adding elapsed monotonic time to ``cpu_seconds``.

        Nest-safe: re-entering while a stopwatch is already running does
        not double-count — only the outermost region accumulates, so
        ``cpu_seconds`` is always *inclusive* wall time of the outermost
        measured regions.  (Per-phase exclusive vs. inclusive splits are
        the job of :mod:`repro.obs` span timers.)

        >>> tracker = CostTracker()
        >>> with tracker.timed():
        ...     with tracker.timed():
        ...         pass
        >>> tracker.cpu_seconds >= 0.0
        True
        """
        return _Stopwatch(self)

    def snapshot(self) -> CostSnapshot:
        """Immutable copy of the current counters."""
        return CostSnapshot(
            self.page_reads,
            self.page_writes,
            self.pair_tests,
            self.node_visits,
            self.cpu_seconds,
        )

    def reset(self) -> None:
        """Zero all counters (the attached recorder, if any, stays)."""
        self.page_reads = 0
        self.page_writes = 0
        self.pair_tests = 0
        self.node_visits = 0
        self.cpu_seconds = 0.0

    def __repr__(self) -> str:
        return f"CostTracker({self.snapshot()!r})"


class _Stopwatch:
    """Context manager used by :meth:`CostTracker.timed`."""

    __slots__ = ("_tracker",)

    def __init__(self, tracker: CostTracker):
        self._tracker = tracker

    def __enter__(self) -> "_Stopwatch":
        tracker = self._tracker
        if tracker._timed_depth == 0:
            tracker._timed_t0 = monotonic_clock()
        tracker._timed_depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracker = self._tracker
        tracker._timed_depth -= 1
        if tracker._timed_depth == 0:
            tracker.cpu_seconds += monotonic_clock() - tracker._timed_t0
