"""Cost accounting: disk I/O, intersection tests, wall-clock timers.

The paper reports *number of disk I/Os* and *total response time* for
every experiment.  A single :class:`CostTracker` instance is threaded
through the storage layer and the join algorithms so benchmarks can read
both metrics after a run.  Trackers nest: a tracker can snapshot and
diff, which is how per-update maintenance costs are amortized.
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["CostTracker", "CostSnapshot"]


class CostSnapshot:
    """Immutable copy of a tracker's counters at one point in time."""

    __slots__ = ("page_reads", "page_writes", "pair_tests", "node_visits", "cpu_seconds")

    def __init__(
        self,
        page_reads: int,
        page_writes: int,
        pair_tests: int,
        node_visits: int,
        cpu_seconds: float,
    ):
        self.page_reads = page_reads
        self.page_writes = page_writes
        self.pair_tests = pair_tests
        self.node_visits = node_visits
        self.cpu_seconds = cpu_seconds

    @property
    def io_total(self) -> int:
        """Reads plus writes — the paper's "I/O cost"."""
        return self.page_reads + self.page_writes

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            self.page_reads - other.page_reads,
            self.page_writes - other.page_writes,
            self.pair_tests - other.pair_tests,
            self.node_visits - other.node_visits,
            self.cpu_seconds - other.cpu_seconds,
        )

    def scaled(self, divisor: float) -> "CostSnapshot":
        """Amortized copy (e.g. per-update maintenance cost)."""
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        return CostSnapshot(
            int(self.page_reads / divisor),
            int(self.page_writes / divisor),
            int(self.pair_tests / divisor),
            int(self.node_visits / divisor),
            self.cpu_seconds / divisor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "io_total": self.io_total,
            "pair_tests": self.pair_tests,
            "node_visits": self.node_visits,
            "cpu_seconds": self.cpu_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"CostSnapshot(io={self.io_total}, tests={self.pair_tests}, "
            f"visits={self.node_visits}, cpu={self.cpu_seconds:.4f}s)"
        )


class CostTracker:
    """Mutable counters incremented by storage and join code.

    * ``page_reads`` / ``page_writes`` — buffer-pool misses, the honest
      disk I/O count of the simulated disk substrate;
    * ``pair_tests`` — exact moving-rectangle intersection tests, the
      dominant CPU term;
    * ``node_visits`` — index nodes visited by traversals;
    * a wall-clock stopwatch accumulating time inside :meth:`timed`.
    """

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.pair_tests = 0
        self.node_visits = 0
        self.cpu_seconds = 0.0

    # ------------------------------------------------------------------
    def count_read(self, n: int = 1) -> None:
        self.page_reads += n

    def count_write(self, n: int = 1) -> None:
        self.page_writes += n

    def count_pair_tests(self, n: int = 1) -> None:
        self.pair_tests += n

    def count_node_visit(self, n: int = 1) -> None:
        self.node_visits += n

    # ------------------------------------------------------------------
    def timed(self) -> "_Stopwatch":
        """Context manager adding elapsed wall time to ``cpu_seconds``.

        >>> tracker = CostTracker()
        >>> with tracker.timed():
        ...     pass
        >>> tracker.cpu_seconds >= 0.0
        True
        """
        return _Stopwatch(self)

    def snapshot(self) -> CostSnapshot:
        """Immutable copy of the current counters."""
        return CostSnapshot(
            self.page_reads,
            self.page_writes,
            self.pair_tests,
            self.node_visits,
            self.cpu_seconds,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.page_reads = 0
        self.page_writes = 0
        self.pair_tests = 0
        self.node_visits = 0
        self.cpu_seconds = 0.0

    def __repr__(self) -> str:
        return f"CostTracker({self.snapshot()!r})"


class _Stopwatch:
    """Context manager used by :meth:`CostTracker.timed`."""

    def __init__(self, tracker: CostTracker):
        self._tracker = tracker
        self._t0 = 0.0

    def __enter__(self) -> "_Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracker.cpu_seconds += time.perf_counter() - self._t0
