"""Parent-side merge of per-shard delta streams, in tick order.

Sharding replicates pairs: every shard whose stripe both halos sweep
holds the pair with a bit-identical interval list, so a row's *global*
presence is "some shard holds it".  The merger therefore keeps a
holder-set per row and emits a merged event only on the empty ↔
non-empty transitions: a shard eviction that merely drops one replica
nets to nothing globally, a co-located update that fires in three
shards at once nets to one event.

Exactly-once across recovery
----------------------------
Shard contributions are pulled as *cumulative netted events for the
open tick* and ingested with replacement semantics: the latest pull
from a shard supersedes its earlier ones for that tick.  This makes
ingestion idempotent against every delivery anomaly supervision can
produce — a re-issued in-flight batch after a worker crash, multiple
mutation rounds within one tick, checkpoint/replay re-execution — a
recovered shard re-reports its whole open tick and nothing is emitted
twice or lost.  A tick *closes* when a later tick's pull arrives (or
the clock advances past it): its merged events are frozen and its
contributions folded into the holder sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .ledger import DeltaEvent

__all__ = ["ShardDeltaMerger"]

RowKey = Tuple[int, int, float, float]


class ShardDeltaMerger:
    """Merges per-shard netted delta streams into one global stream.

    Exposes the same read surface as a :class:`~repro.deltas.ledger.
    DeltaLedger` (``now`` / ``ticks()`` / ``events_at()`` / ``events()``)
    so folds, subscriptions and the sanitizer work against either.
    """

    __slots__ = ("_now", "_holders", "_ticks", "_closed", "_open_tick", "_contrib")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: row → shard ids holding it, as of the last *closed* tick.
        self._holders: Dict[RowKey, Set[int]] = {}
        self._ticks: List[float] = []
        self._closed: Dict[float, Tuple[DeltaEvent, ...]] = {}
        self._open_tick: Optional[float] = None
        #: open tick: latest cumulative pull per shard (replacement).
        self._contrib: Dict[int, Tuple[DeltaEvent, ...]] = {}

    @property
    def now(self) -> float:
        return self._now

    def advance(self, t: float) -> None:
        """Move the merge clock forward, closing any older open tick."""
        if t < self._now:
            raise ValueError(f"time went backwards: {t} < {self._now}")
        if self._open_tick is not None and t > self._open_tick:
            self._close_open()
        self._now = float(t)

    def ingest(
        self, shard_id: int, t: float, events: Iterable[Tuple]
    ) -> None:
        """Replace shard ``shard_id``'s contribution for tick ``t``.

        ``events`` is the shard's *cumulative* netted stream for its
        open tick (``DeltaLedger.events_at(t)`` rows); re-ingesting the
        same shard at the same tick supersedes, never accumulates.
        """
        if self._open_tick is None or t > self._open_tick:
            if self._open_tick is not None:
                self._close_open()
            if self._ticks and t <= self._ticks[-1]:
                raise ValueError(
                    f"delta pull out of tick order: {t} <= {self._ticks[-1]}"
                )
            self._open_tick = float(t)
            self._ticks.append(float(t))
            self._contrib = {}
        elif t < self._open_tick:
            raise ValueError(
                f"delta pull for closed tick {t} (open: {self._open_tick})"
            )
        self._contrib[shard_id] = tuple(DeltaEvent(*row) for row in events)

    def ticks(self) -> Tuple[float, ...]:
        return tuple(self._ticks)

    def events_at(self, t: float) -> Tuple[DeltaEvent, ...]:
        """Merged netted events at tick ``t`` (frozen once the tick closes)."""
        frozen = self._closed.get(t)
        if frozen is not None:
            return frozen
        if self._open_tick is not None and t == self._open_tick:  # noqa: RC001
            return self._merge_open()
        return ()

    def events(self) -> Iterator[DeltaEvent]:
        """All merged events, in tick order."""
        for t in self._ticks:
            yield from self.events_at(t)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _merge_open(self) -> Tuple[DeltaEvent, ...]:
        """Global transitions implied by the open tick's contributions."""
        t = self._open_tick
        after: Dict[RowKey, Set[int]] = {}
        for sid, shard_events in self._contrib.items():
            for ev in shard_events:
                row = (ev.a_oid, ev.b_oid, ev.start, ev.end)
                holders = after.get(row)
                if holders is None:
                    holders = after[row] = set(self._holders.get(row, ()))
                if ev.sign > 0:
                    holders.add(sid)
                else:
                    holders.discard(sid)
        merged = []
        for row, holders in after.items():
            before = len(self._holders.get(row, ()))
            if before == 0 and holders:
                merged.append(DeltaEvent(t, 1, *row))
            elif before > 0 and not holders:
                merged.append(DeltaEvent(t, -1, *row))
        merged.sort(
            key=lambda ev: (ev.sign, ev.a_oid, ev.b_oid, ev.start, ev.end)
        )
        return tuple(merged)

    def _close_open(self) -> None:
        """Freeze the open tick and fold its contributions into holders."""
        t = self._open_tick
        self._closed[t] = self._merge_open()
        for sid, shard_events in self._contrib.items():
            for ev in shard_events:
                row = (ev.a_oid, ev.b_oid, ev.start, ev.end)
                if ev.sign > 0:
                    self._holders.setdefault(row, set()).add(sid)
                else:
                    holders = self._holders.get(row)
                    if holders is not None:
                        holders.discard(sid)
                        if not holders:
                            del self._holders[row]
        self._open_tick = None
        self._contrib = {}

    def __repr__(self) -> str:
        return (
            f"ShardDeltaMerger(now={self._now:g}, ticks={len(self._ticks)}, "
            f"rows={len(self._holders)})"
        )
