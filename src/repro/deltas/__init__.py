"""Delta streams over the maintained join result.

The continuous join's answer is a materialized view (the
:class:`~repro.core.result.JoinResultStore`).  This package maintains
the *change* contract next to it: every store mutation is recorded in a
:class:`DeltaLedger` as signed ``(tick, pair, ±interval)`` events, and
folding the event stream from ``t = 0`` reconstructs the store
bit-for-bit (the replay-equivalence property pinned by
``tests/deltas/``).

* :class:`DeltaLedger` — per-engine append-only event log with per-tick
  netting and constant-delay enumeration (``engine.deltas(t)``).
* :class:`DeltaView` — the exact fold target: applies events by
  multiset insert/remove, raising :class:`DeltaReplayError` on a
  duplicate add or a phantom removal (the exactly-once teeth).
* :class:`ShardDeltaMerger` — parent-side merge of per-shard ledgers in
  tick order, idempotent against supervisor checkpoint/replay.
* :class:`DeltaSubscription` — ``engine.watch(oid=…)`` /
  ``watch(region=…)`` filtered polling over any event source.
"""

from .ledger import (
    DeltaEvent,
    DeltaLedger,
    DeltaReplayError,
    DeltaView,
    fold_events,
)
from .merge import ShardDeltaMerger
from .watch import DeltaSubscription

__all__ = [
    "DeltaEvent",
    "DeltaLedger",
    "DeltaReplayError",
    "DeltaView",
    "fold_events",
    "ShardDeltaMerger",
    "DeltaSubscription",
]
