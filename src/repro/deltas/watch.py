"""Subscriptions over a delta stream: ``watch(oid=…)`` / ``watch(region=…)``.

A subscription is a poll-cursor over any event source with the ledger
read surface (:class:`~repro.deltas.ledger.DeltaLedger` or
:class:`~repro.deltas.merge.ShardDeltaMerger`): each :meth:`poll`
returns the matching events of every tick that *closed* since the last
poll, in tick order.  Closed ticks are final (netting is frozen), so a
subscriber sees every transition exactly once; pass
``include_open=True`` on the last poll of a run to flush the still-open
tick.

Filters:

* ``oid`` — events whose pair contains the object id.
* ``region`` — events touching any object whose current bounding box
  intersects the region; the object set is resolved *at poll time*
  through the engine's registries, and the matching pairs currently in
  the store come from the result store's inverted index
  (:meth:`~repro.core.result.JoinResultStore.pairs_for_object`).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Set, Tuple

from .ledger import DeltaEvent

__all__ = ["DeltaSubscription"]

PairKey = Tuple[int, int]


class DeltaSubscription:
    """One filtered poll-cursor over a delta event source.

    Built by ``engine.watch(...)`` — ``source`` is the engine's ledger
    (or the sharded merger), ``index`` resolves an oid to its currently
    stored pairs through the store's inverted index, and
    ``region_oids`` resolves a region to the object ids inside it at
    the current clock.
    """

    __slots__ = ("_source", "_oid", "_region", "_index", "_region_oids", "_cursor")

    def __init__(
        self,
        source,
        *,
        oid: Optional[int] = None,
        region=None,
        index: Optional[Callable[[int], FrozenSet[PairKey]]] = None,
        region_oids: Optional[Callable[[object], Set[int]]] = None,
    ) -> None:
        if oid is not None and region is not None:
            raise ValueError("watch one of oid= or region=, not both")
        if region is not None and region_oids is None:
            raise ValueError("region watches need a region_oids resolver")
        self._source = source
        self._oid = oid
        self._region = region
        self._index = index
        self._region_oids = region_oids
        #: Number of source ticks already consumed (ticks are append-only).
        self._cursor = 0

    def poll(self, include_open: bool = False) -> List[DeltaEvent]:
        """Matching events of every tick closed since the last poll.

        The open tick (``source.now``) is withheld unless
        ``include_open`` — its net can still change — so repeated polls
        deliver each event exactly once.
        """
        source = self._source
        ticks = source.ticks()
        now = source.now
        upto = len(ticks)
        if not include_open:
            while upto > self._cursor and ticks[upto - 1] >= now:
                upto -= 1
        matched: List[DeltaEvent] = []
        scope = self._poll_scope()
        for i in range(self._cursor, upto):
            for event in source.events_at(ticks[i]):
                if scope is None or event.a_oid in scope or event.b_oid in scope:
                    matched.append(event)
        self._cursor = upto
        return matched

    def current_pairs(self) -> Set[PairKey]:
        """Pairs currently stored for the watched scope (inverted index)."""
        if self._index is None:
            raise RuntimeError("this subscription has no store index attached")
        scope = self._poll_scope()
        if scope is None:
            raise RuntimeError("current_pairs needs an oid= or region= filter")
        pairs: Set[PairKey] = set()
        for oid in scope:
            pairs |= self._index(oid)
        return pairs

    def _poll_scope(self) -> Optional[Set[int]]:
        """Object ids the filter matches right now (``None`` = match all)."""
        if self._oid is not None:
            return {self._oid}
        if self._region is not None:
            return set(self._region_oids(self._region))
        return None

    def __repr__(self) -> str:
        if self._oid is not None:
            what = f"oid={self._oid}"
        elif self._region is not None:
            what = f"region={self._region!r}"
        else:
            what = "all"
        return f"DeltaSubscription({what}, consumed={self._cursor})"
