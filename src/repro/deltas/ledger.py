"""The delta ledger: signed result-store changes, netted per tick.

Event grammar
-------------
One event is ``(tick, sign, a_oid, b_oid, start, end)`` with ``sign ∈
{+1, -1}``: the *row* ``((a_oid, b_oid), (start, end))`` — one exact
stored interval of one pair — entered (``+1``) or left (``-1``) the
materialized result store at ``tick``.  Events are state transitions,
not operations: a store mutation that rewrites a pair's interval list
(a re-merge, an invalidation plus re-probe) is recorded as the row
*diff* of old versus new list.  Folding is therefore plain multiset
insert/remove — no merge logic, no order sensitivity — and
reconstructs the store bit-for-bit (:class:`DeltaView`).

Netting
-------
Within one tick a row may bounce (removed by invalidation, re-added by
the re-probe).  :meth:`DeltaLedger.events_at` nets the raw record: the
returned events are exactly the store's state diff across the tick, so
the netted per-tick stream is *engine independent* — serial, columnar
and sharded runs over the same workload emit identical netted streams.
Events come back canonically ordered (removals first, then by pair and
interval), as an already-materialized tuple: iteration is
constant-delay per event with no recomputation.

A ledger may carry a *baseline*: the store rows at the moment the
ledger was (re)armed.  A fresh engine has an empty baseline; a shard
restored from a checkpoint is re-armed with the tick-start rows so the
reconciliation invariant ``baseline ⊕ events == store`` (sanitizer code
``SC701``) holds across recovery without re-emitting history.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Tuple

__all__ = [
    "DeltaEvent",
    "DeltaLedger",
    "DeltaReplayError",
    "DeltaView",
    "fold_events",
]

PairKey = Tuple[int, int]
Row = Tuple[float, float]


class DeltaEvent(NamedTuple):
    """One netted result-store transition (picklable, hashable)."""

    #: Engine timestamp the transition happened at.
    tick: float
    #: ``+1`` — the row entered the store; ``-1`` — it left.
    sign: int
    #: First endpoint of the pair (dataset A).
    a_oid: int
    #: Second endpoint of the pair (dataset B).
    b_oid: int
    #: Stored intersection-interval start.
    start: float
    #: Stored intersection-interval end.
    end: float

    @property
    def pair(self) -> PairKey:
        """The ``(a_oid, b_oid)`` result key the event belongs to."""
        return (self.a_oid, self.b_oid)

    @property
    def interval(self) -> Row:
        """The exact ``(start, end)`` row that entered or left."""
        return (self.start, self.end)


class DeltaReplayError(ValueError):
    """An event stream violated exactly-once folding.

    Raised by :class:`DeltaView` on a duplicate add (the row is already
    present) or a phantom removal (the row is absent) — the two ways a
    delta stream can lie about the store it claims to describe.
    """


class DeltaLedger:
    """Append-only per-engine event log with per-tick netting.

    The write path is deliberately cheap — :meth:`record` appends one
    plain scalar tuple, no object construction — so it can sit inside
    the columnar engine's ``add_batch`` hot loop.  Netting and
    :class:`DeltaEvent` materialization happen lazily in
    :meth:`events_at`, memoized per tick until new raw records arrive.
    """

    __slots__ = ("_now", "_ticks", "_raw", "_baseline", "_cache", "_flush")

    def __init__(
        self,
        start_time: float = 0.0,
        baseline: Optional[Mapping[PairKey, Tuple[Row, ...]]] = None,
    ) -> None:
        self._now = float(start_time)
        #: Optional callback draining deferred store mutations into the
        #: raw record before any read or clock move.  A store with a
        #: deferred write path (:class:`~repro.core.result.
        #: ColumnResultStore`) installs its ``flush`` here on attach, so
        #: reading the ledger directly — not only through the engine —
        #: always sees the canonicalized stream.
        self._flush: Optional[callable] = None
        #: Every tick with at least one raw record, in recording order
        #: (monotone by construction: records land at the current clock).
        self._ticks: List[float] = []
        self._raw: Dict[float, List[Tuple[int, int, int, float, float]]] = {}
        self._baseline: Dict[PairKey, Tuple[Row, ...]] = (
            {key: tuple(rows) for key, rows in baseline.items()}
            if baseline
            else {}
        )
        self._cache: Dict[float, Tuple[int, Tuple[DeltaEvent, ...]]] = {}

    @property
    def now(self) -> float:
        """The tick new records are attributed to."""
        return self._now

    def advance(self, t: float) -> None:
        """Move the ledger clock forward (monotone non-decreasing)."""
        if t < self._now:
            raise ValueError(f"time went backwards: {t} < {self._now}")
        if self._flush is not None:
            self._flush()
        self._now = float(t)

    def record(self, sign: int, a_oid: int, b_oid: int, start: float, end: float) -> None:
        """Append one raw transition at the current tick."""
        t = self._now
        bucket = self._raw.get(t)
        if bucket is None:
            bucket = self._raw[t] = []
            self._ticks.append(t)
        bucket.append((sign, a_oid, b_oid, start, end))

    def ticks(self) -> Tuple[float, ...]:
        """Every tick that recorded at least one raw transition."""
        if self._flush is not None:
            self._flush()
        return tuple(self._ticks)

    def events_at(self, t: float) -> Tuple[DeltaEvent, ...]:
        """The netted events of tick ``t`` (empty for a quiet tick).

        Constant-delay enumeration: the tuple is materialized once per
        (tick, record count) and handed out as-is afterwards.
        """
        if self._flush is not None:
            self._flush()
        raw = self._raw.get(t)
        if raw is None:
            return ()
        cached = self._cache.get(t)
        if cached is not None and cached[0] == len(raw):
            return cached[1]
        events = _net_events(t, raw)
        self._cache[t] = (len(raw), events)
        return events

    def events(self) -> Iterator[DeltaEvent]:
        """All netted events, in tick order."""
        for t in self._ticks:
            yield from self.events_at(t)

    def baseline_rows(self) -> Dict[PairKey, Tuple[Row, ...]]:
        """The store rows the ledger was armed against (usually empty)."""
        return dict(self._baseline)

    def __len__(self) -> int:
        """Total raw records (diagnostics; netted streams may be shorter)."""
        return sum(len(bucket) for bucket in self._raw.values())

    def __repr__(self) -> str:
        return (
            f"DeltaLedger(now={self._now:g}, ticks={len(self._ticks)}, "
            f"records={len(self)})"
        )


def _net_events(
    t: float, raw: List[Tuple[int, int, int, float, float]]
) -> Tuple[DeltaEvent, ...]:
    """Net one tick's raw records into canonical state-diff events.

    A well-formed record stream alternates presence per row, so the
    signed count nets to -1/0/+1.  A count beyond ±1 (a double add or
    double removal — a store-hook bug) is preserved as repeated events
    so the :class:`DeltaView` fold, and hence the ``SC703`` sanitizer,
    still sees it instead of it vanishing in the netting.
    """
    counts: Dict[Tuple[int, int, float, float], int] = {}
    for sign, a, b, start, end in raw:
        row = (a, b, start, end)
        counts[row] = counts.get(row, 0) + sign
    events = [
        DeltaEvent(t, 1 if net > 0 else -1, a, b, start, end)
        for (a, b, start, end), net in counts.items()
        for _ in range(abs(net))
    ]
    events.sort(key=lambda ev: (ev.sign, ev.a_oid, ev.b_oid, ev.start, ev.end))
    return tuple(events)


class DeltaView:
    """The exact fold target: a pair → sorted-row map built from events.

    Applying a ``+1`` event inserts its row, a ``-1`` event removes it;
    both are exact-match operations that raise :class:`DeltaReplayError`
    when the stream and the claimed state disagree.  After folding a
    ledger from its baseline, :meth:`rows` equals
    ``JoinResultStore.interval_rows()`` bit-for-bit.
    """

    __slots__ = ("_rows",)

    def __init__(
        self, rows: Optional[Mapping[PairKey, Tuple[Row, ...]]] = None
    ) -> None:
        self._rows: Dict[PairKey, List[Row]] = {}
        if rows:
            for key, pair_rows in rows.items():
                self._rows[key] = sorted(tuple(row) for row in pair_rows)

    def apply_row(
        self, sign: int, a_oid: int, b_oid: int, start: float, end: float
    ) -> None:
        """Apply one transition; raises :class:`DeltaReplayError` if ill-formed."""
        key = (a_oid, b_oid)
        row = (start, end)
        rows = self._rows.get(key)
        if sign > 0:
            if rows is None:
                self._rows[key] = [row]
                return
            pos = bisect_left(rows, row)
            if pos < len(rows) and rows[pos] == row:
                raise DeltaReplayError(
                    f"duplicate add of interval {row} for pair {key}"
                )
            rows.insert(pos, row)
        else:
            pos = bisect_left(rows, row) if rows is not None else 0
            if rows is None or pos >= len(rows) or rows[pos] != row:
                raise DeltaReplayError(
                    f"removal of absent interval {row} for pair {key}"
                )
            rows.pop(pos)
            if not rows:
                del self._rows[key]

    def apply(self, event: DeltaEvent) -> None:
        self.apply_row(event.sign, event.a_oid, event.b_oid, event.start, event.end)

    def rows(self) -> Dict[PairKey, Tuple[Row, ...]]:
        """The materialized view as exact, sorted interval rows."""
        return {key: tuple(rows) for key, rows in self._rows.items()}

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"DeltaView(pairs={len(self._rows)})"


def fold_events(source, upto: Optional[float] = None) -> DeltaView:
    """Fold an event source (ledger or merger) into a :class:`DeltaView`.

    ``source`` needs ``ticks()`` / ``events_at(t)``; a ``baseline_rows``
    attribute, when present, seeds the view (restored shards).  Ticks
    strictly after ``upto`` are skipped, so sampling the view at every
    tick of a run is one fold per sample over an already-netted stream.
    """
    baseline = getattr(source, "baseline_rows", None)
    view = DeltaView(baseline() if baseline is not None else None)
    for t in source.ticks():
        if upto is not None and t > upto:
            break
        for event in source.events_at(t):
            view.apply(event)
    return view
