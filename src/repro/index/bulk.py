"""Bulk loading of TPR-trees: sort-tile-recursive (STR) packing.

Building a tree by one-at-a-time insertion costs O(n log n) node
touches with large constants (choose-subtree integrates areas at every
level).  For the experiment harness — which builds fresh trees for
every parameter cell — bulk loading cuts construction time by an order
of magnitude and produces well-packed leaves.

The classic STR recipe is adapted to moving objects: objects are tiled
by their *mid-horizon* positions (position at ``t0 + H/2``), which
spreads velocity through the tiling the same way the TPR insertion
heuristics spread it through integrated areas.  Nodes are packed to a
configurable fill factor (default ~82%, leaving headroom for the first
updates, standard bulk-load practice).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..objects import MovingObject
from .entry import Entry
from .tpr import TPRTree
from .tprstar import TPRStarTree
from .store import TreeStorage

__all__ = ["bulk_load"]


def bulk_load(
    objects: Sequence[MovingObject],
    t0: float,
    storage: Optional[TreeStorage] = None,
    node_capacity: int = 30,
    horizon: float = 60.0,
    fill_factor: float = 0.82,
    tree_class: type = TPRStarTree,
    use_kernels: bool = True,
    compile_kernels: bool = False,
) -> TPRTree:
    """Build a packed TPR*-tree over ``objects`` as of time ``t0``.

    Returns a tree indistinguishable (API- and invariant-wise) from one
    built by repeated insertion.  ``fill_factor`` controls how full the
    packed nodes are.

    >>> from repro.workloads import uniform_workload
    >>> scenario = uniform_workload(100, seed=1)
    >>> tree = bulk_load(scenario.set_a, t0=0.0)
    >>> len(tree)
    100
    """
    if not 0.1 < fill_factor <= 1.0:
        raise ValueError("fill_factor must be in (0.1, 1.0]")
    tree = tree_class(
        storage=storage, node_capacity=node_capacity, horizon=horizon,
        use_kernels=use_kernels, compile_kernels=compile_kernels,
    )
    if not objects:
        return tree
    seen = set()
    for obj in objects:
        if obj.oid in seen:
            raise ValueError(f"duplicate object id {obj.oid}")
        seen.add(obj.oid)

    per_node = max(2, int(node_capacity * fill_factor))
    t_mid = t0 + horizon / 2

    entries = [Entry(obj.kbox, obj.oid) for obj in objects]
    level = 0
    while len(entries) > per_node:
        entries = _pack_level(tree, entries, level, per_node, t0, t_mid)
        level += 1

    # Remaining entries become the root's children (or the root itself
    # when a single packed node is left over).
    root = tree.read_node(tree.root_id)
    if level == 0:
        root.entries = entries
        tree.storage.write_node(root)
    else:
        if len(entries) == 1:
            # The single top node *is* the root.
            top = tree.read_node(entries[0].ref)
            tree.storage.free_node(root)
            tree.root_id = top.page_id
            tree.height = level
        else:
            root.level = level
            root.entries = entries
            tree.storage.write_node(root)
            tree.height = level + 1

    for obj in objects:
        tree.objects.put(obj)
    return tree


def _pack_level(
    tree: TPRTree,
    entries: List[Entry],
    level: int,
    per_node: int,
    t0: float,
    t_mid: float,
) -> List[Entry]:
    """Pack ``entries`` into nodes at ``level``; returns parent entries."""
    n = len(entries)
    n_nodes = math.ceil(n / per_node)
    n_slices = max(1, round(math.sqrt(n_nodes)))
    per_slice = math.ceil(n / n_slices)

    # STR: sort by x at mid-horizon, slice, then sort slices by y.
    entries = sorted(entries, key=lambda e: e.kbox.at(t_mid).center[0])
    groups: List[List[Entry]] = []
    for s in range(0, n, per_slice):
        chunk = sorted(
            entries[s : s + per_slice], key=lambda e: e.kbox.at(t_mid).center[1]
        )
        groups.extend(
            chunk[k : k + per_node] for k in range(0, len(chunk), per_node)
        )
    # Short groups (slice/packing remainders) would violate the
    # min-fill invariant; rebalance each against its predecessor.
    for i in range(len(groups) - 1, 0, -1):
        if len(groups[i]) < tree.min_fill:
            merged = groups[i - 1] + groups[i]
            half = len(merged) // 2
            groups[i - 1 : i + 1] = [merged[:half], merged[half:]]
    parents: List[Entry] = []
    for group in groups:
        node = tree.storage.new_node(level)
        node.entries = group
        tree.storage.write_node(node)
        parents.append(Entry(node.bound_at(t0), node.page_id))
    return parents
