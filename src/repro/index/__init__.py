"""Moving-object indexes: TPR-tree, TPR*-tree and the MTB-tree forest."""

from .bulk import bulk_load
from .codec import ENTRY_BYTES, HEADER_BYTES, NodeCodec, max_entries_for_page
from .entry import Entry
from .mtb import DEFAULT_BUCKETS_PER_TM, MTBTree
from .node import Node
from .object_table import ObjectTable
from .persistence import load_forest, load_tree, save_forest, save_tree
from .stats import TreeStats, collect_forest_stats, collect_tree_stats
from .store import TreeStorage
from .tpr import DEFAULT_HORIZON, DEFAULT_NODE_CAPACITY, TPRTree
from .tprstar import TPRStarTree

__all__ = [
    "Entry",
    "Node",
    "NodeCodec",
    "ENTRY_BYTES",
    "HEADER_BYTES",
    "max_entries_for_page",
    "ObjectTable",
    "TreeStorage",
    "TPRTree",
    "TPRStarTree",
    "MTBTree",
    "bulk_load",
    "save_tree",
    "load_tree",
    "save_forest",
    "load_forest",
    "TreeStats",
    "collect_tree_stats",
    "collect_forest_stats",
    "DEFAULT_NODE_CAPACITY",
    "DEFAULT_HORIZON",
    "DEFAULT_BUCKETS_PER_TM",
]
