"""The object table: id → stored motion parameters.

The management system "maintains the information of the objects" (§II-A):
for every object id it knows the motion parameters currently stored in
the index.  Deletions need this — an update message carries only the new
parameters, so the *old* entry can only be located from the table.  The
MTB-tree additionally records which time bucket each object currently
lives in (the paper assumes the last update timestamp is sent along with
each update; storing it here is equivalent and self-contained).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..objects import MovingObject

__all__ = ["ObjectTable"]


class ObjectTable:
    """Maps object ids to their stored version and an optional tag.

    The tag is opaque to the table; the MTB-tree stores the time-bucket
    key there, a single TPR-tree stores nothing.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: Dict[int, Tuple[MovingObject, Optional[int]]] = {}

    def put(self, obj: MovingObject, tag: Optional[int] = None) -> None:
        """Insert or overwrite the stored version of ``obj``."""
        self._rows[obj.oid] = (obj, tag)

    def get(self, oid: int) -> MovingObject:
        """The stored version of the object (KeyError when absent)."""
        return self._rows[oid][0]

    def tag(self, oid: int) -> Optional[int]:
        """The tag stored with the object (KeyError when absent)."""
        return self._rows[oid][1]

    def pop(self, oid: int) -> Tuple[MovingObject, Optional[int]]:
        """Remove and return ``(object, tag)`` (KeyError when absent)."""
        return self._rows.pop(oid)

    def __contains__(self, oid: int) -> bool:
        return oid in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def objects(self) -> Iterator[MovingObject]:
        """All stored object versions."""
        for obj, _tag in self._rows.values():
            yield obj
