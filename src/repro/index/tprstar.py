"""The TPR*-tree: improved construction heuristics over the TPR-tree.

Tao, Papadias & Sun (VLDB 2003) observed that the original TPR-tree
inherits R*-tree algorithms designed for static rectangles and proposed
a set of improvements that produce a nearly-optimal tree.  This class
layers the two improvements with the largest measured effect onto
:class:`~repro.index.tpr.TPRTree`:

* **forced reinsertion** — on the first overflow at a level, the 30% of
  entries that deviate most from the node are reinserted instead of an
  immediate split, giving entries a chance to migrate to better homes as
  the dataset's motion evolves;
* **sweep-aware split** — the split cost adds the integrated *overlap*
  of the two groups to their integrated areas, penalizing splits whose
  halves will sweep across each other during the horizon (the dominant
  cause of dead traversal in moving-object trees).

The public interface is exactly that of :class:`TPRTree`; the paper's
experiments use this variant as the underlying access method (§VI-A).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..geometry import KineticBox, intersection_interval
from .entry import Entry
from .tpr import TPRTree

__all__ = ["TPRStarTree"]

# Number of sample points used to approximate the integrated overlap of
# two candidate split groups.  The overlap of two kinetic boxes is a
# piecewise-quadratic function of time; a short Simpson-style sample is
# plenty for a split heuristic.
_OVERLAP_SAMPLES = 3


class TPRStarTree(TPRTree):
    """TPR-tree with R*-style reinsertion and overlap-aware splits."""

    reinsert_fraction = 0.3

    def _choose_split(
        self, entries: Sequence[Entry], t_now: float
    ) -> Tuple[List[Entry], List[Entry]]:
        """Split minimizing integrated area *plus* sampled integrated
        overlap of the two groups (cf. TPR*'s sweeping-region cost)."""
        t_end = t_now + self.horizon
        n = len(entries)
        lo_fill = self.min_fill
        hi_fill = n - self.min_fill
        best_cost = float("inf")
        best: Tuple[List[Entry], List[Entry]] = ([], [])
        for dim in (0, 1):
            order = sorted(
                entries,
                key=lambda e: (e.kbox.lo(dim, t_now), e.kbox.hi(dim, t_now)),
            )
            prefix = self._running_unions(order, t_now)
            suffix = self._running_unions(list(reversed(order)), t_now)
            for k in range(lo_fill, hi_fill + 1):
                g1 = prefix[k - 1]
                g2 = suffix[n - k - 1]
                cost = g1.integrated_area(t_now, t_end)
                cost += g2.integrated_area(t_now, t_end)
                cost += _sampled_overlap(g1, g2, t_now, t_end)
                if cost < best_cost:
                    best_cost = cost
                    best = (list(order[:k]), list(order[k:]))
        assert best[0], "split produced an empty group"
        return best


def _sampled_overlap(
    g1: KineticBox, g2: KineticBox, t0: float, t1: float
) -> float:
    """Approximate ``∫ overlap_area(g1(t), g2(t)) dt`` over ``[t0, t1]``.

    Returns 0 quickly when the groups never meet during the window.
    """
    if intersection_interval(g1, g2, t0, t1) is None:
        return 0.0
    step = (t1 - t0) / (_OVERLAP_SAMPLES - 1)
    total = 0.0
    for i in range(_OVERLAP_SAMPLES):
        t = t0 + i * step
        weight = 0.5 if i in (0, _OVERLAP_SAMPLES - 1) else 1.0
        total += weight * g1.at(t).overlap_area(g2.at(t))
    return total * step
