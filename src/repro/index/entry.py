"""Index entries: a kinetic bound plus a reference.

An :class:`Entry` in a *leaf* node bounds one moving object and carries
its object id; an entry in an *internal* node bounds a child node and
carries the child's page id.  In both cases the bound is a
:class:`~repro.geometry.KineticBox` — for leaves the exact object box,
for internal entries the conservative time-parameterized bound (TPR
semantics: it contains every descendant at every time at or after the
entry's reference time).
"""

from __future__ import annotations

from ..geometry import KineticBox

__all__ = ["Entry"]


class Entry:
    """A ``(kinetic box, reference)`` pair stored inside a node.

    ``ref`` is an object id when the owning node is a leaf, otherwise a
    child page id.  Entries are small mutable records — the tree rewrites
    ``kbox`` in place when tightening parent bounds.
    """

    __slots__ = ("kbox", "ref")

    def __init__(self, kbox: KineticBox, ref: int):
        self.kbox = kbox
        self.ref = int(ref)

    def __repr__(self) -> str:
        return f"Entry(ref={self.ref}, kbox={self.kbox!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return self.ref == other.ref and self.kbox == other.kbox

    def __hash__(self) -> int:
        return hash((self.ref, self.kbox))
