"""Tree nodes: one disk page holding a level and a list of entries."""

from __future__ import annotations

from typing import List, Optional

from ..geometry import KineticBox
from .entry import Entry

__all__ = ["Node"]


class Node:
    """A TPR-tree node occupying exactly one disk page.

    ``level`` is 0 for leaves and grows toward the root.  A node does not
    store its own bound — as in R-trees, the bound lives in the parent's
    entry; :meth:`bound_at` recomputes it from the children when needed
    (root bound, bound tightening, splits).
    """

    __slots__ = ("page_id", "level", "entries")

    def __init__(self, page_id: int, level: int, entries: Optional[List[Entry]] = None):
        self.page_id = int(page_id)
        self.level = int(level)
        self.entries = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def bound_at(self, t_ref: float) -> KineticBox:
        """Tight kinetic bound of all entries, referenced at ``t_ref``.

        Valid (contains every entry) for all ``t >= t_ref`` provided
        ``t_ref`` is not earlier than the entries' own reference times'
        insert times — which the tree guarantees by only tightening with
        the current timestamp.
        """
        if not self.entries:
            raise ValueError(f"node {self.page_id} has no entries to bound")
        return KineticBox.union_at(t_ref, (e.kbox for e in self.entries))

    def find_ref(self, ref: int) -> Optional[int]:
        """Index of the entry with the given reference, else ``None``."""
        for i, entry in enumerate(self.entries):
            if entry.ref == ref:
                return i
        return None

    def __repr__(self) -> str:
        return (
            f"Node(page_id={self.page_id}, level={self.level}, "
            f"entries={len(self.entries)})"
        )
