"""The MTB-tree: a forest of TPR*-trees over time buckets (paper §IV-C).

Theorem 2 says an updated object only needs joining until
``lut(otherset) + T_M``, where ``lut`` is the *latest update timestamp*
of the other set.  A single tree has one (large) ``lut``; splitting the
dataset by last-update time shrinks ``lut`` for most objects.  The
MTB-tree therefore divides the time axis into equi-length buckets
(length ``T_M / m``, with ``m = 2`` following the B^x-tree rationale)
and indexes the objects whose last update falls in bucket ``i`` in their
own TPR*-tree.  An object joining against the forest uses the horizon
``[t_c, bucket_end + T_M]`` per bucket tree — strictly tighter than the
single-tree bound for all but the current bucket.

At most ``m + 1`` buckets are ever populated: every object updates
within ``T_M``, so trees older than that drain and are dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import tracker_span
from ..objects import MovingObject
from .object_table import ObjectTable
from .store import TreeStorage
from .tpr import DEFAULT_NODE_CAPACITY, TPRTree
from .tprstar import TPRStarTree

__all__ = ["MTBTree", "DEFAULT_BUCKETS_PER_TM"]

DEFAULT_BUCKETS_PER_TM = 2


class MTBTree:
    """Multiple-time-bucket forest of TPR*-trees sharing one storage.

    Parameters
    ----------
    t_m:
        Maximum update interval ``T_M``.
    buckets_per_tm:
        ``m`` — how many buckets per ``T_M``; bucket length is ``T_M/m``.
    tree_factory:
        Constructor for bucket trees (defaults to :class:`TPRStarTree`);
        swapped in ablation benchmarks.
    use_kernels:
        Forwarded to every bucket tree: vectorized search pair tests
        (identical results, fewer Python-level calls).
    compile_kernels:
        Forwarded to every bucket tree: compiled choose-subtree cost
        grids when Numba is present (bit-identical results).
    """

    def __init__(
        self,
        t_m: float = 60.0,
        storage: Optional[TreeStorage] = None,
        buckets_per_tm: int = DEFAULT_BUCKETS_PER_TM,
        node_capacity: int = DEFAULT_NODE_CAPACITY,
        tree_factory: Callable[..., TPRTree] = TPRStarTree,
        use_kernels: bool = True,
        compile_kernels: bool = False,
    ):
        if t_m <= 0:
            raise ValueError("t_m must be positive")
        if buckets_per_tm < 1:
            raise ValueError("buckets_per_tm must be >= 1")
        self.t_m = float(t_m)
        self.bucket_length = self.t_m / buckets_per_tm
        self.storage = storage if storage is not None else TreeStorage()
        self.node_capacity = node_capacity
        self.use_kernels = use_kernels
        self.compile_kernels = compile_kernels
        self._tree_factory = tree_factory
        self._trees: Dict[int, TPRTree] = {}
        self.objects = ObjectTable()

    # ------------------------------------------------------------------
    # Bucket arithmetic
    # ------------------------------------------------------------------
    def bucket_key(self, t: float) -> int:
        """Index of the time bucket containing timestamp ``t``."""
        return int(t // self.bucket_length)

    def bucket_end(self, key: int) -> float:
        """End timestamp ``t_eb`` of bucket ``key``."""
        return (key + 1) * self.bucket_length

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, obj: MovingObject, t_now: float) -> None:
        """Index a new object in the bucket of its update time."""
        if obj.oid in self.objects:
            raise ValueError(f"object {obj.oid} already present")
        with tracker_span(self.storage.tracker, "mtb.insert"):
            key = self.bucket_key(obj.t_ref)
            self._tree_for(key).insert(obj, t_now)
            self.objects.put(obj, key)

    def delete(self, oid: int, t_now: float) -> MovingObject:
        """Remove an object from whichever bucket tree holds it."""
        with tracker_span(self.storage.tracker, "mtb.delete"):
            obj, key = self.objects.pop(oid)
            assert key is not None
            tree = self._trees[key]
            tree.delete(oid, t_now)
            if not len(tree):
                self._drop_tree(key)
        return obj

    def bulk_delete(
        self, oids: Sequence[int], t_now: float
    ) -> List[MovingObject]:
        """Remove many objects at once, one batched pass per bucket.

        Object ids are grouped by their resident bucket and each group
        goes through the tree's deferred-condense
        :meth:`~repro.index.tpr.TPRTree.delete_batch`; trees emptied by
        the batch are dropped, exactly as per-object deletion would.
        """
        removed: List[MovingObject] = []
        with tracker_span(self.storage.tracker, "mtb.bulk_delete"):
            groups: Dict[int, List[int]] = {}
            for oid in oids:
                obj, key = self.objects.pop(oid)
                assert key is not None
                groups.setdefault(key, []).append(oid)
                removed.append(obj)
            for key, group in groups.items():
                tree = self._trees[key]
                tree.delete_batch(group, t_now)
                if not len(tree):
                    self._drop_tree(key)
        return removed

    def update(self, obj: MovingObject, t_now: float) -> MovingObject:
        """Move an object from its old bucket to the current one."""
        with tracker_span(self.storage.tracker, "mtb.update"):
            old = self.delete(obj.oid, t_now)
            self.insert(obj, t_now)
        return old

    def bulk_insert(self, objs: List[MovingObject], t_now: float) -> None:
        """Insert many new objects at once, STR-packing fresh buckets.

        Objects are grouped by their update-time bucket.  A group whose
        bucket tree does not exist yet — the common group-commit case,
        where a tick's whole batch lands in the just-opened current
        bucket — is built in one :func:`~repro.index.bulk.bulk_load`
        STR pass instead of one choose-subtree descent per object;
        groups targeting a populated tree go through the tree's guided
        :meth:`~repro.index.tpr.TPRTree.insert_batch` (one vectorized
        cost grid per visited node).  Resulting forest contents are
        identical either way.
        """
        from .bulk import bulk_load

        groups: Dict[int, List[MovingObject]] = {}
        for obj in objs:
            if obj.oid in self.objects:
                raise ValueError(f"object {obj.oid} already present")
            groups.setdefault(self.bucket_key(obj.t_ref), []).append(obj)
        with tracker_span(self.storage.tracker, "mtb.bulk_insert"):
            for key, group in groups.items():
                if key not in self._trees and len(group) > 1:
                    self._trees[key] = bulk_load(
                        group,
                        t0=t_now,
                        storage=self.storage,
                        node_capacity=self.node_capacity,
                        horizon=self.t_m,
                        tree_class=self._tree_factory,
                        use_kernels=self.use_kernels,
                        compile_kernels=self.compile_kernels,
                    )
                else:
                    self._tree_for(key).insert_batch(group, t_now)
                for obj in group:
                    self.objects.put(obj, key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    @property
    def num_buckets(self) -> int:
        """Number of currently populated bucket trees."""
        return len(self._trees)

    def trees(self) -> Iterator[Tuple[int, float, TPRTree]]:
        """``(bucket key, bucket end t_eb, tree)`` in bucket order."""
        for key in sorted(self._trees):
            yield key, self.bucket_end(key), self._trees[key]

    def all_objects(self) -> List[MovingObject]:
        return list(self.objects.objects())

    def validate(self, t_now: float) -> None:
        """Check every bucket tree plus forest-level bookkeeping.

        Delegates to :func:`repro.check.sanitize.check_mtb_forest` and
        raises :class:`~repro.check.errors.InvariantViolation` (an
        ``AssertionError`` carrying SC-coded findings) on corruption.
        """
        from ..check.sanitize import check_mtb_forest, raise_on_findings

        raise_on_findings(check_mtb_forest(self, t_now))

    # ------------------------------------------------------------------
    def _tree_for(self, key: int) -> TPRTree:
        tree = self._trees.get(key)
        if tree is None:
            tree = self._tree_factory(
                storage=self.storage,
                node_capacity=self.node_capacity,
                horizon=self.t_m,
                use_kernels=self.use_kernels,
                compile_kernels=self.compile_kernels,
            )
            self._trees[key] = tree
        return tree

    def _drop_tree(self, key: int) -> None:
        tree = self._trees.pop(key)
        for node in list(tree.iter_nodes()):
            tree.storage.free_node(node)

    def __repr__(self) -> str:
        return (
            f"MTBTree(n={len(self)}, buckets={sorted(self._trees)}, "
            f"bucket_length={self.bucket_length:g}, t_m={self.t_m:g})"
        )
