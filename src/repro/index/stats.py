"""Index introspection: occupancy, overlap and quality statistics.

Used by the ablation benches and handy when tuning node capacity or
bucket granularity on a new workload.  All metrics are computed from a
full traversal, so collecting them costs I/O — call on diagnostics
paths only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .mtb import MTBTree
from .tpr import TPRTree

__all__ = ["TreeStats", "collect_tree_stats", "collect_forest_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Aggregate structural statistics of one tree."""

    height: int
    node_count: int
    leaf_count: int
    entry_count: int
    object_count: int
    avg_leaf_fill: float
    avg_internal_fill: float
    #: Total pairwise overlap area between sibling bounds at ``t_eval``,
    #: the classic R-tree quality metric (lower is better).
    sibling_overlap_area: float
    #: Sum of bound areas per level at ``t_eval``.
    area_by_level: Dict[int, float]

    @property
    def avg_fanout(self) -> float:
        return self.entry_count / self.node_count if self.node_count else 0.0


def collect_tree_stats(tree: TPRTree, t_eval: float) -> TreeStats:
    """Walk ``tree`` and compute :class:`TreeStats` at time ``t_eval``.

    >>> from repro.workloads import uniform_workload
    >>> from repro.index import TPRStarTree
    >>> tree = TPRStarTree()
    >>> for obj in uniform_workload(60, seed=0).set_a:
    ...     tree.insert(obj, 0.0)
    >>> stats = collect_tree_stats(tree, 0.0)
    >>> stats.object_count
    60
    """
    node_count = 0
    leaf_count = 0
    entry_count = 0
    leaf_fills: List[float] = []
    internal_fills: List[float] = []
    overlap = 0.0
    area_by_level: Dict[int, float] = {}

    for node in tree.iter_nodes():
        node_count += 1
        entry_count += len(node.entries)
        fill = len(node.entries) / tree.node_capacity
        if node.is_leaf:
            leaf_count += 1
            leaf_fills.append(fill)
        else:
            internal_fills.append(fill)
        boxes = [entry.kbox.at(t_eval) for entry in node.entries]
        area_by_level[node.level] = area_by_level.get(node.level, 0.0) + sum(
            b.area for b in boxes
        )
        if not node.is_leaf:
            for i, bi in enumerate(boxes):
                for bj in boxes[i + 1 :]:
                    overlap += bi.overlap_area(bj)

    return TreeStats(
        height=tree.height,
        node_count=node_count,
        leaf_count=leaf_count,
        entry_count=entry_count,
        object_count=len(tree),
        avg_leaf_fill=sum(leaf_fills) / len(leaf_fills) if leaf_fills else 0.0,
        avg_internal_fill=(
            sum(internal_fills) / len(internal_fills) if internal_fills else 0.0
        ),
        sibling_overlap_area=overlap,
        area_by_level=area_by_level,
    )


def collect_forest_stats(forest: MTBTree, t_eval: float) -> Dict[int, TreeStats]:
    """Per-bucket statistics of an MTB forest."""
    return {
        key: collect_tree_stats(tree, t_eval)
        for key, _end, tree in forest.trees()
    }
