"""Shared storage binding for trees: disk + buffer + cost tracker.

Several trees can share one :class:`TreeStorage` — the MTB-tree's bucket
trees all live on the same simulated disk behind the same LRU buffer, as
do the two datasets' trees in the paper's experiments (one 50-page buffer
for the whole system, §VI-A).
"""

from __future__ import annotations

from typing import Optional

from ..metrics import CostTracker
from ..storage import (
    DEFAULT_BUFFER_PAGES,
    DEFAULT_PAGE_SIZE,
    BufferPool,
    DiskManager,
)
from .codec import NodeCodec, max_entries_for_page
from .node import Node

__all__ = ["TreeStorage"]


class TreeStorage:
    """One simulated disk + LRU buffer + cost tracker for node pages."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        tracker: Optional[CostTracker] = None,
    ):
        self.tracker = tracker if tracker is not None else CostTracker()
        self.disk = DiskManager(page_size, self.tracker)
        self.buffer: BufferPool[Node] = BufferPool(
            self.disk, NodeCodec(), buffer_pages
        )

    @property
    def page_size(self) -> int:
        return self.disk.page_size

    def max_node_capacity(self) -> int:
        """Largest node fan-out that still fits one page."""
        return max_entries_for_page(self.page_size)

    def read_node(self, page_id: int) -> Node:
        """Fetch a node (through the buffer) and count the visit."""
        self.tracker.count_node_visit()
        return self.buffer.get(page_id)

    def write_node(self, node: Node) -> None:
        """Install a (new or mutated) node into the buffer, dirty."""
        self.buffer.put(node.page_id, node)

    def new_node(self, level: int) -> Node:
        """Allocate a page and return an empty node for it."""
        node = Node(self.disk.allocate(), level)
        self.write_node(node)
        return node

    def free_node(self, node: Node) -> None:
        """Drop a node from buffer and disk."""
        self.buffer.discard(node.page_id)
        self.disk.deallocate(node.page_id)

    def __repr__(self) -> str:
        return f"TreeStorage(disk={self.disk!r}, buffer={self.buffer!r})"
