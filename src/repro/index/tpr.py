"""The TPR-tree: a time-parameterized R-tree for moving objects.

Follows Šaltenis et al. (SIGMOD 2000): an R-tree whose node regions are
kinetic boxes (MBR + VBR at a reference time) that conservatively bound
their children at all times at or after the reference time.  Insertion
heuristics minimize *integrated* metrics over a horizon ``H`` — the area
the bound sweeps between now and ``now + H`` — instead of instantaneous
area.  Bounds are tightened to the current timestamp whenever a path is
written.

The TPR*-tree variant (:mod:`repro.index.tprstar`) layers R*-style
forced reinsertion and a richer split cost on top of this class.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..geometry import INF, KineticBox, TimeInterval, intersection_interval, kernels
from ..geometry.constants import CONTAIN_EPS as _CONTAIN_EPS
from ..obs import tracker_span
from ..objects import MovingObject
from .entry import Entry
from .node import Node
from .object_table import ObjectTable
from .store import TreeStorage

__all__ = [
    "TPRTree",
    "DEFAULT_NODE_CAPACITY",
    "DEFAULT_HORIZON",
    "INSERT_BATCH_MIN",
]

DEFAULT_NODE_CAPACITY = 30
DEFAULT_HORIZON = 60.0

#: Minimum batch size for the shared-descent group insert to beat the
#: per-object loop (one cost-grid kernel call per visited node has to
#: amortize the SoA pack of that node's entries).
INSERT_BATCH_MIN = 4


class TPRTree:
    """A disk-resident TPR-tree over :class:`~repro.objects.MovingObject`.

    Parameters
    ----------
    storage:
        Shared disk/buffer/tracker binding; a private one is created when
        omitted.
    node_capacity:
        Maximum entries per node (page capacity permitting).
    horizon:
        Lookahead ``H`` for integrated-cost insertion heuristics.  The
        natural choice is the maximum update interval ``T_M``.
    min_fill_ratio:
        Underflow threshold as a fraction of capacity.
    use_kernels:
        Route :meth:`search` pair tests through the vectorized NumPy
        kernels (one call per node instead of one per entry).  Results
        are identical to the scalar path; the flag exists for ablation
        and as a fallback when NumPy is missing.
    compile_kernels:
        Route the batched choose-subtree cost grids through the
        optional Numba backend (:mod:`repro.geometry.compiled`).
        Bit-identical outputs; silently stays on NumPy when Numba is
        absent.
    """

    #: Subclasses may enable R*-style forced reinsertion.
    reinsert_fraction: float = 0.0

    def __init__(
        self,
        storage: Optional[TreeStorage] = None,
        node_capacity: int = DEFAULT_NODE_CAPACITY,
        horizon: float = DEFAULT_HORIZON,
        min_fill_ratio: float = 0.4,
        use_kernels: bool = True,
        compile_kernels: bool = False,
    ):
        self.storage = storage if storage is not None else TreeStorage()
        max_cap = self.storage.max_node_capacity()
        if node_capacity > max_cap:
            raise ValueError(
                f"node_capacity {node_capacity} exceeds page capacity {max_cap}"
            )
        if node_capacity < 4:
            raise ValueError("node_capacity must be at least 4")
        if not 0.0 < min_fill_ratio <= 0.5:
            raise ValueError("min_fill_ratio must be in (0, 0.5]")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.node_capacity = node_capacity
        self.horizon = float(horizon)
        self.use_kernels = bool(use_kernels) and kernels.HAVE_NUMPY
        self.compile_kernels = bool(compile_kernels)
        self._backend = None
        if self.compile_kernels:
            from ..geometry import compiled

            # None when Numba is absent: the documented silent fallback.
            self._backend = compiled.get_backend()
        self.min_fill = max(1, int(node_capacity * min_fill_ratio))
        self.objects = ObjectTable()
        root = self.storage.new_node(level=0)
        self.root_id = root.page_id
        self.height = 1
        # Diagnostics: number of deletions where the guided search failed
        # and the exhaustive fallback ran (should stay 0).
        self.guided_delete_misses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    def insert(self, obj: MovingObject, t_now: float) -> None:
        """Insert a new object as of timestamp ``t_now``."""
        if obj.oid in self.objects:
            raise ValueError(f"object {obj.oid} already present")
        with tracker_span(self.storage.tracker, "tpr.insert"):
            self.objects.put(obj)
            self._insert_entry(Entry(obj.kbox, obj.oid), 0, t_now, set())

    def insert_batch(self, objs: Sequence[MovingObject], t_now: float) -> None:
        """Insert many objects as of ``t_now`` in one guided pass.

        Choose-subtree decisions for the whole batch are computed
        against the pre-batch node bounds with one vectorized
        :func:`~repro.geometry.kernels.batch_insertion_costs` grid per
        visited internal node, instead of one scalar enlargement
        integral per (entry, object).  Entries are then installed one
        at a time along their recorded page-id route, reusing the
        standard overflow/split/bound-tightening machinery, so every
        structural invariant of :meth:`insert` holds afterwards.

        The resulting tree may *route* objects differently than a
        sequential insert loop would (decisions do not see earlier
        batch members' bound enlargements), which changes tree shape
        only — search answers are independent of shape.
        """
        objs = list(objs)
        seen: Set[int] = set()
        for obj in objs:
            if obj.oid in self.objects or obj.oid in seen:
                raise ValueError(f"object {obj.oid} already present")
            seen.add(obj.oid)
        if (
            not self.use_kernels
            or len(objs) < INSERT_BATCH_MIN
            or self.height == 1
        ):
            for obj in objs:
                self.insert(obj, t_now)
            return
        with tracker_span(self.storage.tracker, "tpr.insert_batch"):
            for obj in objs:
                self.objects.put(obj)
            self._install_batch(
                [Entry(obj.kbox, obj.oid) for obj in objs], t_now
            )

    def _install_batch(self, entries: Sequence[Entry], t_now: float) -> None:
        """Install leaf entries along shared vectorized-descent routes.

        Entries sharing a route land on their leaf together, and the
        ancestor bound-tightening that :meth:`_insert_entry` pays per
        object runs once per touched node in a deferred bottom-up pass
        (the insert-side mirror of :meth:`delete_batch`'s condense).
        All reads go through a per-batch page cache so exactly one
        live instance per page is mutated.  Any structural event — a
        leaf filling up, or a route invalidated by an earlier split —
        first flushes the pending tightenings, then falls back to the
        standard :meth:`_insert_entry` machinery, so ancestor bounds
        are conservative whenever splits or R* reinserts look at them.
        """
        routes = self._route_batch([entry.kbox for entry in entries], t_now)
        groups: Dict[Tuple[int, ...], List[Entry]] = {}
        for entry, route in zip(entries, routes):
            groups.setdefault(tuple(route), []).append(entry)

        cache: Dict[int, Node] = {}

        def load(page_id: int) -> Node:
            node = cache.get(page_id)
            if node is None:
                node = self.read_node(page_id)
                cache[page_id] = node
            return node

        touched: List[List[Tuple[Node, Optional[int]]]] = []

        def flush() -> None:
            self._tighten_paths(touched, t_now)
            touched.clear()
            cache.clear()

        for route, group in groups.items():
            path = self._walk_route(route, load)
            if path is None:
                # A split during this batch moved the routed child (or
                # grew the root); fall back to full descents.
                flush()
                for entry in group:
                    self._insert_entry(entry, 0, t_now, set())
                continue
            leaf = path[-1][0]
            room = self.node_capacity - len(leaf.entries)
            fits, spill = group[:room], group[room:]
            if fits:
                leaf.entries.extend(fits)
                self.storage.write_node(leaf)
                touched.append(path)
            if spill:
                # The next entry overflows the leaf: bounds must be
                # consistent before split/reinsert machinery runs.
                flush()
                leaf.entries.append(spill[0])
                self.storage.write_node(leaf)
                self._propagate_up(list(path[:-1]), leaf, t_now, set())
                for entry in spill[1:]:
                    self._insert_entry(entry, 0, t_now, set())
        flush()

    def _walk_route(
        self, route: Sequence[int], read
    ) -> Optional[List[Tuple[Node, Optional[int]]]]:
        """Root-to-leaf frames for a page-id route; ``None`` when the
        route no longer matches the tree (caller re-descends)."""
        path: List[Tuple[Node, Optional[int]]] = []
        node = read(self.root_id)
        for ref in route:
            if node.is_leaf:
                return None
            idx = next(
                (i for i, e in enumerate(node.entries) if e.ref == ref), None
            )
            if idx is None:
                return None
            path.append((node, idx))
            node = read(ref)
        if not node.is_leaf:
            return None
        path.append((node, None))
        return path

    def _tighten_paths(
        self, paths: List[List[Tuple[Node, Optional[int]]]], t_now: float
    ) -> None:
        """One bottom-up bound-tightening pass over freshly filled paths."""
        frames: Dict[int, Tuple[Node, Node]] = {}
        for path in paths:
            for depth in range(len(path) - 1, 0, -1):
                node = path[depth][0]
                if node.page_id not in frames:
                    frames[node.page_id] = (node, path[depth - 1][0])
        # Children before parents, so a parent re-bounds over
        # already-tightened child bounds.
        for node, parent in sorted(
            frames.values(), key=lambda frame: frame[0].level
        ):
            idx = parent.find_ref(node.page_id)
            assert idx is not None, "structural change without flush"
            parent.entries[idx].kbox = node.bound_at(t_now)
            self.storage.write_node(parent)

    def _route_batch(
        self, kboxes: Sequence[KineticBox], t_now: float
    ) -> List[List[int]]:
        """Leaf routes (page-id chains) for a batch, one grid per node."""
        np = kernels.np
        t_end = t_now + self.horizon
        obatch = kernels.KineticBatch.from_boxes(kboxes)
        routes: List[List[int]] = [[] for _ in kboxes]
        stack: List[Tuple[int, "np.ndarray"]] = [
            (self.root_id, np.arange(len(kboxes)))
        ]
        while stack:
            page_id, active = stack.pop()
            node = self.read_node(page_id)
            enlargements, areas = kernels.batch_insertion_costs(
                kernels.KineticBatch.from_entries(node.entries),
                obatch.compress(active),
                t_now,
                t_end,
                backend=self._backend,
            )
            chosen = np.empty(len(active), dtype=np.intp)
            for col in range(len(active)):
                column = enlargements[:, col]
                ties = np.nonzero(column == column.min())[0]
                # argmin is first-occurrence, matching _choose_child's
                # strict-< scan for both keys of the lexicographic cost.
                best = ties[np.argmin(areas[ties])] if len(ties) > 1 else ties[0]
                chosen[col] = best
                routes[int(active[col])].append(node.entries[int(best)].ref)
            if node.level > 1:
                for child_pos in np.unique(chosen):
                    stack.append((
                        node.entries[int(child_pos)].ref,
                        active[chosen == child_pos],
                    ))
        return routes

    def delete(self, oid: int, t_now: float) -> MovingObject:
        """Remove an object; returns the stored version."""
        with tracker_span(self.storage.tracker, "tpr.delete"):
            obj, _tag = self.objects.pop(oid)
            self._delete_entry(obj, t_now)
        return obj

    def delete_batch(
        self, oids: Sequence[int], t_now: float
    ) -> List[MovingObject]:
        """Remove many objects as of ``t_now`` with one CondenseTree pass.

        Entries are located and removed first — path finds share a
        per-batch page cache, so every node is materialized exactly
        once for the whole batch — and the bound-tightening / underflow
        walk then visits each touched node once, bottom-up, instead of
        once per deleted object.  Underflow is resolved against the
        batch-final occupancy, so the tree *shape* can differ from
        sequential deletion (a node that dips below ``min_fill``
        transiently is not dissolved); the structural invariants and
        all search answers are the same either way.
        """
        oids = list(oids)
        if len(oids) < 2:
            return [self.delete(oid, t_now) for oid in oids]
        removed: List[MovingObject] = []
        with tracker_span(self.storage.tracker, "tpr.delete_batch"):
            cache: Dict[int, Node] = {}

            def load(page_id: int) -> Node:
                node = cache.get(page_id)
                if node is None:
                    node = self.read_node(page_id)
                    cache[page_id] = node
                return node

            touched: Dict[int, List[Tuple[Node, Optional[int]]]] = {}
            for oid in oids:
                obj, _tag = self.objects.pop(oid)
                removed.append(obj)
                path = self._find_leaf_path(obj, t_now, read=load)
                if path is None:
                    self.guided_delete_misses += 1
                    path = self._find_leaf_path_exhaustive(oid, read=load)
                    if path is None:
                        raise KeyError(f"object {oid} not found in tree")
                leaf = path[-1][0]
                idx = leaf.find_ref(oid)
                assert idx is not None
                del leaf.entries[idx]
                self.storage.write_node(leaf)
                touched[leaf.page_id] = path
            self._condense_batch(list(touched.values()), t_now)
        return removed

    def _condense_batch(
        self, paths: List[List[Tuple[Node, Optional[int]]]], t_now: float
    ) -> None:
        """CondenseTree over several leaf paths at once: every touched
        node is dissolved or re-bounded exactly once, deepest first."""
        frames: Dict[int, Tuple[Node, Node]] = {}
        for path in paths:
            for depth in range(len(path) - 1, 0, -1):
                node = path[depth][0]
                if node.page_id not in frames:
                    frames[node.page_id] = (node, path[depth - 1][0])
        orphans: List[Tuple[Entry, int]] = []
        # Children before parents, so a parent sees its final occupancy
        # (child dissolutions remove entries from it) and re-bounds over
        # already-tightened child bounds.
        for node, parent in sorted(
            frames.values(), key=lambda frame: frame[0].level
        ):
            idx = parent.find_ref(node.page_id)
            assert idx is not None, "parent processed before child"
            if len(node.entries) < self.min_fill:
                del parent.entries[idx]
                orphans.extend((entry, node.level) for entry in node.entries)
                self.storage.free_node(node)
            else:
                parent.entries[idx].kbox = node.bound_at(t_now)
                self.storage.write_node(node)
            self.storage.write_node(parent)
        root = self.read_node(self.root_id)
        if not root.is_leaf and not root.entries:
            # The batch dissolved every subtree under the root — a state
            # sequential deletion never reaches (orphan reinsertion
            # refills the root between deletes).  Restart the tree at
            # the tallest orphaned subtrees and insert the rest into it.
            self.storage.free_node(root)
            top = max((level for _entry, level in orphans), default=0)
            new_root = self.storage.new_node(top)
            self.storage.write_node(new_root)
            self.root_id = new_root.page_id
            self.height = top + 1
            for entry, level in sorted(orphans, key=lambda o: -o[1]):
                self._insert_entry(entry, level, t_now, set())
        else:
            self._shrink_root()
            leaf_orphans: List[Entry] = []
            for entry, level in orphans:
                if level == 0:
                    leaf_orphans.append(entry)
                else:
                    self._insert_entry(entry, level, t_now, set())
            if (
                self.use_kernels
                and len(leaf_orphans) >= INSERT_BATCH_MIN
                and self.height > 1
            ):
                self._install_batch(leaf_orphans, t_now)
            else:
                for entry in leaf_orphans:
                    self._insert_entry(entry, 0, t_now, set())
        self._shrink_root()

    def update(self, obj: MovingObject, t_now: float) -> MovingObject:
        """Replace an object's motion parameters (delete + insert)."""
        with tracker_span(self.storage.tracker, "tpr.update"):
            old = self.delete(obj.oid, t_now)
            self.objects.put(obj)
            self._insert_entry(Entry(obj.kbox, obj.oid), 0, t_now, set())
        return old

    def search(
        self, region: KineticBox, t0: float, t1: float = INF
    ) -> List[Tuple[int, TimeInterval]]:
        """Objects whose MBR intersects a (moving) region during ``[t0, t1]``.

        Returns ``(oid, interval)`` pairs with the exact overlap interval
        clipped to the window.  With ``use_kernels`` each visited node's
        entries are tested against the region in a single vectorized
        call; the answer is identical to the scalar per-entry loop.
        """
        results: List[Tuple[int, TimeInterval]] = []
        stack = [self.root_id]
        tracker = self.storage.tracker
        use_k = self.use_kernels
        with tracker_span(tracker, "tpr.search"):
            self._search_into(stack, region, t0, t1, tracker, use_k, results)
        return results

    def _search_into(
        self,
        stack: List[int],
        region: KineticBox,
        t0: float,
        t1: float,
        tracker,
        use_k: bool,
        results: List[Tuple[int, TimeInterval]],
    ) -> None:
        while stack:
            node = self.read_node(stack.pop())
            entries = node.entries
            if use_k and len(entries) >= kernels.PROBE_BATCH_MIN:
                tracker.count_pair_tests(len(entries))
                lo, hi, ok = kernels.batch_probe_windows(
                    kernels.KineticBatch.from_entries(entries), region, t0, t1
                )
                for idx in kernels.np.nonzero(ok)[0].tolist():
                    if node.is_leaf:
                        results.append(
                            (entries[idx].ref, TimeInterval(lo[idx], hi[idx]))
                        )
                    else:
                        stack.append(entries[idx].ref)
                continue
            for entry in entries:
                tracker.count_pair_tests()
                interval = intersection_interval(entry.kbox, region, t0, t1)
                if interval is None:
                    continue
                if node.is_leaf:
                    results.append((entry.ref, interval))
                else:
                    stack.append(entry.ref)

    def search_batch(
        self, regions: Sequence[KineticBox], t0: float, t1: float = INF
    ) -> List[List[Tuple[int, TimeInterval]]]:
        """Answer many probe regions in one shared descent.

        Returns one ``(oid, interval)`` result list per region, equal
        (as a set, per region) to ``self.search(region, t0, t1)``.  All
        still-active probes test a visited node's entries in a single
        ``batch_intersection_intervals`` grid call, so a node read and
        its SoA packing are shared across the whole probe batch instead
        of being repeated per probe; intervals are bit-identical to the
        scalar path.  Falls back to per-region :meth:`search` when
        kernels are off or there is nothing to share.
        """
        results: List[List[Tuple[int, TimeInterval]]] = [[] for _ in regions]
        n = len(regions)
        if n == 0:
            return results
        if not self.use_kernels or n == 1:
            for j, region in enumerate(regions):
                results[j] = self.search(region, t0, t1)
            return results
        np = kernels.np
        qbatch = kernels.KineticBatch.from_boxes(regions)
        tracker = self.storage.tracker
        stack: List[Tuple[int, "np.ndarray"]] = [(self.root_id, np.arange(n))]
        with tracker_span(tracker, "tpr.search_batch"):
            while stack:
                page_id, active = stack.pop()
                node = self.read_node(page_id)
                entries = node.entries
                if not entries:
                    continue
                tracker.count_pair_tests(len(entries) * len(active))
                if len(active) == 1 and len(entries) < kernels.PROBE_BATCH_MIN:
                    # A lone probe over a small node: the scalar inner
                    # loop beats packing a 1-column grid.
                    j = int(active[0])
                    region = regions[j]
                    bucket = results[j]
                    for entry in entries:
                        interval = intersection_interval(
                            entry.kbox, region, t0, t1
                        )
                        if interval is None:
                            continue
                        if node.is_leaf:
                            bucket.append((entry.ref, interval))
                        else:
                            stack.append((entry.ref, active))
                    continue
                lo, hi, ok = kernels.batch_intersection_intervals(
                    kernels.KineticBatch.from_entries(entries),
                    qbatch.compress(active),
                    t0,
                    t1,
                )
                if node.is_leaf:
                    for i, j in zip(*np.nonzero(ok)):
                        results[int(active[j])].append(
                            (entries[i].ref, TimeInterval(lo[i, j], hi[i, j]))
                        )
                else:
                    for i, entry in enumerate(entries):
                        child_active = active[ok[i]]
                        if child_active.size:
                            stack.append((entry.ref, child_active))
        return results

    def all_objects(self) -> List[MovingObject]:
        """Stored versions of every object (table order)."""
        return list(self.objects.objects())

    def root_node(self) -> Node:
        return self.read_node(self.root_id)

    def read_node(self, page_id: int) -> Node:
        """Read a node through the buffer (counts a node visit)."""
        return self.storage.read_node(page_id)

    def iter_nodes(self) -> Iterator[Node]:
        """Depth-first iteration over all nodes (diagnostics/tests)."""
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(entry.ref for entry in node.entries)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _insert_entry(
        self,
        entry: Entry,
        target_level: int,
        t_now: float,
        reinserted_levels: Set[int],
    ) -> None:
        """Insert ``entry`` at ``target_level``, splitting/reinserting as
        needed.  ``reinserted_levels`` tracks the R* once-per-level rule
        within one logical insertion."""
        path: List[Tuple[Node, int]] = []
        node = self.read_node(self.root_id)
        while node.level > target_level:
            idx = self._choose_child(node, entry.kbox, t_now)
            path.append((node, idx))
            node = self.read_node(node.entries[idx].ref)
        node.entries.append(entry)
        self.storage.write_node(node)
        self._propagate_up(path, node, t_now, reinserted_levels)

    def _propagate_up(
        self,
        path: List[Tuple[Node, int]],
        node: Node,
        t_now: float,
        reinserted_levels: Set[int],
    ) -> None:
        """Handle overflow of ``node`` and tighten bounds along ``path``."""
        overflow_entry: Optional[Entry] = None
        pending_reinserts: List[Tuple[Entry, int]] = []
        if len(node.entries) > self.node_capacity:
            can_reinsert = (
                self.reinsert_fraction > 0.0
                and node.level not in reinserted_levels
                and node.page_id != self.root_id
            )
            if can_reinsert:
                reinserted_levels.add(node.level)
                for evicted in self._pick_reinsert_victims(node, t_now):
                    pending_reinserts.append((evicted, node.level))
                self.storage.write_node(node)
            else:
                overflow_entry = self._split(node, t_now)

        # Tighten ancestor bounds bottom-up, inserting any split entry.
        child = node
        for parent, idx in reversed(path):
            parent.entries[idx].kbox = child.bound_at(t_now)
            if overflow_entry is not None:
                parent.entries.append(overflow_entry)
                overflow_entry = None
                if len(parent.entries) > self.node_capacity:
                    overflow_entry = self._split(parent, t_now)
            self.storage.write_node(parent)
            child = parent

        if overflow_entry is not None:
            self._grow_root(child, overflow_entry, t_now)

        for evicted, level in pending_reinserts:
            self._insert_entry(evicted, level, t_now, reinserted_levels)

    def _grow_root(self, old_root: Node, sibling_entry: Entry, t_now: float) -> None:
        """The root split: create a new root one level up."""
        new_root = self.storage.new_node(old_root.level + 1)
        new_root.entries.append(Entry(old_root.bound_at(t_now), old_root.page_id))
        new_root.entries.append(sibling_entry)
        self.storage.write_node(new_root)
        self.root_id = new_root.page_id
        self.height += 1

    def _choose_child(self, node: Node, kbox: KineticBox, t_now: float) -> int:
        """Child minimizing integrated enlargement over ``[t_now, t_now+H]``,
        ties broken by smaller integrated area."""
        t_end = t_now + self.horizon
        best_idx = 0
        best_cost: Tuple[float, float] = (float("inf"), float("inf"))
        for idx, entry in enumerate(node.entries):
            enlargement = entry.kbox.integrated_union_enlargement(kbox, t_now, t_end)
            area = entry.kbox.integrated_area(t_now, t_end)
            cost = (enlargement, area)
            if cost < best_cost:
                best_cost = cost
                best_idx = idx
        return best_idx

    def _pick_reinsert_victims(self, node: Node, t_now: float) -> List[Entry]:
        """Remove and return the R* reinsertion set: the fraction of
        entries whose centers (at mid-horizon) are farthest from the node
        center."""
        t_mid = t_now + self.horizon / 2
        center = node.bound_at(t_now).at(t_mid).center

        def distance(entry: Entry) -> float:
            cx, cy = entry.kbox.at(t_mid).center
            return (cx - center[0]) ** 2 + (cy - center[1]) ** 2

        count = max(1, int(len(node.entries) * self.reinsert_fraction))
        ranked = sorted(node.entries, key=distance, reverse=True)
        victims = ranked[:count]
        node.entries = ranked[count:]
        return victims

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _split(self, node: Node, t_now: float) -> Entry:
        """Split an overflowing node in place; returns the entry for the
        new sibling (not yet installed in the parent)."""
        group1, group2 = self._choose_split(node.entries, t_now)
        node.entries = group1
        self.storage.write_node(node)
        sibling = self.storage.new_node(node.level)
        sibling.entries = group2
        self.storage.write_node(sibling)
        return Entry(sibling.bound_at(t_now), sibling.page_id)

    def _choose_split(
        self, entries: Sequence[Entry], t_now: float
    ) -> Tuple[List[Entry], List[Entry]]:
        """Pick the split axis and index minimizing the summed integrated
        area of the two groups (the kinetic analogue of the R* area
        criterion), evaluated via prefix/suffix unions in O(n) per axis."""
        t_end = t_now + self.horizon
        n = len(entries)
        lo_fill = self.min_fill
        hi_fill = n - self.min_fill
        best_cost = float("inf")
        best: Optional[Tuple[List[Entry], List[Entry]]] = None
        for dim in (0, 1):
            order = sorted(
                entries,
                key=lambda e: (e.kbox.lo(dim, t_now), e.kbox.hi(dim, t_now)),
            )
            prefix = self._running_unions(order, t_now)
            suffix = self._running_unions(list(reversed(order)), t_now)
            for k in range(lo_fill, hi_fill + 1):
                cost = prefix[k - 1].integrated_area(t_now, t_end) + suffix[
                    n - k - 1
                ].integrated_area(t_now, t_end)
                if cost < best_cost:
                    best_cost = cost
                    best = (list(order[:k]), list(order[k:]))
        assert best is not None
        return best

    @staticmethod
    def _running_unions(order: Sequence[Entry], t_ref: float) -> List[KineticBox]:
        """``result[i]`` bounds ``order[:i+1]``, all referenced at ``t_ref``."""
        unions: List[KineticBox] = []
        current: Optional[KineticBox] = None
        for entry in order:
            if current is None:
                current = entry.kbox.with_reference(t_ref)
            else:
                current = KineticBox.union_at(t_ref, (current, entry.kbox))
            unions.append(current)
        return unions

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def _delete_entry(self, obj: MovingObject, t_now: float) -> None:
        path = self._find_leaf_path(obj, t_now)
        if path is None:
            # Guided search lost the trail (should not happen; kept as a
            # correctness backstop against floating-point corner cases).
            self.guided_delete_misses += 1
            path = self._find_leaf_path_exhaustive(obj.oid)
            if path is None:
                raise KeyError(f"object {obj.oid} not found in tree")
        leaf = path[-1][0]
        idx = leaf.find_ref(obj.oid)
        assert idx is not None
        del leaf.entries[idx]
        self.storage.write_node(leaf)
        self._condense(path, t_now)

    def _find_leaf_path(
        self, obj: MovingObject, t_now: float, read=None
    ) -> Optional[List[Tuple[Node, Optional[int]]]]:
        """DFS guided by kinetic containment; returns the node path as
        ``(node, child_idx)`` frames ending with ``(leaf, None)``.

        ``read`` overrides the page loader (batch deletion passes a
        per-batch cache so every page maps to one live instance)."""
        target = obj.kbox
        read = self.read_node if read is None else read

        def descend(page_id: int) -> Optional[List[Tuple[Node, Optional[int]]]]:
            node = read(page_id)
            if node.is_leaf:
                if node.find_ref(obj.oid) is not None:
                    return [(node, None)]
                return None
            for idx, entry in enumerate(node.entries):
                if self._could_contain(entry.kbox, target, t_now):
                    sub = descend(entry.ref)
                    if sub is not None:
                        return [(node, idx)] + sub
            return None

        return descend(self.root_id)

    def _find_leaf_path_exhaustive(
        self, oid: int, read=None
    ) -> Optional[List[Tuple[Node, Optional[int]]]]:
        read = self.read_node if read is None else read

        def descend(page_id: int) -> Optional[List[Tuple[Node, Optional[int]]]]:
            node = read(page_id)
            if node.is_leaf:
                if node.find_ref(oid) is not None:
                    return [(node, None)]
                return None
            for idx, entry in enumerate(node.entries):
                sub = descend(entry.ref)
                if sub is not None:
                    return [(node, idx)] + sub
            return None

        return descend(self.root_id)

    @staticmethod
    def _could_contain(bound: KineticBox, target: KineticBox, t_now: float) -> bool:
        """Conservative test that ``bound`` may contain ``target`` from
        ``t_now`` on: positional containment at ``t_now`` plus velocity
        containment, each with a small tolerance."""
        b = bound.at(t_now)
        o = target.at(t_now)
        eps = _CONTAIN_EPS
        if not (
            b.x_lo <= o.x_lo + eps
            and o.x_hi <= b.x_hi + eps
            and b.y_lo <= o.y_lo + eps
            and o.y_hi <= b.y_hi + eps
        ):
            return False
        bv, ov = bound.vbr, target.vbr
        return (
            bv.x_lo <= ov.x_lo + eps
            and ov.x_hi <= bv.x_hi + eps
            and bv.y_lo <= ov.y_lo + eps
            and ov.y_hi <= bv.y_hi + eps
        )

    def _condense(
        self, path: List[Tuple[Node, Optional[int]]], t_now: float
    ) -> None:
        """R-tree CondenseTree: dissolve underfull nodes bottom-up,
        reinsert orphaned entries, shrink the root."""
        orphans: List[Tuple[Entry, int]] = []
        # path[i] = (node, idx of child followed); leaf frame has idx None.
        for depth in range(len(path) - 1, 0, -1):
            node, _ = path[depth]
            parent, parent_idx = path[depth - 1]
            assert parent_idx is not None
            if len(node.entries) < self.min_fill:
                del parent.entries[parent_idx]
                orphans.extend((entry, node.level) for entry in node.entries)
                self.storage.free_node(node)
            else:
                parent.entries[parent_idx].kbox = node.bound_at(t_now)
                self.storage.write_node(node)
            self.storage.write_node(parent)
        self._shrink_root()
        for entry, level in orphans:
            self._insert_entry(entry, level, t_now, set())

    def _shrink_root(self) -> None:
        root = self.read_node(self.root_id)
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].ref
            self.storage.free_node(root)
            self.root_id = child_id
            self.height -= 1
            root = self.read_node(self.root_id)
        if not root.is_leaf and not root.entries:
            raise AssertionError("internal root lost all entries")

    # ------------------------------------------------------------------
    # Invariant checking (tests)
    # ------------------------------------------------------------------
    def validate(self, t_now: float, check_times: Optional[Sequence[float]] = None) -> None:
        """Raise ``AssertionError`` on any violated structural invariant.

        Delegates to :func:`repro.check.sanitize.check_tpr_tree` (level
        consistency, occupancy limits, parent bounds containing children
        at ``t_now`` and each time in ``check_times``, object-table/leaf
        agreement) and raises
        :class:`~repro.check.errors.InvariantViolation` — an
        ``AssertionError`` carrying SC-coded findings — when any check
        fails.
        """
        from ..check.sanitize import check_tpr_tree, raise_on_findings

        raise_on_findings(check_tpr_tree(self, t_now, check_times))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={len(self)}, height={self.height}, "
            f"capacity={self.node_capacity}, horizon={self.horizon:g})"
        )
