"""Whole-tree persistence: save/load a TPR(*)-tree to a page file.

Builds on :class:`~repro.storage.FileDiskManager`: all node pages are
copied out verbatim, followed by a metadata chain holding the tree
descriptor (root page, height, capacity, horizon) and the object table.
The loaded tree is fully operational — searches, updates, joins — and
is verified by round-trip tests including invariant validation.

File layout::

    page 0:            descriptor (magic, root id, height, capacity,
                       horizon, object count, first object page)
    object pages:      chained pages of object-table rows
    node pages:        nodes in post-order, child refs remapped

Nodes are copied bottom-up so children receive their file page ids
before their parents' entries are serialized — no fix-up pass needed.
"""

from __future__ import annotations

import os
from typing import Optional, Type

from ..geometry import KineticBox, kernels
from ..objects import MovingObject
from ..storage import BufferPool, FileDiskManager, StructReader, StructWriter
from .codec import NodeCodec
from .store import TreeStorage
from .tpr import TPRTree
from .tprstar import TPRStarTree

__all__ = ["save_tree", "load_tree", "save_forest", "load_forest"]

_MAGIC = 0x54505254  # "TPRT"
_NO_PAGE = -1


def save_tree(tree: TPRTree, path: str) -> None:
    """Persist ``tree`` (nodes + object table + descriptor) to ``path``.

    Overwrites any existing file.

    >>> import tempfile, os
    >>> from repro.workloads import uniform_workload
    >>> t = TPRStarTree()
    >>> for obj in uniform_workload(30, seed=1).set_a:
    ...     t.insert(obj, 0.0)
    >>> p = os.path.join(tempfile.mkdtemp(), "tree.db")
    >>> save_tree(t, p)
    >>> len(load_tree(p))
    30
    """
    if os.path.exists(path):
        os.remove(path)
    disk = FileDiskManager(path, page_size=tree.storage.page_size)
    codec = NodeCodec()
    try:
        descriptor_page = disk.allocate()
        assert descriptor_page == 0

        # Object-table chain.
        first_object_page = _write_object_chain(disk, tree)

        # Nodes, bottom-up, remapping child refs to file page ids.
        from .entry import Entry
        from .node import Node

        def copy_subtree(page_id: int) -> int:
            node = tree.read_node(page_id)
            if node.is_leaf:
                entries = list(node.entries)
            else:
                entries = [
                    Entry(entry.kbox, copy_subtree(entry.ref))
                    for entry in node.entries
                ]
            new_id = disk.allocate()
            disk.write_page(new_id, codec.encode(Node(new_id, node.level, entries)))
            return new_id

        new_root = copy_subtree(tree.root_id)
        _write_descriptor(disk, tree, first_object_page, new_root)
        disk.sync()
    finally:
        disk.close()


def load_tree(
    path: str,
    tree_class: Type[TPRTree] = TPRStarTree,
    buffer_pages: Optional[int] = None,
) -> TPRTree:
    """Reconstruct a tree previously stored with :func:`save_tree`.

    The returned tree owns a fresh :class:`TreeStorage` whose disk *is*
    the file — subsequent updates write back to it (call
    ``tree.storage.buffer.flush()`` and close the program normally, or
    re-save, to persist them).  The minimum-fill threshold is restored
    from the default 40% ratio; a non-default ``min_fill_ratio`` is not
    carried through the file format.
    """
    disk = FileDiskManager(path)
    reader = StructReader(disk.read_page(0))
    magic = reader.read_i64()
    if magic != _MAGIC:
        disk.close()
        raise ValueError(f"{path} is not a saved tree file")
    root_id = reader.read_i64()
    height = reader.read_i64()
    capacity = reader.read_i64()
    horizon = reader.read_f64()
    n_objects = reader.read_i64()
    object_page = reader.read_i64()

    storage = TreeStorage.__new__(TreeStorage)
    storage.tracker = disk.tracker
    storage.disk = disk
    storage.buffer = BufferPool(
        disk, NodeCodec(),
        buffer_pages if buffer_pages is not None else 50,
    )

    tree = tree_class.__new__(tree_class)
    tree.storage = storage
    tree.node_capacity = capacity
    tree.horizon = horizon
    tree.min_fill = max(1, int(capacity * 0.4))
    tree.use_kernels = kernels.HAVE_NUMPY
    from .object_table import ObjectTable

    tree.objects = ObjectTable()
    tree.root_id = root_id
    tree.height = height
    tree.guided_delete_misses = 0

    loaded = 0
    while object_page != _NO_PAGE:
        object_page, rows = _read_object_page(disk, object_page)
        for obj in rows:
            tree.objects.put(obj)
            loaded += 1
    if loaded != n_objects:
        raise ValueError(
            f"corrupt tree file: expected {n_objects} objects, found {loaded}"
        )
    return tree


def save_forest(forest, directory: str) -> None:
    """Persist an MTB forest: one tree file per bucket plus a manifest.

    ``directory`` is created if needed; existing bucket files in it are
    replaced.
    """
    import json

    os.makedirs(directory, exist_ok=True)
    manifest = {
        "t_m": forest.t_m,
        "bucket_length": forest.bucket_length,
        "node_capacity": forest.node_capacity,
        "buckets": [],
    }
    for key, _end, tree in forest.trees():
        filename = f"bucket_{key}.db"
        save_tree(tree, os.path.join(directory, filename))
        manifest["buckets"].append({"key": key, "file": filename})
    with open(os.path.join(directory, "forest.json"), "w") as f:
        json.dump(manifest, f)


def load_forest(directory: str, tree_class: Type[TPRTree] = TPRStarTree):
    """Reconstruct an MTB forest saved by :func:`save_forest`."""
    import json

    from .mtb import MTBTree

    with open(os.path.join(directory, "forest.json")) as f:
        manifest = json.load(f)
    buckets_per_tm = max(1, round(manifest["t_m"] / manifest["bucket_length"]))
    forest = MTBTree(
        t_m=manifest["t_m"],
        buckets_per_tm=buckets_per_tm,
        node_capacity=manifest["node_capacity"],
    )
    for entry in manifest["buckets"]:
        tree = load_tree(os.path.join(directory, entry["file"]), tree_class)
        key = entry["key"]
        forest._trees[key] = tree
        for obj in tree.all_objects():
            forest.objects.put(obj, key)
    return forest


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
_OBJECT_BYTES = 8 + 9 * 8  # oid + kinetic parameters
_CHAIN_HEADER = 8 + 8      # next page id + row count


def _rows_per_page(page_size: int) -> int:
    return (page_size - 4 - _CHAIN_HEADER) // _OBJECT_BYTES


def _write_object_chain(disk: FileDiskManager, tree: TPRTree) -> int:
    objects = list(tree.objects.objects())
    if not objects:
        return _NO_PAGE
    per_page = _rows_per_page(disk.page_size)
    chunks = [objects[i : i + per_page] for i in range(0, len(objects), per_page)]
    page_ids = [disk.allocate() for _ in chunks]
    for idx, chunk in enumerate(chunks):
        writer = StructWriter()
        next_page = page_ids[idx + 1] if idx + 1 < len(page_ids) else _NO_PAGE
        writer.write_i64(next_page)
        writer.write_i64(len(chunk))
        for obj in chunk:
            writer.write_i64(obj.oid)
            writer.write_f64s(obj.kbox.params())
        disk.write_page(page_ids[idx], writer.getvalue())
    return page_ids[0]


def _read_object_page(disk: FileDiskManager, page_id: int):
    reader = StructReader(disk.read_page(page_id))
    next_page = reader.read_i64()
    count = reader.read_i64()
    rows = []
    for _ in range(count):
        oid = reader.read_i64()
        kbox = KineticBox.from_params(tuple(reader.read_f64s(9)))
        rows.append(
            MovingObject(
                oid, kbox.mbr, kbox.vbr.x_lo, kbox.vbr.y_lo, kbox.t_ref
            )
        )
    return next_page, rows


def _write_descriptor(
    disk: FileDiskManager,
    tree: TPRTree,
    first_object_page: int,
    root_id: int,
) -> None:
    writer = StructWriter()
    writer.write_i64(_MAGIC)
    writer.write_i64(root_id)
    writer.write_i64(tree.height)
    writer.write_i64(tree.node_capacity)
    writer.write_f64(tree.horizon)
    writer.write_i64(len(tree.objects))
    writer.write_i64(first_object_page)
    disk.write_page(0, writer.getvalue())
