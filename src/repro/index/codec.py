"""Binary page codec for tree nodes.

Layout (little endian)::

    u8   level
    i64  page_id
    i64  entry count
    per entry:
        i64  ref (object id or child page id)
        9×f64 kinetic-box parameters (MBR bounds, VBR bounds, t_ref)

One entry is ``8 + 72 = 80`` bytes; the 17-byte header leaves room for
``(4096 - 17) // 80 = 50`` entries in a standard 4 KiB page.  The tree's
node capacity must not exceed :func:`max_entries_for_page`, which the
tree constructor checks.
"""

from __future__ import annotations

from ..geometry import KineticBox
from ..storage import StructReader, StructWriter
from .entry import Entry
from .node import Node

__all__ = ["NodeCodec", "ENTRY_BYTES", "HEADER_BYTES", "max_entries_for_page"]

ENTRY_BYTES = 8 + 9 * 8
HEADER_BYTES = 1 + 8 + 8


def max_entries_for_page(page_size: int) -> int:
    """Largest node capacity that fits a page of ``page_size`` bytes."""
    return (page_size - HEADER_BYTES) // ENTRY_BYTES


class NodeCodec:
    """Serializes :class:`~repro.index.node.Node` objects to page bytes."""

    def encode(self, node: Node) -> bytes:
        writer = StructWriter()
        writer.write_u8(node.level)
        writer.write_i64(node.page_id)
        writer.write_i64(len(node.entries))
        for entry in node.entries:
            writer.write_i64(entry.ref)
            writer.write_f64s(entry.kbox.params())
        return writer.getvalue()

    def decode(self, data: bytes) -> Node:
        reader = StructReader(data)
        level = reader.read_u8()
        page_id = reader.read_i64()
        count = reader.read_i64()
        entries = []
        for _ in range(count):
            ref = reader.read_i64()
            params = tuple(reader.read_f64s(9))
            entries.append(Entry(KineticBox.from_params(params), ref))
        return Node(page_id, level, entries)
