"""Spatial stripe partitioning for the sharded engine.

The space domain is cut into ``K`` half-open stripes along one axis;
the first and last stripes extend to infinity so the partition covers
every position an object (or its swept halo) can ever occupy.  Stripe
boundaries default to equi-count quantiles of the object centers, which
balances shard populations under skew; the axis defaults to the one
with the smaller total bound speed — the velocity-partitioning insight
(Nguyen et al.): slower movement means tighter swept extents, smaller
ghost regions, and less cross-shard duplication.

Membership of a moving object is decided by its *swept* extent over the
ghost horizon (see :mod:`repro.par.sharded`), not its instantaneous
position, so every pair that can intersect inside the horizon is fully
contained in at least one shard.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geometry import INF
from ..geometry.box import NDIMS
from ..objects import MovingObject

__all__ = ["StripePartition"]


class StripePartition:
    """``K`` contiguous stripes along one axis, covering the whole line.

    ``cuts`` holds the ``K - 1`` strictly increasing inner boundaries;
    stripe ``s`` spans ``[cuts[s-1], cuts[s]]`` with the outermost
    bounds at ``±inf``.  Boundaries are treated as belonging to *both*
    neighboring stripes — over-inclusive on a zero-measure set, which
    keeps membership closed under floating-point ties.
    """

    __slots__ = ("cuts", "axis")

    def __init__(self, cuts: Sequence[float], axis: int = 0):
        cuts = [float(c) for c in cuts]
        if any(b <= a for a, b in zip(cuts, cuts[1:])):
            raise ValueError(f"cuts must be strictly increasing: {cuts}")
        if axis not in range(NDIMS):
            raise ValueError(f"axis must be in 0..{NDIMS - 1}")
        object.__setattr__(self, "cuts", tuple(cuts))
        object.__setattr__(self, "axis", int(axis))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StripePartition is immutable")

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.cuts) + 1

    def region(self, shard: int) -> Tuple[float, float]:
        """The ``[lo, hi]`` extent of one stripe (``±inf`` at the rim)."""
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"no shard {shard} in a {self.n_shards}-way partition")
        lo = self.cuts[shard - 1] if shard > 0 else -INF
        hi = self.cuts[shard] if shard < len(self.cuts) else INF
        return lo, hi

    def shards_for_span(self, lo: float, hi: float) -> Tuple[int, ...]:
        """Every stripe whose (closed) extent intersects ``[lo, hi]``."""
        if hi < lo:
            raise ValueError(f"empty span: [{lo}, {hi}]")
        first = bisect_left(self.cuts, lo)
        last = bisect_right(self.cuts, hi)
        return tuple(range(first, last + 1))

    def spans_to_shards(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`shards_for_span` over span arrays.

        Returns ``(first, last)`` int arrays: span ``k`` intersects
        exactly stripes ``first[k] .. last[k]`` inclusive.  The
        ``searchsorted`` sides mirror the ``bisect_left``/
        ``bisect_right`` pair of the scalar path, so routing decisions
        are bit-identical.
        """
        if np.any(hi < lo):
            bad = int(np.argmax(hi < lo))
            raise ValueError(f"empty span: [{lo[bad]}, {hi[bad]}]")
        cuts = np.asarray(self.cuts)
        first = np.searchsorted(cuts, lo, side="left")
        last = np.searchsorted(cuts, hi, side="right")
        return first, last

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        objects: Sequence[MovingObject],
        n_shards: int,
        axis: object = "auto",
    ) -> "StripePartition":
        """Fit a balanced ``n_shards``-way partition over ``objects``.

        ``axis="auto"`` picks the dimension with the smaller total bound
        speed; pass ``0``/``1`` to force one.  Cuts are equi-count
        quantiles of object centers at their reference times, decaying
        to equal-width spacing when quantiles collide (point masses).
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if axis == "auto":
            totals = [0.0] * NDIMS
            for obj in objects:
                for dim in range(NDIMS):
                    totals[dim] += abs(obj.kbox.vbr.lo(dim)) + abs(
                        obj.kbox.vbr.hi(dim)
                    )
            axis = min(range(NDIMS), key=lambda dim: totals[dim])
        axis = int(axis)  # type: ignore[arg-type]
        if n_shards == 1 or not objects:
            return cls((), axis)
        centers = sorted(
            (obj.kbox.mbr.lo(axis) + obj.kbox.mbr.hi(axis)) / 2.0
            for obj in objects
        )
        n = len(centers)
        quantiles = [centers[(k * n) // n_shards] for k in range(1, n_shards)]
        cuts: List[float] = []
        for q in quantiles:
            if not cuts or q > cuts[-1]:
                cuts.append(q)
        if len(cuts) < n_shards - 1:
            lo, hi = centers[0], centers[-1]
            width = (hi - lo) / n_shards if hi > lo else 1.0
            cuts = [lo + width * k for k in range(1, n_shards)]
        return cls(cuts, axis)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"cuts": list(self.cuts), "axis": self.axis}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StripePartition":
        return cls(data["cuts"], data["axis"])  # type: ignore[arg-type]

    def __reduce__(self):
        return (StripePartition, (self.cuts, self.axis))

    def __repr__(self) -> str:
        return f"StripePartition(K={self.n_shards}, axis={self.axis})"
