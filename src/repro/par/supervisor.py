"""Supervised shard workers: timeouts, respawn, checkpoint/replay.

:class:`ShardSupervisor` is the fault-tolerant ``workers > 0`` backend
of :class:`~repro.par.sharded.ShardedJoinEngine`.  It keeps the bare
pipe-per-slot dispatch of the original pool backend (one persistent
process per slot, ~0.2 ms per fan-out) but wraps every round trip in a
supervision loop:

* **Liveness** — replies are awaited with ``Connection.poll`` in
  heartbeat-sized slices instead of a bare blocking ``recv``.  A worker
  that died is detected within one heartbeat
  (:class:`ShardWorkerDied`); one that hangs is cut off at the
  configured timeout (:class:`ShardTimeoutError`).  Without
  supervision either condition deadlocked the engine forever.
* **Recovery** — shard state is rebuilt deterministically.  The
  supervisor remembers, per shard, a *replay base* (initially the
  shard's build spec; later a checkpoint blob serialized by the worker
  — engine rebuild spec plus result-store dump) and a bounded op log
  of every state-mutating command acknowledged since that base.  The
  paper's TC maintenance is deterministic given the update stream, so
  ``base + log`` replayed into a fresh process reproduces the exact
  pre-crash shard state — proven store-identical by the differential
  chaos suite.  Commands are logged only after a successful reply and
  the in-flight batch is re-issued after replay, giving exactly-once
  application across crashes.
* **Degradation** — after ``max_retries`` failed respawns of a slot,
  its shards fold into in-process serial execution (the same
  :func:`repro.par.worker.execute` dispatch the ``workers=0`` backend
  uses), so a persistently failing slot degrades throughput instead of
  failing the join.

Fault injection (:mod:`repro.faults`) hooks in at two points: worker
processes are armed with the plan at first spawn (never on respawn, so
recovery itself is deterministic), and the supervisor consults the
parent-side plan to drop replies.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultPlan
from ..metrics import monotonic_clock
from . import worker
from .protocol import BASE_OPS, OP_BUILD, OP_CHECKPOINT, OP_RESTORE

#: Commands that change shard state and therefore enter the op log
#: (everything else is a read and can simply be re-asked).  Derived
#: from the declared command vocabulary — re-exported here because the
#: op log is where the flag matters.
from .protocol import MUTATING_OPS  # noqa: F401 (re-export)

__all__ = [
    "ShardSupervisor",
    "SupervisorStats",
    "ShardFailure",
    "ShardTimeoutError",
    "ShardWorkerDied",
    "ShardCommandError",
    "MUTATING_OPS",
]


class ShardFailure(RuntimeError):
    """A worker-process failure the supervisor can recover from."""


class ShardTimeoutError(ShardFailure):
    """No reply within the configured round-trip timeout."""


class ShardWorkerDied(ShardFailure):
    """The worker process exited or its pipe broke mid round-trip."""


class ShardCommandError(RuntimeError):
    """The worker reported a structured command error.

    Deterministic — replaying would fail identically — so it is
    surfaced to the caller instead of triggering recovery.  The worker
    and its engine state survive (the serve loop reports errors rather
    than dying), so post-mortem commands still work.
    """


@dataclass
class SupervisorStats:
    """Cumulative supervision counters (exposed via obs rollups)."""

    timeouts: int = 0
    worker_deaths: int = 0
    respawns: int = 0
    recoveries: int = 0
    replayed_commands: int = 0
    checkpoints: int = 0
    dropped_replies: int = 0
    degraded_slots: int = 0
    recovery_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


class _Slot:
    """One supervised worker process plus its parent-side pipe end."""

    def __init__(self, index: int):
        self.index = index
        self.proc: Optional[multiprocessing.Process] = None
        self.conn = None
        self.degraded = False

    def spawn(self, fault_spec: Optional[str]) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self.proc = multiprocessing.Process(
            target=worker.serve, args=(child_conn, fault_spec), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def kill(self) -> None:
        """Hard-stop the worker and reap it (no zombies, no leaked fds)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close can't really fail
                pass
            self.conn = None
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.terminate()
            # join *after* terminate as well: a terminated child that is
            # never re-joined stays a zombie for the parent's lifetime.
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():  # pragma: no cover - kernel refusal
                self.proc.kill()
                self.proc.join(timeout=5.0)
            self.proc = None

    def shutdown(self) -> None:
        """Graceful stop: ask the serve loop to exit, then reap."""
        if self.conn is not None:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        if self.proc is not None:
            self.proc.join(timeout=5.0)
        self.kill()


class ShardSupervisor:
    """Fault-tolerant pipe backend: one supervised process per slot.

    Commands for shard ``s`` always go to slot ``s mod n_slots``, whose
    lone process keeps that engine in its registry — same routing as
    the original pool backend, same command semantics as the serial
    one.  ``timeout=None`` waits forever (liveness checks still catch
    dead workers); ``checkpoint_interval`` bounds each shard's op log.
    """

    def __init__(
        self,
        workers: int,
        shard_ids: Sequence[int],
        *,
        timeout: Optional[float] = 30.0,
        heartbeat: float = 0.05,
        checkpoint_interval: int = 16,
        max_retries: int = 2,
        fault_spec: Optional[str] = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.timeout = timeout
        self.heartbeat = heartbeat
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self.stats = SupervisorStats()
        # The parent-side plan serves `drop` faults; the same spec arms
        # the workers (spec=None lets them read REPRO_FAULTS themselves).
        self._plan = (
            FaultPlan.parse(fault_spec)
            if fault_spec is not None
            else FaultPlan.from_env()
        )
        self._worker_spec = fault_spec

        n_slots = max(1, min(workers, len(shard_ids)))
        self._slot_of = {
            sid: i % n_slots for i, sid in enumerate(sorted(shard_ids))
        }
        self._shards_of: Dict[int, List[int]] = {}
        for sid, slot_idx in self._slot_of.items():
            self._shards_of.setdefault(slot_idx, []).append(sid)
        self._slots = [_Slot(i) for i in range(n_slots)]
        for slot in self._slots:
            slot.spawn(self._worker_spec)

        #: Per-shard replay base: the command that (re)creates the
        #: engine — ``("build", sid, spec)`` at epoch 0, then
        #: ``("restore", sid, blob)`` after each checkpoint.
        self._base: Dict[int, Tuple] = {}
        self._base_epoch: Dict[int, int] = {}
        self._base_now: Dict[int, float] = {}
        self._epochs: Dict[int, int] = {sid: 0 for sid in self._slot_of}
        self._oplog: Dict[int, List[Tuple]] = {sid: [] for sid in self._slot_of}
        #: Engines of degraded shards, executed in-process.
        self._local: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def run(self, cmds_by_shard: Dict[int, List[Tuple]]) -> Dict[int, List]:
        per_slot: Dict[int, List[Tuple[int, List[Tuple]]]] = {}
        for sid, cmds in cmds_by_shard.items():
            per_slot.setdefault(self._slot_of[sid], []).append((sid, cmds))
        # Phase 1: post every slot's batch so healthy slots compute in
        # parallel; a failed send is surfaced in the collect phase.
        posted: Dict[int, bool] = {}
        for slot_idx, entries in per_slot.items():
            slot = self._slots[slot_idx]
            if slot.degraded:
                continue
            flat = [cmd for _sid, cmds in entries for cmd in cmds]
            posted[slot_idx] = self._post(slot, flat)
        # Phase 2: collect, recovering any slot that fails.  Every
        # posted slot is collected even if an earlier one errored —
        # leaving a reply unread would desync the next round's framing.
        results: Dict[int, List] = {}
        errors: List[ShardCommandError] = []
        for slot_idx, entries in per_slot.items():
            slot = self._slots[slot_idx]
            flat = [cmd for _sid, cmds in entries for cmd in cmds]
            if slot.degraded:
                payload = worker.execute(self._local, flat)
            else:
                try:
                    if not posted[slot_idx]:
                        raise self._mark_death(slot, "send failed")
                    payload = self._await_reply(slot)
                except ShardFailure as exc:
                    payload = self._recover(slot, flat, exc)
                except ShardCommandError as exc:
                    self._resync_after_error(slot, flat)
                    errors.append(exc)
                    continue
            self._record(flat)
            pos = 0
            for sid, cmds in entries:
                results[sid] = payload[pos : pos + len(cmds)]
                pos += len(cmds)
        if errors:
            raise errors[0]
        self._maybe_checkpoint()
        return results

    def close(self) -> None:
        for slot in self._slots:
            slot.shutdown()
        self._local.clear()

    # ------------------------------------------------------------------
    # Supervised round trips
    # ------------------------------------------------------------------
    def _post(self, slot: _Slot, flat: List[Tuple]) -> bool:
        try:
            slot.conn.send(flat)
            return True
        except (BrokenPipeError, EOFError, OSError):
            return False

    def _mark_death(self, slot: _Slot, why: str) -> ShardWorkerDied:
        self.stats.worker_deaths += 1
        return ShardWorkerDied(f"slot {slot.index}: {why}")

    def _await_reply(self, slot: _Slot):
        """Poll for one reply with heartbeat liveness checks.

        Raises :class:`ShardTimeoutError` after ``timeout`` seconds,
        :class:`ShardWorkerDied` as soon as the process is seen dead
        with no buffered reply, and :class:`ShardCommandError` on a
        structured ``("error", …)`` reply.
        """
        deadline = (
            None if self.timeout is None else monotonic_clock() + self.timeout
        )
        while True:
            if deadline is None:
                wait = self.heartbeat
            else:
                remaining = deadline - monotonic_clock()
                if remaining <= 0:
                    self.stats.timeouts += 1
                    raise ShardTimeoutError(
                        f"slot {slot.index}: no reply within "
                        f"{self.timeout:g}s"
                    )
                wait = min(self.heartbeat, remaining)
            try:
                ready = slot.conn.poll(wait)
            except (BrokenPipeError, EOFError, OSError):
                raise self._mark_death(slot, "pipe broke while waiting")
            if ready:
                try:
                    status, payload = slot.conn.recv()
                except (EOFError, OSError):
                    raise self._mark_death(slot, "died mid-reply")
                if self._plan and self._plan.should_drop(slot.index):
                    self.stats.dropped_replies += 1
                    continue
                if status != "ok":
                    raise ShardCommandError(f"shard worker failed:\n{payload}")
                return payload
            if not slot.alive and not slot.conn.poll(0):
                code = None if slot.proc is None else slot.proc.exitcode
                raise self._mark_death(slot, f"worker exited (code {code})")

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------
    def _replay_cmds(self, sid: int) -> List[Tuple]:
        base = self._base.get(sid)
        if base is None:
            return []
        return [base] + list(self._oplog[sid])

    def _replay_into(self, slot: _Slot) -> None:
        """Rebuild every shard of ``slot`` from its base + op log."""
        for sid in self._shards_of.get(slot.index, []):
            if sid in self._local:
                continue
            cmds = self._replay_cmds(sid)
            if not cmds:
                continue
            if not self._post(slot, cmds):
                raise self._mark_death(slot, "send failed during replay")
            self._await_reply(slot)
            self.stats.replayed_commands += len(cmds)

    def _recover(self, slot: _Slot, flat: List[Tuple], exc: ShardFailure):
        """Respawn-and-replay, degrading to in-process execution.

        The failed in-flight batch ``flat`` was never logged, so replay
        reproduces the state *before* it and re-issuing it afterwards
        applies it exactly once.
        """
        t0 = monotonic_clock()
        self.stats.recoveries += 1
        slot.kill()
        for _attempt in range(self.max_retries):
            slot.spawn("")  # respawned workers are never fault-armed
            self.stats.respawns += 1
            try:
                self._replay_into(slot)
                if not self._post(slot, flat):
                    raise self._mark_death(slot, "send failed after respawn")
                payload = self._await_reply(slot)
                self.stats.recovery_seconds += monotonic_clock() - t0
                return payload
            except ShardFailure:
                slot.kill()
        # Ladder bottom: fold the slot's shards into this process.
        slot.degraded = True
        self.stats.degraded_slots += 1
        for sid in self._shards_of.get(slot.index, []):
            if sid in self._local:
                continue
            cmds = self._replay_cmds(sid)
            if cmds:
                worker.execute(self._local, cmds)
                self.stats.replayed_commands += len(cmds)
        payload = worker.execute(self._local, flat)
        self.stats.recovery_seconds += monotonic_clock() - t0
        return payload

    def _resync_after_error(self, slot: _Slot, flat: List[Tuple]) -> None:
        """Restore a slot to its logged state after a command error.

        A structured error aborts the worker's batch mid-way: commands
        before the failing one were applied but never acknowledged, so
        they are absent from the op log.  Read-only batches leave no
        trace and need nothing; a batch with mutating commands is rolled
        back by rebuilding the slot from base + log, keeping the
        exactly-once bookkeeping truthful (the failed batch counts as
        never applied).
        """
        if any(cmd[0] in MUTATING_OPS for cmd in flat):
            self._recover(slot, [], ShardCommandError("resync"))

    # ------------------------------------------------------------------
    # Checkpoint / op-log bookkeeping
    # ------------------------------------------------------------------
    def _record(self, cmds: List[Tuple]) -> None:
        """File acknowledged mutating commands into the op logs."""
        for cmd in cmds:
            op, sid = cmd[0], cmd[1]
            if op not in MUTATING_OPS:
                continue
            if op in BASE_OPS:
                self._set_base(sid, cmd)
            elif sid not in self._local:
                # Degraded shards live in-process: their state cannot
                # be lost to a crash, so nothing needs logging.
                self._oplog[sid].append(cmd)

    def _set_base(self, sid: int, cmd: Tuple) -> None:
        spec = cmd[2] if cmd[0] == OP_BUILD else worker.checkpoint_spec(cmd[2])
        self._base[sid] = cmd
        self._base_epoch[sid] = self._epochs[sid]
        self._base_now[sid] = spec[4]  # build-spec start_time
        self._oplog[sid] = []

    def _maybe_checkpoint(self) -> None:
        """Ask workers for fresh checkpoints where the log grew full."""
        for sid, log in self._oplog.items():
            if len(log) < self.checkpoint_interval or sid in self._local:
                continue
            slot = self._slots[self._slot_of[sid]]
            cmd = (OP_CHECKPOINT, sid)
            if slot.degraded:
                blob = worker.execute(self._local, [cmd])[0]
            else:
                try:
                    if not self._post(slot, [cmd]):
                        raise self._mark_death(slot, "send failed")
                    blob = self._await_reply(slot)[0]
                except ShardFailure as exc:
                    blob = self._recover(slot, [cmd], exc)[0]
            self._epochs[sid] += 1
            self._set_base(sid, (OP_RESTORE, sid, blob))
            self.stats.checkpoints += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def export_state(self, now: Optional[float] = None) -> Dict[str, object]:
        """A JSON-safe snapshot for the SC501–SC503 sanitizer."""
        return {
            "format": "repro.par.supervisor/1",
            "now": now,
            "checkpoint_interval": self.checkpoint_interval,
            "slots": [
                {
                    "slot": slot.index,
                    "alive": slot.alive,
                    "degraded": slot.degraded,
                }
                for slot in self._slots
            ],
            "shards": [
                {
                    "shard": sid,
                    "slot": self._slot_of[sid],
                    "degraded": sid in self._local,
                    "epoch": self._epochs[sid],
                    "oplog_len": len(self._oplog[sid]),
                    "oplog_ops": [cmd[0] for cmd in self._oplog[sid]],
                    "checkpoint": (
                        None
                        if sid not in self._base
                        else {
                            "kind": self._base[sid][0],
                            "epoch": self._base_epoch[sid],
                            "now": self._base_now[sid],
                        }
                    ),
                }
                for sid in sorted(self._slot_of)
            ],
        }

    def __repr__(self) -> str:
        degraded = sum(1 for s in self._slots if s.degraded)
        return (
            f"ShardSupervisor(slots={len(self._slots)}, "
            f"shards={len(self._slot_of)}, degraded={degraded}, "
            f"timeout={self.timeout}, "
            f"checkpoint_interval={self.checkpoint_interval})"
        )
