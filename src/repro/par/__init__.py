"""Parallel execution: spatial sharding and supervised process fan-out.

* :class:`StripePartition` — K contiguous stripes along one axis with
  quantile-balanced cuts (velocity-informed axis choice);
* :class:`ShardedJoinEngine` — per-shard independent engines with
  swept ghost/halo membership, bit-exact against the unsharded serial
  engine, fanned out over supervised pipe-connected worker processes
  (``workers=0`` runs serially in-process);
* :class:`ShardSupervisor` — fault tolerance for the worker fan-out:
  round-trip timeouts with liveness heartbeats, respawn plus
  deterministic checkpoint/op-log replay recovery, and graceful
  degradation to in-process execution;
* :mod:`repro.par.protocol` — the declared command vocabulary (op
  constants, per-op arity, the derived ``MUTATING_OPS``) every backend
  and the fault grammar share;
* :mod:`repro.par.worker` — the shard command dispatch shared by all
  backends (including the checkpoint/restore recovery commands).
"""

from .partition import StripePartition
from .protocol import COMMANDS, MUTATING_OPS, OPS
from .sharded import SHARDABLE_ALGORITHMS, ShardedJoinEngine
from .supervisor import (
    ShardCommandError,
    ShardFailure,
    ShardSupervisor,
    ShardTimeoutError,
    ShardWorkerDied,
    SupervisorStats,
)

__all__ = [
    "StripePartition",
    "COMMANDS",
    "OPS",
    "MUTATING_OPS",
    "ShardedJoinEngine",
    "SHARDABLE_ALGORITHMS",
    "ShardSupervisor",
    "SupervisorStats",
    "ShardFailure",
    "ShardTimeoutError",
    "ShardWorkerDied",
    "ShardCommandError",
]
