"""Parallel execution: spatial sharding and process-pool fan-out.

* :class:`StripePartition` — K contiguous stripes along one axis with
  quantile-balanced cuts (velocity-informed axis choice);
* :class:`ShardedJoinEngine` — per-shard independent engines with
  swept ghost/halo membership, bit-exact against the unsharded serial
  engine, fanned out over a ``concurrent.futures`` process pool
  (``workers=0`` runs serially in-process);
* :mod:`repro.par.worker` — the shard command protocol shared by both
  backends.
"""

from .partition import StripePartition
from .sharded import SHARDABLE_ALGORITHMS, ShardedJoinEngine

__all__ = ["StripePartition", "ShardedJoinEngine", "SHARDABLE_ALGORITHMS"]
