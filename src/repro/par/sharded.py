"""The sharded continuous-join engine (spatial partitioning + pool fan-out).

:class:`ShardedJoinEngine` splits both datasets into ``K`` spatial
stripes (:class:`~repro.par.partition.StripePartition`); each shard
owns a full, independent :class:`~repro.core.engine.ContinuousJoinEngine`
— its own trees/MTB forest, result store, buffer and cost tracker —
over the subset of objects whose *swept halo* touches the stripe.

Ghost-region correctness
------------------------
An object is a member of every stripe its kinetic box sweeps over
``[t_ref, t_ref + L]``, with the ghost horizon ``L = T_M + W_max``
where ``W_max`` is the longest probe window any strategy opens
(``T_M`` for TC-Join, ``bucket_length + T_M`` for MTB-Join).  If a
pair's stored interval contains a point ``τ``, both boxes cover the
same spatial point ``p`` at ``τ``, and ``τ ≤ t_ref + L`` holds for
both sides — so both sweeps contain ``p``'s coordinate and both
objects are members of ``p``'s stripe, which therefore computes the
pair with the exact same interval.  Any shard holding both endpoints
of a pair holds it with a bit-identical interval list, so the merged
store is a plain duplicate-free union, bit-exact against the
unsharded serial engine (per-object halo sizing is *tighter* than the
uniform ``max_speed × T_M`` bound — it uses each object's own
velocity over the same horizon).

Execution fans out over persistent pipe-connected worker processes
(``workers > 0``; each shard's engine lives in one slot's process for
its whole life) or runs serially in-process (``workers=0``) — command
semantics are identical (:mod:`repro.par.worker`).  Worker processes
are *supervised* (:class:`~repro.par.supervisor.ShardSupervisor`):
every round trip carries a timeout and liveness heartbeat, crashed or
hung workers are respawned and their shards rebuilt deterministically
from checkpoint + op-log replay, and a slot that keeps failing folds
into in-process execution instead of failing the join.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..core.config import JoinConfig
from ..geometry import Box
from ..geometry.plane_sweep import sweep_bounds
from ..metrics import CostSnapshot
from ..objects import MovingObject
from . import worker
from .partition import StripePartition
from ..deltas import ShardDeltaMerger
from .protocol import (
    OP_BUILD,
    OP_COST,
    OP_DELTAS,
    OP_INITIAL_JOIN,
    OP_OBJECTS,
    OP_OBS,
    OP_OPS,
    OP_PAIRS_AT,
    OP_PRUNE,
    OP_STORE_DUMP,
    OP_TICK,
    SHARD_OP_ADMIT,
    SHARD_OP_EVICT,
    SHARD_OP_UPDATE,
)
from .supervisor import ShardSupervisor, SupervisorStats

__all__ = ["ShardedJoinEngine", "SHARDABLE_ALGORITHMS"]

PairKey = Tuple[int, int]

#: Only window-bounded interval strategies can shard: the halo must
#: cover every probe window, so the unbounded naive window is out, and
#: ETP keeps no mergeable interval store.
SHARDABLE_ALGORITHMS = ("tc", "mtb")


class _SerialBackend:
    """In-process execution: the ``workers=0`` fallback."""

    def __init__(self) -> None:
        self.engines: Dict[int, object] = {}

    def run(self, cmds_by_shard: "OrderedDict[int, List[Tuple]]") -> Dict[int, List]:
        return {
            sid: worker.execute(self.engines, cmds)
            for sid, cmds in cmds_by_shard.items()
        }

    def close(self) -> None:
        self.engines.clear()


class ShardedJoinEngine:
    """K-way sharded, optionally multi-process, continuous join."""

    def __init__(
        self,
        objects_a: Iterable[MovingObject],
        objects_b: Iterable[MovingObject],
        algorithm: str = "mtb",
        config: Optional[JoinConfig] = None,
        shards: int = 4,
        workers: int = 0,
        axis: object = "auto",
        start_time: float = 0.0,
    ):
        if algorithm not in SHARDABLE_ALGORITHMS:
            raise ValueError(
                f"algorithm {algorithm!r} cannot shard; pick from "
                f"{SHARDABLE_ALGORITHMS}"
            )
        self.config = config if config is not None else JoinConfig()
        self.algorithm = algorithm
        self.now = float(start_time)
        self.start_time = float(start_time)
        self.workers = int(workers)
        self.objects_a: Dict[int, MovingObject] = {o.oid: o for o in objects_a}
        self.objects_b: Dict[int, MovingObject] = {o.oid: o for o in objects_b}
        overlap = self.objects_a.keys() & self.objects_b.keys()
        if overlap:
            raise ValueError(
                f"object ids shared across datasets: {sorted(overlap)[:5]}"
            )
        everything = list(self.objects_a.values()) + list(self.objects_b.values())
        self.partition = StripePartition.fit(everything, shards, axis)
        self._members: Dict[int, Tuple[int, ...]] = {
            obj.oid: self.membership(obj) for obj in everything
        }
        self.update_count = 0
        self.initial_join_cost: Optional[CostSnapshot] = None
        #: Parent-side merge of the per-shard delta ledgers (``None``
        #: unless ``config.deltas``).  Shard ledgers are pulled after
        #: every mutation round and merged in tick order; holder-set
        #: refcounting cancels replica churn, replacement ingestion
        #: absorbs supervisor checkpoint/replay re-deliveries.
        self._merger: Optional[ShardDeltaMerger] = (
            ShardDeltaMerger(self.start_time) if self.config.deltas else None
        )

        shard_ids = list(range(self.partition.n_shards))
        if self.workers > 0:
            #: Supervised multi-process backend (``None`` when serial).
            self.supervisor: Optional[ShardSupervisor] = ShardSupervisor(
                self.workers,
                shard_ids,
                timeout=self.config.shard_timeout,
                heartbeat=self.config.shard_heartbeat,
                checkpoint_interval=self.config.checkpoint_interval,
                max_retries=self.config.max_retries,
                fault_spec=self.config.faults,
            )
            self._backend = self.supervisor
        else:
            self.supervisor = None
            self._backend = _SerialBackend()
        self._closed = False
        builds: "OrderedDict[int, List[Tuple]]" = OrderedDict()
        for sid in shard_ids:
            subset_a = [
                o for o in self.objects_a.values() if sid in self._members[o.oid]
            ]
            subset_b = [
                o for o in self.objects_b.values() if sid in self._members[o.oid]
            ]
            spec = worker.build_spec(
                subset_a, subset_b, algorithm, self.config, self.start_time
            )
            builds[sid] = [(OP_BUILD, sid, spec)]
        built = self._backend.run(builds)
        self.build_cost = _sum_costs(res[0] for res in built.values())

    # ------------------------------------------------------------------
    # Geometry of the sharding
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    @property
    def ghost_horizon(self) -> float:
        """``T_M + W_max``: how far ahead membership sweeps must look.

        ``W_max`` bounds every probe window end the strategy can open
        relative to the probing object's ``t_ref``: ``T_M`` for TC-Join
        (Theorem 1), ``bucket_length + T_M`` for MTB-Join (the other
        side's bucket can end up to one bucket after the probe time).
        """
        t_m = self.config.t_m
        if self.algorithm == "mtb":
            return 2.0 * t_m + self.config.bucket_length
        return 2.0 * t_m

    def membership(self, obj: MovingObject) -> Tuple[int, ...]:
        """Every shard whose stripe the object's halo sweeps."""
        lo, hi = sweep_bounds(
            obj.kbox,
            self.partition.axis,
            obj.t_ref,
            obj.t_ref + self.ghost_horizon,
        )
        return self.partition.shards_for_span(lo, hi)

    # ------------------------------------------------------------------
    # Engine API (mirrors ContinuousJoinEngine)
    # ------------------------------------------------------------------
    def run_initial_join(self) -> CostSnapshot:
        cmds: "OrderedDict[int, List[Tuple]]" = OrderedDict()
        for sid in range(self.n_shards):
            cmds[sid] = [(OP_INITIAL_JOIN, sid)]
            if self._merger is not None:
                cmds[sid].append((OP_DELTAS, sid, self.now))
        results = self._backend.run(cmds)
        self.initial_join_cost = _sum_costs(res[0] for res in results.values())
        self._ingest_deltas(results)
        if self.config.sanitize:
            self.validate()
        return self.initial_join_cost

    def tick(self, t: float) -> None:
        if t < self.now:
            raise ValueError(f"time went backwards: {t} < {self.now}")
        self.now = t
        if self._merger is not None:
            self._merger.advance(t)
        self._run_everywhere((OP_TICK, None, t))

    def apply_update(self, obj: MovingObject) -> None:
        self.apply_updates([obj])

    def apply_updates(self, batch: Iterable[MovingObject]) -> None:
        """Fan one same-timestamp batch out to the member shards.

        Per object, shards in both the old and new membership get an
        ``update``; shards the halo grew into get an ``admit`` (index
        insert + probe — a new arrival has no stale pairs there);
        shards it left get an ``evict`` (index delete + pair removal —
        surviving pairs still live in every shard holding both
        endpoints, with identical intervals).
        """
        ops = self._route_updates(batch)
        self._commit_ops(ops)

    def _commit_ops(self, ops: "OrderedDict[int, List[Tuple]]") -> None:
        """Ship routed per-shard op batches; pull deltas in the same trip."""
        cmds = OrderedDict(
            (sid, [(OP_OPS, sid, shard_ops)])
            for sid, shard_ops in ops.items()
            if shard_ops
        )
        if self._merger is not None:
            for sid, shard_cmds in cmds.items():
                shard_cmds.append((OP_DELTAS, sid, self.now))
        if cmds:
            results = self._backend.run(cmds)
            self._ingest_deltas(results)
        if self.config.sanitize:
            self.validate()

    def step(self, t: float, batch: Iterable[MovingObject]) -> Set[PairKey]:
        """One fused tick: advance clocks, group-commit, answer.

        Semantically identical to ``tick(t)`` followed by
        ``apply_updates(batch)`` followed by ``result_at(t)``, but each
        shard receives its whole tick as one command list, so the pool
        backend pays a single submit/result round trip per shard per
        tick instead of three.
        """
        if t < self.now:
            raise ValueError(f"time went backwards: {t} < {self.now}")
        self.now = t
        if self._merger is not None:
            self._merger.advance(t)
        ops = self._route_updates(batch)
        cmds: "OrderedDict[int, List[Tuple]]" = OrderedDict()
        for sid in range(self.n_shards):
            shard_cmds: List[Tuple] = [(OP_TICK, sid, t)]
            if ops[sid]:
                shard_cmds.append((OP_OPS, sid, ops[sid]))
            shard_cmds.append((OP_PAIRS_AT, sid, t))
            if self._merger is not None:
                shard_cmds.append((OP_DELTAS, sid, t))
            cmds[sid] = shard_cmds
        results = self._backend.run(cmds)
        self._ingest_deltas(results)
        if self.config.sanitize:
            self.validate()
        # The pairs answer sits last, unless the delta pull rode behind it.
        answer_idx = -1 if self._merger is None else -2
        answer: Set[PairKey] = set()
        for res in results.values():
            answer |= res[answer_idx]
        return answer

    def apply_update_columns(self, upd_a, upd_b) -> None:
        """Column-batch group commit: the array-native update path.

        ``upd_a`` / ``upd_b`` are :class:`~repro.core.columns.
        UpdateColumns` batches of already-registered objects (``vlo ==
        vhi`` — object batches, not aggregated node bounds).  Halo
        sweeps and stripe routing run vectorized over the whole batch
        (:meth:`StripePartition.spans_to_shards`), then each shard is
        shipped exactly the row slice it owns; routing decisions are
        bit-identical to :meth:`apply_updates` on the same objects.
        """
        ops: "OrderedDict[int, List[Tuple]]" = OrderedDict(
            (sid, []) for sid in range(self.n_shards)
        )
        for upd, registry, dataset in (
            (upd_a, self.objects_a, "a"),
            (upd_b, self.objects_b, "b"),
        ):
            k = len(upd)
            if not k:
                continue
            first, last = self._route_columns(upd)
            first_l, last_l = first.tolist(), last.tolist()
            oids = upd.oid.tolist()
            xlo, ylo = upd.mlo[0].tolist(), upd.mlo[1].tolist()
            xhi, yhi = upd.mhi[0].tolist(), upd.mhi[1].tolist()
            vx, vy = upd.vlo[0].tolist(), upd.vlo[1].tolist()
            trefs = upd.tref.tolist()
            for i in range(k):
                oid = oids[i]
                if oid not in registry:
                    raise KeyError(f"unknown object id {oid}")
                obj = MovingObject(
                    oid,
                    Box(xlo[i], xhi[i], ylo[i], yhi[i]),
                    vx[i],
                    vy[i],
                    t_ref=trefs[i],
                )
                registry[oid] = obj
                old = self._members[oid]
                new = tuple(range(first_l[i], last_l[i] + 1))
                self._members[oid] = new
                for sid in old:
                    if sid not in new:
                        ops[sid].append((SHARD_OP_EVICT, oid))
                for sid in new:
                    if sid in old:
                        ops[sid].append((SHARD_OP_UPDATE, obj))
                    else:
                        ops[sid].append((SHARD_OP_ADMIT, obj, dataset))
                self.update_count += 1
        self._commit_ops(ops)

    def _route_columns(self, upd) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized halo membership of one column batch.

        Mirrors :meth:`membership` term for term: the swept extent of
        each row over ``[tref, tref + ghost_horizon]`` along the
        partition axis, routed through the stripe cuts.  The ``dt``
        terms reproduce the scalar expression (including its rounding)
        so the two paths never disagree on a boundary row.
        """
        axis = self.partition.axis
        horizon = self.ghost_horizon
        tref = upd.tref
        dt1 = (tref + horizon) - tref
        mlo, mhi = upd.mlo[axis], upd.mhi[axis]
        vlo, vhi = upd.vlo[axis], upd.vhi[axis]
        lb = np.minimum(mlo + vlo * 0.0, mlo + vlo * dt1)
        ub = np.maximum(mhi + vhi * 0.0, mhi + vhi * dt1)
        return self.partition.spans_to_shards(lb, ub)

    def _route_updates(
        self, batch: Iterable[MovingObject]
    ) -> "OrderedDict[int, List[Tuple]]":
        """Resolve one same-timestamp batch into per-shard op lists,
        updating the object registries and halo memberships."""
        ops: "OrderedDict[int, List[Tuple]]" = OrderedDict(
            (sid, []) for sid in range(self.n_shards)
        )
        for obj in batch:
            if obj.oid in self.objects_a:
                dataset = "a"
                self.objects_a[obj.oid] = obj
            elif obj.oid in self.objects_b:
                dataset = "b"
                self.objects_b[obj.oid] = obj
            else:
                raise KeyError(f"unknown object id {obj.oid}")
            old = self._members[obj.oid]
            new = self.membership(obj)
            self._members[obj.oid] = new
            for sid in old:
                if sid not in new:
                    ops[sid].append((SHARD_OP_EVICT, obj.oid))
            for sid in new:
                if sid in old:
                    ops[sid].append((SHARD_OP_UPDATE, obj))
                else:
                    ops[sid].append((SHARD_OP_ADMIT, obj, dataset))
            self.update_count += 1
        return ops

    def result_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """Union of the shard answers (each shard reports exact pairs)."""
        if t is None:
            t = self.now
        if not self.now <= t:
            raise ValueError(
                "result_at only answers the present of the engine clock"
            )
        answer: Set[PairKey] = set()
        for pairs in self._fan_all(OP_PAIRS_AT, t).values():
            answer |= pairs
        return answer

    def prune_expired(self) -> int:
        """Prune every shard store; returns distinct pairs fully dropped."""
        cmds: "OrderedDict[int, List[Tuple]]" = OrderedDict()
        for sid in range(self.n_shards):
            cmds[sid] = [(OP_PRUNE, sid)]
            if self._merger is not None:
                cmds[sid].append((OP_DELTAS, sid, self.now))
        results = self._backend.run(cmds)
        self._ingest_deltas(results)
        dropped: Set[PairKey] = set()
        for res in results.values():
            dropped.update(res[0])
        return len(dropped)

    # ------------------------------------------------------------------
    # Delta streams
    # ------------------------------------------------------------------
    def _ingest_deltas(self, results: Dict[int, List]) -> None:
        """Fold one round's per-shard delta pulls into the merger.

        Callers append the ``OP_DELTAS`` pull *last* to each shard's
        command list, so the contribution is ``res[-1]``.  Ingestion is
        replacement per shard and tick: a re-issued batch after a crash
        (whose restored shard re-reports its whole open tick) lands on
        the same slot instead of double-counting.
        """
        if self._merger is None:
            return
        for sid, res in results.items():
            self._merger.ingest(sid, self.now, res[-1])

    def deltas(self, t: Optional[float] = None):
        """The merged netted delta events at tick ``t`` (default: now).

        Same stream as the unsharded engines over the same workload:
        per-shard ledgers are merged in tick order with replica churn
        (ghost admissions/evictions) cancelled by holder-set counting.
        """
        if self._merger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        if t is None:
            t = self.now
        return self._merger.events_at(t)

    def watch(self, *, oid: Optional[int] = None, region=None):
        """Subscribe to the merged delta stream (see the serial engine)."""
        from ..deltas import DeltaSubscription

        if self._merger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        return DeltaSubscription(
            self._merger,
            oid=oid,
            region=region,
            index=self._pairs_index,
            region_oids=self._region_oids,
        )

    def _pairs_index(self, oid: int) -> Set[PairKey]:
        """Inverted-index lookup over the merged store (on demand)."""
        return self.merged_store().pairs_for_object(oid)

    def _region_oids(self, region) -> Set[int]:
        """Object ids whose bounding box intersects ``region`` right now."""
        found: Set[int] = set()
        for registry in (self.objects_a, self.objects_b):
            for obj in registry.values():
                if obj.mbr_at(self.now).intersects(region):
                    found.add(obj.oid)
        return found

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def store_dumps(self) -> Dict[int, List[Tuple]]:
        """Per-shard result-store contents (exact interval endpoints)."""
        return self._fan_all(OP_STORE_DUMP)

    def merged_store(self):
        """One :class:`~repro.core.result.JoinResultStore` equal to the
        serial engine's: the duplicate-free union of the shard stores."""
        from ..core.result import JoinResultStore
        from ..geometry import TimeInterval
        from ..join import JoinTriple

        store = JoinResultStore()
        for rows in self.store_dumps().values():
            for key, intervals in rows:
                if key in store:
                    continue  # every co-located copy is bit-identical
                for start, end in intervals:
                    store.add(JoinTriple(key[0], key[1], TimeInterval(start, end)))
        return store

    def cost_rollup(self) -> CostSnapshot:
        """Sum of the per-shard cumulative cost counters.

        After a crash recovery the affected shards' counters restart
        from the checkpoint rebuild — supervision trades exact cost
        continuity for state continuity (the result store *is* exact).
        """
        return _sum_costs(self._fan_all(OP_COST).values())

    def shard_costs(self) -> Dict[int, CostSnapshot]:
        return self._fan_all(OP_COST)

    def fault_stats(self) -> Optional[SupervisorStats]:
        """Supervision counters (``None`` for the serial backend)."""
        if self.supervisor is None:
            return None
        return self.supervisor.stats

    def obs_rollup(self) -> Optional[Dict[str, object]]:
        """Merged per-shard obs recordings (``None`` unless config.obs).

        The rollup keeps each shard's full span tree under ``shards``
        and sums their counter totals, so phase attribution survives
        the fan-out.
        """
        if not self.config.obs:
            return None
        recordings = self._fan_all(OP_OBS)
        totals: Dict[str, float] = {}
        shards = []
        for sid in sorted(recordings):
            recording = recordings[sid]
            if recording is None:
                continue
            shards.append({"shard": sid, "recording": recording})
            for name, value in recording.get("totals", {}).items():
                totals[name] = totals.get(name, 0) + value
        meta: Dict[str, object] = {
            "algorithm": self.algorithm,
            "shards": self.n_shards,
            "workers": self.workers,
        }
        if self.supervisor is not None:
            meta["supervisor"] = self.supervisor.stats.as_dict()
        return {
            "format": "repro.obs/rollup",
            "meta": meta,
            "totals": totals,
            "shards": shards,
        }

    # ------------------------------------------------------------------
    # Invariants / export
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """A JSON-safe snapshot for the SC401–SC403 shard sanitizer."""
        contents = self._fan_all(OP_OBJECTS)
        dumps = self.store_dumps()
        objects = []
        for dataset, registry in (("a", self.objects_a), ("b", self.objects_b)):
            for oid in sorted(registry):
                obj = registry[oid]
                objects.append(
                    {
                        "oid": oid,
                        "dataset": dataset,
                        "params": list(obj.kbox.params()),
                        "members": list(self._members[oid]),
                    }
                )
        supervisor_state = (
            None
            if self.supervisor is None
            else self.supervisor.export_state(now=self.now)
        )
        return {
            "format": "repro.par/1",
            "algorithm": self.algorithm,
            "axis": self.partition.axis,
            "cuts": list(self.partition.cuts),
            "ghost_horizon": self.ghost_horizon,
            "now": self.now,
            "supervisor": supervisor_state,
            "objects": objects,
            "shards": [
                {
                    "shard": sid,
                    "objects_a": list(contents[sid][0]),
                    "objects_b": list(contents[sid][1]),
                    "store": [
                        [list(key), [list(iv) for iv in intervals]]
                        for key, intervals in sorted(dumps[sid])
                    ],
                }
                for sid in sorted(contents)
            ],
        }

    def validate(self) -> None:
        """Run the SC401–SC403 shard invariants (plus the SC501–SC503
        supervisor invariants when supervised, and the SC701–SC703
        delta reconciliation when delta streams are on); raise on any
        finding."""
        from ..check.sanitize import (
            check_delta_ledger,
            check_sharded_state,
            check_supervisor_state,
            raise_on_findings,
        )

        state = self.export_state()
        findings = check_sharded_state(state)
        if state.get("supervisor") is not None:
            findings = findings + check_supervisor_state(state["supervisor"])
        if self._merger is not None:
            findings = findings + check_delta_ledger(
                self.merged_store(), self._merger, label="sharded-deltas"
            )
        raise_on_findings(findings)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _fan_all(self, op: str, *args) -> Dict[int, object]:
        cmds = OrderedDict(
            (sid, [(op, sid) + args]) for sid in range(self.n_shards)
        )
        return {sid: res[0] for sid, res in self._backend.run(cmds).items()}

    def _run_everywhere(self, template: Tuple) -> None:
        op, _sid, *args = template
        self._fan_all(op, *args)

    def close(self) -> None:
        """Shut down pool workers (no-op when serial or already closed)."""
        if not self._closed:
            self._backend.close()
            self._closed = True

    def __enter__(self) -> "ShardedJoinEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedJoinEngine(algorithm={self.algorithm!r}, "
            f"K={self.n_shards}, workers={self.workers}, "
            f"|A|={len(self.objects_a)}, |B|={len(self.objects_b)}, "
            f"now={self.now:g})"
        )


def _sum_costs(snapshots: Iterable[CostSnapshot]) -> CostSnapshot:
    total = CostSnapshot(0, 0, 0, 0, 0.0)
    for snap in snapshots:
        total = CostSnapshot(
            total.page_reads + snap.page_reads,
            total.page_writes + snap.page_writes,
            total.pair_tests + snap.pair_tests,
            total.node_visits + snap.node_visits,
            total.cpu_seconds + snap.cpu_seconds,
        )
    return total
