"""Worker-side execution of shard commands.

A shard's engine is stateful, so pool execution routes every command
for shard ``s`` to the *same* single-worker executor; inside that
process the engine lives in the module-global :data:`_ENGINES`
registry, keyed by shard id.  The serial (``workers=0``) backend runs
the identical :func:`execute` dispatch on an in-process registry, so
both paths share one command semantics.

Commands are plain tuples ``(op, shard_id, *args)``; results are plain
picklable values (tuples, dicts, :class:`~repro.metrics.CostSnapshot`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.columnar import ColumnarJoinEngine
from ..core.config import JoinConfig
from ..core.engine import ContinuousJoinEngine
from ..faults import FaultPlan
from ..objects import MovingObject
from .protocol import (
    COMMANDS,
    OP_BUILD,
    OP_CHECKPOINT,
    OP_COST,
    OP_DELTAS,
    OP_INITIAL_JOIN,
    OP_OBJECTS,
    OP_OBS,
    OP_OPS,
    OP_PAIRS_AT,
    OP_PRUNE,
    OP_RESTORE,
    OP_STORE_DUMP,
    OP_TICK,
    SHARD_OP_ADMIT,
    SHARD_OP_EVICT,
    SHARD_OP_UPDATE,
)

__all__ = [
    "build_spec",
    "execute",
    "run_commands",
    "apply_shard_ops",
    "serve",
    "make_checkpoint",
    "restore_engine",
    "checkpoint_spec",
    "CHECKPOINT_FORMAT",
]

#: Version tag of the picklable checkpoint blob.  ``/2`` switched the
#: blob from a positional tuple to explicit dict keys so producers and
#: consumers can be cross-checked statically (RC104); ``/3`` added the
#: ``delta_seed`` key — the open tick's netted delta events — so a
#: restored shard's delta ledger resumes exactly-once mid-tick; ``/4``
#: added the ``engine`` key (``"object"`` | ``"columnar"``) so restore
#: rebuilds the same engine class the shard was running
#: (``JoinConfig.shard_engine``).
CHECKPOINT_FORMAT = "repro.par.ckpt/4"

#: Either engine class a shard may run (``JoinConfig.shard_engine``).
ShardEngine = Union[ContinuousJoinEngine, ColumnarJoinEngine]

#: Per-process registry of shard engines (pool workers only).
_ENGINES: Dict[int, ShardEngine] = {}


def _engine_class(config: JoinConfig):
    """The engine class ``config.shard_engine`` selects."""
    return (
        ColumnarJoinEngine
        if config.shard_engine == "columnar"
        else ContinuousJoinEngine
    )


def _engine_kind(engine: ShardEngine) -> str:
    """The ``shard_engine`` tag of a live engine (checkpoint key)."""
    return "columnar" if isinstance(engine, ColumnarJoinEngine) else "object"


def _result_store(engine: ShardEngine):
    """The engine's result store, independent of engine layout.

    The columnar engine exposes it as ``engine.store``; the object
    engine keeps it behind the strategy.  Explicit ``None`` test — an
    empty store is falsy, so ``or``-chaining would misroute it.
    """
    store = getattr(engine, "store", None)
    return engine._strategy.store if store is None else store


def build_spec(
    objects_a: Sequence[MovingObject],
    objects_b: Sequence[MovingObject],
    algorithm: str,
    config: JoinConfig,
    start_time: float,
) -> Tuple:
    """The picklable recipe from which a shard engine is built."""
    return (list(objects_a), list(objects_b), algorithm, config, start_time)


def apply_shard_ops(engine: ShardEngine, ops: Sequence[Tuple]) -> None:
    """Apply one tick's membership-resolved op batch to a shard engine.

    ``ops`` mixes ``("update", obj)`` for objects staying resident,
    ``("admit", obj, dataset)`` for objects whose halo grew into the
    shard, and ``("evict", oid)`` for halos that left; the whole batch
    group-commits through
    :meth:`~repro.core.engine.ContinuousJoinEngine.apply_updates`.
    """
    updates: List[MovingObject] = []
    admissions: List[Tuple[MovingObject, str]] = []
    evictions: List[int] = []
    for op in ops:
        kind = op[0]
        if kind == SHARD_OP_UPDATE:
            updates.append(op[1])
        elif kind == SHARD_OP_ADMIT:
            admissions.append((op[1], op[2]))
        elif kind == SHARD_OP_EVICT:
            evictions.append(op[1])
        else:
            raise ValueError(f"unknown shard op {kind!r}")
    engine.apply_updates(updates, admit=admissions, evict=evictions)


def _dump_store(engine: ShardEngine) -> List[Tuple]:
    """The result store as ``(key, ((start, end), …))`` rows."""
    return list(_result_store(engine).interval_rows().items())


def _pull_deltas(engine: ShardEngine, t: float) -> Tuple:
    """The shard's cumulative netted delta events at tick ``t``.

    Non-mutating and therefore never op-logged: the parent may re-pull
    after any failure and the reply always carries the *whole* net for
    the tick (the merge layer ingests it with replacement semantics).
    Empty when the shard keeps no ledger (``config.deltas`` off).
    """
    ledger = getattr(engine, "ledger", None)
    if ledger is None:
        return ()
    with engine._span("engine.deltas", t=t):
        return tuple(ledger.events_at(t))


def _open_delta_events(engine: ShardEngine) -> Tuple:
    """Plain-tuple ``(sign, a, b, start, end)`` rows of the open tick.

    Checkpoint payload: a checkpoint can land mid-tick (between
    mutation rounds), and replay alone would only reconstruct the
    rounds *after* it — seeding the restored ledger with these rows
    makes its open-tick net equal the original net-from-tick-start.
    """
    ledger = getattr(engine, "ledger", None)
    if ledger is None:
        return ()
    return tuple(
        (ev.sign, ev.a_oid, ev.b_oid, ev.start, ev.end)
        for ev in ledger.events_at(engine.now)
    )


def make_checkpoint(engine: ShardEngine) -> Dict:
    """Serialize a shard engine into a picklable recovery blob.

    The blob is the *rebuild recipe*, not the structure: the engine's
    current objects as a build spec referenced at ``engine.now`` plus
    the exact result-store rows.  A fresh engine built from the spec
    has the same future behaviour (index shape may differ; search
    answers are shape-independent) and re-adding the dumped rows
    reproduces the store bit-for-bit — so checkpoint + op-log replay
    lands on the exact pre-crash state.  The ``engine`` key records
    which engine class was running, so a columnar shard restores as a
    columnar shard even under a config whose default differs.
    """
    spec = build_spec(
        list(engine.objects_a.values()),
        list(engine.objects_b.values()),
        engine.algorithm,
        engine.config,
        engine.now,
    )
    return {
        "format": CHECKPOINT_FORMAT,
        "spec": spec,
        "rows": _dump_store(engine),
        "update_count": engine.update_count,
        "delta_seed": _open_delta_events(engine),
        "engine": _engine_kind(engine),
    }


def _checked_blob(blob: Dict) -> Dict:
    fmt = blob.get("format") if isinstance(blob, dict) else None
    if fmt != CHECKPOINT_FORMAT:
        raise ValueError(f"unknown checkpoint format {fmt!r}")
    return blob


def checkpoint_spec(blob: Dict) -> Tuple:
    """The build spec embedded in a checkpoint blob."""
    return _checked_blob(blob)["spec"]


def restore_engine(blob: Dict) -> ShardEngine:
    """Rebuild a shard engine from a checkpoint blob.

    The ``engine`` tag picks the class; the store re-add is one
    :meth:`~repro.core.result.JoinResultStore.add_batch` over the
    dumped rows — already canonical (sorted, merged, disjoint), so both
    store layouts land on the exact pre-checkpoint planes/lists.
    """
    blob = _checked_blob(blob)
    rows = blob["rows"]
    update_count = blob["update_count"]
    seed = blob["delta_seed"]
    objects_a, objects_b, algorithm, config, start_time = blob["spec"]
    cls = ColumnarJoinEngine if blob["engine"] == "columnar" else ContinuousJoinEngine
    engine = cls(
        objects_a,
        objects_b,
        algorithm=algorithm,
        config=config,
        start_time=start_time,
    )
    store = _result_store(engine)
    # Detach any fresh ledger while the dump is re-added: re-adding
    # history must not re-emit it as delta events.
    if engine.ledger is not None:
        store.attach_ledger(None)
    flat_a: List[int] = []
    flat_b: List[int] = []
    flat_lo: List[float] = []
    flat_hi: List[float] = []
    for key, intervals in rows:
        for start, end in intervals:
            flat_a.append(key[0])
            flat_b.append(key[1])
            flat_lo.append(start)
            flat_hi.append(end)
    if flat_a:
        store.add_batch(flat_a, flat_b, flat_lo, flat_hi)
    if engine.ledger is not None:
        _reseed_ledger(engine, store, rows, seed)
    engine.update_count = update_count
    engine._sanitize()
    return engine


def _reseed_ledger(engine: ShardEngine, store, rows, seed) -> None:
    """Re-arm a restored engine's delta ledger, exactly-once.

    The checkpoint rows are the store *at checkpoint time* = the
    tick-start state plus the seeded open-tick events.  Inverting the
    seed against the rows recovers the tick-start state, which becomes
    the fresh ledger's baseline; re-recording the seed then makes
    ``events_at(open tick)`` equal the original net-from-tick-start, so
    replayed rounds extend the net instead of restarting it and the
    ``SC701`` reconciliation (baseline ⊕ events == store) holds from
    the first post-restore sanitize on.
    """
    from ..deltas import DeltaLedger, DeltaView

    view = DeltaView({key: intervals for key, intervals in rows})
    for sign, a, b, start, end in seed:
        view.apply_row(-sign, a, b, start, end)
    fresh = DeltaLedger(engine.now, baseline=view.rows())
    for sign, a, b, start, end in seed:
        fresh.record(sign, a, b, start, end)
    engine.ledger = fresh
    store.attach_ledger(fresh)


def _prune(engine: ShardEngine) -> List[Tuple[int, int]]:
    """Prune expired intervals; returns the pair keys fully dropped."""
    store = _result_store(engine)
    before = store.pair_keys()
    engine.prune_expired()
    after = set(store.pair_keys())
    return [key for key in before if key not in after]


def execute(
    engines: Dict[int, ShardEngine], cmds: Sequence[Tuple]
) -> List[Any]:
    """Run a command batch against a registry; one result per command.

    Every command is validated against its :data:`~repro.par.protocol.
    COMMANDS` spec before dispatch: an unknown op or a wrong payload
    arity is a deterministic :class:`ValueError`, never a silent
    misread of the tuple.
    """
    out: List[Any] = []
    for cmd in cmds:
        op, sid = cmd[0], cmd[1]
        spec = COMMANDS.get(op)
        if spec is None:
            raise ValueError(f"unknown shard command {op!r}")
        if len(cmd) != 2 + spec.n_args:
            raise ValueError(
                f"command {op!r} takes {spec.n_args} argument(s), "
                f"got {len(cmd) - 2}"
            )
        if op == OP_BUILD:
            objects_a, objects_b, algorithm, config, start_time = cmd[2]
            engines[sid] = _engine_class(config)(
                objects_a,
                objects_b,
                algorithm=algorithm,
                config=config,
                start_time=start_time,
            )
            out.append(engines[sid].build_cost)
            continue
        if op == OP_RESTORE:
            engines[sid] = restore_engine(cmd[2])
            out.append(None)
            continue
        engine = engines[sid]
        if op == OP_INITIAL_JOIN:
            out.append(engine.run_initial_join())
        elif op == OP_TICK:
            engine.tick(cmd[2])
            out.append(None)
        elif op == OP_OPS:
            apply_shard_ops(engine, cmd[2])
            out.append(None)
        elif op == OP_PAIRS_AT:
            out.append(engine.result_at(cmd[2]))
        elif op == OP_STORE_DUMP:
            out.append(_dump_store(engine))
        elif op == OP_OBJECTS:
            out.append(
                (
                    sorted(engine.objects_a),
                    sorted(engine.objects_b),
                )
            )
        elif op == OP_PRUNE:
            out.append(_prune(engine))
        elif op == OP_COST:
            out.append(engine.tracker.snapshot())
        elif op == OP_OBS:
            out.append(None if engine.obs is None else engine.obs.to_dict())
        elif op == OP_CHECKPOINT:
            out.append(make_checkpoint(engine))
        elif op == OP_DELTAS:
            out.append(_pull_deltas(engine, cmd[2]))
        else:
            raise ValueError(f"unknown shard command {op!r}")
    return out


def run_commands(cmds: Sequence[Tuple]) -> List[Any]:
    """Pool-worker entry point: dispatch against this process's registry."""
    return execute(_ENGINES, cmds)


def serve(conn, fault_spec: Optional[str] = None) -> None:
    """Pipe-worker main loop: answer command batches until told to stop.

    Each request is one picklable command list; the reply is
    ``("ok", results)`` or ``("error", traceback_text)`` — errors are
    reported rather than killing the worker, so the engine state held
    in :data:`_ENGINES` survives a failed command for post-mortem
    commands.  A result that cannot be pickled is downgraded to a
    structured ``("error", …)`` reply too, so the request/reply framing
    never desyncs.  A ``None`` request (or a closed pipe) shuts down.

    ``fault_spec`` arms deterministic fault injection
    (:mod:`repro.faults`): ``None`` reads ``REPRO_FAULTS`` from the
    environment, the empty string disarms entirely (the supervisor
    passes ``""`` on respawn so injected crashes cannot re-fire during
    recovery).
    """
    plan = FaultPlan.from_env() if fault_spec is None else FaultPlan.parse(fault_spec)
    while True:
        try:
            cmds = conn.recv()
        except EOFError:
            break
        if cmds is None:
            break
        try:
            if plan:
                for cmd in cmds:
                    plan.before_command(cmd)
            results = run_commands(cmds)
            if plan:
                plan.poison_results(cmds, results)
            reply = ("ok", results)
        except Exception:  # noqa: BLE001 - reported, not swallowed
            import traceback

            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except Exception:  # unpicklable result: keep the framing intact
            import traceback

            try:
                conn.send(("error", traceback.format_exc()))
            except Exception:  # pragma: no cover - parent pipe gone
                break
    conn.close()
