"""Single source of truth for the shard command vocabulary.

Every supervisor↔worker command is a plain tuple ``(op, shard_id,
*args)``.  Before this module the op names lived as bare string
literals spread over four files (:mod:`repro.par.worker` dispatch,
:mod:`repro.par.sharded` emission, :mod:`repro.par.supervisor` op-log
bookkeeping, :mod:`repro.faults` filters), and the exactly-once
recovery guarantee hinged on those copies never drifting.  Now the
vocabulary is declared once, here, and everything else derives from it:

* :data:`COMMANDS` — one :class:`CommandSpec` per op: payload arity
  (arguments after ``(op, shard_id)``) and whether the op mutates shard
  state.  Dispatch validates arity against it; the supervisor logs
  exactly the mutating ops.
* :data:`MUTATING_OPS` / :data:`BASE_OPS` — derived sets, never
  hand-maintained lists.
* :data:`SHARD_OPS` — the membership sub-ops carried inside one
  ``OP_OPS`` batch.
* :func:`known_fault_ops` — the op names a fault spec may filter on
  (every command op plus the parent-side :data:`REPLY_DROP_OP`).

The flow analysis (:mod:`repro.check.flow`, codes ``RC101``–``RC107``)
statically cross-checks this declaration against the real dispatch,
emission, and op-log code, so an op added in one place but not the
others fails CI instead of silently breaking recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CommandSpec",
    "COMMANDS",
    "OPS",
    "MUTATING_OPS",
    "BASE_OPS",
    "SHARD_OPS",
    "REPLY_DROP_OP",
    "known_fault_ops",
    "OP_BUILD",
    "OP_RESTORE",
    "OP_INITIAL_JOIN",
    "OP_TICK",
    "OP_OPS",
    "OP_PAIRS_AT",
    "OP_STORE_DUMP",
    "OP_OBJECTS",
    "OP_PRUNE",
    "OP_COST",
    "OP_OBS",
    "OP_CHECKPOINT",
    "OP_DELTAS",
    "SHARD_OP_UPDATE",
    "SHARD_OP_ADMIT",
    "SHARD_OP_EVICT",
]

# -- command ops -------------------------------------------------------
OP_BUILD = "build"
OP_RESTORE = "restore"
OP_INITIAL_JOIN = "initial_join"
OP_TICK = "tick"
OP_OPS = "ops"
OP_PAIRS_AT = "pairs_at"
OP_STORE_DUMP = "store_dump"
OP_OBJECTS = "objects"
OP_PRUNE = "prune"
OP_COST = "cost"
OP_OBS = "obs"
OP_CHECKPOINT = "checkpoint"
OP_DELTAS = "deltas"


@dataclass(frozen=True)
class CommandSpec:
    """Declared shape of one command op.

    ``n_args`` is the payload arity: a well-formed command tuple has
    exactly ``2 + n_args`` elements (``op``, ``shard_id``, payload).
    ``mutating`` marks ops that change shard state and therefore must
    enter the supervisor's op log for checkpoint/replay recovery.
    """

    op: str
    n_args: int
    mutating: bool
    doc: str


#: The whole vocabulary.  ``mutating`` flags here are the op log's
#: ground truth; the flow analysis verifies them against what each
#: dispatch arm actually does to the engine (RC103).
COMMANDS = {
    OP_BUILD: CommandSpec(
        OP_BUILD, n_args=1, mutating=True,
        doc="construct a shard engine from a build spec",
    ),
    OP_RESTORE: CommandSpec(
        OP_RESTORE, n_args=1, mutating=True,
        doc="rebuild a shard engine from a checkpoint blob",
    ),
    OP_INITIAL_JOIN: CommandSpec(
        OP_INITIAL_JOIN, n_args=0, mutating=True,
        doc="run the initial join, populating the result store",
    ),
    OP_TICK: CommandSpec(
        OP_TICK, n_args=1, mutating=True,
        doc="advance the shard clock to the given timestamp",
    ),
    OP_OPS: CommandSpec(
        OP_OPS, n_args=1, mutating=True,
        doc="group-commit one membership-resolved update batch",
    ),
    OP_PAIRS_AT: CommandSpec(
        OP_PAIRS_AT, n_args=1, mutating=False,
        doc="answer the intersecting pairs at a timestamp",
    ),
    OP_STORE_DUMP: CommandSpec(
        OP_STORE_DUMP, n_args=0, mutating=False,
        doc="dump the result store as exact interval rows",
    ),
    OP_OBJECTS: CommandSpec(
        OP_OBJECTS, n_args=0, mutating=False,
        doc="list the resident object ids of both datasets",
    ),
    OP_PRUNE: CommandSpec(
        OP_PRUNE, n_args=0, mutating=True,
        doc="drop expired intervals from the result store",
    ),
    OP_COST: CommandSpec(
        OP_COST, n_args=0, mutating=False,
        doc="snapshot the cumulative cost counters",
    ),
    OP_OBS: CommandSpec(
        OP_OBS, n_args=0, mutating=False,
        doc="export the observability recording",
    ),
    OP_CHECKPOINT: CommandSpec(
        OP_CHECKPOINT, n_args=0, mutating=False,
        doc="serialize the engine into a recovery blob",
    ),
    OP_DELTAS: CommandSpec(
        OP_DELTAS, n_args=1, mutating=False,
        doc="enumerate the shard's netted delta events at a tick",
    ),
}

#: Every command op, in declaration order.
OPS = tuple(COMMANDS)

#: Ops that enter the supervisor op log (derived, never listed twice).
MUTATING_OPS = frozenset(
    op for op, spec in COMMANDS.items() if spec.mutating
)

#: Ops that (re)create a shard engine and therefore reset the replay
#: base: everything logged before them is obsolete.
BASE_OPS = frozenset({OP_BUILD, OP_RESTORE})

# -- membership sub-ops (the payload of one OP_OPS batch) --------------
SHARD_OP_UPDATE = "update"
SHARD_OP_ADMIT = "admit"
SHARD_OP_EVICT = "evict"

#: Sub-ops :func:`repro.par.worker.apply_shard_ops` understands.
SHARD_OPS = (SHARD_OP_UPDATE, SHARD_OP_ADMIT, SHARD_OP_EVICT)

#: Pseudo-op the supervisor's parent-side ``drop`` fault matches on
#: (a reply is a whole batch, not any single command).
REPLY_DROP_OP = "reply"


def known_fault_ops() -> frozenset:
    """Op names a fault spec's ``op=`` filter may legally name."""
    return frozenset(OPS) | {REPLY_DROP_OP}
