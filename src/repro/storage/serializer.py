"""Binary (de)serialization helpers for page payloads.

Index nodes are serialized with :mod:`struct` into little-endian binary
records.  The sequential :class:`StructWriter` / :class:`StructReader`
pair keeps the node codec in :mod:`repro.index.codec` short and
symmetric, and makes the *bytes-per-entry* arithmetic (which determines
node capacity for a 4 KiB page) explicit and testable.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

__all__ = ["StructWriter", "StructReader", "BytesCodec"]

_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_U8 = struct.Struct("<B")


class StructWriter:
    """Appends primitive values to a growing byte buffer.

    >>> w = StructWriter()
    >>> w.write_i64(-5); w.write_f64(2.5)
    >>> r = StructReader(w.getvalue())
    >>> r.read_i64(), r.read_f64()
    (-5, 2.5)
    """

    __slots__ = ("_chunks",)

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def write_f64(self, value: float) -> None:
        self._chunks.append(_F64.pack(value))

    def write_i64(self, value: int) -> None:
        self._chunks.append(_I64.pack(value))

    def write_u8(self, value: int) -> None:
        self._chunks.append(_U8.pack(value))

    def write_f64s(self, values: Sequence[float]) -> None:
        self._chunks.append(struct.pack(f"<{len(values)}d", *values))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)


class StructReader:
    """Sequentially decodes values written by :class:`StructWriter`."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read_f64(self) -> float:
        value = _F64.unpack_from(self._data, self._pos)[0]
        self._pos += _F64.size
        return value

    def read_i64(self) -> int:
        value = _I64.unpack_from(self._data, self._pos)[0]
        self._pos += _I64.size
        return value

    def read_u8(self) -> int:
        value = _U8.unpack_from(self._data, self._pos)[0]
        self._pos += _U8.size
        return value

    def read_f64s(self, count: int) -> List[float]:
        values = list(struct.unpack_from(f"<{count}d", self._data, self._pos))
        self._pos += 8 * count
        return values

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


class BytesCodec:
    """Identity codec: pages whose objects already are ``bytes``.

    Handy for storage-layer tests that don't involve index nodes.
    """

    def encode(self, obj: bytes) -> bytes:
        return bytes(obj)

    def decode(self, data: bytes) -> bytes:
        return bytes(data)
