"""A simulated page-oriented disk.

The paper evaluates disk-resident indexes with a 4 KiB page size and
reports the number of disk I/Os.  :class:`DiskManager` models exactly
that: a flat space of fixed-size pages addressed by page id.  Every
physical read/write increments the shared :class:`~repro.metrics.
CostTracker`; the buffer pool above it (:mod:`repro.storage.buffer`)
absorbs repeated accesses so that only buffer *misses* reach here — the
same accounting the paper uses.

Pages hold arbitrary ``bytes`` up to ``page_size``.  Contents are copied
on the way in and out, so callers can never mutate "disk" state by
aliasing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import CostTracker

__all__ = ["DEFAULT_PAGE_SIZE", "CorruptPageError", "DiskManager", "PageError"]

DEFAULT_PAGE_SIZE = 4096


class PageError(Exception):
    """Raised on invalid page ids or oversized payloads."""


class CorruptPageError(PageError):
    """Raised when persisted bytes fail their integrity checksum.

    The file-backed substrates (:mod:`repro.storage.file_disk`,
    :mod:`repro.storage.column_pages`) guard every payload with a CRC32
    recorded at write time and verified on read; a mismatch — a
    truncated file, a flipped bit, a short page — surfaces as this
    error instead of silently decoding garbage.
    """


class DiskManager:
    """Fixed-size-page storage with allocation and I/O accounting.

    >>> disk = DiskManager()
    >>> pid = disk.allocate()
    >>> disk.write_page(pid, b"hello")
    >>> disk.read_page(pid)
    b'hello'
    >>> disk.tracker.page_reads, disk.tracker.page_writes
    (1, 1)
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        tracker: Optional[CostTracker] = None,
    ):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.tracker = tracker if tracker is not None else CostTracker()
        self._pages: Dict[int, bytes] = {}
        self._free: List[int] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a fresh (or recycled) page id."""
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = b""
        return pid

    def deallocate(self, page_id: int) -> None:
        """Release a page for reuse.  The contents are discarded."""
        self._check_id(page_id)
        del self._pages[page_id]
        self._free.append(page_id)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        """Physically read a page (counted as one I/O)."""
        self._check_id(page_id)
        self.tracker.count_read()
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        """Physically write a page (counted as one I/O)."""
        self._check_id(page_id)
        if len(data) > self.page_size:
            raise PageError(
                f"payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self.tracker.count_write()
        self._pages[page_id] = bytes(data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    @property
    def usable_page_size(self) -> int:
        """Payload bytes one page can hold (no framing overhead here)."""
        return self.page_size

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._pages

    def _check_id(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise PageError(f"page {page_id} is not allocated")

    def __repr__(self) -> str:
        return (
            f"DiskManager(pages={self.num_pages}, page_size={self.page_size}, "
            f"reads={self.tracker.page_reads}, writes={self.tracker.page_writes})"
        )
