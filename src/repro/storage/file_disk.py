"""A file-backed disk manager: pages persisted to a real file.

The in-memory :class:`~repro.storage.disk.DiskManager` is the default
substrate for experiments (its I/O *counts* are what the paper reports).
:class:`FileDiskManager` stores the same fixed-size pages in an actual
file on the operating system's disk, giving the library true
persistence: an index built in one process can be reopened in another.

File layout: a small header page (magic, page size, page count,
free-list head) followed by data pages at offset
``HEADER + page_id * page_size``.  Freed pages are chained through
their first 8 bytes.

Format versions
---------------
Version 2 files (magic ``RPRODSK2``) frame every data page as
``length, crc32, payload`` and verify the checksum on each
:meth:`~FileDiskManager.read_page`, raising
:class:`~repro.storage.disk.CorruptPageError` on a flipped bit or a
truncated page.  Version 1 files (magic ``RPRODISK``, length-only
framing) remain fully readable and writable — the version is detected
from the magic on open, and new files are always created as version 2.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional

from ..metrics import CostTracker
from .disk import DEFAULT_PAGE_SIZE, CorruptPageError, PageError

__all__ = ["FileDiskManager"]

_MAGIC_V1 = b"RPRODISK"
_MAGIC_V2 = b"RPRODSK2"
_HEADER = struct.Struct("<8sqqq")  # magic, page_size, next_id, free_head
_PAGE_V1 = struct.Struct("<i")  # payload length
_PAGE_V2 = struct.Struct("<iI")  # payload length, crc32(payload)
_FREE_LINK = struct.Struct("<q")
_NO_FREE = -1


class FileDiskManager:
    """Drop-in replacement for :class:`DiskManager` backed by a file.

    Supports the same ``allocate / deallocate / read_page / write_page``
    protocol, so :class:`~repro.storage.buffer.BufferPool` and the trees
    run unchanged on top of it.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "pages.db")
    >>> disk = FileDiskManager(path)
    >>> pid = disk.allocate()
    >>> disk.write_page(pid, b"durable")
    >>> disk.close()
    >>> FileDiskManager(path).read_page(pid)
    b'durable'
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        tracker: Optional[CostTracker] = None,
    ):
        if page_size <= _PAGE_V2.size:
            raise ValueError("page_size too small")
        self.path = path
        self.tracker = tracker if tracker is not None else CostTracker()
        exists = os.path.exists(path) and os.path.getsize(path) >= _HEADER.size
        self._file = open(path, "r+b" if exists else "w+b")
        if exists:
            self._load_header()
            if self.page_size != page_size and page_size != DEFAULT_PAGE_SIZE:
                raise PageError(
                    f"file has page size {self.page_size}, asked for {page_size}"
                )
        else:
            self.page_size = page_size
            self.format_version = 2
            self._next_id = 0
            self._free_head = _NO_FREE
            self._store_header()
        # Allocation bitmap is kept in memory; pages on the free chain
        # are not allocated.
        self._allocated = set(range(self._next_id))
        head = self._free_head
        while head != _NO_FREE:
            self._allocated.discard(head)
            head = _FREE_LINK.unpack(self._read_raw(head)[: _FREE_LINK.size])[0]

    # ------------------------------------------------------------------
    # DiskManager protocol
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        if self._free_head != _NO_FREE:
            pid = self._free_head
            self._free_head = _FREE_LINK.unpack(
                self._read_raw(pid)[: _FREE_LINK.size]
            )[0]
        else:
            pid = self._next_id
            self._next_id += 1
        # Clear the page so a recycled slot never exposes a stale free
        # link as its framing header (all-zero framing decodes as the
        # empty payload in both versions: crc32(b"") == 0).
        self._write_raw(pid, b"")
        self._allocated.add(pid)
        self._store_header()
        return pid

    def deallocate(self, page_id: int) -> None:
        self._check(page_id)
        self._allocated.discard(page_id)
        self._write_raw(page_id, _FREE_LINK.pack(self._free_head))
        self._free_head = page_id
        self._store_header()

    def read_page(self, page_id: int) -> bytes:
        self._check(page_id)
        self.tracker.count_read()
        data = self._read_raw(page_id)
        if self.format_version >= 2:
            length, crc = _PAGE_V2.unpack_from(data, 0)
            if length < 0 or length > self.page_size - _PAGE_V2.size:
                raise CorruptPageError(
                    f"{self.path}: page {page_id} has invalid payload "
                    f"length {length}"
                )
            payload = bytes(data[_PAGE_V2.size : _PAGE_V2.size + length])
            if zlib.crc32(payload) != crc:
                raise CorruptPageError(
                    f"{self.path}: page {page_id} failed its CRC32 check"
                )
            return payload
        length = _PAGE_V1.unpack_from(data, 0)[0]
        return bytes(data[_PAGE_V1.size : _PAGE_V1.size + length])

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        if len(data) > self.usable_page_size:
            raise PageError(
                f"payload of {len(data)} bytes exceeds usable page size "
                f"{self.usable_page_size}"
            )
        self.tracker.count_write()
        if self.format_version >= 2:
            framed = _PAGE_V2.pack(len(data), zlib.crc32(data)) + data
        else:
            framed = _PAGE_V1.pack(len(data)) + data
        self._write_raw(page_id, framed)

    @property
    def num_pages(self) -> int:
        return len(self._allocated)

    @property
    def usable_page_size(self) -> int:
        """Payload bytes one page can hold after framing overhead."""
        frame = _PAGE_V2.size if self.format_version >= 2 else _PAGE_V1.size
        return self.page_size - frame

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._allocated

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush OS buffers to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._store_header()
        self._file.flush()
        self._file.close()

    def __enter__(self) -> "FileDiskManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _offset(self, page_id: int) -> int:
        return _HEADER.size + page_id * self.page_size

    def _read_raw(self, page_id: int) -> bytes:
        self._file.seek(self._offset(page_id))
        data = self._file.read(self.page_size)
        return data.ljust(self.page_size, b"\x00")

    def _write_raw(self, page_id: int, data: bytes) -> None:
        self._file.seek(self._offset(page_id))
        self._file.write(data.ljust(self.page_size, b"\x00"))

    def _check(self, page_id: int) -> None:
        if page_id not in self._allocated:
            raise PageError(f"page {page_id} is not allocated")

    def _store_header(self) -> None:
        magic = _MAGIC_V2 if self.format_version >= 2 else _MAGIC_V1
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(magic, self.page_size, self._next_id, self._free_head)
        )

    def _load_header(self) -> None:
        self._file.seek(0)
        magic, page_size, next_id, free_head = _HEADER.unpack(
            self._file.read(_HEADER.size)
        )
        if magic == _MAGIC_V2:
            self.format_version = 2
        elif magic == _MAGIC_V1:
            self.format_version = 1
        else:
            raise PageError(f"{self.path} is not a repro page file")
        self.page_size = page_size
        self._next_id = next_id
        self._free_head = free_head

    def __repr__(self) -> str:
        return (
            f"FileDiskManager(path={self.path!r}, pages={self.num_pages}, "
            f"page_size={self.page_size}, v{self.format_version})"
        )
