"""An LRU buffer pool over the simulated disk.

The paper's experiments run every algorithm behind an LRU buffer of 50
pages (§VI-A, following the TP-query paper's suggestion).  This module
reproduces that: page accesses that hit the buffer are free; misses cost
one physical read, and evicting a dirty frame costs one physical write.

The pool caches *decoded* objects, not raw bytes, via a pluggable
:class:`PageCodec`; encoding/decoding only happens at the disk boundary,
exactly where a real system would (de)serialize.  This keeps the I/O
accounting honest while avoiding pointless re-parsing on every logical
access.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Protocol, TypeVar

from .disk import DiskManager

__all__ = ["PageCodec", "BufferPool", "DEFAULT_BUFFER_PAGES"]

DEFAULT_BUFFER_PAGES = 50

T = TypeVar("T")


class PageCodec(Protocol[T]):
    """Translates between in-memory page objects and page bytes."""

    def encode(self, obj: T) -> bytes:  # pragma: no cover - protocol
        ...

    def decode(self, data: bytes) -> T:  # pragma: no cover - protocol
        ...


class _Frame(Generic[T]):
    __slots__ = ("obj", "dirty")

    def __init__(self, obj: T, dirty: bool):
        self.obj = obj
        self.dirty = dirty


class BufferPool(Generic[T]):
    """LRU cache of decoded pages with write-back eviction.

    >>> from repro.storage.serializer import BytesCodec
    >>> disk = DiskManager()
    >>> pool = BufferPool(disk, BytesCodec(), capacity=2)
    >>> pid = disk.allocate()
    >>> pool.put(pid, b"x")         # dirty in buffer, no I/O yet
    >>> pool.get(pid)               # hit, still no read I/O
    b'x'
    >>> disk.tracker.page_reads
    0
    """

    def __init__(self, disk: DiskManager, codec: PageCodec[T], capacity: int = DEFAULT_BUFFER_PAGES):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.disk = disk
        self.codec = codec
        self.capacity = capacity
        self._frames: "OrderedDict[int, _Frame[T]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Logical page access
    # ------------------------------------------------------------------
    def get(self, page_id: int) -> T:
        """Fetch a page object, reading from disk on a buffer miss."""
        frame = self._frames.get(page_id)
        obs = self.disk.tracker.obs
        if frame is not None:
            self.hits += 1
            if obs is not None:
                obs.count("buffer_hits")
            self._frames.move_to_end(page_id)
            return frame.obj
        self.misses += 1
        if obs is not None:
            obs.count("buffer_misses")
        obj = self.codec.decode(self.disk.read_page(page_id))
        self._admit(page_id, _Frame(obj, dirty=False))
        return obj

    def put(self, page_id: int, obj: T) -> None:
        """Install/overwrite a page object and mark it dirty.

        The physical write is deferred until eviction or :meth:`flush`,
        mirroring a write-back buffer.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.obj = obj
            frame.dirty = True
            self._frames.move_to_end(page_id)
            return
        self._admit(page_id, _Frame(obj, dirty=True))

    def mark_dirty(self, page_id: int) -> None:
        """Flag an already-buffered page as modified in place."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise KeyError(f"page {page_id} is not buffered")
        frame.dirty = True
        self._frames.move_to_end(page_id)

    def discard(self, page_id: int) -> None:
        """Drop a page from the buffer without writing it back.

        Used when the page itself is being deallocated.
        """
        self._frames.pop(page_id, None)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        for page_id, frame in self._frames.items():
            if frame.dirty:
                self.disk.write_page(page_id, self.codec.encode(frame.obj))
                frame.dirty = False
                written += 1
        return written

    def clear(self) -> None:
        """Flush then empty the buffer (e.g. between experiments)."""
        self.flush()
        self._frames.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def _admit(self, page_id: int, frame: _Frame[T]) -> None:
        self._frames[page_id] = frame
        self._frames.move_to_end(page_id)
        while len(self._frames) > self.capacity:
            victim_id, victim = self._frames.popitem(last=False)
            obs = self.disk.tracker.obs
            if obs is not None:
                obs.count("buffer_evictions")
            if victim.dirty and self.disk.is_allocated(victim_id):
                self.disk.write_page(victim_id, self.codec.encode(victim.obj))

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, resident={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
