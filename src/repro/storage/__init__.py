"""Simulated disk substrate: pages, I/O accounting, LRU buffering.

The paper's experiments assume disk-resident data: 4 KiB pages behind a
50-page LRU buffer, with cost reported in physical page I/Os.  This
package reproduces that environment in memory so the I/O *counts* are
exact while the experiments stay laptop-fast.
"""

from .buffer import DEFAULT_BUFFER_PAGES, BufferPool, PageCodec
from .column_pages import (
    MappedColumns,
    free_columns,
    load_column_store,
    load_columns,
    map_columns,
    read_column_stream,
    save_column_store,
    save_columns,
    save_columns_file,
)
from .disk import DEFAULT_PAGE_SIZE, CorruptPageError, DiskManager, PageError
from .file_disk import FileDiskManager
from .serializer import BytesCodec, StructReader, StructWriter

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_BUFFER_PAGES",
    "CorruptPageError",
    "DiskManager",
    "FileDiskManager",
    "PageError",
    "save_columns",
    "load_columns",
    "free_columns",
    "save_column_store",
    "load_column_store",
    "read_column_stream",
    "save_columns_file",
    "map_columns",
    "MappedColumns",
    "BufferPool",
    "PageCodec",
    "BytesCodec",
    "StructReader",
    "StructWriter",
]
