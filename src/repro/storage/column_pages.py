"""Columnar dataset persistence: column arrays on chained pages.

The columnar engine's single source of truth is the contiguous
:class:`~repro.core.columns.ColumnStore`.  This module gives those
columns the same durability the trees get from the page substrate: the
six live arrays are serialized into one little-endian byte stream and
spread across a chain of fixed-size pages in any disk manager that
speaks the ``allocate / read_page / write_page`` protocol (the
in-memory :class:`~repro.storage.disk.DiskManager` for counted
experiments, :class:`~repro.storage.file_disk.FileDiskManager` for real
files).  Page I/O is counted by the manager's tracker like every other
page touch, so persisting a dataset shows up honestly in the cost
model.

Layout: every page payload starts with an 8-byte little-endian *next*
page id (``-1`` ends the chain) followed by the next slice of the
stream.  The stream itself is a header then the raw column bytes in a
fixed order (``oid``, ``tref``, then each bound row of ``mlo, mhi,
vlo, vhi``), so a round trip is byte-exact.

Stream versions: version-2 streams (magic ``RPROCOL2``) carry a version
byte, the exact column-payload length, and a CRC32 of the payload,
verified on load — a truncated chain or a flipped bit raises
:class:`~repro.storage.disk.CorruptPageError` instead of decoding
garbage.  Legacy version-1 streams (magic ``RPROCOLS``, header only)
stay loadable; new streams are always written as version 2.
"""

from __future__ import annotations

import struct
import zlib
from typing import List

import numpy as np

from ..geometry.box import NDIMS
from .disk import CorruptPageError

__all__ = [
    "save_columns",
    "load_columns",
    "free_columns",
    "save_column_store",
    "load_column_store",
]

_MAGIC_V1 = b"RPROCOLS"
_MAGIC_V2 = b"RPROCOL2"
_HEAD_V1 = struct.Struct("<8sqq")  # magic, n rows, ndims
_HEAD_V2 = struct.Struct("<8sBqqqI")  # magic, version, n, ndims, len, crc
_VERSION = 2
_NEXT = struct.Struct("<q")
_END = -1


def _encode(cols) -> bytes:
    """The column batch as one contiguous little-endian byte stream."""
    n = len(cols)
    parts: List[bytes] = []
    parts.append(np.ascontiguousarray(cols.oid, dtype="<i8").tobytes())
    parts.append(np.ascontiguousarray(cols.tref, dtype="<f8").tobytes())
    for column in (cols.mlo, cols.mhi, cols.vlo, cols.vhi):
        for dim in range(NDIMS):
            parts.append(
                np.ascontiguousarray(column[dim], dtype="<f8").tobytes()
            )
    payload = b"".join(parts)
    head = _HEAD_V2.pack(
        _MAGIC_V2, _VERSION, n, NDIMS, len(payload), zlib.crc32(payload)
    )
    return head + payload


def _decode(stream: bytes):
    """Inverse of :func:`_encode`; returns ``UpdateColumns``.

    Accepts both the current checksummed version-2 streams and legacy
    version-1 streams (header without integrity fields).
    """
    from ..core.columns import UpdateColumns

    magic = stream[:8] if len(stream) >= 8 else b""
    if magic == _MAGIC_V2:
        if len(stream) < _HEAD_V2.size:
            raise CorruptPageError("column stream header truncated")
        _, version, n, ndims, length, crc = _HEAD_V2.unpack_from(stream, 0)
        if version != _VERSION:
            raise ValueError(f"unsupported column-stream version {version}")
        payload = stream[_HEAD_V2.size : _HEAD_V2.size + length]
        if len(payload) < length:
            raise CorruptPageError(
                f"column stream truncated: expected {length} payload "
                f"bytes, found {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptPageError("column stream failed its CRC32 check")
        pos = _HEAD_V2.size
    elif magic == _MAGIC_V1:
        _, n, ndims = _HEAD_V1.unpack_from(stream, 0)
        pos = _HEAD_V1.size
    else:
        raise ValueError("not a column-page stream")
    if ndims != NDIMS:
        raise ValueError(f"stream has {ndims} dimensions, library has {NDIMS}")
    oid = np.frombuffer(stream, dtype="<i8", count=n, offset=pos).astype(np.int64)
    pos += 8 * n
    tref = np.frombuffer(stream, dtype="<f8", count=n, offset=pos).astype(float)
    pos += 8 * n
    bounds = []
    for _ in range(4):
        rows = []
        for _dim in range(NDIMS):
            rows.append(
                np.frombuffer(stream, dtype="<f8", count=n, offset=pos).astype(float)
            )
            pos += 8 * n
        bounds.append(np.vstack(rows) if n else np.empty((NDIMS, 0)))
    mlo, mhi, vlo, vhi = bounds
    return UpdateColumns(oid=oid, mlo=mlo, mhi=mhi, vlo=vlo, vhi=vhi, tref=tref)


def save_columns(disk, cols) -> int:
    """Persist one column batch; returns the root page id of the chain."""
    stream = _encode(cols)
    usable = getattr(disk, "usable_page_size", disk.page_size - 4)
    chunk = min(disk.page_size - 4, usable) - _NEXT.size
    if chunk <= 0:
        raise ValueError("page size too small for column pages")
    n_pages = max(1, -(-len(stream) // chunk))
    pages = [disk.allocate() for _ in range(n_pages)]
    for k, pid in enumerate(pages):
        nxt = pages[k + 1] if k + 1 < n_pages else _END
        disk.write_page(
            pid, _NEXT.pack(nxt) + stream[k * chunk : (k + 1) * chunk]
        )
    return pages[0]


def load_columns(disk, root: int):
    """Read a column chain back as ``UpdateColumns`` (byte-exact)."""
    parts: List[bytes] = []
    pid = root
    while pid != _END:
        payload = disk.read_page(pid)
        pid = _NEXT.unpack_from(payload, 0)[0]
        parts.append(payload[_NEXT.size :])
    return _decode(b"".join(parts))


def free_columns(disk, root: int) -> int:
    """Deallocate a column chain; returns the number of pages freed."""
    freed = 0
    pid = root
    while pid != _END:
        payload = disk.read_page(pid)
        nxt = _NEXT.unpack_from(payload, 0)[0]
        disk.deallocate(pid)
        pid = nxt
        freed += 1
    return freed


def save_column_store(disk, store) -> int:
    """Persist the live prefix of a ``ColumnStore``.

    The derived ``slo``/``shi`` planes are not written — they are
    recomputed on load by the store's own insert path, which keeps the
    on-page format minimal and the recomputation bit-exact by
    construction.
    """
    from ..core.columns import UpdateColumns

    n = len(store)
    cols = UpdateColumns(
        oid=np.ascontiguousarray(store.oid[:n]),
        mlo=np.ascontiguousarray(store.mlo[:, :n]),
        mhi=np.ascontiguousarray(store.mhi[:, :n]),
        vlo=np.ascontiguousarray(store.vlo[:, :n]),
        vhi=np.ascontiguousarray(store.vhi[:, :n]),
        tref=np.ascontiguousarray(store.tref[:n]),
    )
    return save_columns(disk, cols)


def load_column_store(disk, root: int):
    """Rebuild a ``ColumnStore`` from a persisted chain."""
    from ..core.columns import ColumnStore

    store = ColumnStore()
    cols = load_columns(disk, root)
    if len(cols):
        store.add(cols)
    return store
