"""Columnar dataset persistence: column arrays on chained pages.

The columnar engine's single source of truth is the contiguous
:class:`~repro.core.columns.ColumnStore`.  This module gives those
columns the same durability the trees get from the page substrate: the
six live arrays are serialized into one little-endian byte stream and
spread across a chain of fixed-size pages in any disk manager that
speaks the ``allocate / read_page / write_page`` protocol (the
in-memory :class:`~repro.storage.disk.DiskManager` for counted
experiments, :class:`~repro.storage.file_disk.FileDiskManager` for real
files).  Page I/O is counted by the manager's tracker like every other
page touch, so persisting a dataset shows up honestly in the cost
model.

Layout: every page payload starts with an 8-byte little-endian *next*
page id (``-1`` ends the chain) followed by the next slice of the
stream.  The stream itself is a header then the raw column bytes in a
fixed order (``oid``, ``tref``, then each bound row of ``mlo, mhi,
vlo, vhi``), so a round trip is byte-exact.

Stream versions: version-2 streams (magic ``RPROCOL2``) carry a version
byte, the exact column-payload length, and a CRC32 of the payload,
verified on load — a truncated chain or a flipped bit raises
:class:`~repro.storage.disk.CorruptPageError` instead of decoding
garbage.  Legacy version-1 streams (magic ``RPROCOLS``, header only)
stay loadable; new page chains are always written as version 2.  All
three versions decode through one reader, :func:`read_column_stream`.

Memory-mapped slabs (version 3): :func:`save_columns_file` writes a
flat ``RPROCOL3`` file — a CRC-checked header, a per-slab CRC table,
then the same slab order as the streams, 8-byte aligned — and
:func:`map_columns` opens it as :class:`MappedColumns`: zero-copy
``np.memmap`` views per column, slab CRCs verified lazily on first
touch, and the derived ``slo``/``shi`` shift planes recomputed lazily
per mapped slab.  This is how a 1M-object dataset reloads without full
deserialization: opening validates only the fixed header, and a probe
that touches two columns faults in two slabs, not the whole file.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Union

import numpy as np

from ..geometry.box import NDIMS
from ..geometry.kernels import KineticBatch
from .disk import CorruptPageError

__all__ = [
    "save_columns",
    "load_columns",
    "free_columns",
    "save_column_store",
    "load_column_store",
    "read_column_stream",
    "save_columns_file",
    "map_columns",
    "MappedColumns",
]

_MAGIC_V1 = b"RPROCOLS"
_MAGIC_V2 = b"RPROCOL2"
_MAGIC_V3 = b"RPROCOL3"
_HEAD_V1 = struct.Struct("<8sqq")  # magic, n rows, ndims
_HEAD_V2 = struct.Struct("<8sBqqqI")  # magic, version, n, ndims, len, crc
_HEAD_V3 = struct.Struct("<8sBqq")  # magic, version, n, ndims
_VERSION = 2
_VERSION_V3 = 3
_NEXT = struct.Struct("<q")
_END = -1

#: Slab order shared by every stream version: ``oid``, ``tref``, then
#: each bound plane dimension-major (``mlo[0], mlo[1], mhi[0], …``).
_N_SLABS = 2 + 4 * NDIMS
_SLAB_NAMES = tuple(
    ["oid", "tref"]
    + [f"{name}{dim}" for name in ("mlo", "mhi", "vlo", "vhi") for dim in range(NDIMS)]
)
_CRC_TABLE = struct.Struct(f"<{_N_SLABS}I")
_HEAD_CRC = struct.Struct("<I")
#: Full v3 header: fixed fields + slab CRC table + header CRC, padded
#: so the first slab starts 8-byte aligned (zero-copy float64 views).
_V3_HEADER_SIZE = -(-(_HEAD_V3.size + _CRC_TABLE.size + _HEAD_CRC.size) // 8) * 8


def _encode(cols) -> bytes:
    """The column batch as one contiguous little-endian byte stream."""
    n = len(cols)
    parts: List[bytes] = []
    parts.append(np.ascontiguousarray(cols.oid, dtype="<i8").tobytes())
    parts.append(np.ascontiguousarray(cols.tref, dtype="<f8").tobytes())
    for column in (cols.mlo, cols.mhi, cols.vlo, cols.vhi):
        for dim in range(NDIMS):
            parts.append(
                np.ascontiguousarray(column[dim], dtype="<f8").tobytes()
            )
    payload = b"".join(parts)
    head = _HEAD_V2.pack(
        _MAGIC_V2, _VERSION, n, NDIMS, len(payload), zlib.crc32(payload)
    )
    return head + payload


def read_column_stream(stream: bytes):
    """Decode any column-stream version into ``UpdateColumns``.

    The one reader every load path funnels through: checksummed
    version-2 streams, legacy version-1 streams (header without
    integrity fields, but still length-checked against the declared row
    count), and flat version-3 slab images (header + per-slab CRCs, as
    written by :func:`save_columns_file`).
    """
    from ..core.columns import UpdateColumns

    magic = stream[:8] if len(stream) >= 8 else b""
    if magic == _MAGIC_V2:
        if len(stream) < _HEAD_V2.size:
            raise CorruptPageError("column stream header truncated")
        _, version, n, ndims, length, crc = _HEAD_V2.unpack_from(stream, 0)
        if version != _VERSION:
            raise ValueError(f"unsupported column-stream version {version}")
        payload = stream[_HEAD_V2.size : _HEAD_V2.size + length]
        if len(payload) < length:
            raise CorruptPageError(
                f"column stream truncated: expected {length} payload "
                f"bytes, found {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptPageError("column stream failed its CRC32 check")
        pos = _HEAD_V2.size
    elif magic == _MAGIC_V1:
        if len(stream) < _HEAD_V1.size:
            raise CorruptPageError("column stream header truncated")
        _, n, ndims = _HEAD_V1.unpack_from(stream, 0)
        pos = _HEAD_V1.size
        need = _N_SLABS * 8 * n
        if len(stream) - pos < need:
            raise CorruptPageError(
                f"column stream truncated: expected {need} payload "
                f"bytes, found {len(stream) - pos}"
            )
    elif magic == _MAGIC_V3:
        n, ndims, crcs = _parse_v3_header(stream)
        pos = _V3_HEADER_SIZE
        if len(stream) - pos < _N_SLABS * 8 * n:
            raise CorruptPageError(
                f"column slab image truncated: expected {_N_SLABS * 8 * n} "
                f"slab bytes, found {len(stream) - pos}"
            )
        for i, name in enumerate(_SLAB_NAMES):
            slab = stream[pos + i * 8 * n : pos + (i + 1) * 8 * n]
            if zlib.crc32(slab) != crcs[i]:
                raise CorruptPageError(
                    f"column slab {name!r} failed its CRC32 check"
                )
    else:
        raise ValueError("not a column-page stream")
    if ndims != NDIMS:
        raise ValueError(f"stream has {ndims} dimensions, library has {NDIMS}")
    oid = np.frombuffer(stream, dtype="<i8", count=n, offset=pos).astype(np.int64)
    pos += 8 * n
    tref = np.frombuffer(stream, dtype="<f8", count=n, offset=pos).astype(float)
    pos += 8 * n
    bounds = []
    for _ in range(4):
        rows = []
        for _dim in range(NDIMS):
            rows.append(
                np.frombuffer(stream, dtype="<f8", count=n, offset=pos).astype(float)
            )
            pos += 8 * n
        bounds.append(np.vstack(rows) if n else np.empty((NDIMS, 0)))
    mlo, mhi, vlo, vhi = bounds
    return UpdateColumns(oid=oid, mlo=mlo, mhi=mhi, vlo=vlo, vhi=vhi, tref=tref)


# Page-chain loads and flat-file materialization share the reader.
_decode = read_column_stream


def save_columns(disk, cols) -> int:
    """Persist one column batch; returns the root page id of the chain."""
    stream = _encode(cols)
    usable = getattr(disk, "usable_page_size", disk.page_size - 4)
    chunk = min(disk.page_size - 4, usable) - _NEXT.size
    if chunk <= 0:
        raise ValueError("page size too small for column pages")
    n_pages = max(1, -(-len(stream) // chunk))
    pages = [disk.allocate() for _ in range(n_pages)]
    for k, pid in enumerate(pages):
        nxt = pages[k + 1] if k + 1 < n_pages else _END
        disk.write_page(
            pid, _NEXT.pack(nxt) + stream[k * chunk : (k + 1) * chunk]
        )
    return pages[0]


def load_columns(disk, root: int):
    """Read a column chain back as ``UpdateColumns`` (byte-exact)."""
    parts: List[bytes] = []
    pid = root
    while pid != _END:
        payload = disk.read_page(pid)
        pid = _NEXT.unpack_from(payload, 0)[0]
        parts.append(payload[_NEXT.size :])
    return _decode(b"".join(parts))


def free_columns(disk, root: int) -> int:
    """Deallocate a column chain; returns the number of pages freed."""
    freed = 0
    pid = root
    while pid != _END:
        payload = disk.read_page(pid)
        nxt = _NEXT.unpack_from(payload, 0)[0]
        disk.deallocate(pid)
        pid = nxt
        freed += 1
    return freed


def save_column_store(disk, store) -> int:
    """Persist the live prefix of a ``ColumnStore``.

    The derived ``slo``/``shi`` planes are not written — they are
    recomputed on load by the store's own insert path, which keeps the
    on-page format minimal and the recomputation bit-exact by
    construction.
    """
    from ..core.columns import UpdateColumns

    n = len(store)
    cols = UpdateColumns(
        oid=np.ascontiguousarray(store.oid[:n]),
        mlo=np.ascontiguousarray(store.mlo[:, :n]),
        mhi=np.ascontiguousarray(store.mhi[:, :n]),
        vlo=np.ascontiguousarray(store.vlo[:, :n]),
        vhi=np.ascontiguousarray(store.vhi[:, :n]),
        tref=np.ascontiguousarray(store.tref[:n]),
    )
    return save_columns(disk, cols)


def load_column_store(disk, root: int):
    """Rebuild a ``ColumnStore`` from a persisted chain."""
    from ..core.columns import ColumnStore

    store = ColumnStore()
    cols = load_columns(disk, root)
    if len(cols):
        store.add(cols)
    return store


# ----------------------------------------------------------------------
# Version-3 flat slab images (memory-mapped reads)
# ----------------------------------------------------------------------
def _v3_header(n: int, slab_crcs: List[int]) -> bytes:
    """The padded ``RPROCOL3`` header for ``n`` rows."""
    head = _HEAD_V3.pack(_MAGIC_V3, _VERSION_V3, n, NDIMS)
    head += _CRC_TABLE.pack(*slab_crcs)
    head += _HEAD_CRC.pack(zlib.crc32(head))
    return head.ljust(_V3_HEADER_SIZE, b"\0")


def _parse_v3_header(buf) -> tuple:
    """Validate a v3 header; returns ``(n, ndims, slab_crcs)``.

    ``buf`` is any byte buffer at least ``_V3_HEADER_SIZE`` long.  The
    header carries its own CRC32, so a flipped bit in the bookkeeping
    (row count, slab table) is caught *before* any slab is trusted.
    """
    if len(buf) < _V3_HEADER_SIZE:
        raise CorruptPageError("column slab header truncated")
    _, version, n, ndims = _HEAD_V3.unpack_from(buf, 0)
    if version != _VERSION_V3:
        raise ValueError(f"unsupported column-slab version {version}")
    crcs = _CRC_TABLE.unpack_from(buf, _HEAD_V3.size)
    declared = _HEAD_CRC.unpack_from(buf, _HEAD_V3.size + _CRC_TABLE.size)[0]
    actual = zlib.crc32(bytes(buf[: _HEAD_V3.size + _CRC_TABLE.size]))
    if actual != declared:
        raise CorruptPageError("column slab header failed its CRC32 check")
    if n < 0:
        raise CorruptPageError(f"column slab header declares {n} rows")
    return n, ndims, crcs


def save_columns_file(path, cols) -> int:
    """Write one column batch as a flat ``RPROCOL3`` slab image.

    Slabs land in the shared stream order, each 8 bytes per element and
    8-byte aligned, so :func:`map_columns` can hand out zero-copy views.
    Returns the number of bytes written.
    """
    n = len(cols)
    slabs: List[bytes] = [
        np.ascontiguousarray(cols.oid, dtype="<i8").tobytes(),
        np.ascontiguousarray(cols.tref, dtype="<f8").tobytes(),
    ]
    for column in (cols.mlo, cols.mhi, cols.vlo, cols.vhi):
        for dim in range(NDIMS):
            slabs.append(np.ascontiguousarray(column[dim], dtype="<f8").tobytes())
    head = _v3_header(n, [zlib.crc32(slab) for slab in slabs])
    with open(path, "wb") as fh:
        fh.write(head)
        for slab in slabs:
            fh.write(slab)
    return _V3_HEADER_SIZE + sum(len(slab) for slab in slabs)


class MappedColumns:
    """Read-only column access over a memory-mapped ``RPROCOL3`` file.

    Opening validates the header (magic, version, CRC) and the file
    size against the declared row count — nothing else is read, so a
    1M-row dataset opens in microseconds.  Column properties are
    zero-copy ``np.memmap`` views into the slabs; each slab's CRC32 is
    verified once, lazily, the first time it is touched, so integrity
    still holds end to end without an upfront full-file scan.  The
    derived shift planes (``slo = mlo - vlo·tref``) are not stored in
    the file; they are recomputed lazily from the mapped slabs and
    cached, exactly like a fresh :class:`~repro.core.columns.
    ColumnStore` pack would produce them.

    Duck-compatible with the read side of ``ColumnStore``: ``batch()``
    yields the same :class:`~repro.geometry.kernels.KineticBatch` the
    engine sweeps, so a mapped dataset drops straight into
    :class:`~repro.core.columnar.ColumnarJoinEngine` via
    ``UpdateColumns``-style consumption or the kernels directly.
    """

    __slots__ = ("path", "n", "_raw", "_crcs", "_verified", "_slo", "_shi")

    def __init__(self, path):
        self.path = path
        raw = np.memmap(path, dtype=np.uint8, mode="r")
        n, ndims, crcs = _parse_v3_header(raw[: _V3_HEADER_SIZE])
        if ndims != NDIMS:
            raise ValueError(
                f"slab image has {ndims} dimensions, library has {NDIMS}"
            )
        expected = _V3_HEADER_SIZE + _N_SLABS * 8 * n
        if raw.size < expected:
            raise CorruptPageError(
                f"column slab image truncated: expected {expected} bytes, "
                f"found {raw.size}"
            )
        self.n = n
        self._raw = raw
        self._crcs = crcs
        self._verified = [False] * _N_SLABS
        self._slo = None
        self._shi = None

    def _slab_bytes(self, index: int, count: int = 1):
        """Raw view over ``count`` adjacent slabs starting at ``index``,
        CRC-verifying each on first touch."""
        n = self.n
        for i in range(index, index + count):
            if not self._verified[i]:
                off = _V3_HEADER_SIZE + i * 8 * n
                if zlib.crc32(self._raw[off : off + 8 * n]) != self._crcs[i]:
                    raise CorruptPageError(
                        f"column slab {_SLAB_NAMES[i]!r} failed its CRC32 check"
                    )
                self._verified[i] = True
        off = _V3_HEADER_SIZE + index * 8 * n
        return self._raw[off : off + count * 8 * n]

    @property
    def oid(self) -> np.ndarray:
        return self._slab_bytes(0).view("<i8")

    @property
    def tref(self) -> np.ndarray:
        return self._slab_bytes(1).view("<f8")

    def _plane(self, first_slab: int) -> np.ndarray:
        """One ``(NDIMS, n)`` bound plane: adjacent dim slabs, one view."""
        return self._slab_bytes(first_slab, NDIMS).view("<f8").reshape(NDIMS, self.n)

    @property
    def mlo(self) -> np.ndarray:
        return self._plane(2)

    @property
    def mhi(self) -> np.ndarray:
        return self._plane(2 + NDIMS)

    @property
    def vlo(self) -> np.ndarray:
        return self._plane(2 + 2 * NDIMS)

    @property
    def vhi(self) -> np.ndarray:
        return self._plane(2 + 3 * NDIMS)

    @property
    def slo(self) -> np.ndarray:
        """Lazily recomputed pre-shifted lower bounds (cached)."""
        if self._slo is None:
            self._slo = self.mlo - self.vlo * self.tref
        return self._slo

    @property
    def shi(self) -> np.ndarray:
        """Lazily recomputed pre-shifted upper bounds (cached)."""
        if self._shi is None:
            self._shi = self.mhi - self.vhi * self.tref
        return self._shi

    def batch(self) -> KineticBatch:
        """The mapped dataset as one sweep-ready kinetic batch."""
        return KineticBatch(
            self.mlo, self.mhi, self.vlo, self.vhi,
            np.asarray(self.tref), self.slo, self.shi,
        )

    def columns(self):
        """Materialize into ``UpdateColumns`` (full deserialization)."""
        from ..core.columns import UpdateColumns

        return UpdateColumns(
            oid=np.array(self.oid, dtype=np.int64),
            mlo=np.array(self.mlo, dtype=float),
            mhi=np.array(self.mhi, dtype=float),
            vlo=np.array(self.vlo, dtype=float),
            vhi=np.array(self.vhi, dtype=float),
            tref=np.array(self.tref, dtype=float),
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        touched = sum(self._verified)
        return (
            f"MappedColumns(n={self.n}, slabs={_N_SLABS}, "
            f"verified={touched}/{_N_SLABS})"
        )


def map_columns(path) -> Union[MappedColumns, "object"]:
    """Open a persisted column file for reading, version-dispatched.

    ``RPROCOL3`` slab images come back as :class:`MappedColumns`
    (zero-copy, lazily verified).  Legacy ``RPROCOLS``/``RPROCOL2``
    stream files have no aligned slab layout to map, so they are
    materialized through :func:`read_column_stream` into
    ``UpdateColumns`` — same reader path as the page chains, same
    result columns, just without the mmap economics.
    """
    with open(path, "rb") as fh:
        magic = fh.read(8)
        if magic == _MAGIC_V3:
            pass
        elif magic in (_MAGIC_V1, _MAGIC_V2):
            return read_column_stream(magic + fh.read())
        else:
            raise ValueError("not a column-page stream")
    return MappedColumns(path)
