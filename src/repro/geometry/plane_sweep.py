"""Plane sweep over *moving* rectangles (paper §IV-D.1, ``PSIntersection``).

The classic plane-sweep join of Brinkhoff et al. orders two sets of
static rectangles by their lower bound in one dimension and scans them in
that order, so each rectangle is only tested against the rectangles whose
x-ranges can overlap it.  Moving rectangles break the static lower/upper
bounds — but under *time-constrained* processing the motion is confined
to a window ``[t0, t1]``, so valid sweep bounds exist:

    lb(O) = min(O.lo(t0), O.lo(t1))        (lowest the lower bound gets)
    ub(O) = max(O.hi(t0), O.hi(t1))        (highest the upper bound gets)

Two objects with ``ub(O1) < lb(O2)`` can never overlap in the sweep
dimension during the window, which is exactly the pruning property the
sweep requires.  Note that an unconstrained window (``t1 = inf``) makes
``ub`` infinite and the sweep degenerates to all-pairs — this is why the
paper emphasises that TC processing *enables* plane sweep.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from . import kernels
from .box import NDIMS
from .intersection import intersection_interval
from .interval import INF, TimeInterval
from .kinetic import KineticBox

__all__ = [
    "sweep_bounds",
    "select_sweep_dimension",
    "ps_intersection",
    "all_pairs_intersection",
]


def sweep_bounds(kb: KineticBox, dim: int, t0: float, t1: float) -> Tuple[float, float]:
    """The ``(lb, ub)`` sweep bounds of ``kb`` along ``dim`` over ``[t0, t1]``.

    With ``t1 = inf`` the bounds degenerate to ``(-inf, inf)`` whenever
    the corresponding velocity points outward, reflecting that an
    unconstrained sweep cannot prune.
    """
    if t1 == INF:
        lb = kb.lo(dim, t0) if kb.vbr.lo(dim) >= 0 else -INF
        ub = kb.hi(dim, t0) if kb.vbr.hi(dim) <= 0 else INF
        return lb, ub
    return (
        min(kb.lo(dim, t0), kb.lo(dim, t1)),
        max(kb.hi(dim, t0), kb.hi(dim, t1)),
    )


def select_sweep_dimension(
    boxes_a: Sequence[KineticBox], boxes_b: Sequence[KineticBox]
) -> int:
    """Pick the sweep dimension per the paper's *dimension selection*.

    The dimension with the smallest sum of absolute bound speeds is
    chosen (§IV-D.2): slower movement means tighter sweep bounds and
    fewer candidate pairs to test.
    """
    totals = [0.0] * NDIMS
    for boxes in (boxes_a, boxes_b):
        for kb in boxes:
            for dim in range(NDIMS):
                totals[dim] += kb.speed_sum(dim)
    best_dim = 0
    best_sum = math.inf
    for dim in range(NDIMS):
        if totals[dim] < best_sum:
            best_sum = totals[dim]
            best_dim = dim
    return best_dim


def ps_intersection(
    boxes_a: Sequence[KineticBox],
    boxes_b: Sequence[KineticBox],
    t0: float,
    t1: float,
    dim: Optional[int] = None,
    counter: Optional[List[int]] = None,
    use_kernels: Optional[bool] = None,
) -> List[Tuple[int, int, TimeInterval]]:
    """All intersecting pairs between two sets of moving rectangles.

    Returns ``(i, j, interval)`` triples where ``boxes_a[i]`` overlaps
    ``boxes_b[j]`` during ``interval ⊆ [t0, t1]``.  ``dim`` forces a
    sweep dimension (``None`` applies dimension selection).  When
    ``counter`` is given, ``counter[0]`` is incremented once per exact
    pair test performed — benchmarks use this to report CPU work.

    ``use_kernels`` picks the implementation: ``True`` routes through
    the vectorized :mod:`repro.geometry.kernels` batch sweep, ``False``
    forces the scalar reference path, and ``None`` (default) uses the
    kernels whenever NumPy is available.  Both paths return identical
    triples (the kernels are bit-exact against the scalar oracle).

    The sweep runs both sorted sequences in ``lb`` order; for the item
    with the globally smallest ``lb`` it scans the other sequence while
    sweep ranges overlap, delegating the exact (two-dimensional, timed)
    test to :func:`intersection_interval`.
    """
    if t1 < t0:
        raise ValueError("t_end must be >= t_start")
    if use_kernels is None:
        use_kernels = kernels.HAVE_NUMPY
    if use_kernels and kernels.HAVE_NUMPY:
        return kernels.batch_ps_intersection(
            kernels.KineticBatch.from_boxes(list(boxes_a)),
            kernels.KineticBatch.from_boxes(list(boxes_b)),
            t0,
            t1,
            dim=dim,
            counter=counter,
        )
    if dim is None:
        dim = select_sweep_dimension(boxes_a, boxes_b)
    seq_a = sorted(
        ((sweep_bounds(kb, dim, t0, t1), i, kb) for i, kb in enumerate(boxes_a)),
        key=lambda item: item[0][0],
    )
    seq_b = sorted(
        ((sweep_bounds(kb, dim, t0, t1), j, kb) for j, kb in enumerate(boxes_b)),
        key=lambda item: item[0][0],
    )
    results: List[Tuple[int, int, TimeInterval]] = []
    ia = ib = 0
    while ia < len(seq_a) and ib < len(seq_b):
        (lb_a, ub_a), idx_a, kb_a = seq_a[ia]
        (lb_b, ub_b), idx_b, kb_b = seq_b[ib]
        if lb_a <= lb_b:
            # kb_a is the next pivot: scan B while its lb can reach ub_a.
            k = ib
            while k < len(seq_b) and seq_b[k][0][0] <= ub_a:
                if counter is not None:
                    counter[0] += 1
                interval = intersection_interval(kb_a, seq_b[k][2], t0, t1)
                if interval is not None:
                    results.append((idx_a, seq_b[k][1], interval))
                k += 1
            ia += 1
        else:
            k = ia
            while k < len(seq_a) and seq_a[k][0][0] <= ub_b:
                if counter is not None:
                    counter[0] += 1
                interval = intersection_interval(seq_a[k][2], kb_b, t0, t1)
                if interval is not None:
                    results.append((seq_a[k][1], idx_b, interval))
                k += 1
            ib += 1
    return results


def all_pairs_intersection(
    boxes_a: Sequence[KineticBox],
    boxes_b: Sequence[KineticBox],
    t0: float,
    t1: float = INF,
    counter: Optional[List[int]] = None,
    use_kernels: Optional[bool] = None,
) -> List[Tuple[int, int, TimeInterval]]:
    """Nested-loop reference: every pair tested exactly once.

    Used where plane sweep cannot run (unbounded window) and as the
    oracle against which :func:`ps_intersection` is verified.  With
    ``use_kernels`` (default: on when NumPy is available) the full
    ``M × N`` constraint grid is evaluated as one broadcast kernel call
    instead of a Python double loop; results are identical either way.
    """
    if use_kernels is None:
        use_kernels = kernels.HAVE_NUMPY
    if use_kernels and kernels.HAVE_NUMPY:
        return kernels.batch_all_pairs_intersection(
            kernels.KineticBatch.from_boxes(list(boxes_a)),
            kernels.KineticBatch.from_boxes(list(boxes_b)),
            t0,
            t1,
            counter=counter,
        )
    results: List[Tuple[int, int, TimeInterval]] = []
    for i, ka in enumerate(boxes_a):
        for j, kb in enumerate(boxes_b):
            if counter is not None:
                counter[0] += 1
            interval = intersection_interval(ka, kb, t0, t1)
            if interval is not None:
                results.append((i, j, interval))
    return results
