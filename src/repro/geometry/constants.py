"""Shared numeric tolerances and the pre-shifted-constant contract.

Every tolerance that the scalar pair-test path, the vectorized kernels,
and the index maintenance code share lives here, in one module, so the
paths cannot drift apart silently.  The domain linter
(:mod:`repro.check.lint`, rule ``RC006``) enforces that
``geometry/intersection.py`` and ``geometry/kernels.py`` import their
tolerances from this module instead of re-inlining the literals: the
bit-exactness contract of the kernels (DESIGN.md §5.1) holds only while
both paths evaluate the *same* constraint ``(lo - v_lo * t_ref) +
(v_lo) * t`` with the *same* epsilon.

Constants
---------
``PAIR_TEST_EPS``
    Tolerance applied to pair-test constraint boundaries so that two
    rectangles touching at a single timestamp are reported despite
    floating-point rounding.  Used identically by the scalar
    ``intersection_interval`` (2-d and n-d) and every batch kernel.
``MERGE_TOL``
    Gap below which two closed time intervals are coalesced by
    :func:`repro.geometry.interval.merge_intervals` and the result
    store's disjoint-tail fast path.
``CONTAIN_EPS``
    Tolerance for kinetic containment tests in the TPR-tree: node
    bounds contain their descendants mathematically, but re-referencing
    unions introduces rounding on the order of 1e-12; this looser
    epsilon keeps guided deletion and the structural sanitizer exact
    without admitting genuinely disjoint branches.
"""

from __future__ import annotations

__all__ = ["PAIR_TEST_EPS", "MERGE_TOL", "CONTAIN_EPS"]

#: Pair-test constraint tolerance (scalar and kernel paths alike).
PAIR_TEST_EPS = 1e-12

#: Interval-merge gap tolerance.
MERGE_TOL = 1e-9

#: Kinetic containment tolerance for tree-structure checks.
CONTAIN_EPS = 1e-6
