"""Static axis-parallel rectangles: MBRs and VBRs.

A :class:`Box` is a 2-d axis-parallel rectangle described by per-dimension
lower and upper bounds.  The same class serves two roles in the paper's
model:

* an **MBR** (minimum bounding rectangle) — bounds in *space*;
* a **VBR** (velocity bounding rectangle) — bounds in *velocity space*,
  where "lower/upper bound" are the minimum/maximum velocities of the
  bounded objects along each axis.  A VBR may legitimately have
  ``lo > hi`` nowhere, but negative coordinates everywhere.

Boxes are immutable value objects.  Degenerate boxes (``lo == hi`` in a
dimension) are allowed — moving *points* are just boxes of zero extent.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Tuple

__all__ = ["Box"]

NDIMS = 2


class Box:
    """An axis-parallel rectangle in ``NDIMS`` dimensions.

    Bounds are stored as a flat tuple ``(x_lo, x_hi, y_lo, y_hi)``.

    >>> Box(0, 2, 0, 3).area
    6.0
    >>> Box(0, 2, 0, 3).intersects(Box(2, 4, 1, 5))   # closed: touch counts
    True
    """

    __slots__ = ("_b",)

    def __init__(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float):
        if x_hi < x_lo or y_hi < y_lo:
            raise ValueError(
                f"malformed box: [{x_lo}, {x_hi}] x [{y_lo}, {y_hi}]"
            )
        object.__setattr__(
            self, "_b", (float(x_lo), float(x_hi), float(y_lo), float(y_hi))
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Box is immutable")

    def __reduce__(self):
        # Default slot-state pickling restores via setattr, which the
        # immutability guard rejects; rebuild through __init__ instead.
        return (Box, self._b)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(cls, bounds: Sequence[float]) -> "Box":
        """Build from a flat ``(x_lo, x_hi, y_lo, y_hi)`` sequence."""
        if len(bounds) != 2 * NDIMS:
            raise ValueError(f"expected {2 * NDIMS} bounds, got {len(bounds)}")
        return cls(*bounds)

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Box":
        """Build from a center point and full side lengths."""
        if width < 0 or height < 0:
            raise ValueError("width/height must be non-negative")
        return cls(cx - width / 2, cx + width / 2, cy - height / 2, cy + height / 2)

    @classmethod
    def point(cls, x: float, y: float) -> "Box":
        """A degenerate box representing a single point."""
        return cls(x, x, y, y)

    @classmethod
    def union_of(cls, boxes: Iterable["Box"]) -> "Box":
        """Smallest box enclosing all ``boxes`` (at least one required)."""
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_of requires at least one box") from None
        x_lo, x_hi, y_lo, y_hi = first._b
        for b in it:
            bx_lo, bx_hi, by_lo, by_hi = b._b
            x_lo = min(x_lo, bx_lo)
            x_hi = max(x_hi, bx_hi)
            y_lo = min(y_lo, by_lo)
            y_hi = max(y_hi, by_hi)
        return cls(x_lo, x_hi, y_lo, y_hi)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def x_lo(self) -> float:
        return self._b[0]

    @property
    def x_hi(self) -> float:
        return self._b[1]

    @property
    def y_lo(self) -> float:
        return self._b[2]

    @property
    def y_hi(self) -> float:
        return self._b[3]

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """The flat ``(x_lo, x_hi, y_lo, y_hi)`` tuple."""
        return self._b

    def lo(self, dim: int) -> float:
        """Lower bound along dimension ``dim`` (0 = x, 1 = y)."""
        return self._b[2 * dim]

    def hi(self, dim: int) -> float:
        """Upper bound along dimension ``dim`` (0 = x, 1 = y)."""
        return self._b[2 * dim + 1]

    def side(self, dim: int) -> float:
        """Extent along dimension ``dim``."""
        return self._b[2 * dim + 1] - self._b[2 * dim]

    @property
    def center(self) -> Tuple[float, float]:
        return (
            (self._b[0] + self._b[1]) / 2,
            (self._b[2] + self._b[3]) / 2,
        )

    @property
    def area(self) -> float:
        return (self._b[1] - self._b[0]) * (self._b[3] - self._b[2])

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree "margin" metric."""
        return (self._b[1] - self._b[0]) + (self._b[3] - self._b[2])

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def intersects(self, other: "Box") -> bool:
        """Closed-rectangle intersection test (touching counts)."""
        a, b = self._b, other._b
        return a[0] <= b[1] and b[0] <= a[1] and a[2] <= b[3] and b[2] <= a[3]

    def intersection(self, other: "Box") -> Optional["Box"]:
        """The overlap rectangle, or ``None`` when disjoint."""
        a, b = self._b, other._b
        x_lo = max(a[0], b[0])
        x_hi = min(a[1], b[1])
        y_lo = max(a[2], b[2])
        y_hi = min(a[3], b[3])
        if x_lo > x_hi or y_lo > y_hi:
            return None
        return Box(x_lo, x_hi, y_lo, y_hi)

    def union(self, other: "Box") -> "Box":
        """Smallest box enclosing both rectangles."""
        a, b = self._b, other._b
        return Box(min(a[0], b[0]), max(a[1], b[1]), min(a[2], b[2]), max(a[3], b[3]))

    def contains(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        a, b = self._b, other._b
        return a[0] <= b[0] and b[1] <= a[1] and a[2] <= b[2] and b[3] <= a[3]

    def contains_point(self, x: float, y: float) -> bool:
        a = self._b
        return a[0] <= x <= a[1] and a[2] <= y <= a[3]

    def enlargement(self, other: "Box") -> float:
        """Area growth needed for this box to also cover ``other``."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "Box") -> float:
        """Area of the intersection (0 when disjoint)."""
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def min_distance(self, other: "Box") -> float:
        """Euclidean distance between the closest points of two boxes."""
        a, b = self._b, other._b
        dx = max(b[0] - a[1], a[0] - b[1], 0.0)
        dy = max(b[2] - a[3], a[2] - b[3], 0.0)
        return math.hypot(dx, dy)

    def translated(self, dx: float, dy: float) -> "Box":
        """The box moved by ``(dx, dy)``."""
        a = self._b
        return Box(a[0] + dx, a[1] + dx, a[2] + dy, a[3] + dy)

    def expanded(self, dx_lo: float, dx_hi: float, dy_lo: float, dy_hi: float) -> "Box":
        """Grow each bound outward by the given (non-negative) amounts."""
        a = self._b
        return Box(a[0] - dx_lo, a[1] + dx_hi, a[2] - dy_lo, a[3] + dy_hi)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._b == other._b

    def __hash__(self) -> int:
        return hash(self._b)

    def __iter__(self) -> Iterator[float]:
        return iter(self._b)

    def __repr__(self) -> str:
        return "Box({:g}, {:g}, {:g}, {:g})".format(*self._b)

    def approx_equals(self, other: "Box", tol: float = 1e-9) -> bool:
        """Coordinate-wise equality up to ``tol``."""
        return all(abs(a - b) <= tol for a, b in zip(self._b, other._b))
