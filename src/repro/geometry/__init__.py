"""Geometric substrate: boxes, kinetic boxes, interval algebra, sweeps.

Everything in this package is pure math with no storage or index
dependencies.  The rest of the library is built on these primitives.
"""

from .box import NDIMS, Box
from .interval import INF, TimeInterval, merge_intervals
from .intersection import (
    first_contact_time,
    intersection_interval,
    intersects_during,
)
from .kinetic import KineticBox
from .kernels import (
    HAVE_NUMPY,
    KineticBatch,
    batch_all_pairs_intersection,
    batch_filter_against,
    batch_probe_windows,
    batch_intersection_intervals,
    batch_ps_intersection,
    batch_select_sweep_dimension,
    batch_sweep_bounds,
)
from .plane_sweep import (
    all_pairs_intersection,
    ps_intersection,
    select_sweep_dimension,
    sweep_bounds,
)

__all__ = [
    "NDIMS",
    "Box",
    "INF",
    "TimeInterval",
    "merge_intervals",
    "KineticBox",
    "intersection_interval",
    "intersects_during",
    "first_contact_time",
    "ps_intersection",
    "all_pairs_intersection",
    "select_sweep_dimension",
    "sweep_bounds",
    "HAVE_NUMPY",
    "KineticBatch",
    "batch_intersection_intervals",
    "batch_filter_against",
    "batch_probe_windows",
    "batch_sweep_bounds",
    "batch_select_sweep_dimension",
    "batch_ps_intersection",
    "batch_all_pairs_intersection",
]
