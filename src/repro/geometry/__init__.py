"""Geometric substrate: boxes, kinetic boxes, interval algebra, sweeps.

Everything in this package is pure math with no storage or index
dependencies.  The rest of the library is built on these primitives.
"""

from .box import NDIMS, Box
from .interval import INF, TimeInterval, merge_intervals
from .intersection import (
    first_contact_time,
    intersection_interval,
    intersects_during,
)
from .kinetic import KineticBox
from .plane_sweep import (
    all_pairs_intersection,
    ps_intersection,
    select_sweep_dimension,
    sweep_bounds,
)

__all__ = [
    "NDIMS",
    "Box",
    "INF",
    "TimeInterval",
    "merge_intervals",
    "KineticBox",
    "intersection_interval",
    "intersects_during",
    "first_contact_time",
    "ps_intersection",
    "all_pairs_intersection",
    "select_sweep_dimension",
    "sweep_bounds",
]
