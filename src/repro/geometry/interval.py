"""Closed time intervals, possibly unbounded to the right.

The join algorithms in this package reason about *when* two moving
rectangles intersect.  Those answers are closed intervals ``[start, end]``
on the time axis, where ``end`` may be ``math.inf`` (the paper writes this
as the "infinite timestamp").  This module provides a small, exact
interval algebra used throughout :mod:`repro.geometry` and
:mod:`repro.join`.

All operations treat intervals as *closed*: two intervals that share only
an endpoint still intersect.  This matches the paper's semantics, where a
pair of objects that touch at a single timestamp is reported at that
timestamp.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence

from .constants import MERGE_TOL as _EPS

__all__ = ["INF", "TimeInterval", "merge_intervals"]

INF = math.inf


class TimeInterval:
    """A closed interval ``[start, end]`` on the time axis.

    ``end`` may be :data:`math.inf` for an unbounded interval.  Instances
    are immutable and hashable; degenerate intervals (``start == end``)
    are allowed and represent a single timestamp.

    >>> TimeInterval(1, 4).intersect(TimeInterval(3, 9))
    TimeInterval(3, 4)
    >>> TimeInterval(0, INF).contains(1e12)
    True
    """

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float):
        if math.isnan(start) or math.isnan(end):
            raise ValueError("interval endpoints may not be NaN")
        if start == INF:
            raise ValueError("interval may not start at +inf")
        if end < start:
            raise ValueError(f"empty interval: [{start}, {end}]")
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "end", float(end))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TimeInterval is immutable")

    def __reduce__(self):
        # Default slot-state pickling restores via setattr, which the
        # immutability guard rejects; rebuild through __init__ instead.
        return (TimeInterval, (self.start, self.end))

    # ------------------------------------------------------------------
    # Basic predicates
    # ------------------------------------------------------------------
    @property
    def is_unbounded(self) -> bool:
        """True when the interval extends to the infinite timestamp."""
        return self.end == INF

    @property
    def duration(self) -> float:
        """Length of the interval (``inf`` when unbounded)."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """Whether timestamp ``t`` lies inside the closed interval."""
        return self.start <= t <= self.end

    def contains_interval(self, other: "TimeInterval") -> bool:
        """Whether ``other`` lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """Whether the two closed intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Intersection with ``other``, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return TimeInterval(lo, hi)

    def union(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Union with ``other`` when contiguous, else ``None``.

        Two closed intervals have an interval union iff they overlap or
        touch; otherwise the union is not an interval and ``None`` is
        returned.
        """
        if not self.overlaps(other):
            return None
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def clamp(self, lo: float, hi: float) -> Optional["TimeInterval"]:
        """Intersection with ``[lo, hi]`` expressed as raw endpoints."""
        return self.intersect(TimeInterval(lo, hi))

    def shift(self, delta: float) -> "TimeInterval":
        """The interval translated by ``delta`` time units."""
        return TimeInterval(self.start + delta, self.end + delta)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeInterval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"TimeInterval({_fmt(self.start)}, {_fmt(self.end)})"

    def __iter__(self) -> Iterator[float]:
        yield self.start
        yield self.end

    def approx_equals(self, other: "TimeInterval", tol: float = _EPS) -> bool:
        """Equality up to ``tol``, treating two infinities as equal."""
        return _close(self.start, other.start, tol) and _close(self.end, other.end, tol)


def _close(a: float, b: float, tol: float) -> bool:
    if a == b:
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= tol


def _fmt(v: float) -> str:
    return "INF" if v == INF else f"{v:g}"


def merge_intervals(intervals: Iterable[TimeInterval], tol: float = _EPS) -> List[TimeInterval]:
    """Coalesce a collection of closed intervals into disjoint ones.

    Intervals that overlap or whose gap is at most ``tol`` are merged.
    The result is sorted by start time.

    >>> merge_intervals([TimeInterval(5, 9), TimeInterval(1, 5)])
    [TimeInterval(1, 9)]
    """
    items: Sequence[TimeInterval] = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: List[TimeInterval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].end + tol:
            last = merged[-1]
            if iv.end > last.end:
                merged[-1] = TimeInterval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged
