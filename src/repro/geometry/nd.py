"""d-dimensional kinetic boxes (the paper's footnote 1).

The paper presents everything in 2-d "for ease of presentation, though
the proposed techniques are applicable to higher-dimensional spaces".
The main library keeps the 2-d fast path; this module provides the
*d*-dimensional primitives — kinetic boxes, exact intersection
intervals, sweep bounds — for users extending the stack to 3-d
(aviation, drones, underwater vehicles) or beyond.

The math is dimension-wise identical to :mod:`repro.geometry.
intersection`: each axis contributes two linear constraints on ``t``;
their intersection with the window is the overlap interval.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .constants import PAIR_TEST_EPS as _EPS
from .interval import INF, TimeInterval

__all__ = ["NdKineticBox", "intersection_interval_nd", "sweep_bounds_nd"]


class NdKineticBox:
    """An axis-parallel box in ``d`` dimensions with linear bound motion.

    ``lo``/``hi`` are the bounds at ``t_ref``; ``v_lo``/``v_hi`` their
    velocities.  All four sequences must share the same length.

    >>> box = NdKineticBox((0, 0, 0), (1, 1, 1), (1, 0, 0), (1, 0, 0), 0.0)
    >>> box.at(2.0)
    ((2.0, 0.0, 0.0), (3.0, 1.0, 1.0))
    """

    __slots__ = ("lo", "hi", "v_lo", "v_hi", "t_ref")

    def __init__(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        v_lo: Sequence[float],
        v_hi: Sequence[float],
        t_ref: float,
    ):
        if not (len(lo) == len(hi) == len(v_lo) == len(v_hi)):
            raise ValueError("bound sequences must share one dimensionality")
        if not lo:
            raise ValueError("dimensionality must be at least 1")
        for d, (l, h, vl, vh) in enumerate(zip(lo, hi, v_lo, v_hi)):
            if h < l:
                raise ValueError(f"malformed extent in dimension {d}: [{l}, {h}]")
            if vh < vl:
                raise ValueError(f"malformed velocity bound in dimension {d}")
        self.lo = tuple(float(v) for v in lo)
        self.hi = tuple(float(v) for v in hi)
        self.v_lo = tuple(float(v) for v in v_lo)
        self.v_hi = tuple(float(v) for v in v_hi)
        self.t_ref = float(t_ref)

    @property
    def ndims(self) -> int:
        return len(self.lo)

    @classmethod
    def rigid(
        cls,
        lo: Sequence[float],
        hi: Sequence[float],
        velocity: Sequence[float],
        t_ref: float,
    ) -> "NdKineticBox":
        """A rigidly translating box (data-object case)."""
        return cls(lo, hi, velocity, velocity, t_ref)

    def at(self, t: float) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """``(lo, hi)`` bound tuples at time ``t``."""
        dt = t - self.t_ref
        lo = tuple(l + v * dt for l, v in zip(self.lo, self.v_lo))
        hi = tuple(h + v * dt for h, v in zip(self.hi, self.v_hi))
        return lo, hi

    def intersects_at(self, other: "NdKineticBox", t: float) -> bool:
        """Closed-box overlap test at one timestamp."""
        a_lo, a_hi = self.at(t)
        b_lo, b_hi = other.at(t)
        return all(
            al <= bh and bl <= ah
            for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi)
        )

    def union(self, other: "NdKineticBox", t_ref: float) -> "NdKineticBox":
        """Tightest kinetic bound of both boxes referenced at ``t_ref``."""
        if self.ndims != other.ndims:
            raise ValueError("dimensionality mismatch")
        a_lo, a_hi = self.at(t_ref)
        b_lo, b_hi = other.at(t_ref)
        return NdKineticBox(
            tuple(min(a, b) for a, b in zip(a_lo, b_lo)),
            tuple(max(a, b) for a, b in zip(a_hi, b_hi)),
            tuple(min(a, b) for a, b in zip(self.v_lo, other.v_lo)),
            tuple(max(a, b) for a, b in zip(self.v_hi, other.v_hi)),
            t_ref,
        )

    def __repr__(self) -> str:
        return (
            f"NdKineticBox(d={self.ndims}, lo={self.lo}, hi={self.hi}, "
            f"v_lo={self.v_lo}, v_hi={self.v_hi}, t_ref={self.t_ref:g})"
        )


def _le_zero_window(
    c: float, m: float, lo: float, hi: float
) -> Optional[Tuple[float, float]]:
    """Sub-window of ``[lo, hi]`` where ``c + m*t <= 0`` (closed)."""
    if m == 0.0:
        return (lo, hi) if c <= _EPS else None
    root = -c / m
    if m > 0:
        if root < lo:
            return None
        return (lo, min(hi, root))
    if root > hi:
        return None
    return (max(lo, root), hi)


def intersection_interval_nd(
    a: NdKineticBox, b: NdKineticBox, t_start: float, t_end: float = INF
) -> Optional[TimeInterval]:
    """When do two d-dimensional moving boxes overlap within the window?

    The d-dimensional generalization of
    :func:`repro.geometry.intersection.intersection_interval`.
    """
    if a.ndims != b.ndims:
        raise ValueError("dimensionality mismatch")
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    lo, hi = t_start, t_end
    for d in range(a.ndims):
        # Each bound is re-associated into its pre-shifted form
        # ``bound - velocity * t_ref`` before the two sides are
        # subtracted — the exact same grouping as the 2-d implementation
        # and the batched kernels, so all three agree bit-for-bit
        # (different groupings diverge for subnormal velocity values).
        a_slo = a.lo[d] - a.v_lo[d] * a.t_ref
        a_shi = a.hi[d] - a.v_hi[d] * a.t_ref
        b_slo = b.lo[d] - b.v_lo[d] * b.t_ref
        b_shi = b.hi[d] - b.v_hi[d] * b.t_ref
        # a.lo(t) <= b.hi(t)
        window = _le_zero_window(a_slo - b_shi, a.v_lo[d] - b.v_hi[d], lo, hi)
        if window is None:
            return None
        lo, hi = window
        # b.lo(t) <= a.hi(t)
        window = _le_zero_window(b_slo - a_shi, b.v_lo[d] - a.v_hi[d], lo, hi)
        if window is None:
            return None
        lo, hi = window
    if lo > hi:
        return None
    return TimeInterval(lo, hi)


def sweep_bounds_nd(
    box: NdKineticBox, dim: int, t0: float, t1: float
) -> Tuple[float, float]:
    """Sweep ``(lb, ub)`` of one dimension over a finite window —
    the plane-sweep enabler, generalized."""
    if t1 == INF:
        # box.at(t0) is exact when t0 equals t_ref (adding v * 0.0 is a
        # no-op in IEEE-754), so no raw-equality fast path is needed.
        lo, hi = box.at(t0)
        lb = lo[dim] if box.v_lo[dim] >= 0 else -INF
        ub = hi[dim] if box.v_hi[dim] <= 0 else INF
        return lb, ub
    lo0, hi0 = box.at(t0)
    lo1, hi1 = box.at(t1)
    return min(lo0[dim], lo1[dim]), max(hi0[dim], hi1[dim])
