"""Kinetic (moving) rectangles: an MBR plus a VBR and a reference time.

This is the paper's object model (§II-A): a moving object ``O`` is
described by its MBR at a reference time ``t_ref`` and its velocity
bounding rectangle (VBR).  The rectangle occupied at time ``t >= t_ref``
has, along each dimension ``d``::

    lo_d(t) = mbr.lo(d) + vbr.lo(d) * (t - t_ref)
    hi_d(t) = mbr.hi(d) + vbr.hi(d) * (t - t_ref)

For a *data object* the VBR is degenerate (``vbr.lo == vbr.hi`` in each
dimension): the rectangle translates rigidly.  For a *TPR-tree node* the
VBR holds the min/max velocities of the children, so the node rectangle
is a conservative bound that never stops containing its children for any
``t >= t_ref``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .box import NDIMS, Box
from .interval import INF

__all__ = ["KineticBox"]


class KineticBox:
    """A rectangle whose bounds move linearly with time.

    Immutable.  ``mbr`` is the spatial rectangle at ``t_ref``; ``vbr``
    gives the velocity of each bound.

    >>> kb = KineticBox(Box(0, 1, 0, 1), Box(1, 1, 0, 0), t_ref=0.0)
    >>> kb.at(3.0)
    Box(3, 4, 0, 1)
    """

    __slots__ = ("mbr", "vbr", "t_ref")

    def __init__(self, mbr: Box, vbr: Box, t_ref: float):
        object.__setattr__(self, "mbr", mbr)
        object.__setattr__(self, "vbr", vbr)
        object.__setattr__(self, "t_ref", float(t_ref))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("KineticBox is immutable")

    def __reduce__(self):
        # Default slot-state pickling restores via setattr, which the
        # immutability guard rejects; rebuild through __init__ instead.
        return (KineticBox, (self.mbr, self.vbr, self.t_ref))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def moving_point(
        cls, x: float, y: float, vx: float, vy: float, t_ref: float
    ) -> "KineticBox":
        """A zero-extent object translating rigidly at ``(vx, vy)``."""
        return cls(Box.point(x, y), Box.point(vx, vy), t_ref)

    @classmethod
    def rigid(cls, mbr: Box, vx: float, vy: float, t_ref: float) -> "KineticBox":
        """A rectangle translating rigidly at ``(vx, vy)``."""
        return cls(mbr, Box.point(vx, vy), t_ref)

    @classmethod
    def union_at(cls, t_ref: float, boxes: Iterable["KineticBox"]) -> "KineticBox":
        """The tightest kinetic bound of ``boxes`` referenced at ``t_ref``.

        Positions are evaluated at ``t_ref`` and the VBR takes the
        per-dimension min of lower velocities and max of upper
        velocities, so the result contains every input for all
        ``t >= t_ref``.
        """
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_at requires at least one box") from None
        mbr = first.at(t_ref)
        vbr = first.vbr
        for kb in it:
            mbr = mbr.union(kb.at(t_ref))
            vbr = vbr.union(kb.vbr)
        return cls(mbr, vbr, t_ref)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def lo(self, dim: int, t: float) -> float:
        """Lower bound along ``dim`` at time ``t``."""
        return self.mbr.lo(dim) + self.vbr.lo(dim) * (t - self.t_ref)

    def hi(self, dim: int, t: float) -> float:
        """Upper bound along ``dim`` at time ``t``."""
        return self.mbr.hi(dim) + self.vbr.hi(dim) * (t - self.t_ref)

    def at(self, t: float) -> Box:
        """The (possibly degenerate) rectangle occupied at time ``t``.

        For bounding boxes whose extent shrinks before ``t_ref`` the
        raw linear bounds may cross; callers should only evaluate at
        ``t >= t_ref`` (checked).
        """
        dt = t - self.t_ref
        return Box(
            self.mbr.lo(0) + self.vbr.lo(0) * dt,
            self.mbr.hi(0) + self.vbr.hi(0) * dt,
            self.mbr.lo(1) + self.vbr.lo(1) * dt,
            self.mbr.hi(1) + self.vbr.hi(1) * dt,
        )

    def with_reference(self, t_ref: float) -> "KineticBox":
        """The same motion re-expressed with reference time ``t_ref``.

        Only meaningful for ``t_ref >= self.t_ref`` when this box is a
        conservative bound (extents never shrink going forward).
        """
        return KineticBox(self.at(t_ref), self.vbr, t_ref)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains_at(self, other: "KineticBox", t: float) -> bool:
        """Whether this rectangle contains ``other`` at time ``t``."""
        return self.at(t).contains(other.at(t))

    def bounds_over(self, other: "KineticBox", t0: float, t1: float) -> bool:
        """Whether this box contains ``other`` at *every* ``t`` in ``[t0, t1]``.

        Because all bounds are linear in ``t``, containment over a closed
        interval holds iff it holds at both endpoints.
        """
        if t1 == INF:
            # Containment at infinity reduces to velocity dominance.
            return (
                self.contains_at(other, t0)
                and self.vbr.lo(0) <= other.vbr.lo(0)
                and self.vbr.hi(0) >= other.vbr.hi(0)
                and self.vbr.lo(1) <= other.vbr.lo(1)
                and self.vbr.hi(1) >= other.vbr.hi(1)
            )
        return self.contains_at(other, t0) and self.contains_at(other, t1)

    def intersects_at(self, other: "KineticBox", t: float) -> bool:
        """Whether the two rectangles overlap at time ``t``."""
        return self.at(t).intersects(other.at(t))

    # ------------------------------------------------------------------
    # Metrics (used by TPR-tree insertion heuristics)
    # ------------------------------------------------------------------
    def extent(self, dim: int, t: float) -> float:
        """Side length along ``dim`` at time ``t`` (may be negative
        before ``t_ref`` for conservative bounds)."""
        return self.hi(dim, t) - self.lo(dim, t)

    def area_at(self, t: float) -> float:
        """Area at time ``t`` with negative extents clamped to zero."""
        w = max(self.extent(0, t), 0.0)
        h = max(self.extent(1, t), 0.0)
        return w * h

    def integrated_area(self, t0: float, t1: float) -> float:
        """Exact integral of the (clamped) area over ``[t0, t1]``.

        The area ``A(t) = w(t) * h(t)`` is quadratic in ``t`` with
        ``w, h`` linear; the integral is evaluated in closed form over
        the sub-interval where both are positive.
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 <= t0:  # degenerate window integrates to zero
            return 0.0
        lo, hi = t0, t1
        # Restrict to the region where both extents are non-negative.
        for dim in (0, 1):
            # extent(t) = extent(t_ref) + slope * (t - t_ref); as c + m*t.
            m = self.vbr.hi(dim) - self.vbr.lo(dim)
            c = self.extent(dim, self.t_ref) - m * self.t_ref
            if m == 0:
                if c < 0:
                    return 0.0
                continue
            root = -c / m
            if m > 0:
                lo = max(lo, root)
            else:
                hi = min(hi, root)
        if lo >= hi:
            return 0.0
        # A(t) = (cw + mw t)(ch + mh t); integrate the quadratic exactly.
        mw = self.vbr.hi(0) - self.vbr.lo(0)
        mh = self.vbr.hi(1) - self.vbr.lo(1)
        cw = self.extent(0, self.t_ref) - mw * self.t_ref
        ch = self.extent(1, self.t_ref) - mh * self.t_ref
        a2 = mw * mh
        a1 = cw * mh + ch * mw
        a0 = cw * ch

        def antideriv(t: float) -> float:
            return a2 * t**3 / 3 + a1 * t**2 / 2 + a0 * t

        return antideriv(hi) - antideriv(lo)

    def integrated_union_enlargement(
        self, other: "KineticBox", t0: float, t1: float
    ) -> float:
        """Integral over ``[t0, t1]`` of the area the union adds over
        this box's own area — the TPR-tree insertion penalty."""
        union = KineticBox.union_at(t0, [self, other])
        return union.integrated_area(t0, t1) - self.with_reference(t0).integrated_area(
            t0, t1
        )

    def speed_sum(self, dim: int) -> float:
        """Sum of absolute bound speeds along ``dim``.

        Used by the paper's *dimension selection* heuristic (§IV-D.2):
        the sweep dimension is the one with the smallest total speed.
        """
        return abs(self.vbr.lo(dim)) + abs(self.vbr.hi(dim))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KineticBox):
            return NotImplemented
        return (
            self.mbr == other.mbr
            and self.vbr == other.vbr
            and self.t_ref == other.t_ref
        )

    def __hash__(self) -> int:
        return hash((self.mbr, self.vbr, self.t_ref))

    def __repr__(self) -> str:
        return f"KineticBox(mbr={self.mbr!r}, vbr={self.vbr!r}, t_ref={self.t_ref:g})"

    def params(self) -> Tuple[float, ...]:
        """Flat parameter tuple ``(mbr bounds…, vbr bounds…, t_ref)``
        used by the storage serializer."""
        return self.mbr.bounds + self.vbr.bounds + (self.t_ref,)

    @classmethod
    def from_params(cls, params: Tuple[float, ...]) -> "KineticBox":
        """Inverse of :meth:`params`."""
        if len(params) != 4 * NDIMS + 1:
            raise ValueError("expected 9 parameters")
        return cls(
            Box.from_bounds(params[0:4]), Box.from_bounds(params[4:8]), params[8]
        )
