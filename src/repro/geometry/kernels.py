"""Vectorized NumPy kernels for the pair-test hot path.

Every join strategy bottoms out in
:func:`~repro.geometry.intersection.intersection_interval`, called once
per candidate pair from the plane sweep, the IC entry filter and the
TPR-tree search.  This module batches those calls: a
:class:`KineticBatch` holds a whole node's (or dataset's) kinetic boxes
as structure-of-arrays columns, and the ``batch_*`` kernels evaluate all
pair constraints with NumPy broadcasting instead of per-pair Python.

Exactness contract
------------------
The kernels are *bit-identical* to the scalar path, not merely close:

* the constraint coefficients are pre-shifted to reference time 0
  (``lo - v_lo * t_ref``), and the scalar ``intersection_interval`` is
  written with the same association, so both paths perform the same
  IEEE-754 operations per constraint;
* sweep bounds evaluate ``mbr + vbr * (t - t_ref)`` elementwise, the
  exact expression :meth:`KineticBox.lo` / :meth:`~KineticBox.hi` use;
* window clamping is a chain of ``min``/``max`` accumulations, which are
  exact and order-independent, so the sequential scalar clamps and the
  broadcast kernel clamps agree to the last bit.

The scalar implementations stay in place as the verification oracle and
as the fallback when NumPy is unavailable (``HAVE_NUMPY`` is ``False``
and every consumer silently takes its scalar path).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .box import NDIMS
from .constants import PAIR_TEST_EPS as _EPS
from .interval import INF, TimeInterval
from .kinetic import KineticBox

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "PROBE_BATCH_MIN",
    "KineticBatch",
    "batch_intersection_intervals",
    "batch_probe_windows",
    "batch_filter_against",
    "batch_sweep_bounds",
    "batch_select_sweep_dimension",
    "batch_ps_intersection",
    "batch_sweep_join",
    "batch_all_pairs_intersection",
    "batch_integrated_areas",
    "batch_insertion_costs",
]

#: Flat ``KineticBox.params()`` layout: 4 MBR + 4 VBR bounds + t_ref.
_N_PARAMS = 4 * NDIMS + 1

#: Minimum batch size for a 1-vs-N probe to beat the scalar loop when
#: the :class:`KineticBatch` must be packed fresh for the call (as in
#: tree search, where nodes are visited once per query).  Measured
#: crossover is ~n=30 pack-included and ~n=16 with a cached pack;
#: consumers that cannot amortize the pack should take the scalar path
#: below this size.  Grid kernels (N x M pairs) win from ~16x16 and are
#: not gated.
PROBE_BATCH_MIN = 32


class KineticBatch:
    """Structure-of-arrays view of a sequence of kinetic boxes.

    Arrays are indexed ``[dim, i]``; ``slo``/``shi`` are the MBR bounds
    pre-shifted to reference time 0 (``mbr - vbr * t_ref``), so a bound
    at time ``t`` is simply ``slo + vlo * t`` and the per-pair ``t_ref``
    arithmetic of the scalar path vanishes from the kernels.  The raw
    ``mlo``/``mhi``/``tref`` columns are kept as well because the sweep
    bounds must evaluate ``mbr + vbr * (t - t_ref)`` to stay bit-exact
    with :func:`~repro.geometry.plane_sweep.sweep_bounds`.

    >>> from repro.geometry import Box
    >>> batch = KineticBatch.from_boxes(
    ...     [KineticBox.rigid(Box(0, 1, 2, 3), 1.0, -1.0, 0.0)]
    ... )
    >>> len(batch)
    1
    """

    __slots__ = ("n", "mlo", "mhi", "vlo", "vhi", "tref", "slo", "shi", "_speed_sums")

    def __init__(self, mlo, mhi, vlo, vhi, tref, slo=None, shi=None):
        self.n = int(tref.shape[0])
        self.mlo = mlo
        self.mhi = mhi
        self.vlo = vlo
        self.vhi = vhi
        self.tref = tref
        self.slo = mlo - vlo * tref if slo is None else slo
        self.shi = mhi - vhi * tref if shi is None else shi
        self._speed_sums = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_boxes(cls, boxes: Sequence[KineticBox]) -> "KineticBatch":
        """Pack a sequence of kinetic boxes into one SoA batch."""
        params = np.array([kb.params() for kb in boxes], dtype=np.float64)
        params = params.reshape(-1, _N_PARAMS)
        lo_cols = [2 * d for d in range(NDIMS)]
        hi_cols = [2 * d + 1 for d in range(NDIMS)]
        v_off = 2 * NDIMS
        return cls(
            np.ascontiguousarray(params[:, lo_cols].T),
            np.ascontiguousarray(params[:, hi_cols].T),
            np.ascontiguousarray(params[:, [v_off + c for c in lo_cols]].T),
            np.ascontiguousarray(params[:, [v_off + c for c in hi_cols]].T),
            np.ascontiguousarray(params[:, 4 * NDIMS]),
        )

    @classmethod
    def from_entries(cls, entries: Sequence) -> "KineticBatch":
        """Pack the ``kbox`` of each index entry (leaf or internal)."""
        return cls.from_boxes([e.kbox for e in entries])

    # ------------------------------------------------------------------
    # Introspection / slicing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    @property
    def speed_sums(self):
        """Per-dimension total of ``|v_lo| + |v_hi|`` over the batch.

        Computed once and cached — this is the §IV-D.2 dimension
        selection statistic, which the scalar path re-sums per node
        pair.
        """
        if self._speed_sums is None:
            self._speed_sums = np.abs(self.vlo).sum(axis=1) + np.abs(self.vhi).sum(
                axis=1
            )
        return self._speed_sums

    def compress(self, mask: "np.ndarray") -> "KineticBatch":
        """Sub-batch of the rows where the boolean ``mask`` is true."""
        return KineticBatch(
            self.mlo[:, mask],
            self.mhi[:, mask],
            self.vlo[:, mask],
            self.vhi[:, mask],
            self.tref[mask],
            self.slo[:, mask],
            self.shi[:, mask],
        )

    def box(self, i: int) -> KineticBox:
        """Reconstruct row ``i`` as a :class:`KineticBox` (diagnostics)."""
        flat: List[float] = []
        for arr_lo, arr_hi in ((self.mlo, self.mhi), (self.vlo, self.vhi)):
            for d in range(NDIMS):
                flat.append(float(arr_lo[d, i]))
                flat.append(float(arr_hi[d, i]))
        flat.append(float(self.tref[i]))
        return KineticBox.from_params(tuple(flat))

    def __repr__(self) -> str:
        return f"KineticBatch(n={self.n})"


# ----------------------------------------------------------------------
# Core window kernel
# ----------------------------------------------------------------------
def _clamp_constraint(c, m, lo, hi, ok) -> None:
    """Tighten the windows ``[lo, hi]`` with ``c + m*t <= 0`` in place.

    Mirrors :func:`repro.geometry.intersection._le_zero_window`: a zero
    slope rejects wherever ``c > _EPS``; a positive slope caps ``hi`` at
    the root; a negative slope raises ``lo`` to it.  Rejection is
    deferred to the final ``lo <= hi`` test, which is equivalent to the
    scalar early returns because ``lo``/``hi`` only move inward.
    """
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        root = -c / m
    np.logical_and(ok, (m != 0.0) | (c <= _EPS), out=ok)
    np.minimum(hi, root, out=hi, where=m > 0.0)
    np.maximum(lo, root, out=lo, where=m < 0.0)
    # A subnormal slope can overflow the division to +inf; first contact
    # at the infinite timestamp means the pair never meets (the scalar
    # path rejects the same way).
    np.logical_and(ok, lo < INF, out=ok)


def _pair_windows(batch_a: KineticBatch, ia, batch_b: KineticBatch, jb, t0, t1):
    """Constraint windows of ``a[ia] x b[jb]`` under NumPy broadcasting.

    ``ia``/``jb`` may be ints, index arrays, slices, or ``None`` (for a
    broadcast axis); the result shape is their broadcast.  Returns
    ``(lo, hi, valid)``.
    """
    shape = np.broadcast(batch_a.tref[ia], batch_b.tref[jb]).shape
    lo = np.full(shape, float(t0))
    hi = np.full(shape, float(t1))
    ok = np.ones(shape, dtype=bool)
    for d in range(NDIMS):
        a_slo, a_shi = batch_a.slo[d][ia], batch_a.shi[d][ia]
        a_vlo, a_vhi = batch_a.vlo[d][ia], batch_a.vhi[d][ia]
        b_slo, b_shi = batch_b.slo[d][jb], batch_b.shi[d][jb]
        b_vlo, b_vhi = batch_b.vlo[d][jb], batch_b.vhi[d][jb]
        # Constraint 1: a.lo(t) - b.hi(t) <= 0.
        _clamp_constraint(a_slo - b_shi, a_vlo - b_vhi, lo, hi, ok)
        # Constraint 2: b.lo(t) - a.hi(t) <= 0.
        _clamp_constraint(b_slo - a_shi, b_vlo - a_vhi, lo, hi, ok)
    np.logical_and(ok, lo <= hi, out=ok)
    return lo, hi, ok


def batch_intersection_intervals(
    batch_a: KineticBatch, batch_b: KineticBatch, t0: float, t1: float = INF
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """All-pairs constraint windows between two batches.

    Returns ``(lo, hi, valid)`` arrays of shape ``(len(a), len(b))``:
    where ``valid[i, j]`` is true, ``a[i]`` and ``b[j]`` overlap exactly
    during ``[lo[i, j], hi[i, j]]`` — the same interval the scalar
    ``intersection_interval(a[i], b[j], t0, t1)`` returns; where false,
    the scalar returns ``None``.  ``t1`` may be ``inf``.
    """
    if t1 < t0:
        raise ValueError("t_end must be >= t_start")
    return _pair_windows(
        batch_a, (slice(None), None), batch_b, (None, slice(None)), t0, t1
    )


def batch_probe_windows(
    batch: KineticBatch, other: KineticBox, t0: float, t1: float = INF
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Constraint windows of every batch row against one probe box.

    The 1-vs-N case (tree search, single-side descent, IC filter) as a
    single stacked pass: returns 1-D ``(lo, hi, ok)`` where row ``i``
    equals ``intersection_interval(batch[i], other, t0, t1)`` (``None``
    ⇔ ``not ok[i]``).  The probe's shifted coefficients are plain Python
    floats (same ops as the batch pre-shift, so still bit-exact) —
    packing a one-box batch per call would cost more than the probe.

    The result is independent of which side plays the "A" role: swapping
    roles permutes the constraint *set* per dimension, and the reduction
    below is order-independent, so callers may probe with either
    orientation and still match the scalar bit-for-bit.
    """
    if t1 < t0:
        raise ValueError("t_end must be >= t_start")
    o_vlo = [other.vbr.lo(d) for d in range(NDIMS)]
    o_vhi = [other.vbr.hi(d) for d in range(NDIMS)]
    o_slo = [other.mbr.lo(d) - o_vlo[d] * other.t_ref for d in range(NDIMS)]
    o_shi = [other.mbr.hi(d) - o_vhi[d] * other.t_ref for d in range(NDIMS)]
    # All 2*NDIMS constraints ``c + m*t <= 0`` stacked into one pass:
    # rows alternate constraint 1 (batch.lo(t) <= other.hi(t)) and
    # constraint 2 (other.lo(t) <= batch.hi(t)) per dimension.
    c = np.stack(
        [arr for d in range(NDIMS)
         for arr in (batch.slo[d] - o_shi[d], o_slo[d] - batch.shi[d])]
    )
    m = np.stack(
        [arr for d in range(NDIMS)
         for arr in (batch.vlo[d] - o_vhi[d], o_vlo[d] - batch.vhi[d])]
    )
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        root = -c / m
    pos = m > 0.0
    neg = m < 0.0
    # min/max are exact and order-independent, so reducing over the
    # constraint axis equals the scalar's sequential clamps bit-for-bit.
    hi = np.minimum(np.where(pos, root, INF).min(axis=0), t1)
    lo = np.maximum(np.where(neg, root, -INF).max(axis=0), t0)
    flat_reject = (~(pos | neg)) & (c > _EPS)
    ok = ~flat_reject.any(axis=0)
    ok &= lo <= hi
    # Same overflow guard as _clamp_constraint: a +inf contact time is
    # "never meets", matching the scalar rejection.
    ok &= lo < INF
    return lo, hi, ok


def batch_filter_against(
    batch: KineticBatch, other: KineticBox, t0: float, t1: float = INF
) -> "np.ndarray":
    """Boolean mask of batch rows intersecting ``other`` during the window.

    This is the IC entry filter (`_filter_against`) as one kernel call:
    ``mask[i]`` is true iff ``intersection_interval(batch[i], other, t0,
    t1)`` is not ``None``.
    """
    _lo, _hi, ok = batch_probe_windows(batch, other, t0, t1)
    return ok


# ----------------------------------------------------------------------
# Plane-sweep kernels
# ----------------------------------------------------------------------
def batch_sweep_bounds(
    batch: KineticBatch, dim: int, t0: float, t1: float
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized :func:`~repro.geometry.plane_sweep.sweep_bounds`.

    Returns ``(lb, ub)`` arrays over the batch, bit-identical to the
    scalar per-box computation (including the degenerate ``t1 = inf``
    case, where outward velocities yield infinite bounds).
    """
    dt0 = t0 - batch.tref
    lo_t0 = batch.mlo[dim] + batch.vlo[dim] * dt0
    hi_t0 = batch.mhi[dim] + batch.vhi[dim] * dt0
    if t1 == INF:
        lb = np.where(batch.vlo[dim] >= 0, lo_t0, -INF)
        ub = np.where(batch.vhi[dim] <= 0, hi_t0, INF)
        return lb, ub
    dt1 = t1 - batch.tref
    lb = np.minimum(lo_t0, batch.mlo[dim] + batch.vlo[dim] * dt1)
    ub = np.maximum(hi_t0, batch.mhi[dim] + batch.vhi[dim] * dt1)
    return lb, ub


def batch_select_sweep_dimension(batch_a: KineticBatch, batch_b: KineticBatch) -> int:
    """Dimension-selection (§IV-D.2) from the cached per-batch speed sums.

    The scalar heuristic re-sums every entry's ``speed_sum`` per node
    pair; here the totals are computed once per batch and reused, so
    selection is O(NDIMS) after the first call.
    """
    totals = batch_a.speed_sums + batch_b.speed_sums
    return int(np.argmin(totals))


#: Default flush threshold (candidate pairs) for the chunked sweep join.
#: Bounds peak memory at roughly ``chunk * 8 doubles`` regardless of how
#: many candidates the sweep produces in total.  Results are
#: chunk-invariant (the window math is elementwise); the value only
#: trades gather-temporary size against dispatch count.  64k keeps the
#: per-flush working set (~a few MiB) inside cache, which measures both
#: *faster* and an order of magnitude lighter than multi-million-row
#: flushes at the 100k-per-side scale.
SWEEP_JOIN_CHUNK = 65_536


def batch_sweep_join(
    batch_a: KineticBatch,
    batch_b: KineticBatch,
    t0: float,
    t1: float,
    dim: Optional[int] = None,
    counter: Optional[List[int]] = None,
    chunk: int = SWEEP_JOIN_CHUNK,
    backend: Optional[object] = None,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Arrays-out plane-sweep join: the whole-dataset probe primitive.

    The candidate generation of :func:`batch_ps_intersection` with the
    result left in columnar form: returns ``(idx_a, idx_b, lo, hi)``
    arrays of the surviving pairs, in sweep order — ``batch_a[idx_a[k]]``
    intersects ``batch_b[idx_b[k]]`` exactly during ``[lo[k], hi[k]]``,
    bit-identical to the scalar ``intersection_interval``.  Candidate
    segments are flushed through the pair-window kernel every ``chunk``
    pairs, so peak memory stays bounded for dataset-scale sweeps
    (100k × 100k) where materializing all candidates at once would not.

    ``backend`` optionally supplies compiled kernels (an object with
    ``pair_windows`` / ``sweep_bounds`` matching the module functions,
    see :mod:`repro.geometry.compiled`); ``None`` runs the NumPy oracle
    path.
    """
    if t1 < t0:
        raise ValueError("t_end must be >= t_start")
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0),
        np.empty(0),
    )
    if batch_a.n == 0 or batch_b.n == 0:
        return empty
    if dim is None:
        dim = batch_select_sweep_dimension(batch_a, batch_b)
    bounds = batch_sweep_bounds if backend is None else backend.sweep_bounds
    windows = _pair_windows if backend is None else backend.pair_windows
    lb_a, ub_a = bounds(batch_a, dim, t0, t1)
    lb_b, ub_b = bounds(batch_b, dim, t0, t1)
    order_a = np.argsort(lb_a, kind="stable")
    order_b = np.argsort(lb_b, kind="stable")
    lba, uba = lb_a[order_a], ub_a[order_a]
    lbb, ubb = lb_b[order_b], ub_b[order_b]
    m, n = batch_a.n, batch_b.n
    # Each pivot's candidate segment on the other (sorted) side is a
    # contiguous range, both ends from one binary search: the start is
    # the scalar sweep's pointer position when the pivot is processed
    # (the count of opposing lbs strictly before it — `<=` for b-side
    # pivots, since lb ties process side a first), the stop is the
    # first position whose lb exceeds the pivot's ub.  This replaces
    # the per-pivot python merge loop with O(segments) array work.
    starts_a = np.searchsorted(lbb, lba, side="left")
    stops_a = np.searchsorted(lbb, uba, side="right")
    starts_b = np.searchsorted(lba, lbb, side="right")
    stops_b = np.searchsorted(lba, ubb, side="right")
    # Merged pivot order = the scalar sweep's processing order: both lb
    # arrays are sorted, so one stable argsort of their concatenation
    # interleaves them and keeps side a first on ties.
    merged = np.argsort(np.concatenate([lba, lbb]), kind="stable")
    counts = np.maximum(
        np.concatenate([stops_a - starts_a, stops_b - starts_b]), 0
    )[merged]
    seg_start = np.concatenate([starts_a, starts_b])[merged]
    piv_val = np.concatenate([order_a, order_b])[merged]
    piv_is_b = merged >= m
    cum = np.cumsum(counts)
    total = int(cum[-1]) if counts.size else 0
    if total == 0:
        if counter is not None:
            counter[0] += 0
        return empty
    seg_off = cum - counts
    out_a: List = []
    out_b: List = []
    out_lo: List = []
    out_hi: List = []
    n_seg = int(counts.size)
    seg = 0
    while seg < n_seg:
        # Largest block of whole segments near the chunk budget (always
        # at least one, so a single oversized segment still flushes).
        end = int(np.searchsorted(cum, int(seg_off[seg]) + chunk, side="left"))
        end = max(min(end + 1, n_seg), seg + 1)
        cnt = counts[seg:end]
        t = int(cum[end - 1] - seg_off[seg])
        if t == 0:
            seg = end
            continue
        base = np.cumsum(cnt) - cnt
        within = np.arange(t, dtype=np.int64) - np.repeat(base, cnt)
        pos = np.repeat(seg_start[seg:end], cnt) + within
        pivot = np.repeat(piv_val[seg:end], cnt)
        from_b = np.repeat(piv_is_b[seg:end], cnt)
        # A pivot pairs with the *other* side's sorted run; gather both
        # (clipped in-bounds) and select per row.
        idx_a = np.where(from_b, order_a[np.minimum(pos, m - 1)], pivot)
        idx_b = np.where(from_b, pivot, order_b[np.minimum(pos, n - 1)])
        lo, hi, ok = windows(batch_a, idx_a, batch_b, idx_b, t0, t1)
        sel = np.nonzero(ok)[0]
        out_a.append(idx_a[sel])
        out_b.append(idx_b[sel])
        out_lo.append(lo[sel])
        out_hi.append(hi[sel])
        seg = end
    if counter is not None:
        counter[0] += total
    if not out_a:
        return empty
    return (
        np.concatenate(out_a),
        np.concatenate(out_b),
        np.concatenate(out_lo),
        np.concatenate(out_hi),
    )


def batch_ps_intersection(
    batch_a: KineticBatch,
    batch_b: KineticBatch,
    t0: float,
    t1: float,
    dim: Optional[int] = None,
    counter: Optional[List[int]] = None,
) -> List[Tuple[int, int, TimeInterval]]:
    """Plane sweep with vectorized candidate testing.

    Same contract as :func:`~repro.geometry.plane_sweep.ps_intersection`
    — ``(i, j, interval)`` triples in sweep order.  The sweep itself is
    restructured for batching: every pivot's candidate range comes from
    one vectorized binary search over the sorted sweep bounds, the
    cheap merge loop only *collects* (pivot, candidates) index segments,
    and all collected pairs are then tested by a gather kernel — a
    handful of NumPy dispatches for the whole sweep instead of one per
    pivot.  This is a thin triple-building wrapper over
    :func:`batch_sweep_join`, which keeps the result in arrays.
    """
    idx_a, idx_b, lo, hi = batch_sweep_join(
        batch_a, batch_b, t0, t1, dim=dim, counter=counter
    )
    return [
        (int(i), int(j), TimeInterval(s, e))
        for i, j, s, e in zip(
            idx_a.tolist(), idx_b.tolist(), lo.tolist(), hi.tolist()
        )
    ]


def batch_all_pairs_intersection(
    batch_a: KineticBatch,
    batch_b: KineticBatch,
    t0: float,
    t1: float = INF,
    counter: Optional[List[int]] = None,
) -> List[Tuple[int, int, TimeInterval]]:
    """Nested-loop reference as one broadcast kernel call.

    Same contract (and result order) as
    :func:`~repro.geometry.plane_sweep.all_pairs_intersection`.
    """
    if batch_a.n == 0 or batch_b.n == 0:
        return []
    lo, hi, ok = batch_intersection_intervals(batch_a, batch_b, t0, t1)
    if counter is not None:
        counter[0] += batch_a.n * batch_b.n
    ii, jj = np.nonzero(ok)
    starts = lo[ii, jj].tolist()
    ends = hi[ii, jj].tolist()
    return [
        (int(i), int(j), TimeInterval(s, e))
        for i, j, s, e in zip(ii.tolist(), jj.tolist(), starts, ends)
    ]


def _integral_from_widths(w0x, mx, w0y, my, horizon: float):
    """Closed-form ``integral of (w0x + mx*s)(w0y + my*s) ds`` over
    ``s in [0, horizon]``, elementwise over any broadcastable shape.

    Valid when both extents stay non-negative on the window, which
    every box bound the index builds guarantees: ``vbr.hi >= vbr.lo``
    per dimension, so extents never shrink after their reference time.
    """
    return (
        w0x * w0y * horizon
        + (w0x * my + w0y * mx) * (horizon * horizon) / 2.0
        + mx * my * (horizon * horizon * horizon) / 3.0
    )


def batch_integrated_areas(
    batch: KineticBatch, t0: float, t1: float
) -> "np.ndarray":
    """Integrated area of each box over ``[t0, t1]`` as one vector.

    Mirrors :meth:`KineticBox.integrated_area` for the non-shrinking
    boxes the TPR-tree maintains (the scalar method's zero-extent
    clamping never binds for ``t0 >= t_ref`` when velocity bounds are
    ordered, so the unclamped quadratic integral is the same value).
    """
    horizon = t1 - t0
    w0x = (batch.shi[0] + batch.vhi[0] * t0) - (batch.slo[0] + batch.vlo[0] * t0)
    w0y = (batch.shi[1] + batch.vhi[1] * t0) - (batch.slo[1] + batch.vlo[1] * t0)
    mx = batch.vhi[0] - batch.vlo[0]
    my = batch.vhi[1] - batch.vlo[1]
    return _integral_from_widths(w0x, mx, w0y, my, horizon)


def batch_insertion_costs(
    entries_batch: KineticBatch,
    objs_batch: KineticBatch,
    t0: float,
    t1: float,
    backend: Optional[object] = None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """The TPR choose-subtree cost grid for a whole batch of inserts.

    Returns ``(enlargements, areas)`` where ``enlargements[i, j]`` is
    the integrated enlargement of entry ``i``'s bound when extended to
    also cover object ``j`` over ``[t0, t1]`` (the primary key of
    :meth:`TPRTree._choose_child`) and ``areas[i]`` is entry ``i``'s
    own integrated area (the tie-break key).  One call replaces
    ``n_entries * n_objs`` scalar ``integrated_union_enlargement``
    evaluations at the node being descended.  ``backend`` optionally
    supplies the compiled kernel (see :mod:`repro.geometry.compiled`);
    its output is bit-identical.
    """
    if backend is not None:
        return backend.insertion_costs(entries_batch, objs_batch, t0, t1)
    horizon = t1 - t0
    areas = batch_integrated_areas(entries_batch, t0, t1)
    # Union bound at t0, per dimension: position min/max at t0 with
    # velocity min/max — exactly KineticBox.union_at(t0, [entry, obj]).
    u_w0 = []
    u_m = []
    for d in range(NDIMS):
        e_lo = (entries_batch.slo[d] + entries_batch.vlo[d] * t0)[:, None]
        e_hi = (entries_batch.shi[d] + entries_batch.vhi[d] * t0)[:, None]
        o_lo = (objs_batch.slo[d] + objs_batch.vlo[d] * t0)[None, :]
        o_hi = (objs_batch.shi[d] + objs_batch.vhi[d] * t0)[None, :]
        u_w0.append(np.maximum(e_hi, o_hi) - np.minimum(e_lo, o_lo))
        u_m.append(
            np.maximum(entries_batch.vhi[d][:, None], objs_batch.vhi[d][None, :])
            - np.minimum(entries_batch.vlo[d][:, None], objs_batch.vlo[d][None, :])
        )
    union_areas = _integral_from_widths(u_w0[0], u_m[0], u_w0[1], u_m[1], horizon)
    return union_areas - areas[:, None], areas
