"""Exact intersection interval of two moving rectangles.

This implements the paper's ``intersect(e_A, e_B, t_s, t_e)`` primitive
(§II-C): given two kinetic boxes and a query window, return the time
interval inside the window during which the rectangles overlap, or
``None`` if they never do.

Two axis-parallel rectangles overlap at time ``t`` iff, in **every**
dimension ``d``::

    a.lo_d(t) <= b.hi_d(t)   and   b.lo_d(t) <= a.hi_d(t)

Each inequality is linear in ``t``, so each yields a sub-interval of the
real line (possibly empty, a half-line, or everything).  The overlap
interval is the intersection of the four constraint intervals and the
query window.  Because the constraint set is an intersection of
half-lines, the result is always a single closed interval — moving
rectangles under linear motion intersect during at most one maximal
interval.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .box import NDIMS
from .constants import PAIR_TEST_EPS as _EPS
from .interval import INF, TimeInterval
from .kinetic import KineticBox

__all__ = ["intersection_interval", "intersects_during", "first_contact_time"]


def _le_zero_window(
    c: float, m: float, lo: float, hi: float
) -> Optional[Tuple[float, float]]:
    """Sub-window of ``[lo, hi]`` where ``c + m*t <= 0`` (closed).

    Returns ``None`` when the constraint holds nowhere in the window.
    ``hi`` may be ``inf``.
    """
    if m == 0.0:
        return (lo, hi) if c <= _EPS else None
    root = -c / m
    if m > 0:
        # Holds for t <= root.
        if root < lo:
            return None
        return (lo, min(hi, root))
    # m < 0: holds for t >= root.  A subnormal slope can overflow the
    # division to +inf; "first contact at the infinite timestamp" means
    # the rectangles never actually meet.
    if root > hi or root == INF:
        return None
    return (max(lo, root), hi)


def intersection_interval(
    a: KineticBox, b: KineticBox, t_start: float, t_end: float = INF
) -> Optional[TimeInterval]:
    """When do ``a`` and ``b`` overlap within ``[t_start, t_end]``?

    Returns the single maximal closed :class:`TimeInterval` of overlap
    clipped to the window, or ``None`` when the rectangles are disjoint
    throughout the window.  ``t_end`` may be ``inf`` (the paper's
    "infinite timestamp").

    >>> from repro.geometry import Box
    >>> a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
    >>> b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 0.0)
    >>> intersection_interval(a, b, 0.0)
    TimeInterval(3, 5)
    """
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    lo, hi = t_start, t_end
    for dim in range(NDIMS):
        # Each bound re-expressed at reference time 0: lo(t) = slo + v*t.
        # The (x - v * t_ref) association is shared with the vectorized
        # kernels (repro.geometry.kernels), which pre-shift their columns
        # the same way — keeping the two paths bit-identical.
        a_slo = a.mbr.lo(dim) - a.vbr.lo(dim) * a.t_ref
        a_shi = a.mbr.hi(dim) - a.vbr.hi(dim) * a.t_ref
        b_slo = b.mbr.lo(dim) - b.vbr.lo(dim) * b.t_ref
        b_shi = b.mbr.hi(dim) - b.vbr.hi(dim) * b.t_ref
        # Constraint 1: a.lo(t) - b.hi(t) <= 0.
        window = _le_zero_window(
            a_slo - b_shi, a.vbr.lo(dim) - b.vbr.hi(dim), lo, hi
        )
        if window is None:
            return None
        lo, hi = window
        # Constraint 2: b.lo(t) - a.hi(t) <= 0.
        window = _le_zero_window(
            b_slo - a_shi, b.vbr.lo(dim) - a.vbr.hi(dim), lo, hi
        )
        if window is None:
            return None
        lo, hi = window
    if lo > hi:
        return None
    return TimeInterval(lo, hi)


def intersects_during(
    a: KineticBox, b: KineticBox, t_start: float, t_end: float = INF
) -> bool:
    """Whether ``a`` and ``b`` overlap at any time in ``[t_start, t_end]``."""
    return intersection_interval(a, b, t_start, t_end) is not None


def first_contact_time(
    a: KineticBox, b: KineticBox, t_start: float, t_end: float = INF
) -> Optional[float]:
    """Earliest ``t`` in the window at which the rectangles overlap.

    This is the *influence time* lower bound used by the TP-join
    traversal for node pairs that do not currently intersect.
    """
    interval = intersection_interval(a, b, t_start, t_end)
    return interval.start if interval is not None else None
