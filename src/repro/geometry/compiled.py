"""Optional Numba-compiled kernels for the three hottest batch paths.

The NumPy kernels in :mod:`repro.geometry.kernels` are the *oracle*:
bit-exact with the scalar reference and always available.  This module
optionally compiles the three hottest of them — the gathered pair-window
test, the sweep bounds, and the TPR insertion-cost grid — with Numba,
behind :attr:`repro.core.JoinConfig.compile_kernels`.

Oracle contract
---------------
The compiled kernels perform the *same IEEE-754 operations in the same
order* as their NumPy counterparts (the division ``-c / m`` per
constraint, sequential min/max clamps, the identical polynomial
association in the cost integrals), so their outputs are required to be
bit-identical — the parity suite (``tests/geometry/test_compiled.py``)
asserts exact equality, not closeness, and runs wherever Numba is
installed (the CI ``scale`` job; it auto-skips elsewhere).

Fallback
--------
Numba is an *optional* dependency: when it is missing,
:data:`HAVE_NUMBA` is false, :func:`get_backend` returns ``None`` and
every consumer silently stays on the NumPy path.  Nothing in the
default test or benchmark matrix requires it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .box import NDIMS
from .constants import PAIR_TEST_EPS as _EPS
from .interval import INF
from .kernels import KineticBatch

try:  # pragma: no cover - absent in the default environment
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common, dependency-light case
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

__all__ = ["HAVE_NUMBA", "CompiledBackend", "get_backend", "reference_backend"]

_BACKEND: Optional["CompiledBackend"] = None
_BACKEND_FAILED = False


# ----------------------------------------------------------------------
# Kernel bodies (plain Python; compiled by numba.njit when available).
# Each mirrors its NumPy oracle operation-for-operation — see the module
# docstring for why the loops are written exactly this way.
# ----------------------------------------------------------------------
def _pair_windows_impl(
    a_slo, a_shi, a_vlo, a_vhi, b_slo, b_shi, b_vlo, b_vhi,
    ia, jb, t0, t1, eps, inf,
):  # pragma: no cover - compiled path, exercised by the parity suite
    k = ia.shape[0]
    lo = np.empty(k)
    hi = np.empty(k)
    ok = np.empty(k, dtype=np.bool_)
    ndims = a_slo.shape[0]
    for p in range(k):
        i = ia[p]
        j = jb[p]
        w_lo = t0
        w_hi = t1
        good = True
        for d in range(ndims):
            # Constraint 1: a.lo(t) - b.hi(t) <= 0.
            c = a_slo[d, i] - b_shi[d, j]
            m = a_vlo[d, i] - b_vhi[d, j]
            if m == 0.0:
                if c > eps:
                    good = False
            elif m > 0.0:
                root = -c / m
                if root < w_hi:
                    w_hi = root
            else:
                root = -c / m
                if root > w_lo:
                    w_lo = root
            # Constraint 2: b.lo(t) - a.hi(t) <= 0.
            c = b_slo[d, j] - a_shi[d, i]
            m = b_vlo[d, j] - a_vhi[d, i]
            if m == 0.0:
                if c > eps:
                    good = False
            elif m > 0.0:
                root = -c / m
                if root < w_hi:
                    w_hi = root
            else:
                root = -c / m
                if root > w_lo:
                    w_lo = root
        if w_lo > w_hi or w_lo >= inf:
            good = False
        lo[p] = w_lo
        hi[p] = w_hi
        ok[p] = good
    return lo, hi, ok


def _sweep_bounds_impl(
    mlo, mhi, vlo, vhi, tref, t0, t1, inf
):  # pragma: no cover - compiled path, exercised by the parity suite
    n = tref.shape[0]
    lb = np.empty(n)
    ub = np.empty(n)
    if t1 == inf:
        for i in range(n):
            dt0 = t0 - tref[i]
            lb[i] = mlo[i] + vlo[i] * dt0 if vlo[i] >= 0.0 else -inf
            ub[i] = mhi[i] + vhi[i] * dt0 if vhi[i] <= 0.0 else inf
        return lb, ub
    for i in range(n):
        dt0 = t0 - tref[i]
        dt1 = t1 - tref[i]
        lo_t0 = mlo[i] + vlo[i] * dt0
        lo_t1 = mlo[i] + vlo[i] * dt1
        hi_t0 = mhi[i] + vhi[i] * dt0
        hi_t1 = mhi[i] + vhi[i] * dt1
        lb[i] = lo_t0 if lo_t0 <= lo_t1 else lo_t1
        ub[i] = hi_t0 if hi_t0 >= hi_t1 else hi_t1
    return lb, ub


def _insertion_costs_impl(
    e_slo, e_shi, e_vlo, e_vhi, o_slo, o_shi, o_vlo, o_vhi, t0, t1
):  # pragma: no cover - compiled path, exercised by the parity suite
    n_e = e_slo.shape[1]
    n_o = o_slo.shape[1]
    horizon = t1 - t0
    areas = np.empty(n_e)
    enlargements = np.empty((n_e, n_o))
    for i in range(n_e):
        w0x = (e_shi[0, i] + e_vhi[0, i] * t0) - (e_slo[0, i] + e_vlo[0, i] * t0)
        w0y = (e_shi[1, i] + e_vhi[1, i] * t0) - (e_slo[1, i] + e_vlo[1, i] * t0)
        mx = e_vhi[0, i] - e_vlo[0, i]
        my = e_vhi[1, i] - e_vlo[1, i]
        areas[i] = (
            w0x * w0y * horizon
            + (w0x * my + w0y * mx) * (horizon * horizon) / 2.0
            + mx * my * (horizon * horizon * horizon) / 3.0
        )
        for j in range(n_o):
            u_w = np.empty(2)
            u_m = np.empty(2)
            for d in range(2):
                e_lo = e_slo[d, i] + e_vlo[d, i] * t0
                e_hi = e_shi[d, i] + e_vhi[d, i] * t0
                o_lo = o_slo[d, j] + o_vlo[d, j] * t0
                o_hi = o_shi[d, j] + o_vhi[d, j] * t0
                hi_u = e_hi if e_hi >= o_hi else o_hi
                lo_u = e_lo if e_lo <= o_lo else o_lo
                u_w[d] = hi_u - lo_u
                vhi_u = e_vhi[d, i] if e_vhi[d, i] >= o_vhi[d, j] else o_vhi[d, j]
                vlo_u = e_vlo[d, i] if e_vlo[d, i] <= o_vlo[d, j] else o_vlo[d, j]
                u_m[d] = vhi_u - vlo_u
            union = (
                u_w[0] * u_w[1] * horizon
                + (u_w[0] * u_m[1] + u_w[1] * u_m[0]) * (horizon * horizon) / 2.0
                + u_m[0] * u_m[1] * (horizon * horizon * horizon) / 3.0
            )
            enlargements[i, j] = union - areas[i]
    return enlargements, areas


class CompiledBackend:
    """The compiled kernels behind one dispatchable facade.

    Method signatures match the NumPy kernels they replace
    (:func:`~repro.geometry.kernels._pair_windows` restricted to 1-D
    index arrays, :func:`~repro.geometry.kernels.batch_sweep_bounds`,
    :func:`~repro.geometry.kernels.batch_insertion_costs`), so
    :func:`~repro.geometry.kernels.batch_sweep_join` and the columnar
    engine can take either interchangeably.
    """

    def __init__(self, pair_windows_fn, sweep_bounds_fn, insertion_costs_fn):
        self._pair_windows = pair_windows_fn
        self._sweep_bounds = sweep_bounds_fn
        self._insertion_costs = insertion_costs_fn

    def pair_windows(
        self,
        batch_a: KineticBatch,
        ia: np.ndarray,
        batch_b: KineticBatch,
        jb: np.ndarray,
        t0: float,
        t1: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gathered pair windows; ``ia``/``jb`` must be index arrays."""
        return self._pair_windows(
            batch_a.slo, batch_a.shi, batch_a.vlo, batch_a.vhi,
            batch_b.slo, batch_b.shi, batch_b.vlo, batch_b.vhi,
            np.ascontiguousarray(ia, dtype=np.int64),
            np.ascontiguousarray(jb, dtype=np.int64),
            float(t0), float(t1), _EPS, INF,
        )

    def sweep_bounds(
        self, batch: KineticBatch, dim: int, t0: float, t1: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compiled :func:`~repro.geometry.kernels.batch_sweep_bounds`."""
        return self._sweep_bounds(
            np.ascontiguousarray(batch.mlo[dim]),
            np.ascontiguousarray(batch.mhi[dim]),
            np.ascontiguousarray(batch.vlo[dim]),
            np.ascontiguousarray(batch.vhi[dim]),
            np.ascontiguousarray(batch.tref),
            float(t0), float(t1), INF,
        )

    def insertion_costs(
        self,
        entries_batch: KineticBatch,
        objs_batch: KineticBatch,
        t0: float,
        t1: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compiled :func:`~repro.geometry.kernels.batch_insertion_costs`."""
        return self._insertion_costs(
            entries_batch.slo, entries_batch.shi,
            entries_batch.vlo, entries_batch.vhi,
            objs_batch.slo, objs_batch.shi, objs_batch.vlo, objs_batch.vhi,
            float(t0), float(t1),
        )


def get_backend() -> Optional[CompiledBackend]:
    """The process-wide compiled backend, or ``None`` without Numba.

    Compilation happens lazily on first call (and is cached); a
    compilation failure is remembered and degrades permanently to the
    NumPy path rather than failing the caller.
    """
    global _BACKEND, _BACKEND_FAILED
    if _BACKEND is not None:
        return _BACKEND
    if not HAVE_NUMBA or _BACKEND_FAILED:
        return None
    try:  # pragma: no cover - requires numba
        njit = numba.njit(cache=True, fastmath=False)
        _BACKEND = CompiledBackend(
            njit(_pair_windows_impl),
            njit(_sweep_bounds_impl),
            njit(_insertion_costs_impl),
        )
    except Exception:  # pragma: no cover - degrade, never break the run
        _BACKEND_FAILED = True
        return None
    return _BACKEND


def reference_backend() -> CompiledBackend:
    """The kernel bodies *uncompiled*, wrapped in the same facade.

    Lets the parity suite (and any environment without Numba) exercise
    the exact loop bodies the compiled path runs, so the oracle contract
    is testable everywhere even though only CI compiles them.
    """
    return CompiledBackend(
        _pair_windows_impl, _sweep_bounds_impl, _insertion_costs_impl
    )


assert NDIMS == 2, "compiled kernels are specialized to the planar case"
