"""Two-step continuous join: MBR filter + exact-shape refinement.

Orenstein's two-step processing (paper §II-A) as a first-class engine:
the filter step is a :class:`~repro.core.ContinuousJoinEngine`
maintaining MBR pairs, and snapshots are refined against registered
exact shapes.  This is what the motivating applications actually
consume — the police dispatcher wants *disk-covers-community* pairs,
not MBR pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import ContinuousJoinEngine, JoinConfig
from ..objects import MovingObject
from .shapes import Shape, refine_pairs

__all__ = ["TwoStepJoinEngine"]

PairKey = Tuple[int, int]


class TwoStepJoinEngine:
    """Continuous intersection join over exact shapes.

    Each object may register a :class:`~repro.refine.Shape` in its
    local frame (anchored at the MBR center); unregistered objects are
    treated as their MBR rectangle.  The supplied MBRs **must** bound
    the shapes — checked at registration.

    >>> from repro.geometry import Box
    >>> from repro.refine import Circle
    >>> a = MovingObject(1, Box(-5, 5, -5, 5), 1, 0, 0.0)
    >>> b = MovingObject(2, Box(8, 18, -5, 5), 0, 0, 0.0)
    >>> engine = TwoStepJoinEngine([a], [b], shapes_a={1: Circle(0, 0, 5)})
    >>> _ = engine.run_initial_join()
    >>> engine.exact_pairs_at(0.0)
    set()
    """

    def __init__(
        self,
        objects_a: Iterable[MovingObject],
        objects_b: Iterable[MovingObject],
        shapes_a: Optional[Dict[int, Shape]] = None,
        shapes_b: Optional[Dict[int, Shape]] = None,
        algorithm: str = "mtb",
        config: Optional[JoinConfig] = None,
        start_time: float = 0.0,
    ):
        objects_a = list(objects_a)
        objects_b = list(objects_b)
        self.shapes_a = dict(shapes_a or {})
        self.shapes_b = dict(shapes_b or {})
        _check_shapes_bounded(objects_a, self.shapes_a)
        _check_shapes_bounded(objects_b, self.shapes_b)
        self.filter_engine = ContinuousJoinEngine.create(
            objects_a, objects_b, algorithm=algorithm,
            config=config, start_time=start_time,
        )

    # ------------------------------------------------------------------
    # Delegated lifecycle
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.filter_engine.now

    def run_initial_join(self):
        """Compute the initial filter-step answer."""
        return self.filter_engine.run_initial_join()

    def tick(self, t: float) -> None:
        self.filter_engine.tick(t)

    def apply_update(self, obj: MovingObject) -> None:
        """Process an object update (shape carries over unchanged)."""
        shapes = (
            self.shapes_a
            if obj.oid in self.filter_engine.objects_a
            else self.shapes_b
        )
        shape = shapes.get(obj.oid)
        if shape is not None:
            _check_shape_bounded(obj, shape)
        self.filter_engine.apply_update(obj)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def filter_pairs_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """The filter-step (MBR) answer."""
        return self.filter_engine.result_at(t)

    def exact_pairs_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """The refined answer: pairs whose actual shapes intersect."""
        if t is None:
            t = self.now
        survivors: List[PairKey] = refine_pairs(
            self.filter_pairs_at(t),
            self.filter_engine.objects_a,
            self.filter_engine.objects_b,
            self.shapes_a,
            self.shapes_b,
            t,
        )
        return set(survivors)

    def false_positive_rate(self, t: Optional[float] = None) -> float:
        """Fraction of filter pairs the refinement step discards."""
        filter_pairs = self.filter_pairs_at(t)
        if not filter_pairs:
            return 0.0
        exact = self.exact_pairs_at(t)
        return 1.0 - len(exact) / len(filter_pairs)


def _check_shapes_bounded(
    objects: List[MovingObject], shapes: Dict[int, Shape]
) -> None:
    by_id = {obj.oid: obj for obj in objects}
    for oid, shape in shapes.items():
        if oid not in by_id:
            raise ValueError(f"shape registered for unknown object {oid}")
        _check_shape_bounded(by_id[oid], shape)


def _check_shape_bounded(obj: MovingObject, shape: Shape) -> None:
    """The MBR must bound the shape, or the filter step would miss pairs."""
    mbr = obj.kbox.mbr
    cx, cy = mbr.center
    shape_mbr = shape.mbr()
    tol = 1e-9
    if (
        cx + shape_mbr.x_lo < mbr.x_lo - tol
        or cx + shape_mbr.x_hi > mbr.x_hi + tol
        or cy + shape_mbr.y_lo < mbr.y_lo - tol
        or cy + shape_mbr.y_hi > mbr.y_hi + tol
    ):
        raise ValueError(
            f"shape of object {obj.oid} exceeds its MBR; the filter step "
            "would produce false negatives"
        )
