"""Exact-shape refinement step for filter-step join results."""

from .continuous import TwoStepJoinEngine
from .shapes import Circle, ConvexPolygon, Sector, Shape, refine_pairs

__all__ = [
    "Shape",
    "Circle",
    "ConvexPolygon",
    "Sector",
    "refine_pairs",
    "TwoStepJoinEngine",
]
