"""Exact-shape refinement step (Orenstein's two-step processing, §II-A).

The join algorithms implement the *filter step* on MBRs.  Applications
like the paper's motivating examples — police cars with circular
coverage, bombers with sector-shaped attack ranges, rectangular
communities — need the *refinement step*: checking whether the actual
shapes intersect, for the pairs that survived the filter.

Shapes are defined in a local frame and anchored to a moving object's
MBR center, so they translate rigidly with the object.  Supported:

* :class:`Circle` — exact tests against circles and convex polygons;
* :class:`ConvexPolygon` — exact SAT (separating axis theorem) tests;
* :class:`Sector` — a circular sector approximated by a convex polygon
  with a configurable arc resolution (the approximation is *inscribed*
  plus an outer radius bump so it always contains the true sector).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from ..geometry import Box
from ..objects import MovingObject

__all__ = ["Shape", "Circle", "ConvexPolygon", "Sector", "refine_pairs"]

Point = Tuple[float, float]


class Shape:
    """A rigid 2-d shape expressed in a local coordinate frame."""

    def mbr(self) -> Box:
        """Axis-parallel bounding box in the local frame."""
        raise NotImplementedError

    def translated(self, dx: float, dy: float) -> "Shape":
        """The shape moved by ``(dx, dy)``."""
        raise NotImplementedError

    def intersects(self, other: "Shape") -> bool:
        """Exact intersection test against another shape."""
        if isinstance(self, Circle) and isinstance(other, Circle):
            return _circle_circle(self, other)
        if isinstance(self, Circle):
            return _circle_polygon(self, _as_polygon(other))
        if isinstance(other, Circle):
            return _circle_polygon(other, _as_polygon(self))
        return _polygon_polygon(_as_polygon(self), _as_polygon(other))


class Circle(Shape):
    """A disk of radius ``r`` centered at ``(cx, cy)``."""

    __slots__ = ("cx", "cy", "r")

    def __init__(self, cx: float, cy: float, r: float):
        if r < 0:
            raise ValueError("radius must be non-negative")
        self.cx = float(cx)
        self.cy = float(cy)
        self.r = float(r)

    def mbr(self) -> Box:
        return Box(self.cx - self.r, self.cx + self.r, self.cy - self.r, self.cy + self.r)

    def translated(self, dx: float, dy: float) -> "Circle":
        return Circle(self.cx + dx, self.cy + dy, self.r)

    def __repr__(self) -> str:
        return f"Circle(({self.cx:g}, {self.cy:g}), r={self.r:g})"


class ConvexPolygon(Shape):
    """A convex polygon given by counter-clockwise vertices."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("polygon needs at least 3 vertices")
        self.vertices: Tuple[Point, ...] = tuple(
            (float(x), float(y)) for x, y in vertices
        )
        if not _is_convex_ccw(self.vertices):
            raise ValueError("vertices must form a convex CCW polygon")

    @classmethod
    def rectangle(cls, box: Box) -> "ConvexPolygon":
        """The polygon of an axis-parallel box."""
        return cls(
            [
                (box.x_lo, box.y_lo),
                (box.x_hi, box.y_lo),
                (box.x_hi, box.y_hi),
                (box.x_lo, box.y_hi),
            ]
        )

    def mbr(self) -> Box:
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Box(min(xs), max(xs), min(ys), max(ys))

    def translated(self, dx: float, dy: float) -> "ConvexPolygon":
        return ConvexPolygon([(x + dx, y + dy) for x, y in self.vertices])

    def __repr__(self) -> str:
        return f"ConvexPolygon({len(self.vertices)} vertices)"


class Sector(Shape):
    """A circular sector: apex, radius, heading and half-angle.

    Internally a convex polygon whose straight edges are exact and whose
    arc is replaced by chords pushed out to radius ``r / cos(Δ/2)`` per
    chord half-angle ``Δ/2`` — the polygon therefore *contains* the true
    sector, which keeps the refinement conservative (it may re-admit a
    sliver the exact sector misses, never drop a true hit).  Raise
    ``arc_segments`` to shrink the sliver.  ``half_angle`` must be at
    most 90° so the sector is convex.
    """

    __slots__ = ("apex_x", "apex_y", "r", "heading", "half_angle", "_poly")

    def __init__(
        self,
        apex_x: float,
        apex_y: float,
        r: float,
        heading: float,
        half_angle: float,
        arc_segments: int = 8,
    ):
        if r <= 0:
            raise ValueError("radius must be positive")
        if not 0 < half_angle <= math.pi / 2:
            raise ValueError("half_angle must be in (0, pi/2]")
        if arc_segments < 1:
            raise ValueError("arc_segments must be >= 1")
        self.apex_x = float(apex_x)
        self.apex_y = float(apex_y)
        self.r = float(r)
        self.heading = float(heading)
        self.half_angle = float(half_angle)
        step = 2 * half_angle / arc_segments
        bulge = r / math.cos(step / 2)
        points: List[Point] = [(apex_x, apex_y)]
        # Exact extreme rays at radius r, bulged chord midpoint samples
        # in between: the polygon circumscribes the arc.
        angles = [heading - half_angle + i * step for i in range(arc_segments + 1)]
        for i, angle in enumerate(angles):
            radius = self.r if i in (0, len(angles) - 1) else bulge
            points.append(
                (apex_x + radius * math.cos(angle), apex_y + radius * math.sin(angle))
            )
        self._poly = ConvexPolygon(points)

    def mbr(self) -> Box:
        return self._poly.mbr()

    def translated(self, dx: float, dy: float) -> "Sector":
        moved = Sector.__new__(Sector)
        moved.apex_x = self.apex_x + dx
        moved.apex_y = self.apex_y + dy
        moved.r = self.r
        moved.heading = self.heading
        moved.half_angle = self.half_angle
        moved._poly = self._poly.translated(dx, dy)
        return moved

    def __repr__(self) -> str:
        return (
            f"Sector(apex=({self.apex_x:g}, {self.apex_y:g}), r={self.r:g}, "
            f"heading={self.heading:g}, half_angle={self.half_angle:g})"
        )


# ----------------------------------------------------------------------
# Exact predicates
# ----------------------------------------------------------------------
def _circle_circle(a: Circle, b: Circle) -> bool:
    dx = a.cx - b.cx
    dy = a.cy - b.cy
    rr = a.r + b.r
    return dx * dx + dy * dy <= rr * rr


def _circle_polygon(circle: Circle, poly: ConvexPolygon) -> bool:
    """Exact: distance from center to the polygon at most the radius."""
    return _point_polygon_distance(circle.cx, circle.cy, poly) <= circle.r


def _point_polygon_distance(px: float, py: float, poly: ConvexPolygon) -> float:
    inside = True
    best = math.inf
    n = len(poly.vertices)
    for i in range(n):
        x1, y1 = poly.vertices[i]
        x2, y2 = poly.vertices[(i + 1) % n]
        if _cross(x2 - x1, y2 - y1, px - x1, py - y1) < 0:
            inside = False
        best = min(best, _segment_distance(px, py, x1, y1, x2, y2))
    return 0.0 if inside else best


def _segment_distance(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float
) -> float:
    dx, dy = x2 - x1, y2 - y1
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - x1, py - y1)
    u = ((px - x1) * dx + (py - y1) * dy) / length_sq
    u = min(max(u, 0.0), 1.0)
    return math.hypot(px - (x1 + u * dx), py - (y1 + u * dy))


def _polygon_polygon(a: ConvexPolygon, b: ConvexPolygon) -> bool:
    """Separating axis theorem over both polygons' edge normals."""
    for poly in (a, b):
        n = len(poly.vertices)
        for i in range(n):
            x1, y1 = poly.vertices[i]
            x2, y2 = poly.vertices[(i + 1) % n]
            nx, ny = y1 - y2, x2 - x1  # outward normal of a CCW edge
            a_lo, a_hi = _project(a, nx, ny)
            b_lo, b_hi = _project(b, nx, ny)
            if a_hi < b_lo or b_hi < a_lo:
                return False
    return True


def _project(poly: ConvexPolygon, nx: float, ny: float) -> Tuple[float, float]:
    dots = [nx * x + ny * y for x, y in poly.vertices]
    return min(dots), max(dots)


def _cross(ax: float, ay: float, bx: float, by: float) -> float:
    return ax * by - ay * bx


def _is_convex_ccw(vertices: Tuple[Point, ...]) -> bool:
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        x3, y3 = vertices[(i + 2) % n]
        if _cross(x2 - x1, y2 - y1, x3 - x2, y3 - y2) < -1e-12:
            return False
    return True


def _as_polygon(shape: Shape) -> ConvexPolygon:
    if isinstance(shape, ConvexPolygon):
        return shape
    if isinstance(shape, Sector):
        return shape._poly
    raise TypeError(f"cannot convert {type(shape).__name__} to polygon")


# ----------------------------------------------------------------------
# The refinement step
# ----------------------------------------------------------------------
def refine_pairs(
    pairs: Iterable[Tuple[int, int]],
    objects_a: "dict[int, MovingObject]",
    objects_b: "dict[int, MovingObject]",
    shapes_a: "dict[int, Shape]",
    shapes_b: "dict[int, Shape]",
    t: float,
) -> List[Tuple[int, int]]:
    """Keep only filter-step pairs whose actual shapes intersect at ``t``.

    Shapes are given in each object's local frame (origin at the MBR
    center) and translated to the object's position at ``t``.  Objects
    without a registered shape fall back to their MBR rectangle.
    """
    survivors: List[Tuple[int, int]] = []
    for a_oid, b_oid in pairs:
        shape_a = _placed_shape(objects_a[a_oid], shapes_a.get(a_oid), t)
        shape_b = _placed_shape(objects_b[b_oid], shapes_b.get(b_oid), t)
        if shape_a.intersects(shape_b):
            survivors.append((a_oid, b_oid))
    return survivors


def _placed_shape(obj: MovingObject, shape: "Shape | None", t: float) -> Shape:
    mbr = obj.mbr_at(t)
    if shape is None:
        return ConvexPolygon.rectangle(mbr)
    cx, cy = mbr.center
    return shape.translated(cx, cy)
