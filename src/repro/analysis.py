"""Analytic cost model for continuous intersection joins.

The paper's §IV-A argues qualitatively why NaiveJoin degenerates:
bounding rectangles expand in all four directions over time, so with an
unbounded horizon *every* node pair eventually intersects and the
traversal degenerates to reading both trees in full.  This module makes
that argument quantitative under the standard uniformity assumptions of
R-tree cost models (Theodoridis & Sellis), extended with motion:

Two axis-parallel squares with sides ``s₁, s₂`` and centers uniform in
a ``U × U`` domain intersect iff their center difference falls in the
Minkowski square of side ``S = s₁ + s₂``.  Under linear relative motion
of speed ``v_rel`` the center difference sweeps a straight segment of
length ``d = v_rel · T`` during a window ``T``, so the hit region is the
Minkowski square swept along that segment::

    P(T) = min(1, (S² + S·d·(|cos θ| + |sin θ|)) / U²),   E[...] = 4/π

— the square's own area plus the swept band.  From
``P(T)`` follow closed-form estimates of expected pair counts and
node-pair accesses, and the headline ratio between unconstrained and
time-constrained processing.

These estimates deliberately trade precision for transparency; tests
check them against measured uniform workloads within loose factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "WorkloadModel",
    "pair_intersection_probability",
    "expected_join_pairs",
    "expected_node_pair_accesses",
    "tc_speedup_ratio",
]


@dataclass(frozen=True)
class WorkloadModel:
    """Uniform-workload parameters feeding the cost model."""

    n_objects: int          # cardinality of each dataset
    space_size: float       # side of the square domain
    object_side: float      # side of each (square) object
    max_speed: float        # max object speed along each axis

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if min(self.space_size, self.object_side) <= 0 or self.max_speed < 0:
            raise ValueError("invalid geometry parameters")


def pair_intersection_probability(
    side_a: float,
    side_b: float,
    space: float,
    rel_speed: float,
    window: float,
) -> float:
    """P(two uniform random squares intersect within ``window``).

    ``rel_speed`` is the expected magnitude of the relative velocity
    between the two squares.  ``window = inf`` returns 1 when anything
    moves (the paper's "must intersect sometime in the future"), else
    the static probability.
    """
    if math.isinf(window):
        if rel_speed > 0:
            return 1.0
        window = 0.0
    minkowski_side = side_a + side_b
    sweep = rel_speed * window * (4.0 / math.pi)
    area = minkowski_side * minkowski_side + minkowski_side * sweep
    return min(1.0, area / (space * space))


def _expected_rel_speed(max_speed: float) -> float:
    """E|v₁ − v₂| for two independent planar velocities with speed
    uniform in (0, v] and uniform direction.  E|v_rel|² = 2·v²/3 gives
    an RMS of v·√(2/3); the mean is ≈ 0.9 of the RMS for this nearly
    Rayleigh-shaped magnitude (numerically calibrated)."""
    return 0.9 * math.sqrt(2.0 / 3.0) * max_speed


def expected_join_pairs(model: WorkloadModel, window: float) -> float:
    """Expected number of intersecting A×B pairs within ``window``."""
    p = pair_intersection_probability(
        model.object_side,
        model.object_side,
        model.space_size,
        _expected_rel_speed(model.max_speed),
        window,
    )
    return model.n_objects * model.n_objects * p


def expected_node_pair_accesses(
    model: WorkloadModel,
    window: float,
    node_capacity: int = 30,
    fill: float = 0.7,
    horizon: Optional[float] = None,
) -> float:
    """Expected intersecting node pairs per tree level, summed.

    Each level ``ℓ`` of a tree over ``n`` objects holds roughly
    ``n / (c·f)^ℓ`` nodes whose bounds cover ``(c·f)^ℓ`` objects each;
    under uniformity a bound's side is ``U·sqrt(fanout/n)`` plus its
    velocity spread over the insertion horizon.  The synchronous
    traversal visits a node pair iff the parents' bounds intersect
    within the window, which the model prices with
    :func:`pair_intersection_probability`.
    """
    if horizon is None:
        horizon = window if not math.isinf(window) else 60.0
    fanout = node_capacity * fill
    n = model.n_objects
    total = 0.0
    level = 1
    nodes = n / fanout
    while nodes >= 1:
        per_node = n / nodes
        # Side of a node bound: tiling of the domain + velocity spread
        # accumulated since the bound was last tightened (≈ horizon/2).
        base_side = model.space_size * math.sqrt(per_node / n)
        spread = 2 * model.max_speed * (horizon / 2)
        side = min(model.space_size, base_side + model.object_side + spread)
        p = pair_intersection_probability(
            side, side, model.space_size,
            _expected_rel_speed(model.max_speed), window,
        )
        total += nodes * nodes * p
        nodes /= fanout
        level += 1
    return total


def tc_speedup_ratio(model: WorkloadModel, t_m: float) -> float:
    """Modelled leaf-level work ratio: NaiveJoin ∞-window vs TC window.

    Returns ``expected pairs over [0, ∞) / expected pairs over
    [0, T_M]`` — the analytic counterpart of the paper's Figure 7 gap.
    Always ≥ 1.
    """
    unconstrained = expected_join_pairs(model, math.inf)
    constrained = expected_join_pairs(model, t_m)
    if constrained <= 0:
        return math.inf
    return max(1.0, unconstrained / constrained)
