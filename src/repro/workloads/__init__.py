"""Workload generation: datasets and update streams (paper §VI-A)."""

from .generator import (
    DISTRIBUTIONS,
    ArrayScenario,
    Scenario,
    battlefield_workload,
    gaussian_workload,
    make_workload,
    make_workload_arrays,
    road_network_workload,
    uniform_workload,
)
from .io import load_scenario, save_scenario, scenario_from_dict, scenario_to_dict
from .updates import UpdateStream, VectorUpdateStream

__all__ = [
    "DISTRIBUTIONS",
    "Scenario",
    "ArrayScenario",
    "make_workload",
    "make_workload_arrays",
    "VectorUpdateStream",
    "uniform_workload",
    "gaussian_workload",
    "battlefield_workload",
    "road_network_workload",
    "UpdateStream",
    "save_scenario",
    "load_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
]
