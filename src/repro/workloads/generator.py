"""Synthetic moving-object workloads (paper §VI-A).

The paper generates datasets with the generator of the TPR-tree authors:
a 1000×1000 space domain, square objects whose side is a percentage of
the space side, and three spatial distributions —

* **uniform** — positions and directions uniform at random, speed
  uniform in ``(0, v_max]``;
* **gaussian** — positions clustered around the domain center;
* **battlefield** — the two datasets start on opposite sides of the
  space and move toward the opposing party.

All randomness flows through one seeded :class:`numpy.random.Generator`
per scenario, so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..geometry import Box
from ..objects import MovingObject

__all__ = [
    "Scenario",
    "ArrayScenario",
    "make_workload",
    "make_workload_arrays",
    "uniform_workload",
    "gaussian_workload",
    "battlefield_workload",
    "road_network_workload",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = ("uniform", "gaussian", "battlefield", "road")

#: Number of horizontal and of vertical roads in the road-network grid.
ROAD_GRID = 10

#: Dataset-B object ids start at this offset from dataset A's.
_B_ID_OFFSET = 1_000_000


@dataclass
class Scenario:
    """A generated pair of datasets plus the parameters that shaped it."""

    set_a: List[MovingObject]
    set_b: List[MovingObject]
    distribution: str
    space_size: float
    max_speed: float
    object_side: float
    t_m: float
    seed: int
    #: RNG to be used for the scenario's update stream (already advanced
    #: past dataset generation).
    rng: np.random.Generator = field(repr=False)

    @property
    def n_objects(self) -> int:
        """Cardinality of each dataset."""
        return len(self.set_a)


def make_workload(
    n_objects: int,
    distribution: str = "uniform",
    space_size: float = 1000.0,
    max_speed: float = 2.0,
    object_size_pct: float = 0.1,
    t_m: float = 60.0,
    seed: int = 0,
) -> Scenario:
    """Generate two datasets of ``n_objects`` each.

    ``object_size_pct`` is the object side length as a percentage of the
    space side (Table I: 0.05%–0.8%, default 0.1% → side 1.0 in the
    default 1000-unit domain).
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}")
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    if not 0 < object_size_pct < 100:
        raise ValueError("object_size_pct must be in (0, 100)")
    rng = np.random.default_rng(seed)
    side = space_size * object_size_pct / 100.0
    if distribution == "uniform":
        positions_a = _uniform_positions(rng, n_objects, space_size, side)
        positions_b = _uniform_positions(rng, n_objects, space_size, side)
        velocities_a = _random_velocities(rng, n_objects, max_speed)
        velocities_b = _random_velocities(rng, n_objects, max_speed)
    elif distribution == "gaussian":
        positions_a = _gaussian_positions(rng, n_objects, space_size, side)
        positions_b = _gaussian_positions(rng, n_objects, space_size, side)
        velocities_a = _random_velocities(rng, n_objects, max_speed)
        velocities_b = _random_velocities(rng, n_objects, max_speed)
    elif distribution == "battlefield":
        positions_a = _battlefield_positions(rng, n_objects, space_size, side, left=True)
        positions_b = _battlefield_positions(rng, n_objects, space_size, side, left=False)
        velocities_a = _homing_velocities(rng, n_objects, max_speed, toward_positive_x=True)
        velocities_b = _homing_velocities(rng, n_objects, max_speed, toward_positive_x=False)
    else:  # road network
        positions_a, velocities_a = _road_placement(rng, n_objects, space_size, side, max_speed)
        positions_b, velocities_b = _road_placement(rng, n_objects, space_size, side, max_speed)

    set_a = [
        _make_object(i, positions_a[i], velocities_a[i], side)
        for i in range(n_objects)
    ]
    set_b = [
        _make_object(_B_ID_OFFSET + i, positions_b[i], velocities_b[i], side)
        for i in range(n_objects)
    ]
    return Scenario(
        set_a=set_a,
        set_b=set_b,
        distribution=distribution,
        space_size=space_size,
        max_speed=max_speed,
        object_side=side,
        t_m=t_m,
        seed=seed,
        rng=rng,
    )


@dataclass
class ArrayScenario:
    """A generated dataset pair kept as arrays (no per-object Python).

    The columnar counterpart of :class:`Scenario`: positions and
    velocities stay as the ``(2, n)`` arrays the samplers drew, so a
    1M-object workload generates in seconds and feeds the columnar
    engine without ever materializing a :class:`MovingObject` per row.
    For the bulk distributions (everything except ``road``) the arrays
    are *bit-identical* to the objects :func:`make_workload` builds from
    the same seed — :meth:`to_scenario` materializes them and is pinned
    against the legacy generator by a regression fixture.
    """

    oid_a: np.ndarray
    pos_a: np.ndarray
    vel_a: np.ndarray
    oid_b: np.ndarray
    pos_b: np.ndarray
    vel_b: np.ndarray
    distribution: str
    space_size: float
    max_speed: float
    object_side: float
    t_m: float
    seed: int
    #: RNG for the scenario's update stream (advanced past generation).
    rng: np.random.Generator = field(repr=False)

    @property
    def n_objects(self) -> int:
        """Cardinality of each dataset."""
        return int(self.oid_a.shape[0])

    def columns_a(self):
        """Dataset A as :class:`~repro.core.columns.UpdateColumns`."""
        return self._columns(self.oid_a, self.pos_a, self.vel_a)

    def columns_b(self):
        """Dataset B as :class:`~repro.core.columns.UpdateColumns`."""
        return self._columns(self.oid_b, self.pos_b, self.vel_b)

    def _columns(self, oids, pos, vel):
        # Late import: repro.core imports this package at load time.
        from ..core.columns import UpdateColumns

        return UpdateColumns(
            oid=oids,
            mlo=pos,
            mhi=pos + self.object_side,
            vlo=vel,
            vhi=vel,
            tref=np.zeros(pos.shape[1]),
        )

    def to_scenario(self) -> Scenario:
        """Materialize per-object :class:`Scenario` (tests, small n)."""
        side = self.object_side
        set_a = [
            _make_object(int(self.oid_a[i]), self.pos_a[:, i], self.vel_a[:, i], side)
            for i in range(self.n_objects)
        ]
        set_b = [
            _make_object(int(self.oid_b[i]), self.pos_b[:, i], self.vel_b[:, i], side)
            for i in range(self.n_objects)
        ]
        return Scenario(
            set_a=set_a,
            set_b=set_b,
            distribution=self.distribution,
            space_size=self.space_size,
            max_speed=self.max_speed,
            object_side=side,
            t_m=self.t_m,
            seed=self.seed,
            rng=self.rng,
        )


def make_workload_arrays(
    n_objects: int,
    distribution: str = "uniform",
    space_size: float = 1000.0,
    max_speed: float = 2.0,
    object_size_pct: float = 0.1,
    t_m: float = 60.0,
    seed: int = 0,
) -> ArrayScenario:
    """Generate two datasets of ``n_objects`` each, as arrays.

    Same parameters, same seeded RNG and the *same draw order* as
    :func:`make_workload`, but the per-object materialization loop is
    gone — the samplers' bulk draws are returned directly (transposed to
    the ``(2, n)`` column layout).  The positions and velocities are
    therefore bit-identical to the legacy generator's objects; only the
    ``road`` distribution still pays a per-object sampling loop (its
    draws are inherently sequential).
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}")
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    if not 0 < object_size_pct < 100:
        raise ValueError("object_size_pct must be in (0, 100)")
    rng = np.random.default_rng(seed)
    side = space_size * object_size_pct / 100.0
    if distribution == "uniform":
        positions_a = _uniform_positions(rng, n_objects, space_size, side)
        positions_b = _uniform_positions(rng, n_objects, space_size, side)
        velocities_a = _random_velocities(rng, n_objects, max_speed)
        velocities_b = _random_velocities(rng, n_objects, max_speed)
    elif distribution == "gaussian":
        positions_a = _gaussian_positions(rng, n_objects, space_size, side)
        positions_b = _gaussian_positions(rng, n_objects, space_size, side)
        velocities_a = _random_velocities(rng, n_objects, max_speed)
        velocities_b = _random_velocities(rng, n_objects, max_speed)
    elif distribution == "battlefield":
        positions_a = _battlefield_positions(rng, n_objects, space_size, side, left=True)
        positions_b = _battlefield_positions(rng, n_objects, space_size, side, left=False)
        velocities_a = _homing_velocities(rng, n_objects, max_speed, toward_positive_x=True)
        velocities_b = _homing_velocities(rng, n_objects, max_speed, toward_positive_x=False)
    else:  # road network
        positions_a, velocities_a = _road_placement(rng, n_objects, space_size, side, max_speed)
        positions_b, velocities_b = _road_placement(rng, n_objects, space_size, side, max_speed)
    return ArrayScenario(
        oid_a=np.arange(n_objects, dtype=np.int64),
        pos_a=np.ascontiguousarray(positions_a.T),
        vel_a=np.ascontiguousarray(velocities_a.T),
        oid_b=np.arange(
            _B_ID_OFFSET, _B_ID_OFFSET + n_objects, dtype=np.int64
        ),
        pos_b=np.ascontiguousarray(positions_b.T),
        vel_b=np.ascontiguousarray(velocities_b.T),
        distribution=distribution,
        space_size=space_size,
        max_speed=max_speed,
        object_side=side,
        t_m=t_m,
        seed=seed,
        rng=rng,
    )


def uniform_workload(n_objects: int, seed: int = 0, **kwargs) -> Scenario:
    """Uniform-distribution workload (the paper's default)."""
    return make_workload(n_objects, "uniform", seed=seed, **kwargs)


def gaussian_workload(n_objects: int, seed: int = 0, **kwargs) -> Scenario:
    """Gaussian-distribution workload."""
    return make_workload(n_objects, "gaussian", seed=seed, **kwargs)


def battlefield_workload(n_objects: int, seed: int = 0, **kwargs) -> Scenario:
    """Battlefield workload: opposing clusters converging."""
    return make_workload(n_objects, "battlefield", seed=seed, **kwargs)


def road_network_workload(n_objects: int, seed: int = 0, **kwargs) -> Scenario:
    """Road-network workload: objects confined to a grid of roads.

    An extension beyond the paper's three distributions: vehicles sit on
    one of :data:`ROAD_GRID` horizontal or vertical roads and move along
    it; the update stream lets them turn at intersections.  Produces the
    strong 1-d velocity skew typical of traffic workloads.
    """
    return make_workload(n_objects, "road", seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Position / velocity samplers
# ----------------------------------------------------------------------
def _uniform_positions(
    rng: np.random.Generator, n: int, space: float, side: float
) -> np.ndarray:
    return rng.uniform(0.0, space - side, size=(n, 2))


def _gaussian_positions(
    rng: np.random.Generator, n: int, space: float, side: float
) -> np.ndarray:
    center = space / 2.0
    sigma = space / 8.0
    positions = rng.normal(center, sigma, size=(n, 2))
    return np.clip(positions, 0.0, space - side)


def _battlefield_positions(
    rng: np.random.Generator, n: int, space: float, side: float, left: bool
) -> np.ndarray:
    """Cluster near one vertical edge, spread across the full height."""
    band = space * 0.2
    x_lo = 0.0 if left else space - band - side
    x = rng.uniform(x_lo, x_lo + band, size=n)
    y = rng.uniform(0.0, space - side, size=n)
    return np.column_stack([x, y])


def _random_velocities(
    rng: np.random.Generator, n: int, max_speed: float
) -> np.ndarray:
    """Uniform random direction, speed uniform in ``(0, max_speed]``."""
    angles = rng.uniform(0.0, 2 * math.pi, size=n)
    speeds = rng.uniform(0.0, max_speed, size=n)
    return np.column_stack([speeds * np.cos(angles), speeds * np.sin(angles)])


def _homing_velocities(
    rng: np.random.Generator, n: int, max_speed: float, toward_positive_x: bool
) -> np.ndarray:
    """Velocities aimed at the opposing side with angular jitter."""
    base = 0.0 if toward_positive_x else math.pi
    angles = base + rng.uniform(-math.pi / 4, math.pi / 4, size=n)
    speeds = rng.uniform(0.25 * max_speed, max_speed, size=n)
    return np.column_stack([speeds * np.cos(angles), speeds * np.sin(angles)])


def _road_placement(
    rng: np.random.Generator,
    n: int,
    space: float,
    side: float,
    max_speed: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions on grid roads with along-road velocities."""
    spacing = space / ROAD_GRID
    positions = np.empty((n, 2))
    velocities = np.zeros((n, 2))
    for i in range(n):
        road = int(rng.integers(0, ROAD_GRID))
        offset = min(road * spacing + spacing / 2, space - side)
        along = float(rng.uniform(0.0, space - side))
        speed = float(rng.uniform(0.1 * max_speed, max_speed))
        direction = 1.0 if rng.random() < 0.5 else -1.0
        if rng.random() < 0.5:  # horizontal road: fixed y, move along x
            positions[i] = (along, offset)
            velocities[i] = (direction * speed, 0.0)
        else:                   # vertical road: fixed x, move along y
            positions[i] = (offset, along)
            velocities[i] = (0.0, direction * speed)
    return positions, velocities


def _make_object(
    oid: int, position: np.ndarray, velocity: np.ndarray, side: float
) -> MovingObject:
    x, y = float(position[0]), float(position[1])
    return MovingObject(
        oid,
        Box(x, x + side, y, y + side),
        float(velocity[0]),
        float(velocity[1]),
        t_ref=0.0,
    )
