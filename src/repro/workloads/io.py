"""Scenario persistence: save and reload generated workloads as JSON.

Reproducibility plumbing: experiments can pin the *exact* datasets they
ran on, not just the seed (which would silently change results if a
generator is ever touched).  The format is plain JSON — small, diffable
and stable across library versions.
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from ..geometry import Box
from ..objects import MovingObject
from .generator import Scenario

__all__ = ["save_scenario", "load_scenario", "scenario_to_dict", "scenario_from_dict"]

_FORMAT_VERSION = 1


def _object_to_dict(obj: MovingObject) -> dict:
    vx, vy = obj.velocity
    return {
        "oid": obj.oid,
        "mbr": list(obj.kbox.mbr.bounds),
        "v": [vx, vy],
        "t_ref": obj.t_ref,
    }


def _object_from_dict(data: dict) -> MovingObject:
    return MovingObject(
        data["oid"],
        Box.from_bounds(data["mbr"]),
        data["v"][0],
        data["v"][1],
        t_ref=data["t_ref"],
    )


def scenario_to_dict(scenario: Scenario) -> dict:
    """A JSON-serializable representation of a scenario."""
    return {
        "format_version": _FORMAT_VERSION,
        "distribution": scenario.distribution,
        "space_size": scenario.space_size,
        "max_speed": scenario.max_speed,
        "object_side": scenario.object_side,
        "t_m": scenario.t_m,
        "seed": scenario.seed,
        "set_a": [_object_to_dict(o) for o in scenario.set_a],
        "set_b": [_object_to_dict(o) for o in scenario.set_b],
    }


def scenario_from_dict(data: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version: {version!r}")
    set_a: List[MovingObject] = [_object_from_dict(d) for d in data["set_a"]]
    set_b: List[MovingObject] = [_object_from_dict(d) for d in data["set_b"]]
    return Scenario(
        set_a=set_a,
        set_b=set_b,
        distribution=data["distribution"],
        space_size=data["space_size"],
        max_speed=data["max_speed"],
        object_side=data["object_side"],
        t_m=data["t_m"],
        seed=data["seed"],
        # A fresh RNG derived from the stored seed keeps update streams
        # over a reloaded scenario deterministic.
        rng=np.random.default_rng(data["seed"]),
    )


def save_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(scenario_to_dict(scenario), f)


def load_scenario(path: str) -> Scenario:
    """Read a scenario previously written by :func:`save_scenario`."""
    with open(path) as f:
        return scenario_from_dict(json.load(f))
