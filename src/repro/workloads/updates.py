"""The update stream: who updates when, and with what new motion.

The paper's maintenance experiments keep updating the trees: "at every
timestamp, we randomly change directions or speed of some objects…
every object is required to be updated at least once during the maximum
update interval ``T_M``" (§VI-A).

:class:`UpdateStream` reproduces that contract.  Every object carries a
next-due timestamp drawn uniformly from ``[1, T_M]``; when it fires, the
object reports from its *actual* (extrapolated) position with freshly
sampled velocity, and is rescheduled another ``uniform[1, T_M]`` ahead —
so expected update spacing is ``T_M/2`` and the ``T_M`` bound always
holds.  Objects bounce off the domain walls so the simulation remains
stationary over long runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..objects import MovingObject
from .generator import ROAD_GRID, Scenario

__all__ = ["UpdateStream"]


class UpdateStream:
    """Deterministic per-timestamp update batches for a scenario."""

    def __init__(self, scenario: Scenario, seed: int = 1):
        self.scenario = scenario
        self.t_m = scenario.t_m
        self.space = scenario.space_size
        self.side = scenario.object_side
        self.max_speed = scenario.max_speed
        self._rng = np.random.default_rng(seed)
        self._due: Dict[int, float] = {}
        for obj in list(scenario.set_a) + list(scenario.set_b):
            self._due[obj.oid] = float(self._rng.integers(1, int(self.t_m) + 1))
        self._homing = scenario.distribution == "battlefield"
        self._road = scenario.distribution == "road"
        self._a_ids = {o.oid for o in scenario.set_a}

    # ------------------------------------------------------------------
    def updates_for(
        self, t: float, current: Mapping[int, MovingObject]
    ) -> List[MovingObject]:
        """Updates due at timestamp ``t``.

        ``current`` maps object id → version currently stored by the
        management system; positions are extrapolated from it.  Each
        returned object has ``t_ref == t`` and is rescheduled.
        """
        batch: List[MovingObject] = []
        for oid, due in self._due.items():
            if due > t:
                continue
            obj = current[oid]
            batch.append(self._reissue(obj, t))
            self._due[oid] = t + float(self._rng.integers(1, int(self.t_m) + 1))
        return batch

    def by_timestamp(
        self,
        t_start: float = 1.0,
        t_end: Optional[float] = None,
        current: Optional[Mapping[int, MovingObject]] = None,
        step: float = 1.0,
    ) -> Iterator[Tuple[float, List[MovingObject]]]:
        """Yield ``(t, batch)`` same-tick update groups, one per timestamp.

        This is the group-commit feed: each batch holds every update due
        at that timestamp (possibly empty), with ``t_ref == t``, exactly
        as :meth:`updates_for` would emit them when driven tick by tick.
        The stream tracks the evolving object versions itself (seeded
        from the scenario, or from ``current`` when the caller's system
        starts elsewhere), so consumers only need to apply the batches.
        Unbounded when ``t_end`` is ``None`` — pair with ``islice``.
        """
        state: Dict[int, MovingObject] = (
            dict(current)
            if current is not None
            else {
                o.oid: o
                for o in list(self.scenario.set_a) + list(self.scenario.set_b)
            }
        )
        t = float(t_start)
        while t_end is None or t <= t_end:
            batch = self.updates_for(t, state)
            for obj in batch:
                state[obj.oid] = obj
            yield t, batch
            t += step

    def due_counts(self, t: float) -> int:
        """How many updates :meth:`updates_for` would emit at ``t``."""
        return sum(1 for due in self._due.values() if due <= t)

    # ------------------------------------------------------------------
    def _reissue(self, obj: MovingObject, t: float) -> MovingObject:
        """New motion parameters reported from the extrapolated position."""
        mbr = obj.mbr_at(t)
        # Keep the object inside the domain: clamp and bounce.
        x = min(max(mbr.x_lo, 0.0), self.space - self.side)
        y = min(max(mbr.y_lo, 0.0), self.space - self.side)
        if self._road:
            x, y, vx, vy = self._road_motion(x, y)
        else:
            vx, vy = self._new_velocity(obj.oid, x, y)
        from ..geometry import Box

        return MovingObject(
            obj.oid, Box(x, x + self.side, y, y + self.side), vx, vy, t_ref=t
        )

    def _road_motion(self, x: float, y: float) -> "tuple[float, float, float, float]":
        """Road-network kinematics: continue along the road or turn at
        the nearest intersection onto the crossing road."""
        rng = self._rng
        spacing = self.space / ROAD_GRID

        def snap(value: float) -> float:
            road = round((value - spacing / 2) / spacing)
            road = min(max(road, 0), ROAD_GRID - 1)
            return min(road * spacing + spacing / 2, self.space - self.side)

        speed = float(rng.uniform(0.1 * self.max_speed, self.max_speed))
        direction = 1.0 if rng.random() < 0.5 else -1.0
        turn = rng.random() < 0.3
        # Current travel axis: the coordinate that is *not* snapped to a
        # road centerline is the along-road one; infer from proximity.
        on_horizontal = abs(snap(y) - y) <= abs(snap(x) - x)
        if turn:
            # Move to the nearest intersection, proceed on the crossing
            # road.
            x, y = snap(x), snap(y)
            on_horizontal = not on_horizontal
        if on_horizontal:
            y = snap(y)
            if x <= 0.0:
                direction = 1.0
            elif x >= self.space - self.side:
                direction = -1.0
            return x, y, direction * speed, 0.0
        x = snap(x)
        if y <= 0.0:
            direction = 1.0
        elif y >= self.space - self.side:
            direction = -1.0
        return x, y, 0.0, direction * speed

    def _new_velocity(self, oid: int, x: float, y: float) -> "tuple[float, float]":
        rng = self._rng
        speed = float(rng.uniform(0.0, self.max_speed))
        if self._homing:
            # Battlefield objects keep charging the opposing side until
            # they cross the middle, then roam.
            toward_positive = oid in self._a_ids
            past_middle = (x > self.space * 0.6) if toward_positive else (
                x < self.space * 0.4
            )
            if not past_middle:
                base = 0.0 if toward_positive else math.pi
                angle = base + float(rng.uniform(-math.pi / 4, math.pi / 4))
                return speed * math.cos(angle), speed * math.sin(angle)
        angle = float(rng.uniform(0.0, 2 * math.pi))
        vx = speed * math.cos(angle)
        vy = speed * math.sin(angle)
        # Bounce: aim inward when hugging a wall.
        if x <= 0.0:
            vx = abs(vx)
        elif x >= self.space - self.side:
            vx = -abs(vx)
        if y <= 0.0:
            vy = abs(vy)
        elif y >= self.space - self.side:
            vy = -abs(vy)
        return vx, vy
