"""The update stream: who updates when, and with what new motion.

The paper's maintenance experiments keep updating the trees: "at every
timestamp, we randomly change directions or speed of some objects…
every object is required to be updated at least once during the maximum
update interval ``T_M``" (§VI-A).

:class:`UpdateStream` reproduces that contract.  Every object carries a
next-due timestamp drawn uniformly from ``[1, T_M]``; when it fires, the
object reports from its *actual* (extrapolated) position with freshly
sampled velocity, and is rescheduled another ``uniform[1, T_M]`` ahead —
so expected update spacing is ``T_M/2`` and the ``T_M`` bound always
holds.  Objects bounce off the domain walls so the simulation remains
stationary over long runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..objects import MovingObject
from .generator import ROAD_GRID, ArrayScenario, Scenario

__all__ = ["UpdateStream", "VectorUpdateStream"]


def _road_motion(
    rng: np.random.Generator,
    x: float,
    y: float,
    space: float,
    side: float,
    max_speed: float,
) -> "tuple[float, float, float, float]":
    """Road-network kinematics: continue along the road or turn at the
    nearest intersection onto the crossing road.

    Shared by :class:`UpdateStream` and :class:`VectorUpdateStream`; the
    draw order (speed, direction, turn) is part of the seeded-stream
    contract and is pinned by the workload regression fixture.
    """
    spacing = space / ROAD_GRID

    def snap(value: float) -> float:
        road = round((value - spacing / 2) / spacing)
        road = min(max(road, 0), ROAD_GRID - 1)
        return min(road * spacing + spacing / 2, space - side)

    speed = float(rng.uniform(0.1 * max_speed, max_speed))
    direction = 1.0 if rng.random() < 0.5 else -1.0
    turn = rng.random() < 0.3
    # Current travel axis: the coordinate that is *not* snapped to a
    # road centerline is the along-road one; infer from proximity.
    on_horizontal = abs(snap(y) - y) <= abs(snap(x) - x)
    if turn:
        # Move to the nearest intersection, proceed on the crossing
        # road.
        x, y = snap(x), snap(y)
        on_horizontal = not on_horizontal
    if on_horizontal:
        y = snap(y)
        if x <= 0.0:
            direction = 1.0
        elif x >= space - side:
            direction = -1.0
        return x, y, direction * speed, 0.0
    x = snap(x)
    if y <= 0.0:
        direction = 1.0
    elif y >= space - side:
        direction = -1.0
    return x, y, 0.0, direction * speed


class UpdateStream:
    """Deterministic per-timestamp update batches for a scenario."""

    def __init__(self, scenario: Scenario, seed: int = 1):
        self.scenario = scenario
        self.t_m = scenario.t_m
        self.space = scenario.space_size
        self.side = scenario.object_side
        self.max_speed = scenario.max_speed
        self._rng = np.random.default_rng(seed)
        self._due: Dict[int, float] = {}
        for obj in list(scenario.set_a) + list(scenario.set_b):
            self._due[obj.oid] = float(self._rng.integers(1, int(self.t_m) + 1))
        self._homing = scenario.distribution == "battlefield"
        self._road = scenario.distribution == "road"
        self._a_ids = {o.oid for o in scenario.set_a}

    # ------------------------------------------------------------------
    def updates_for(
        self, t: float, current: Mapping[int, MovingObject]
    ) -> List[MovingObject]:
        """Updates due at timestamp ``t``.

        ``current`` maps object id → version currently stored by the
        management system; positions are extrapolated from it.  Each
        returned object has ``t_ref == t`` and is rescheduled.
        """
        batch: List[MovingObject] = []
        for oid, due in self._due.items():
            if due > t:
                continue
            obj = current[oid]
            batch.append(self._reissue(obj, t))
            self._due[oid] = t + float(self._rng.integers(1, int(self.t_m) + 1))
        return batch

    def by_timestamp(
        self,
        t_start: float = 1.0,
        t_end: Optional[float] = None,
        current: Optional[Mapping[int, MovingObject]] = None,
        step: float = 1.0,
    ) -> Iterator[Tuple[float, List[MovingObject]]]:
        """Yield ``(t, batch)`` same-tick update groups, one per timestamp.

        This is the group-commit feed: each batch holds every update due
        at that timestamp (possibly empty), with ``t_ref == t``, exactly
        as :meth:`updates_for` would emit them when driven tick by tick.
        The stream tracks the evolving object versions itself (seeded
        from the scenario, or from ``current`` when the caller's system
        starts elsewhere), so consumers only need to apply the batches.
        Unbounded when ``t_end`` is ``None`` — pair with ``islice``.
        """
        state: Dict[int, MovingObject] = (
            dict(current)
            if current is not None
            else {
                o.oid: o
                for o in list(self.scenario.set_a) + list(self.scenario.set_b)
            }
        )
        t = float(t_start)
        while t_end is None or t <= t_end:
            batch = self.updates_for(t, state)
            for obj in batch:
                state[obj.oid] = obj
            yield t, batch
            t += step

    def due_counts(self, t: float) -> int:
        """How many updates :meth:`updates_for` would emit at ``t``."""
        return sum(1 for due in self._due.values() if due <= t)

    # ------------------------------------------------------------------
    def _reissue(self, obj: MovingObject, t: float) -> MovingObject:
        """New motion parameters reported from the extrapolated position."""
        mbr = obj.mbr_at(t)
        # Keep the object inside the domain: clamp and bounce.
        x = min(max(mbr.x_lo, 0.0), self.space - self.side)
        y = min(max(mbr.y_lo, 0.0), self.space - self.side)
        if self._road:
            x, y, vx, vy = self._road_motion(x, y)
        else:
            vx, vy = self._new_velocity(obj.oid, x, y)
        from ..geometry import Box

        return MovingObject(
            obj.oid, Box(x, x + self.side, y, y + self.side), vx, vy, t_ref=t
        )

    def _road_motion(self, x: float, y: float) -> "tuple[float, float, float, float]":
        return _road_motion(
            self._rng, x, y, self.space, self.side, self.max_speed
        )

    def _new_velocity(self, oid: int, x: float, y: float) -> "tuple[float, float]":
        rng = self._rng
        speed = float(rng.uniform(0.0, self.max_speed))
        if self._homing:
            # Battlefield objects keep charging the opposing side until
            # they cross the middle, then roam.
            toward_positive = oid in self._a_ids
            past_middle = (x > self.space * 0.6) if toward_positive else (
                x < self.space * 0.4
            )
            if not past_middle:
                base = 0.0 if toward_positive else math.pi
                angle = base + float(rng.uniform(-math.pi / 4, math.pi / 4))
                return speed * math.cos(angle), speed * math.sin(angle)
        angle = float(rng.uniform(0.0, 2 * math.pi))
        vx = speed * math.cos(angle)
        vy = speed * math.sin(angle)
        # Bounce: aim inward when hugging a wall.
        if x <= 0.0:
            vx = abs(vx)
        elif x >= self.space - self.side:
            vx = -abs(vx)
        if y <= 0.0:
            vy = abs(vy)
        elif y >= self.space - self.side:
            vy = -abs(vy)
        return vx, vy


class VectorUpdateStream:
    """Array-native update stream for :class:`ArrayScenario` workloads.

    Same *contract* as :class:`UpdateStream` — every object updates at
    least once per ``T_M``, reports from its extrapolated position with
    freshly sampled velocity, bounces off the walls — but the due-date
    bookkeeping and velocity resampling are whole-batch NumPy, so a tick
    over a million objects costs milliseconds instead of a Python loop.

    The draw *order* differs from the legacy scalar stream (bulk draws
    per tick: speeds, then battlefield jitter, then roam angles, then
    reschedule offsets), so batches are deterministic per seed but not
    byte-equal to :class:`UpdateStream`; the legacy stream stays pinned
    by its own fixture.  The ``road`` distribution falls back to the
    shared scalar :func:`_road_motion` kinematics per due object.

    The stream tracks the evolving object state itself; each call to
    :meth:`updates_at` returns ``(upd_a, upd_b)`` column batches ready
    for ``ColumnarJoinEngine.apply_update_columns``.
    """

    def __init__(self, scenario: ArrayScenario, seed: int = 1):
        self.scenario = scenario
        self.t_m = scenario.t_m
        self.space = scenario.space_size
        self.side = scenario.object_side
        self.max_speed = scenario.max_speed
        self._rng = np.random.default_rng(seed)
        n = scenario.n_objects
        self._n_a = n
        self._oid = np.concatenate([scenario.oid_a, scenario.oid_b])
        self._pos = np.concatenate([scenario.pos_a, scenario.pos_b], axis=1).copy()
        self._vel = np.concatenate([scenario.vel_a, scenario.vel_b], axis=1).copy()
        self._tref = np.zeros(2 * n)
        self._due = self._rng.integers(1, int(self.t_m) + 1, size=2 * n).astype(float)
        self._homing = scenario.distribution == "battlefield"
        self._road = scenario.distribution == "road"

    # ------------------------------------------------------------------
    def due_counts(self, t: float) -> int:
        """How many updates :meth:`updates_at` would emit at ``t``."""
        return int(np.count_nonzero(self._due <= t))

    def updates_at(self, t: float):
        """Column batches ``(upd_a, upd_b)`` due at timestamp ``t``.

        Each batch is an :class:`~repro.core.columns.UpdateColumns` with
        ``tref == t`` throughout; the stream's own state advances so the
        next tick extrapolates from these versions.
        """
        from ..core.columns import UpdateColumns

        rows = np.flatnonzero(self._due <= t)
        k = rows.size
        if k:
            dt = t - self._tref[rows]
            pos = self._pos[:, rows] + self._vel[:, rows] * dt
            np.clip(pos, 0.0, self.space - self.side, out=pos)
            if self._road:
                vel = np.empty((2, k))
                for j in range(k):
                    x, y, vx, vy = _road_motion(
                        self._rng, float(pos[0, j]), float(pos[1, j]),
                        self.space, self.side, self.max_speed,
                    )
                    pos[0, j], pos[1, j] = x, y
                    vel[0, j], vel[1, j] = vx, vy
            else:
                vel = self._new_velocities(rows, pos)
            self._pos[:, rows] = pos
            self._vel[:, rows] = vel
            self._tref[rows] = t
            self._due[rows] = t + self._rng.integers(
                1, int(self.t_m) + 1, size=k
            ).astype(float)
        else:
            pos = np.empty((2, 0))
            vel = np.empty((2, 0))

        def batch(sel: np.ndarray) -> UpdateColumns:
            p = np.ascontiguousarray(pos[:, sel])
            v = np.ascontiguousarray(vel[:, sel])
            return UpdateColumns(
                oid=self._oid[rows[sel]],
                mlo=p,
                mhi=p + self.side,
                vlo=v,
                vhi=v,
                tref=np.full(p.shape[1], float(t)),
            )

        in_a = rows < self._n_a
        return batch(in_a), batch(~in_a)

    def _new_velocities(self, rows: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Bulk velocity resampling mirroring ``UpdateStream`` semantics:
        battlefield objects charge the opposing side until past the
        middle, everyone else roams with wall bounce."""
        rng = self._rng
        k = rows.size
        x = pos[0]
        speeds = rng.uniform(0.0, self.max_speed, size=k)
        if self._homing:
            toward_pos = rows < self._n_a
            jitter = rng.uniform(-math.pi / 4, math.pi / 4, size=k)
        angles = rng.uniform(0.0, 2 * math.pi, size=k)
        vx = speeds * np.cos(angles)
        vy = speeds * np.sin(angles)
        # Bounce: aim inward when hugging a wall (roaming rows only —
        # homing rows are overridden below, as in the scalar stream).
        hi = self.space - self.side
        vx = np.where(x <= 0.0, np.abs(vx), np.where(x >= hi, -np.abs(vx), vx))
        y = pos[1]
        vy = np.where(y <= 0.0, np.abs(vy), np.where(y >= hi, -np.abs(vy), vy))
        if self._homing:
            past_middle = np.where(
                toward_pos, x > self.space * 0.6, x < self.space * 0.4
            )
            base = np.where(toward_pos, 0.0, math.pi)
            charge = ~past_middle
            hx = speeds * np.cos(base + jitter)
            hy = speeds * np.sin(base + jitter)
            vx = np.where(charge, hx, vx)
            vy = np.where(charge, hy, vy)
        return np.vstack([vx, vy])
