"""The continuous-join engine: initial join plus maintenance.

:class:`ContinuousJoinEngine` owns the two datasets, the indexes, the
maintained answer, and the cost accounting, and delegates the actual
query processing to one of four interchangeable strategies:

========  ==========================================================
``naive``  NaiveJoin: per-update joins over ``[t, ∞)`` (paper §II-C)
``etp``    ETP-Join: TP-join re-run on every result change (§III)
``tc``     TC-Join: Theorem-1 window ``[t, t + T_M]`` on single trees
``mtb``    MTB-Join: Theorem-2 bucketed windows + PS/DS/IC (§IV)
========  ==========================================================

The engine is clock-driven: :meth:`tick` advances time (letting ETP
process its due events), :meth:`apply_update` feeds object updates, and
:meth:`result_at` reports the currently intersecting pairs — which every
strategy must keep equal to the brute-force answer at all times.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import INF
from ..index import MTBTree, TPRStarTree, TreeStorage
from ..join import (
    JoinTechniques,
    JoinTriple,
    influence_scan,
    mtb_join,
    mtb_join_object,
    mtb_join_objects,
    naive_join,
    tc_join,
    tp_join,
)
from ..metrics import CostSnapshot, CostTracker
from ..obs import NULL_SPAN, ObsRecorder
from ..objects import MovingObject
from .config import JoinConfig
from .result import JoinResultStore

__all__ = ["ContinuousJoinEngine", "ALGORITHMS"]

PairKey = Tuple[int, int]

ALGORITHMS = ("naive", "etp", "tc", "mtb")


class ContinuousJoinEngine:
    """Continuous intersection join over two moving-object sets."""

    def __init__(
        self,
        objects_a: Iterable[MovingObject],
        objects_b: Iterable[MovingObject],
        algorithm: str = "mtb",
        config: Optional[JoinConfig] = None,
        techniques: Optional[JoinTechniques] = None,
        start_time: float = 0.0,
    ):
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; pick from {ALGORITHMS}")
        self.config = config if config is not None else JoinConfig()
        self.algorithm = algorithm
        self.now = float(start_time)
        self.start_time = float(start_time)
        self.objects_a: Dict[int, MovingObject] = {o.oid: o for o in objects_a}
        self.objects_b: Dict[int, MovingObject] = {o.oid: o for o in objects_b}
        overlap = self.objects_a.keys() & self.objects_b.keys()
        if overlap:
            raise ValueError(f"object ids shared across datasets: {sorted(overlap)[:5]}")
        self.storage = TreeStorage(
            page_size=self.config.page_size,
            buffer_pages=self.config.buffer_pages,
        )
        self.tracker: CostTracker = self.storage.tracker
        #: Attached :class:`~repro.obs.ObsRecorder` when ``config.obs``
        #: is on (or ``REPRO_OBS=1``); ``None`` otherwise.
        self.obs: Optional[ObsRecorder] = None
        if self.config.obs:
            self.obs = ObsRecorder(
                "engine",
                meta={
                    "algorithm": algorithm,
                    "n_a": len(self.objects_a),
                    "n_b": len(self.objects_b),
                    "t_m": self.config.t_m,
                },
            )
            self.obs.attach(self.tracker)
        self._strategy = _make_strategy(algorithm, self, techniques)
        #: Attached :class:`~repro.deltas.DeltaLedger` when
        #: ``config.deltas`` is on (or ``REPRO_DELTAS=1``); ``None``
        #: otherwise.  Armed before the build so the initial join's
        #: additions are already part of the stream.
        self.ledger = None
        if self.config.deltas:
            store = getattr(self._strategy, "store", None)
            if store is None:
                raise ValueError(
                    f"algorithm {algorithm!r} keeps no interval store; "
                    "delta streams need one (pick naive/tc/mtb)"
                )
            from ..deltas import DeltaLedger

            self.ledger = DeltaLedger(self.now)
            store.attach_ledger(self.ledger)
        with self.tracker.timed(), self._span("engine.build"):
            self._strategy.build(self.now)
        self.build_cost: CostSnapshot = self.tracker.snapshot()
        self.initial_join_cost: Optional[CostSnapshot] = None
        self.update_count = 0
        self._sanitize()

    # ------------------------------------------------------------------
    # Convenience constructor
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        objects_a: Iterable[MovingObject],
        objects_b: Iterable[MovingObject],
        algorithm: str = "mtb",
        config: Optional[JoinConfig] = None,
        techniques: Optional[JoinTechniques] = None,
        start_time: float = 0.0,
    ) -> "ContinuousJoinEngine":
        """Build indexes over the two datasets and return the engine."""
        return cls(objects_a, objects_b, algorithm, config, techniques, start_time)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run_initial_join(self) -> CostSnapshot:
        """Compute the initial answer; returns the cost of this phase."""
        before = self.tracker.snapshot()
        with self.tracker.timed(), self._span("engine.initial_join"):
            self._strategy.initial_join(self.now)
        self.initial_join_cost = self.tracker.snapshot() - before
        self._sanitize()
        return self.initial_join_cost

    def tick(self, t: float) -> None:
        """Advance the clock to ``t`` (monotone non-decreasing)."""
        if t < self.now:
            raise ValueError(f"time went backwards: {t} < {self.now}")
        self.now = t
        if self.ledger is not None:
            self.ledger.advance(t)
        with self.tracker.timed(), self._span("engine.tick", t=t):
            self._strategy.on_tick(t)
        self._sanitize()

    def apply_update(self, obj: MovingObject) -> None:
        """Process one object update at the current timestamp.

        The object's dataset is inferred from its id; its stored motion
        is replaced and the maintained answer repaired.
        """
        if obj.oid in self.objects_a:
            dataset = "a"
            self.objects_a[obj.oid] = obj
        elif obj.oid in self.objects_b:
            dataset = "b"
            self.objects_b[obj.oid] = obj
        else:
            raise KeyError(f"unknown object id {obj.oid}")
        self.update_count += 1
        with self.tracker.timed(), self._span("engine.update", t=self.now):
            self._strategy.on_update(obj, dataset, self.now)
        self._sanitize()

    def apply_updates(
        self,
        batch: Iterable[MovingObject],
        *,
        admit: Sequence[Tuple[MovingObject, str]] = (),
        evict: Sequence[int] = (),
    ) -> None:
        """Group-commit a same-timestamp batch of object updates.

        Equivalent to calling :meth:`apply_update` once per object (in
        any order) — the maintained answer is bit-exact either way —
        but the whole batch shares its index maintenance (bulk bucket
        loading in the MTB forest) and its probe passes (one
        multi-query :meth:`~repro.index.tpr.TPRTree.search_batch`
        descent per dataset instead of one tree walk per object).

        ``admit`` adds brand-new ``(object, dataset)`` members and
        ``evict`` removes objects entirely (index + result store);
        both exist for the sharded engine's ghost-region churn.  The
        batch falls back to the serial per-update loop when
        ``config.batch_updates`` is off, the strategy keeps no interval
        store (ETP), an oid repeats, or reference times disagree with
        the engine clock.
        """
        updates = list(batch)
        admissions = list(admit)
        evictions = list(evict)
        oids = [o.oid for o in updates] + [o.oid for o, _ds in admissions]
        clashes = set(evictions) & set(oids)
        if clashes:
            raise ValueError(
                f"objects both evicted and updated/admitted: {sorted(clashes)[:5]}"
            )
        t = self.now
        batchable = (
            self.config.batch_updates
            and hasattr(self._strategy, "on_update_batch")
            and len(set(oids)) == len(oids)
            # Exact same-tick check on purpose: anything else falls back
            # to the (equally correct) serial loop.
            and all(o.t_ref == t for o in updates)  # noqa: RC001
            and all(o.t_ref == t for o, _ds in admissions)  # noqa: RC001
        )
        if not batchable:
            for oid in evictions:
                self.evict_object(oid)
            for obj in updates:
                self.apply_update(obj)
            for obj, dataset in admissions:
                self.admit_object(obj, dataset)
            return
        upd_a: List[MovingObject] = []
        upd_b: List[MovingObject] = []
        for obj in updates:
            if obj.oid in self.objects_a:
                self.objects_a[obj.oid] = obj
                upd_a.append(obj)
            elif obj.oid in self.objects_b:
                self.objects_b[obj.oid] = obj
                upd_b.append(obj)
            else:
                raise KeyError(f"unknown object id {obj.oid}")
        resolved_evictions: List[Tuple[int, str]] = []
        for oid in evictions:
            if oid in self.objects_a:
                del self.objects_a[oid]
                resolved_evictions.append((oid, "a"))
            elif oid in self.objects_b:
                del self.objects_b[oid]
                resolved_evictions.append((oid, "b"))
            else:
                raise KeyError(f"unknown object id {oid}")
        adm_a: List[MovingObject] = []
        adm_b: List[MovingObject] = []
        for obj, dataset in admissions:
            if obj.oid in self.objects_a or obj.oid in self.objects_b:
                raise ValueError(f"object {obj.oid} already present")
            if dataset == "a":
                self.objects_a[obj.oid] = obj
                adm_a.append(obj)
            elif dataset == "b":
                self.objects_b[obj.oid] = obj
                adm_b.append(obj)
            else:
                raise ValueError(f"unknown dataset {dataset!r}")
        self.update_count += len(updates)
        n_ops = len(updates) + len(admissions) + len(evictions)
        with self.tracker.timed(), self._span("engine.update_batch", t=t, n=n_ops):
            self._strategy.on_update_batch(
                upd_a, upd_b, adm_a, adm_b, resolved_evictions, t
            )
        self._sanitize()

    def admit_object(self, obj: MovingObject, dataset: str) -> None:
        """Add a brand-new object to dataset ``"a"`` or ``"b"``.

        Unlike :meth:`apply_update` the object has no stored pairs to
        invalidate — the index insert plus one probe suffices.  Used by
        the sharded engine when an object's halo grows into a shard.
        """
        if dataset not in ("a", "b"):
            raise ValueError(f"unknown dataset {dataset!r}")
        if obj.oid in self.objects_a or obj.oid in self.objects_b:
            raise ValueError(f"object {obj.oid} already present")
        on_admit = getattr(self._strategy, "on_admit", None)
        if on_admit is None:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support admissions"
            )
        (self.objects_a if dataset == "a" else self.objects_b)[obj.oid] = obj
        with self.tracker.timed(), self._span("engine.admit", t=self.now):
            on_admit(obj, dataset, self.now)
        self._sanitize()

    def evict_object(self, oid: int) -> None:
        """Remove an object entirely (index entry and stored pairs).

        Used by the sharded engine when an object's halo leaves a
        shard; the surviving pairs live on in the shards still holding
        both endpoints.
        """
        on_evict = getattr(self._strategy, "on_evict", None)
        if on_evict is None:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support evictions"
            )
        if oid in self.objects_a:
            dataset = "a"
            del self.objects_a[oid]
        elif oid in self.objects_b:
            dataset = "b"
            del self.objects_b[oid]
        else:
            raise KeyError(f"unknown object id {oid}")
        with self.tracker.timed(), self._span("engine.evict", t=self.now):
            on_evict(oid, dataset, self.now)
        self._sanitize()

    def result_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """Currently intersecting ``(a_oid, b_oid)`` pairs at time ``t``."""
        if t is None:
            t = self.now
        if not self.now <= t:
            raise ValueError("result_at only answers the present of the engine clock")
        return self._strategy.result_at(t)

    def prune_expired(self) -> int:
        """Garbage-collect result intervals wholly in the past.

        Long-running simulations accumulate intervals that ended before
        the current timestamp; pruning them bounds the result store.
        Returns the number of pairs dropped (0 for the ETP strategy,
        which keeps no intervals).
        """
        store = getattr(self._strategy, "store", None)
        if store is None:
            return 0
        with self._span("engine.expire", t=self.now):
            return store.prune_expired(self.now)

    # ------------------------------------------------------------------
    # Delta streams
    # ------------------------------------------------------------------
    def deltas(self, t: Optional[float] = None):
        """The netted delta events at tick ``t`` (default: now).

        Requires ``JoinConfig(deltas=True)``.  Returns an
        already-materialized tuple of :class:`~repro.deltas.DeltaEvent`
        — constant-delay iteration, no recomputation on re-enumeration.
        """
        if self.ledger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        if t is None:
            t = self.now
        with self._span("engine.deltas", t=t):
            return self.ledger.events_at(t)

    def watch(self, *, oid: Optional[int] = None, region=None):
        """Subscribe to the delta stream, optionally filtered.

        ``oid=`` matches events whose pair contains the object id;
        ``region=`` (a :class:`~repro.geometry.Box`) matches events
        touching any object currently inside the region.  Both resolve
        their current-state queries against the result store's inverted
        index; see :class:`~repro.deltas.DeltaSubscription`.
        """
        if self.ledger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        from ..deltas import DeltaSubscription

        return DeltaSubscription(
            self.ledger,
            oid=oid,
            region=region,
            index=self._strategy.store.pairs_for_object,
            region_oids=self._region_oids,
        )

    def _region_oids(self, region) -> Set[int]:
        """Object ids whose bounding box intersects ``region`` right now."""
        found: Set[int] = set()
        for registry in (self.objects_a, self.objects_b):
            for obj in registry.values():
                if obj.mbr_at(self.now).intersects(region):
                    found.add(obj.oid)
        return found

    def _span(self, name: str, **tags):
        """A distinct phase span, or a no-op when recording is off."""
        if self.obs is None:
            return NULL_SPAN
        return self.obs.span(name, **tags)

    def export_obs(self, path, meta=None):
        """Export the recording to JSON; requires ``config.obs``."""
        if self.obs is None:
            raise RuntimeError("observability is off; build with JoinConfig(obs=True)")
        return self.obs.export_json(path, meta)

    def _sanitize(self) -> None:
        """Run the invariant sanitizer when ``JoinConfig.sanitize`` is on.

        Raises :class:`repro.check.InvariantViolation` (an
        ``AssertionError``) listing every violated invariant.
        """
        if not self.config.sanitize:
            return
        from ..check.sanitize import raise_on_findings, sanitize_engine

        raise_on_findings(sanitize_engine(self))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"ContinuousJoinEngine(algorithm={self.algorithm!r}, "
            f"|A|={len(self.objects_a)}, |B|={len(self.objects_b)}, "
            f"now={self.now:g})"
        )


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def _new_tree(engine: ContinuousJoinEngine) -> TPRStarTree:
    """A TPR*-tree bound to the engine's shared storage and config."""
    return TPRStarTree(
        storage=engine.storage,
        node_capacity=engine.config.node_capacity,
        horizon=engine.config.effective_horizon,
        use_kernels=engine.config.use_kernels,
        compile_kernels=engine.config.compile_kernels,
    )


def _new_forest(engine: ContinuousJoinEngine) -> MTBTree:
    """An MTB forest bound to the engine's shared storage and config."""
    return MTBTree(
        t_m=engine.config.t_m,
        storage=engine.storage,
        buckets_per_tm=engine.config.buckets_per_tm,
        node_capacity=engine.config.node_capacity,
        use_kernels=engine.config.use_kernels,
        compile_kernels=engine.config.compile_kernels,
    )


class _IntervalStrategy:
    """Shared plumbing for strategies that maintain interval results."""

    def __init__(self, engine: ContinuousJoinEngine):
        self.engine = engine
        self.store = JoinResultStore()

    # Orientation helper: results are always keyed (a_oid, b_oid).
    def _oriented(
        self, triples: Iterable[JoinTriple], updated_dataset: str
    ) -> Iterable[JoinTriple]:
        if updated_dataset == "a":
            return triples
        return (JoinTriple(t.b_oid, t.a_oid, t.interval) for t in triples)

    def on_tick(self, t: float) -> None:
        """Interval stores need no event processing."""

    def result_at(self, t: float) -> Set[PairKey]:
        return self.store.pairs_at(t)

    # -- group-commit plumbing -----------------------------------------
    # Subclasses provide _index(dataset) plus _probe_batch(objs, ds, t);
    # tree-backed strategies inherit _replace_batch, the MTB forest
    # overrides it with bulk bucket loading.

    def _replace_batch(
        self,
        dataset: str,
        updates: List[MovingObject],
        admissions: List[MovingObject],
        t: float,
    ) -> None:
        tree = self._index(dataset)
        tree.delete_batch([obj.oid for obj in updates], t)
        tree.insert_batch(updates + admissions, t)

    def _evict_batch(self, dataset: str, oids: List[int], t: float) -> None:
        self._index(dataset).delete_batch(oids, t)

    def on_update_batch(
        self,
        upd_a: List[MovingObject],
        upd_b: List[MovingObject],
        adm_a: List[MovingObject],
        adm_b: List[MovingObject],
        evictions: List[Tuple[int, str]],
        t: float,
    ) -> None:
        """Apply a same-timestamp batch; bit-exact vs the serial loop.

        Probes only touch the *other* dataset's index, so running all
        index maintenance first and then probing every changed object
        against the final index state reproduces exactly the store a
        serial interleaving ends with: a pair updated from both sides
        yields the same interval from either probe (both windows start
        at ``t``), and re-adding an identical interval is a no-op merge.
        """
        evict_by_ds: Dict[str, List[int]] = {"a": [], "b": []}
        for oid, dataset in evictions:
            evict_by_ds[dataset].append(oid)
            self.store.remove_object(oid)
        for dataset, oids in evict_by_ds.items():
            if oids:
                self._evict_batch(dataset, oids, t)
        self._replace_batch("a", upd_a, adm_a, t)
        self._replace_batch("b", upd_b, adm_b, t)
        for obj in upd_a:
            self.store.remove_object(obj.oid)
        for obj in upd_b:
            self.store.remove_object(obj.oid)
        self.store.add_all(iter(self._probe_batch(upd_a + adm_a, "a", t)))
        self.store.add_all(iter(self._probe_batch(upd_b + adm_b, "b", t)))

    def on_admit(self, obj: MovingObject, dataset: str, t: float) -> None:
        self._index(dataset).insert(obj, t)
        self.store.add_all(iter(self._probe_batch([obj], dataset, t)))

    def on_evict(self, oid: int, dataset: str, t: float) -> None:
        self._index(dataset).delete(oid, t)
        self.store.remove_object(oid)


class _NaiveStrategy(_IntervalStrategy):
    """Per-update joins over the unbounded window (paper §II-C)."""

    def build(self, t0: float) -> None:
        engine = self.engine
        self.tree_a = _new_tree(engine)
        self.tree_b = _new_tree(engine)
        for obj in engine.objects_a.values():
            self.tree_a.insert(obj, t0)
        for obj in engine.objects_b.values():
            self.tree_b.insert(obj, t0)

    def initial_join(self, t0: float) -> None:
        self.store.add_all(iter(naive_join(self.tree_a, self.tree_b, t0, INF)))

    def on_update(self, obj: MovingObject, dataset: str, t: float) -> None:
        own, other = (
            (self.tree_a, self.tree_b) if dataset == "a" else (self.tree_b, self.tree_a)
        )
        own.update(obj, t)
        self.store.remove_object(obj.oid)
        triples = [
            JoinTriple(obj.oid, other_oid, interval)
            for other_oid, interval in other.search(obj.kbox, t, INF)
        ]
        self.store.add_all(iter(self._oriented(triples, dataset)))

    def _index(self, dataset: str):
        return self.tree_a if dataset == "a" else self.tree_b

    def _probe_batch(self, objs, dataset: str, t: float):
        if not objs:
            return []
        other = self.tree_b if dataset == "a" else self.tree_a
        found = other.search_batch([o.kbox for o in objs], t, INF)
        triples = [
            JoinTriple(obj.oid, other_oid, interval)
            for obj, hits in zip(objs, found)
            for other_oid, interval in hits
        ]
        return list(self._oriented(triples, dataset))


class _TCStrategy(_IntervalStrategy):
    """Theorem-1 windows on single TPR*-trees (§IV-B)."""

    def __init__(
        self, engine: ContinuousJoinEngine, techniques: Optional[JoinTechniques]
    ):
        super().__init__(engine)
        self.techniques = techniques

    def build(self, t0: float) -> None:
        engine = self.engine
        self.tree_a = _new_tree(engine)
        self.tree_b = _new_tree(engine)
        for obj in engine.objects_a.values():
            self.tree_a.insert(obj, t0)
        for obj in engine.objects_b.values():
            self.tree_b.insert(obj, t0)

    def initial_join(self, t0: float) -> None:
        triples = tc_join(
            self.tree_a, self.tree_b, t0, self.engine.config.t_m, self.techniques
        )
        self.store.add_all(iter(triples))

    def on_update(self, obj: MovingObject, dataset: str, t: float) -> None:
        own, other = (
            (self.tree_a, self.tree_b) if dataset == "a" else (self.tree_b, self.tree_a)
        )
        own.update(obj, t)
        self.store.remove_object(obj.oid)
        t_end = t + self.engine.config.t_m
        triples = [
            JoinTriple(obj.oid, other_oid, interval)
            for other_oid, interval in other.search(obj.kbox, t, t_end)
        ]
        self.store.add_all(iter(self._oriented(triples, dataset)))

    def _index(self, dataset: str):
        return self.tree_a if dataset == "a" else self.tree_b

    def _probe_batch(self, objs, dataset: str, t: float):
        if not objs:
            return []
        other = self.tree_b if dataset == "a" else self.tree_a
        found = other.search_batch(
            [o.kbox for o in objs], t, t + self.engine.config.t_m
        )
        triples = [
            JoinTriple(obj.oid, other_oid, interval)
            for obj, hits in zip(objs, found)
            for other_oid, interval in hits
        ]
        return list(self._oriented(triples, dataset))


class _MTBStrategy(_IntervalStrategy):
    """Theorem-2 bucketed windows with the §IV-D techniques."""

    def __init__(
        self, engine: ContinuousJoinEngine, techniques: Optional[JoinTechniques]
    ):
        super().__init__(engine)
        if techniques is None:
            techniques = JoinTechniques.all()
            techniques.use_kernels = engine.config.use_kernels
        self.techniques = techniques

    def build(self, t0: float) -> None:
        engine = self.engine
        self.forest_a = _new_forest(engine)
        self.forest_b = _new_forest(engine)
        for obj in engine.objects_a.values():
            self.forest_a.insert(obj, t0)
        for obj in engine.objects_b.values():
            self.forest_b.insert(obj, t0)

    def initial_join(self, t0: float) -> None:
        triples = mtb_join(self.forest_a, self.forest_b, t0, self.techniques)
        self.store.add_all(iter(triples))

    def on_update(self, obj: MovingObject, dataset: str, t: float) -> None:
        own, other = (
            (self.forest_a, self.forest_b)
            if dataset == "a"
            else (self.forest_b, self.forest_a)
        )
        own.update(obj, t)
        self.store.remove_object(obj.oid)
        triples = mtb_join_object(other, obj.kbox, obj.oid, t)
        self.store.add_all(iter(self._oriented(triples, dataset)))

    def _index(self, dataset: str):
        return self.forest_a if dataset == "a" else self.forest_b

    def _replace_batch(self, dataset, updates, admissions, t):
        # Same-tick updates all land in the current time bucket, so the
        # forest can STR-pack a fresh bucket tree in one pass.
        forest = self._index(dataset)
        forest.bulk_delete([obj.oid for obj in updates], t)
        forest.bulk_insert(updates + admissions, t)

    def _evict_batch(self, dataset, oids, t):
        self._index(dataset).bulk_delete(oids, t)

    def _probe_batch(self, objs, dataset: str, t: float):
        if not objs:
            return []
        other = self.forest_b if dataset == "a" else self.forest_a
        triples = mtb_join_objects(other, [(o.oid, o.kbox) for o in objs], t)
        return list(self._oriented(triples, dataset))


class _ETPStrategy:
    """ETP-Join: event-driven TP-join re-evaluation (§III)."""

    def __init__(self, engine: ContinuousJoinEngine):
        self.engine = engine
        self.current: Set[PairKey] = set()
        self.expiry: float = INF
        #: Number of full TP-join traversals run (diagnostics).
        self.tp_runs = 0

    def build(self, t0: float) -> None:
        engine = self.engine
        self.tree_a = _new_tree(engine)
        self.tree_b = _new_tree(engine)
        for obj in engine.objects_a.values():
            self.tree_a.insert(obj, t0)
        for obj in engine.objects_b.values():
            self.tree_b.insert(obj, t0)

    def initial_join(self, t0: float) -> None:
        self._refresh(t0)

    def on_tick(self, t: float) -> None:
        # Re-run the TP join at every result change due before t — this
        # event-chasing is precisely what makes ETP-Join expensive.
        while self.expiry <= t:
            self._refresh(self.expiry)

    def on_update(self, obj: MovingObject, dataset: str, t: float) -> None:
        own, other = (
            (self.tree_a, self.tree_b) if dataset == "a" else (self.tree_b, self.tree_a)
        )
        own.update(obj, t)
        self.current = {key for key in self.current if obj.oid not in key}
        triples, min_inf = influence_scan(other, obj.kbox, t)
        for triple in triples:
            # Same validity convention as tp_join: the pair counts as
            # current only if it persists beyond this instant.
            if triple.interval.start <= t < triple.interval.end:
                if dataset == "a":
                    self.current.add((obj.oid, triple.b_oid))
                else:
                    self.current.add((triple.b_oid, obj.oid))
        if min_inf < self.expiry:
            self.expiry = min_inf

    def result_at(self, t: float) -> Set[PairKey]:
        self.on_tick(t)
        return set(self.current)

    def _refresh(self, t: float) -> None:
        answer = tp_join(self.tree_a, self.tree_b, t)
        self.tp_runs += 1
        self.current = set(answer.pairs)
        if answer.expiry <= t:
            raise AssertionError("TP join produced a non-advancing expiry")
        self.expiry = answer.expiry


def _make_strategy(
    algorithm: str,
    engine: ContinuousJoinEngine,
    techniques: Optional[JoinTechniques],
):
    if algorithm == "naive":
        return _NaiveStrategy(engine)
    if algorithm == "etp":
        return _ETPStrategy(engine)
    if algorithm == "tc":
        return _TCStrategy(engine, techniques)
    return _MTBStrategy(engine, techniques)
