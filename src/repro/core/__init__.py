"""The continuous-join core: engine, result store, clock, config."""

from .config import JoinConfig
from .engine import ALGORITHMS, ContinuousJoinEngine
from .events import ChangeMonitor, ResultDelta
from .result import JoinResultStore
from .selfjoin import ContinuousSelfJoinEngine
from .simulation import SimulationDriver, StepStats

__all__ = [
    "JoinConfig",
    "ContinuousJoinEngine",
    "ContinuousSelfJoinEngine",
    "ALGORITHMS",
    "JoinResultStore",
    "SimulationDriver",
    "StepStats",
    "ChangeMonitor",
    "ResultDelta",
]
