"""The continuous-join core: engine, result store, clock, config."""

from .columnar import COLUMNAR_ALGORITHMS, ColumnarJoinEngine
from .columns import ColumnStore, ObjectsView, UpdateColumns, columns_from_objects
from .config import JoinConfig
from .engine import ALGORITHMS, ContinuousJoinEngine
from .events import ChangeMonitor, ResultDelta
from .result import JoinResultStore
from .selfjoin import ContinuousSelfJoinEngine
from .simulation import SimulationDriver, StepStats

__all__ = [
    "JoinConfig",
    "ContinuousJoinEngine",
    "ContinuousSelfJoinEngine",
    "ColumnarJoinEngine",
    "ColumnStore",
    "UpdateColumns",
    "ObjectsView",
    "columns_from_objects",
    "ALGORITHMS",
    "COLUMNAR_ALGORITHMS",
    "JoinResultStore",
    "SimulationDriver",
    "StepStats",
    "ChangeMonitor",
    "ResultDelta",
]
