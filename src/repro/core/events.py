"""Change notification: who entered, who left, since the last look.

Downstream applications of the continuous join (the paper's dispatcher,
battlefield alerting, interest management) rarely want the full answer
set every tick — they want the *delta*: which pairs started intersecting
and which stopped.  :class:`ResultDelta` diffs snapshots;
:class:`ChangeMonitor` wraps an engine and invokes callbacks as the
simulation advances.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, NamedTuple, Optional, Set, Tuple

from .engine import ContinuousJoinEngine

__all__ = ["ResultDelta", "ChangeMonitor"]

PairKey = Tuple[int, int]
Callback = Callable[[float, "ResultDelta"], None]


class ResultDelta(NamedTuple):
    """Pairs that entered and left the answer between two snapshots."""

    entered: FrozenSet[PairKey]
    left: FrozenSet[PairKey]

    @property
    def is_empty(self) -> bool:
        return not self.entered and not self.left

    @staticmethod
    def between(before: Set[PairKey], after: Set[PairKey]) -> "ResultDelta":
        """The delta turning ``before`` into ``after``."""
        return ResultDelta(frozenset(after - before), frozenset(before - after))


class ChangeMonitor:
    """Tracks an engine's answer and notifies on every change.

    >>> # engine = ContinuousJoinEngine.create(...); engine.run_initial_join()
    >>> # monitor = ChangeMonitor(engine, on_change=lambda t, d: print(t, d))
    >>> # ... advance the engine, then call monitor.poll() each tick.
    """

    def __init__(
        self,
        engine: ContinuousJoinEngine,
        on_change: Optional[Callback] = None,
    ):
        self.engine = engine
        self._last: Set[PairKey] = set(engine.result_at(engine.now))
        self._callbacks: list = [on_change] if on_change is not None else []
        #: Cumulative counts, handy for tests and dashboards.
        self.total_entered = 0
        self.total_left = 0

    def subscribe(self, callback: Callback) -> None:
        """Register an additional change callback."""
        self._callbacks.append(callback)

    def poll(self) -> ResultDelta:
        """Diff the engine's current answer against the last poll.

        Invokes every callback with ``(now, delta)`` when the delta is
        non-empty.  Returns the delta either way.
        """
        now = self.engine.now
        current = set(self.engine.result_at(now))
        delta = ResultDelta.between(self._last, current)
        self._last = current
        if not delta.is_empty:
            self.total_entered += len(delta.entered)
            self.total_left += len(delta.left)
            for callback in self._callbacks:
                callback(now, delta)
        return delta

    @property
    def current_pairs(self) -> Set[PairKey]:
        """The answer as of the last poll."""
        return set(self._last)
