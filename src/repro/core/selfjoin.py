"""Continuous self-join: one moving-object set joined with itself.

The paper's interest-management motivation (distributed simulations,
massively multiplayer games) is really a *self*-join: every entity must
know which other entities' interest ranges it intersects.  This engine
applies the same TC/MTB machinery to a single dataset:

* the set is indexed in one MTB forest;
* pairs are canonicalized as ``(min_oid, max_oid)``;
* an update re-joins the updated object against the forest over the
  Theorem-2 per-bucket windows, exactly as in the two-set engine.

The trivial reflexive pair ``(o, o)`` is excluded.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..index import MTBTree, TreeStorage
from ..join import JoinTriple, mtb_join_object, naive_join
from ..metrics import CostSnapshot, CostTracker
from ..obs import NULL_SPAN, ObsRecorder
from ..objects import MovingObject
from .config import JoinConfig
from .result import JoinResultStore

__all__ = ["ContinuousSelfJoinEngine"]

PairKey = Tuple[int, int]


class ContinuousSelfJoinEngine:
    """Continuously maintained intersection pairs within one dataset."""

    def __init__(
        self,
        objects: Iterable[MovingObject],
        config: Optional[JoinConfig] = None,
        start_time: float = 0.0,
    ):
        self.config = config if config is not None else JoinConfig()
        self.now = float(start_time)
        self.start_time = float(start_time)
        self.objects: Dict[int, MovingObject] = {}
        self.storage = TreeStorage(
            page_size=self.config.page_size, buffer_pages=self.config.buffer_pages
        )
        self.tracker: CostTracker = self.storage.tracker
        #: Attached :class:`~repro.obs.ObsRecorder` when ``config.obs``
        #: is on (or ``REPRO_OBS=1``); ``None`` otherwise.
        self.obs: Optional[ObsRecorder] = None
        if self.config.obs:
            self.obs = ObsRecorder(
                "selfjoin", meta={"t_m": self.config.t_m}
            )
            self.obs.attach(self.tracker)
        self.forest = MTBTree(
            t_m=self.config.t_m,
            storage=self.storage,
            buckets_per_tm=self.config.buckets_per_tm,
            node_capacity=self.config.node_capacity,
            use_kernels=self.config.use_kernels,
        )
        with self._span("engine.build"):
            for obj in objects:
                if obj.oid in self.objects:
                    raise ValueError(f"duplicate object id {obj.oid}")
                self.objects[obj.oid] = obj
                self.forest.insert(obj, self.now)
        self.store = JoinResultStore()
        self.initial_join_cost: Optional[CostSnapshot] = None
        self._sanitize()

    # ------------------------------------------------------------------
    def run_initial_join(self) -> CostSnapshot:
        """Compute all intra-set pairs valid over the Theorem-2 windows."""
        before = self.tracker.snapshot()
        with self.tracker.timed(), self._span("engine.initial_join"):
            t_m = self.config.t_m
            buckets = list(self.forest.trees())
            for i, (_ka, end_a, tree_a) in enumerate(buckets):
                for _kb, end_b, tree_b in buckets[i:]:
                    horizon_end = min(end_a, end_b) + t_m
                    if horizon_end <= self.now:
                        continue
                    for triple in naive_join(
                        tree_a, tree_b, self.now, horizon_end, self.tracker
                    ):
                        self._add(triple.a_oid, triple.b_oid, triple)
        self.initial_join_cost = self.tracker.snapshot() - before
        self._sanitize()
        return self.initial_join_cost

    def tick(self, t: float) -> None:
        """Advance the engine clock (monotone)."""
        if t < self.now:
            raise ValueError("time went backwards")
        self.now = t

    def apply_update(self, obj: MovingObject) -> None:
        """Replace one object's motion and repair the answer."""
        if obj.oid not in self.objects:
            raise KeyError(f"unknown object {obj.oid}")
        self.objects[obj.oid] = obj
        t = self.now
        with self.tracker.timed(), self._span("engine.update", t=t):
            self.forest.update(obj, t)
            self.store.remove_object(obj.oid)
            for triple in mtb_join_object(self.forest, obj.kbox, obj.oid, t):
                self._add(obj.oid, triple.b_oid, triple)
        self._sanitize()

    def result_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """All intersecting unordered pairs ``(lo_oid, hi_oid)`` at ``t``."""
        if t is None:
            t = self.now
        return self.store.pairs_at(t)

    def partners_of(self, oid: int, t: Optional[float] = None) -> Set[int]:
        """The objects currently intersecting ``oid`` — its interest set."""
        pairs = self.result_at(t)
        return {b if a == oid else a for a, b in pairs if oid in (a, b)}

    # ------------------------------------------------------------------
    def _span(self, name: str, **tags):
        """A distinct phase span, or a no-op when recording is off."""
        if self.obs is None:
            return NULL_SPAN
        return self.obs.span(name, **tags)

    def export_obs(self, path, meta=None):
        """Export the recording to JSON; requires ``config.obs``."""
        if self.obs is None:
            raise RuntimeError("observability is off; build with JoinConfig(obs=True)")
        return self.obs.export_json(path, meta)

    def _sanitize(self) -> None:
        """Run the invariant sanitizer when ``JoinConfig.sanitize`` is on."""
        if not self.config.sanitize:
            return
        from ..check.sanitize import raise_on_findings, sanitize_engine

        raise_on_findings(sanitize_engine(self))

    def _add(self, a_oid: int, b_oid: int, triple: JoinTriple) -> None:
        if a_oid == b_oid:
            return
        lo, hi = (a_oid, b_oid) if a_oid < b_oid else (b_oid, a_oid)
        self.store.add(JoinTriple(lo, hi, triple.interval))

    def __repr__(self) -> str:
        return (
            f"ContinuousSelfJoinEngine(n={len(self.objects)}, now={self.now:g})"
        )
