"""The columnar continuous-join engine: a vectorized, index-free tick loop.

:class:`ColumnarJoinEngine` maintains the same continuous intersection
join as :class:`~repro.core.engine.ContinuousJoinEngine` — bit-identical
result store, same public surface — but keeps each dataset in a
:class:`~repro.core.columns.ColumnStore` and drives every phase with the
batch kernels of :mod:`repro.geometry.kernels`, so the per-tick cost has
no Python-per-object term.  This is the scaling path: at n=10k/side it
sustains well over the 3x throughput floor against the serial seed
engine, and it is the only path that completes the 100k and 1M cells of
``benchmarks/bench_scale.py``.

Why an index-free probe is exact
--------------------------------
Every join strategy's answer is, by construction, the set of triples
``(a, b, intersection_interval(a, b, t0, t1))`` over its probe windows —
tree traversal only prunes pairs whose interval would be ``None``.  The
windows are what carry the paper's theorems:

* **TC** (Theorem 1): every probe uses ``[t, t + T_M]``;
* **MTB** (Theorem 2): the other dataset is partitioned by last-update
  bucket, and a bucket ending at ``t_eb`` is probed over
  ``[t, t_eb + T_M]`` (initial forest × forest joins use
  ``[t0, min(t_eb_a, t_eb_b) + T_M]`` per bucket pair).

The columnar engine therefore reproduces the tree-backed engines' stores
bit-for-bit by sweeping the *whole dataset* (grouped by bucket for MTB)
over exactly those windows with :func:`~repro.geometry.kernels.
batch_sweep_join`, whose surviving windows are bit-identical to the
scalar ``intersection_interval``.  The differential suite
(``tests/core/test_columnar.py``) asserts store identity against the
seed engine across the full maintenance matrix.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..geometry.kernels import SWEEP_JOIN_CHUNK, KineticBatch, batch_sweep_join
from ..metrics import CostSnapshot, CostTracker
from ..obs import NULL_SPAN, ObsRecorder
from ..objects import MovingObject
from .columns import ColumnStore, ObjectsView, UpdateColumns, columns_from_objects
from .config import JoinConfig
from .result import ColumnResultStore, JoinResultStore

__all__ = ["ColumnarJoinEngine", "COLUMNAR_ALGORITHMS"]

PairKey = Tuple[int, int]

#: Algorithms the columnar engine implements (the two window-based
#: strategies worth scaling; ``naive``/``etp`` stay object-path only).
COLUMNAR_ALGORITHMS = ("tc", "mtb")

Dataset = Union[ColumnStore, UpdateColumns, Iterable[MovingObject]]


def _as_store(objects: Dataset) -> ColumnStore:
    if isinstance(objects, ColumnStore):
        return objects
    if isinstance(objects, UpdateColumns):
        return ColumnStore.from_columns(objects)
    return ColumnStore.from_objects(objects)


class ColumnarJoinEngine:
    """Continuous intersection join over two columnar datasets.

    Accepts each dataset as an iterable of
    :class:`~repro.objects.MovingObject`, a pre-packed
    :class:`~repro.core.columns.UpdateColumns`, or a ready
    :class:`~repro.core.columns.ColumnStore` (adopted, not copied).

    The update entry points mirror the object engine:
    :meth:`apply_updates` takes objects (compat shim for the scalar
    stream and the differential tests); :meth:`apply_update_columns` is
    the array-native group commit the vectorized stream feeds.
    """

    def __init__(
        self,
        objects_a: Dataset,
        objects_b: Dataset,
        algorithm: str = "mtb",
        config: Optional[JoinConfig] = None,
        start_time: float = 0.0,
    ):
        if algorithm not in COLUMNAR_ALGORITHMS:
            raise ValueError(
                f"unknown columnar algorithm {algorithm!r}; "
                f"pick from {COLUMNAR_ALGORITHMS}"
            )
        self.config = config if config is not None else JoinConfig()
        self.algorithm = algorithm
        self.now = float(start_time)
        self.start_time = float(start_time)
        self.tracker = CostTracker()
        #: The maintained answer — SoA interval planes by default, the
        #: per-pair list store under ``result_store="pairs"`` (the
        #: oracle/ablation path).  Bit-identical either way.
        self.store = (
            ColumnResultStore()
            if self.config.result_store == "columns"
            else JoinResultStore()
        )
        #: Attached :class:`~repro.deltas.DeltaLedger` when
        #: ``config.deltas`` is on; delta extraction rides the store's
        #: ``add_batch`` hot loop as plain scalar records.
        self.ledger = None
        if self.config.deltas:
            from ..deltas import DeltaLedger

            self.ledger = DeltaLedger(self.now)
            self.store.attach_ledger(self.ledger)
        self.obs: Optional[ObsRecorder] = None
        self._backend = None
        if self.config.compile_kernels:
            from ..geometry import compiled

            # None when Numba is absent: the documented silent fallback.
            self._backend = compiled.get_backend()
        with self.tracker.timed():
            self.columns_a = _as_store(objects_a)
            self.columns_b = _as_store(objects_b)
        overlap = set(self.columns_a.oids.tolist()) & set(
            self.columns_b.oids.tolist()
        )
        if overlap:
            raise ValueError(
                f"object ids shared across datasets: {sorted(overlap)[:5]}"
            )
        if self.config.obs:
            self.obs = ObsRecorder(
                "columnar-engine",
                meta={
                    "algorithm": algorithm,
                    "n_a": len(self.columns_a),
                    "n_b": len(self.columns_b),
                    "t_m": self.config.t_m,
                },
            )
            self.obs.attach(self.tracker)
        self.build_cost: CostSnapshot = self.tracker.snapshot()
        self.initial_join_cost: Optional[CostSnapshot] = None
        self.update_count = 0
        self._sanitize()

    # ------------------------------------------------------------------
    # Object-engine-compatible surface
    # ------------------------------------------------------------------
    @property
    def objects_a(self) -> Mapping[int, MovingObject]:
        """Dataset A as a lazy ``oid -> MovingObject`` mapping view."""
        return ObjectsView(self.columns_a)

    @property
    def objects_b(self) -> Mapping[int, MovingObject]:
        """Dataset B as a lazy ``oid -> MovingObject`` mapping view."""
        return ObjectsView(self.columns_b)

    def run_initial_join(self) -> CostSnapshot:
        """Compute the initial answer; returns the cost of this phase."""
        before = self.tracker.snapshot()
        with self.tracker.timed(), self._span("engine.initial_join"):
            self._initial_join(self.now)
        self.initial_join_cost = self.tracker.snapshot() - before
        self._sanitize()
        return self.initial_join_cost

    def tick(self, t: float) -> None:
        """Advance the clock to ``t`` (monotone non-decreasing)."""
        if t < self.now:
            raise ValueError(f"time went backwards: {t} < {self.now}")
        # Canonicalize deferred store mutations before the ledger clock
        # moves, so every delta event lands in the tick that caused it
        # (no-op on the list store).
        self.store.flush()
        self.now = t
        if self.ledger is not None:
            self.ledger.advance(t)
        self._sanitize()

    def apply_update(self, obj: MovingObject) -> None:
        """Process one object update at the current timestamp."""
        self.apply_updates([obj])

    def apply_updates(
        self,
        batch: Iterable[MovingObject],
        *,
        admit: Sequence[Tuple[MovingObject, str]] = (),
        evict: Sequence[int] = (),
    ) -> None:
        """Group-commit a same-timestamp batch of object updates.

        Compat shim over :meth:`apply_update_columns`: splits the batch
        by dataset membership and packs it into columns.  Reference
        times must equal the engine clock (the vectorized tick loop is
        strictly same-tick; feed historical batches to the object
        engine instead).
        """
        upd_a: List[MovingObject] = []
        upd_b: List[MovingObject] = []
        for obj in batch:
            if obj.oid in self.columns_a:
                upd_a.append(obj)
            elif obj.oid in self.columns_b:
                upd_b.append(obj)
            else:
                raise KeyError(f"unknown object id {obj.oid}")
        admissions = list(admit)
        adm_a = [o for o, ds in admissions if ds == "a"]
        adm_b = [o for o, ds in admissions if ds == "b"]
        if len(adm_a) + len(adm_b) != len(admissions):
            raise ValueError("admission datasets must be 'a' or 'b'")
        self.apply_update_columns(
            columns_from_objects(upd_a),
            columns_from_objects(upd_b),
            admit_a=columns_from_objects(adm_a) if adm_a else None,
            admit_b=columns_from_objects(adm_b) if adm_b else None,
            evict=evict,
        )

    # ------------------------------------------------------------------
    # Array-native group commit
    # ------------------------------------------------------------------
    def apply_update_columns(
        self,
        upd_a: UpdateColumns,
        upd_b: UpdateColumns,
        admit_a: Optional[UpdateColumns] = None,
        admit_b: Optional[UpdateColumns] = None,
        evict: Sequence[int] = (),
    ) -> None:
        """Apply one same-timestamp batch as column writes plus sweeps.

        Mirrors the object engine's group commit phase for phase —
        evictions, column writes (the index maintenance of this engine),
        store invalidation, then one probe pass per changed side against
        the other dataset's final state — so the resulting store is
        bit-identical to the serial per-update loop (see
        ``_IntervalStrategy.on_update_batch`` for the argument).
        """
        t = self.now
        self._check_batch(upd_a, t)
        self._check_batch(upd_b, t)
        if admit_a is not None:
            self._check_batch(admit_a, t)
        if admit_b is not None:
            self._check_batch(admit_b, t)
        n_ops = (
            len(upd_a)
            + len(upd_b)
            + (len(admit_a) if admit_a is not None else 0)
            + (len(admit_b) if admit_b is not None else 0)
            + len(evict)
        )
        self.update_count += len(upd_a) + len(upd_b)
        with self.tracker.timed(), self._span("engine.update_batch", t=t, n=n_ops):
            for oid in evict:
                oid = int(oid)
                if oid in self.columns_a:
                    self.columns_a.remove((oid,))
                elif oid in self.columns_b:
                    self.columns_b.remove((oid,))
                else:
                    raise KeyError(f"unknown object id {oid}")
                self.store.remove_object(oid)
            rows_a = self._commit(self.columns_a, upd_a, admit_a)
            rows_b = self._commit(self.columns_b, upd_b, admit_b)
            if len(upd_a) or len(upd_b):
                # One vectorized membership scan invalidates both sides'
                # stale pairs (equivalent to per-oid removal: the batch
                # carries unique oids and removal is order-independent).
                self.store.remove_objects(
                    np.concatenate([upd_a.oid, upd_b.oid])
                )
            self._probe(self.columns_a, rows_a, self.columns_b, t, swap=False)
            self._probe(self.columns_b, rows_b, self.columns_a, t, swap=True)
        self._sanitize()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def result_at(self, t: Optional[float] = None) -> Set[PairKey]:
        """Currently intersecting ``(a_oid, b_oid)`` pairs at time ``t``."""
        if t is None:
            t = self.now
        if not self.now <= t:
            raise ValueError("result_at only answers the present of the engine clock")
        return self.store.pairs_at(t)

    def prune_expired(self) -> int:
        """Garbage-collect result intervals wholly in the past."""
        with self._span("engine.expire", t=self.now):
            return self.store.prune_expired(self.now)

    def deltas(self, t: Optional[float] = None):
        """The netted delta events at tick ``t`` (default: now).

        Identical stream to the serial engine's over the same workload
        — the netted per-tick events are the store's state diff, and
        the stores are maintained bit-identically.
        """
        if self.ledger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        if t is None:
            t = self.now
        with self._span("engine.deltas", t=t):
            self.store.flush()
            return self.ledger.events_at(t)

    def watch(self, *, oid: Optional[int] = None, region=None):
        """Subscribe to the delta stream (see the serial engine)."""
        if self.ledger is None:
            raise RuntimeError(
                "delta streams are off; build with JoinConfig(deltas=True)"
            )
        from ..deltas import DeltaSubscription

        return DeltaSubscription(
            self.ledger,
            oid=oid,
            region=region,
            index=self.store.pairs_for_object,
            region_oids=self._region_oids,
        )

    def _region_oids(self, region) -> Set[int]:
        """Object ids whose bounding box intersects ``region`` right now."""
        found: Set[int] = set()
        for view in (self.objects_a, self.objects_b):
            for obj in view.values():
                if obj.mbr_at(self.now).intersects(region):
                    found.add(obj.oid)
        return found

    def export_obs(self, path, meta=None):
        """Export the recording to JSON; requires ``config.obs``."""
        if self.obs is None:
            raise RuntimeError("observability is off; build with JoinConfig(obs=True)")
        return self.obs.export_json(path, meta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_join(self, t0: float) -> None:
        cols_a, cols_b = self.columns_a, self.columns_b
        if len(cols_a) == 0 or len(cols_b) == 0:
            return
        if self.algorithm == "tc":
            self._sweep_into_store(
                cols_a.batch(),
                cols_a.oids,
                cols_b.batch(),
                cols_b.oids,
                t0,
                t0 + self.config.t_m,
                swap=False,
            )
            return
        length = self.config.bucket_length
        t_m = self.config.t_m
        keys_a = cols_a.bucket_keys(length)
        keys_b = cols_b.bucket_keys(length)
        for ka in np.unique(keys_a).tolist():
            rows_a = np.nonzero(keys_a == ka)[0]
            batch_a = cols_a.gather(rows_a)
            oids_a = cols_a.oid[rows_a]
            end_a = (ka + 1) * length
            for kb in np.unique(keys_b).tolist():
                horizon_end = min(end_a, (kb + 1) * length) + t_m
                if horizon_end <= t0:
                    continue
                rows_b = np.nonzero(keys_b == kb)[0]
                self._sweep_into_store(
                    batch_a,
                    oids_a,
                    cols_b.gather(rows_b),
                    cols_b.oid[rows_b],
                    t0,
                    horizon_end,
                    swap=False,
                )

    def _probe(
        self,
        probe_cols: ColumnStore,
        probe_rows: np.ndarray,
        other_cols: ColumnStore,
        t: float,
        swap: bool,
    ) -> None:
        """Join the changed rows of one side against the other dataset."""
        if probe_rows.shape[0] == 0 or len(other_cols) == 0:
            return
        probe_batch = probe_cols.gather(probe_rows)
        probe_oids = probe_cols.oid[probe_rows]
        if self.algorithm == "tc":
            self._sweep_into_store(
                probe_batch,
                probe_oids,
                other_cols.batch(),
                other_cols.oids,
                t,
                t + self.config.t_m,
                swap=swap,
            )
            return
        length = self.config.bucket_length
        t_m = self.config.t_m
        keys = other_cols.bucket_keys(length)
        for key in np.unique(keys).tolist():
            horizon_end = (key + 1) * length + t_m
            if horizon_end <= t:
                # Bucket fully drained by the T_M guarantee.
                continue
            rows = np.nonzero(keys == key)[0]
            self._sweep_into_store(
                probe_batch,
                probe_oids,
                other_cols.gather(rows),
                other_cols.oid[rows],
                t,
                horizon_end,
                swap=swap,
            )

    def _sweep_into_store(
        self,
        batch_p: KineticBatch,
        oids_p: np.ndarray,
        batch_o: KineticBatch,
        oids_o: np.ndarray,
        t0: float,
        t1: float,
        swap: bool,
    ) -> None:
        counter = [0]
        idx_p, idx_o, lo, hi = batch_sweep_join(
            batch_p,
            batch_o,
            t0,
            t1,
            counter=counter,
            chunk=SWEEP_JOIN_CHUNK,
            backend=self._backend,
        )
        # Whole-batch counter attribution: one increment per sweep, not
        # one per candidate pair.
        self.tracker.count_pair_tests(counter[0])
        if idx_p.shape[0] == 0:
            return
        a_oids = oids_p[idx_p]
        b_oids = oids_o[idx_o]
        if swap:
            a_oids, b_oids = b_oids, a_oids
        self.store.add_batch(a_oids, b_oids, lo, hi)

    def _commit(
        self,
        cols: ColumnStore,
        upd: UpdateColumns,
        adm: Optional[UpdateColumns],
    ) -> np.ndarray:
        """Write a side's updates/admissions; returns the changed rows."""
        rows = cols.apply(upd) if len(upd) else np.empty(0, dtype=np.int64)
        if adm is not None and len(adm):
            rows = np.concatenate([rows, cols.add(adm)])
        return rows

    def _check_batch(self, cols: UpdateColumns, t: float) -> None:
        k = len(cols)
        if k == 0:
            return
        # Strict same-tick contract (cf. the object engine's batchable
        # check, which falls back to a serial loop instead).
        if not np.all(cols.tref == t):  # noqa: RC001
            raise ValueError("columnar updates must carry t_ref == engine.now")
        if np.unique(cols.oid).shape[0] != k:
            raise ValueError("duplicate object ids in one update batch")

    def _span(self, name: str, **tags):
        """A distinct phase span, or a no-op when recording is off.

        The guard keeps obs-off ticks entirely span-free: no tag dicts,
        no span objects, one attribute test per phase — measured zero
        overhead at n=100k (see the obs regression tests).
        """
        if self.obs is None:
            return NULL_SPAN
        return self.obs.span(name, **tags)

    def _sanitize(self) -> None:
        if not self.config.sanitize:
            return
        from ..check.sanitize import raise_on_findings, sanitize_columnar_engine

        raise_on_findings(sanitize_columnar_engine(self))

    def __repr__(self) -> str:
        return (
            f"ColumnarJoinEngine(algorithm={self.algorithm!r}, "
            f"|A|={len(self.columns_a)}, |B|={len(self.columns_b)}, "
            f"now={self.now:g})"
        )
