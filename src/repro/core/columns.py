"""Columnar structure-of-arrays object store (the scaling substrate).

PR 1's :class:`~repro.geometry.kernels.KineticBatch` proved the
structure-of-arrays shape at the tree leaves; this module extends it to
a whole dataset.  A :class:`ColumnStore` holds every object of one
dataset as contiguous NumPy columns — MBR bounds, velocity bounds,
reference times, object ids — plus an id ↔ row map, and is the single
source of truth the vectorized engine, the probe kernels and the
benchmarks all share.  The per-tick hot path then never touches a
Python object per moving object: updates land as array writes, probes
run over zero-copy :class:`KineticBatch` views of the live columns.

Layout
------
Rows ``0..n-1`` are live, stored in a dense prefix of capacity-sized
arrays (amortized-doubling growth, swap-with-last eviction).  Arrays
are indexed ``[dim, row]`` exactly like :class:`KineticBatch`, and the
pre-shifted bounds ``slo = mlo - vlo * tref`` / ``shi = mhi - vhi *
tref`` are maintained *incrementally* on every write with the same
elementwise expression :class:`KineticBatch` uses, so a view of the
columns is bit-identical to a batch packed fresh from the objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

import numpy as np

from ..geometry import NDIMS, Box, KineticBatch, KineticBox
from ..objects import MovingObject

__all__ = [
    "ColumnStore",
    "UpdateColumns",
    "ObjectsView",
    "columns_from_objects",
    "merge_interval_planes",
]

_MIN_CAPACITY = 8


def pair_run_starts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Start index of every ``(a, b)`` run in pair-sorted planes.

    ``a``/``b`` must already be sorted with ``a`` major and ``b`` minor
    (rows of one pair contiguous); the returned indices are the pair
    boundaries — the inverted index the columnar result store keeps.
    """
    n = a.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    np.logical_or(a[1:] != a[:-1], b[1:] != b[:-1], out=new_pair[1:])
    return np.nonzero(new_pair)[0]


def _segmented_prefix_max(values: np.ndarray, run: np.ndarray) -> np.ndarray:
    """Inclusive prefix maximum of ``values`` within each ``run`` segment.

    A segmented Hillis–Steele scan: ``run`` is a non-decreasing segment
    id per element (segments contiguous), and element ``i`` may only
    absorb maxima from elements of the same segment.  ``O(n log L)``
    array passes for maximum segment length ``L`` — the interval lists
    behind one pair are short, so ``L`` (and the pass count) stays tiny
    even when the planes hold hundreds of thousands of rows.
    """
    g = values.copy()
    n = g.shape[0]
    if n == 0:
        return g
    lengths = np.bincount(run)
    max_len = int(lengths.max()) if lengths.size else 1
    shift = 1
    while shift < max_len:
        same = run[shift:] == run[:-shift]
        np.maximum(g[shift:], np.where(same, g[:-shift], -np.inf), out=g[shift:])
        shift <<= 1
    return g


def merge_interval_planes(
    a: np.ndarray,
    b: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    tol: float,
):
    """Coalesce pair-keyed interval planes into merged disjoint rows.

    Vectorized :func:`~repro.geometry.interval.merge_intervals` over SoA
    planes: rows must be sorted by ``(a, b, lo)``; within one pair, rows
    whose gap to the running merged end is at most ``tol`` collapse into
    one row carrying the first start and the running maximum end —
    element for element the exact greedy rule of the scalar merge, so
    the surviving rows are bit-identical to merging each pair's list
    through the interval algebra.  Returns ``(a, b, lo, hi)`` merged
    planes plus the pair-run start indices of the merged rows.
    """
    n = a.shape[0]
    if n == 0:
        return a, b, lo, hi, np.empty(0, dtype=np.int64)
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    np.logical_or(a[1:] != a[:-1], b[1:] != b[:-1], out=new_pair[1:])
    run = np.cumsum(new_pair)
    reach = _segmented_prefix_max(hi, run)
    # A row opens a new merged segment when it opens a new pair, or when
    # it starts beyond the pair's running merged end plus the tolerance
    # (the scalar merge's append-vs-extend test; the cross-pair lanes of
    # the comparison are masked out by the new_pair OR).
    seg = new_pair.copy()
    np.logical_or(seg[1:], lo[1:] > reach[:-1] + tol, out=seg[1:])
    starts = np.nonzero(seg)[0]
    m_a = a[starts]
    m_b = b[starts]
    m_lo = lo[starts]
    m_hi = np.maximum.reduceat(hi, starts)
    return m_a, m_b, m_lo, m_hi, pair_run_starts(m_a, m_b)


@dataclass(slots=True)
class UpdateColumns:
    """A batch of object states as columns (the array-native update unit).

    The wire format between the vectorized update stream, the engine and
    the :class:`ColumnStore`: ``k`` objects with ``(2, k)`` bound arrays
    and ``(k,)`` id / reference-time arrays.  Velocity *bounds* are
    carried (not just rigid velocities) so the layout round-trips any
    :class:`~repro.geometry.KineticBox`.
    """

    oid: np.ndarray
    mlo: np.ndarray
    mhi: np.ndarray
    vlo: np.ndarray
    vhi: np.ndarray
    tref: np.ndarray

    def __len__(self) -> int:
        return int(self.oid.shape[0])

    @classmethod
    def empty(cls) -> "UpdateColumns":
        """A zero-length batch."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty((NDIMS, 0)),
            np.empty((NDIMS, 0)),
            np.empty((NDIMS, 0)),
            np.empty((NDIMS, 0)),
            np.empty(0),
        )

    @classmethod
    def from_objects(cls, objs: Sequence[MovingObject]) -> "UpdateColumns":
        """Pack a sequence of objects (order preserved)."""
        return columns_from_objects(objs)

    def objects(self) -> List[MovingObject]:
        """Materialize the batch as :class:`MovingObject` instances."""
        return [
            MovingObject(
                int(self.oid[i]),
                Box(
                    float(self.mlo[0, i]),
                    float(self.mhi[0, i]),
                    float(self.mlo[1, i]),
                    float(self.mhi[1, i]),
                ),
                float(self.vlo[0, i]),
                float(self.vlo[1, i]),
                t_ref=float(self.tref[i]),
            )
            for i in range(len(self))
        ]


def columns_from_objects(objs: Sequence[MovingObject]) -> UpdateColumns:
    """Pack moving objects into an :class:`UpdateColumns` batch."""
    k = len(objs)
    out = UpdateColumns(
        np.empty(k, dtype=np.int64),
        np.empty((NDIMS, k)),
        np.empty((NDIMS, k)),
        np.empty((NDIMS, k)),
        np.empty((NDIMS, k)),
        np.empty(k),
    )
    for i, obj in enumerate(objs):
        kb = obj.kbox
        out.oid[i] = obj.oid
        out.tref[i] = kb.t_ref
        for d in range(NDIMS):
            out.mlo[d, i] = kb.mbr.lo(d)
            out.mhi[d, i] = kb.mbr.hi(d)
            out.vlo[d, i] = kb.vbr.lo(d)
            out.vhi[d, i] = kb.vbr.hi(d)
    return out


class ColumnStore:
    """One dataset as contiguous columns with an id ↔ row map.

    >>> from repro.geometry import Box
    >>> store = ColumnStore()
    >>> store.add(columns_from_objects(
    ...     [MovingObject(7, Box(0, 1, 0, 1), 0.5, -0.25, t_ref=0.0)]
    ... ))
    array([0])
    >>> store.row_of(7), len(store)
    (0, 1)
    """

    __slots__ = (
        "n",
        "mlo",
        "mhi",
        "vlo",
        "vhi",
        "tref",
        "oid",
        "slo",
        "shi",
        "_row_of",
    )

    def __init__(self, capacity: int = _MIN_CAPACITY):
        cap = max(int(capacity), _MIN_CAPACITY)
        self.n = 0
        self.mlo = np.zeros((NDIMS, cap))
        self.mhi = np.zeros((NDIMS, cap))
        self.vlo = np.zeros((NDIMS, cap))
        self.vhi = np.zeros((NDIMS, cap))
        self.tref = np.zeros(cap)
        self.slo = np.zeros((NDIMS, cap))
        self.shi = np.zeros((NDIMS, cap))
        self.oid = np.zeros(cap, dtype=np.int64)
        self._row_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_objects(cls, objs: Iterable[MovingObject]) -> "ColumnStore":
        """Build a store holding every object of the iterable."""
        cols = columns_from_objects(list(objs))
        store = cls(capacity=len(cols))
        store.add(cols)
        return store

    @classmethod
    def from_columns(cls, cols: UpdateColumns) -> "ColumnStore":
        """Build a store from a pre-packed column batch."""
        store = cls(capacity=len(cols))
        store.add(cols)
        return store

    # ------------------------------------------------------------------
    # Mutation (all vectorized over the batch)
    # ------------------------------------------------------------------
    def add(self, cols: UpdateColumns) -> np.ndarray:
        """Append new objects; returns their row indices.

        Ids must be fresh — updating an existing object goes through
        :meth:`set_rows` (or :meth:`apply`), which overwrites in place.
        """
        k = len(cols)
        if k == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure(k)
        rows = np.arange(self.n, self.n + k, dtype=np.int64)
        row_of = self._row_of
        base = self.n
        for i, o in enumerate(cols.oid.tolist()):
            if o in row_of:
                raise ValueError(f"object {o} already stored")
            row_of[o] = base + i
        self.oid[rows] = cols.oid
        self._write(rows, cols)
        self.n += k
        return rows

    def set_rows(self, rows: np.ndarray, cols: UpdateColumns) -> None:
        """Overwrite the state of existing rows (ids must not change)."""
        self._write(rows, cols)

    def apply(self, cols: UpdateColumns) -> np.ndarray:
        """Overwrite existing objects by id; returns their rows."""
        rows = self.rows_of(cols.oid)
        self._write(rows, cols)
        return rows

    def remove(self, oids: Iterable[int]) -> None:
        """Evict objects by id (swap-with-last keeps the prefix dense)."""
        row_of = self._row_of
        for o in oids:
            o = int(o)
            row = row_of.pop(o)
            last = self.n - 1
            if row != last:
                for arr in (self.mlo, self.mhi, self.vlo, self.vhi, self.slo, self.shi):
                    arr[:, row] = arr[:, last]
                self.tref[row] = self.tref[last]
                moved = int(self.oid[last])
                self.oid[row] = moved
                row_of[moved] = row
            self.n = last

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def row_of(self, oid: int) -> int:
        """Row index currently holding ``oid``."""
        return self._row_of[oid]

    def rows_of(self, oids: Iterable[int]) -> np.ndarray:
        """Row indices for a batch of ids (raises on unknown ids)."""
        row_of = self._row_of
        oid_list = oids.tolist() if isinstance(oids, np.ndarray) else list(oids)
        return np.fromiter(
            (row_of[o] for o in oid_list), dtype=np.int64, count=len(oid_list)
        )

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def __len__(self) -> int:
        return self.n

    @property
    def oids(self) -> np.ndarray:
        """Ids of the live rows, in row order (a view)."""
        return self.oid[: self.n]

    # ------------------------------------------------------------------
    # Kinetic views
    # ------------------------------------------------------------------
    def batch(self) -> KineticBatch:
        """Zero-copy :class:`KineticBatch` view of the live rows.

        The view aliases the live columns (including the incrementally
        maintained pre-shifted bounds, so nothing is recomputed); it is
        valid until the next mutation.
        """
        n = self.n
        return KineticBatch(
            self.mlo[:, :n],
            self.mhi[:, :n],
            self.vlo[:, :n],
            self.vhi[:, :n],
            self.tref[:n],
            self.slo[:, :n],
            self.shi[:, :n],
        )

    def gather(self, rows: np.ndarray) -> KineticBatch:
        """A :class:`KineticBatch` of selected rows (fancy-index copy)."""
        return KineticBatch(
            self.mlo[:, rows],
            self.mhi[:, rows],
            self.vlo[:, rows],
            self.vhi[:, rows],
            self.tref[rows],
            self.slo[:, rows],
            self.shi[:, rows],
        )

    def bucket_keys(self, bucket_length: float) -> np.ndarray:
        """MTB bucket key of every live row (``floor(tref / length)``).

        Matches :meth:`repro.index.mtb.MTBTree.bucket_key` elementwise
        for the non-negative timestamps the simulation produces.
        """
        return np.floor_divide(self.tref[: self.n], bucket_length).astype(np.int64)

    # ------------------------------------------------------------------
    # Object materialization (tests, compat shims — not the hot path)
    # ------------------------------------------------------------------
    def object_at(self, row: int) -> MovingObject:
        """Reconstruct one row as a :class:`MovingObject`."""
        return MovingObject(
            int(self.oid[row]),
            Box(
                float(self.mlo[0, row]),
                float(self.mhi[0, row]),
                float(self.mlo[1, row]),
                float(self.mhi[1, row]),
            ),
            float(self.vlo[0, row]),
            float(self.vlo[1, row]),
            t_ref=float(self.tref[row]),
        )

    def get(self, oid: int) -> MovingObject:
        """Reconstruct the object stored under ``oid``."""
        return self.object_at(self._row_of[oid])

    def kbox_at(self, row: int) -> KineticBox:
        """Reconstruct one row's kinetic box."""
        return self.object_at(row).kbox

    def objects(self) -> Iterator[MovingObject]:
        """Iterate every live row as a :class:`MovingObject`."""
        for row in range(self.n):
            yield self.object_at(row)

    def as_mapping(self) -> Mapping[int, MovingObject]:
        """A live read-only ``oid -> MovingObject`` mapping view."""
        return ObjectsView(self)

    # ------------------------------------------------------------------
    def _write(self, rows: np.ndarray, cols: UpdateColumns) -> None:
        self.mlo[:, rows] = cols.mlo
        self.mhi[:, rows] = cols.mhi
        self.vlo[:, rows] = cols.vlo
        self.vhi[:, rows] = cols.vhi
        self.tref[rows] = cols.tref
        # Same elementwise expression as KineticBatch.__init__, so the
        # incrementally maintained shift stays bit-exact with a fresh
        # pack of the same boxes.
        self.slo[:, rows] = cols.mlo - cols.vlo * cols.tref
        self.shi[:, rows] = cols.mhi - cols.vhi * cols.tref

    def _ensure(self, extra: int) -> None:
        cap = self.tref.shape[0]
        need = self.n + extra
        if need <= cap:
            return
        new_cap = max(cap * 2, need)
        for name in ("mlo", "mhi", "vlo", "vhi", "slo", "shi"):
            old = getattr(self, name)
            grown = np.zeros((NDIMS, new_cap))
            grown[:, : self.n] = old[:, : self.n]
            setattr(self, name, grown)
        tref = np.zeros(new_cap)
        tref[: self.n] = self.tref[: self.n]
        self.tref = tref
        oid = np.zeros(new_cap, dtype=np.int64)
        oid[: self.n] = self.oid[: self.n]
        self.oid = oid

    def __repr__(self) -> str:
        return f"ColumnStore(n={self.n}, capacity={self.tref.shape[0]})"


class ObjectsView(Mapping):
    """Read-only ``oid -> MovingObject`` mapping over a :class:`ColumnStore`.

    Reconstructs objects lazily on access, so legacy object-path
    consumers (the scalar :class:`~repro.workloads.UpdateStream`, the
    differential tests) can read a columnar engine's state without the
    engine materializing a Python object per row per tick.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnStore):
        self._store = store

    def __getitem__(self, oid: int) -> MovingObject:
        return self._store.get(oid)

    def __contains__(self, oid: object) -> bool:
        return oid in self._store

    def __iter__(self) -> Iterator[int]:
        return iter(self._store.oids.tolist())

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return f"ObjectsView(n={len(self)})"
