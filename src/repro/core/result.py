"""The maintained continuous-join answer.

The continuous query must present, at every timestamp, all currently
intersecting pairs.  Algorithms that compute *intervals* (NaiveJoin,
TC-Join, MTB-Join) feed this store: it maps pair → merged interval list
and answers "which pairs hold at time t" by interval lookup.

Maintenance contract (Theorems 1 & 2): when an object updates, every
stored prediction involving it becomes stale from the update time on —
:meth:`remove_object` drops them, after which the fresh per-object join
re-adds the valid ones.  The store also supports :meth:`prune_expired`
garbage collection of intervals wholly in the past.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Set, Tuple

from ..geometry import TimeInterval, merge_intervals
from ..geometry.constants import MERGE_TOL as _MERGE_TOL
from ..join import JoinTriple

__all__ = ["JoinResultStore"]

PairKey = Tuple[int, int]


def _as_list(values) -> List:
    """Sequence → plain list (``ndarray.tolist`` yields Python scalars)."""
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else list(values)


def _record_merge_diff(ledger, key: "PairKey", old_rows, merged) -> None:
    """Report a re-merged pair's row transitions as the exact set diff.

    ``old_rows`` is the pair's pre-mutation ``(start, end)`` list and
    ``merged`` the post-merge :class:`TimeInterval` list.  Rows within a
    pair are distinct (sorted, disjoint), so the symmetric set
    difference is precisely the state transition — a merge that only
    re-confirms an existing interval nets to no events at all.
    """
    old = set(old_rows)
    new = {(iv.start, iv.end) for iv in merged}
    for start, end in old - new:
        ledger.record(-1, key[0], key[1], start, end)
    for start, end in new - old:
        ledger.record(1, key[0], key[1], start, end)


class JoinResultStore:
    """Pair → interval-list map with per-object invalidation.

    A lazy min-expiry frontier (heap of ``(first interval end, key)``)
    lets :meth:`prune_expired` touch only pairs that actually have an
    expired interval — O(expired · log n) per call instead of a scan of
    every stored pair.  Entries are pushed whenever a pair's *first*
    interval end may have changed and validated on pop; removal paths
    (:meth:`remove_object`, re-merges) simply leave stale entries behind
    to be skipped later.
    """

    __slots__ = ("_pairs", "_by_oid", "_frontier", "_ledger")

    def __init__(self) -> None:
        self._pairs: Dict[PairKey, List[TimeInterval]] = {}
        self._by_oid: Dict[int, Set[PairKey]] = {}
        #: lazy min-heap over (intervals[0].end, key); may hold stale
        #: entries, but always holds a live entry for every stored pair.
        self._frontier: List[Tuple[float, PairKey]] = []
        #: attached :class:`~repro.deltas.DeltaLedger` (``None`` = off).
        #: Every mutation path below reports its exact row transitions
        #: to it, so folding the ledger reconstructs the store.
        self._ledger = None

    def attach_ledger(self, ledger) -> None:
        """Attach (or detach, with ``None``) a delta ledger.

        Once attached, every mutation — :meth:`add`, :meth:`add_batch`,
        :meth:`remove_object`, :meth:`prune_expired`, :meth:`clear` —
        records the signed row transitions it causes.
        """
        self._ledger = ledger

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: JoinTriple) -> None:
        """Record (or extend) a pair's intersection interval.

        The stored list is kept sorted and disjoint (the
        :func:`merge_intervals` invariant), so an interval that starts
        after the stored tail ends — the common case during maintenance,
        where each re-join appends a strictly later window — is a plain
        append; only overlapping or out-of-order arrivals pay for a full
        re-merge.
        """
        key = triple.key()
        intervals = self._pairs.get(key)
        ledger = self._ledger
        if intervals is None:
            self._pairs[key] = [triple.interval]
            self._by_oid.setdefault(triple.a_oid, set()).add(key)
            self._by_oid.setdefault(triple.b_oid, set()).add(key)
            heapq.heappush(self._frontier, (triple.interval.end, key))
            if ledger is not None:
                ledger.record(
                    1, key[0], key[1], triple.interval.start, triple.interval.end
                )
        elif triple.interval.start > intervals[-1].end + _MERGE_TOL:
            # Appending after the tail leaves intervals[0] (and hence the
            # pair's frontier entry) untouched.
            intervals.append(triple.interval)
            if ledger is not None:
                ledger.record(
                    1, key[0], key[1], triple.interval.start, triple.interval.end
                )
        else:
            old = (
                None
                if ledger is None
                else [(iv.start, iv.end) for iv in intervals]
            )
            intervals.append(triple.interval)
            merged = merge_intervals(intervals)
            self._pairs[key] = merged
            heapq.heappush(self._frontier, (merged[0].end, key))
            if ledger is not None:
                _record_merge_diff(ledger, key, old, merged)

    def add_all(self, triples: Iterator[JoinTriple]) -> None:
        for triple in triples:
            self.add(triple)

    def add_batch(self, a_oids, b_oids, starts, ends) -> None:
        """Columnar :meth:`add`: four parallel arrays, one tight loop.

        ``a_oids``/``b_oids``/``starts``/``ends`` are parallel sequences
        (NumPy arrays or lists) describing one triple per position.  The
        effect is exactly ``add(JoinTriple(a, b, TimeInterval(s, e)))``
        per position, in order, without constructing the triples — this
        is the append path the vectorized engine feeds from its sweep
        kernels, where per-pair attribute lookups would dominate.
        """
        pairs = self._pairs
        by_oid = self._by_oid
        frontier = self._frontier
        push = heapq.heappush
        ledger = self._ledger
        # Hoisted bound method: delta extraction inside the vectorized
        # append path is one plain-scalar call per row, no per-pair
        # objects (the DeltaEvent materializes lazily at enumeration).
        record = None if ledger is None else ledger.record
        for a, b, s, e in zip(
            _as_list(a_oids), _as_list(b_oids), _as_list(starts), _as_list(ends)
        ):
            key = (a, b)
            intervals = pairs.get(key)
            if intervals is None:
                pairs[key] = [TimeInterval(s, e)]
                by_oid.setdefault(a, set()).add(key)
                by_oid.setdefault(b, set()).add(key)
                push(frontier, (e, key))
                if record is not None:
                    record(1, a, b, s, e)
            elif s > intervals[-1].end + _MERGE_TOL:
                intervals.append(TimeInterval(s, e))
                if record is not None:
                    record(1, a, b, s, e)
            else:
                old = (
                    None
                    if ledger is None
                    else [(iv.start, iv.end) for iv in intervals]
                )
                intervals.append(TimeInterval(s, e))
                merged = merge_intervals(intervals)
                pairs[key] = merged
                push(frontier, (merged[0].end, key))
                if ledger is not None:
                    _record_merge_diff(ledger, key, old, merged)

    def remove_object(self, oid: int) -> int:
        """Drop every pair involving ``oid``; returns how many."""
        keys = self._by_oid.pop(oid, set())
        ledger = self._ledger
        for key in keys:
            intervals = self._pairs.pop(key, None)
            if ledger is not None and intervals is not None:
                for iv in intervals:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
            other = key[1] if key[0] == oid else key[0]
            other_keys = self._by_oid.get(other)
            if other_keys is not None:
                other_keys.discard(key)
                if not other_keys:
                    del self._by_oid[other]
        return len(keys)

    def prune_expired(self, t: float) -> int:
        """Discard intervals that ended before ``t``; returns pairs dropped.

        Interval lists are sorted and disjoint, so a pair's earliest end
        is ``intervals[0].end`` — exactly what the frontier heap orders
        by.  Pairs whose earliest end is ``>= t`` have nothing expired
        and are never touched.

        Pruned rows are reported to the attached delta ledger like any
        other removal — a delta consumer sees expirations as ``-1``
        events, not as silent drift between the stream and the store.
        """
        frontier = self._frontier
        ledger = self._ledger
        dropped = 0
        while frontier and frontier[0][0] < t:
            end, key = heapq.heappop(frontier)
            intervals = self._pairs.get(key)
            # Exact identity on purpose: a frontier entry is live iff it
            # still carries the stored first end bit-for-bit.
            if intervals is None or intervals[0].end != end:  # noqa: RC001
                continue  # stale entry: pair removed or re-merged since
            k = 0
            while k < len(intervals) and intervals[k].end < t:
                k += 1
            if ledger is not None:
                for iv in intervals[:k]:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
            if k == len(intervals):
                del self._pairs[key]
                for oid in key:
                    keys = self._by_oid.get(oid)
                    if keys is not None:
                        keys.discard(key)
                        if not keys:
                            del self._by_oid[oid]
                dropped += 1
            else:
                self._pairs[key] = intervals[k:]
                heapq.heappush(frontier, (intervals[k].end, key))
        return dropped

    def clear(self) -> None:
        ledger = self._ledger
        if ledger is not None:
            for key, intervals in self._pairs.items():
                for iv in intervals:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
        self._pairs.clear()
        self._by_oid.clear()
        self._frontier.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pairs_at(self, t: float) -> Set[PairKey]:
        """The continuous-join answer at timestamp ``t``."""
        return {
            key
            for key, intervals in self._pairs.items()
            if any(iv.contains(t) for iv in intervals)
        }

    def intervals_for(self, key: PairKey) -> List[TimeInterval]:
        """Stored intervals for a pair (empty when unknown)."""
        return list(self._pairs.get(key, []))

    def pairs_for_object(self, oid: int) -> Set[PairKey]:
        """Stored pairs involving ``oid`` (the inverted index, copied)."""
        return set(self._by_oid.get(oid, ()))

    def interval_rows(self) -> Dict[PairKey, Tuple[Tuple[float, float], ...]]:
        """The whole store as exact ``pair → ((start, end), …)`` rows.

        This is the bit-for-bit comparison form the delta machinery
        folds against (ledger baselines, :class:`~repro.deltas.
        DeltaView.rows`, checkpoint dumps).
        """
        return {
            key: tuple((iv.start, iv.end) for iv in intervals)
            for key, intervals in self._pairs.items()
        }

    def __len__(self) -> int:
        """Number of distinct pairs with any stored interval."""
        return len(self._pairs)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._pairs

    def __repr__(self) -> str:
        return f"JoinResultStore(pairs={len(self._pairs)})"
