"""The maintained continuous-join answer.

The continuous query must present, at every timestamp, all currently
intersecting pairs.  Algorithms that compute *intervals* (NaiveJoin,
TC-Join, MTB-Join) feed this store: it maps pair → merged interval list
and answers "which pairs hold at time t" by interval lookup.

Maintenance contract (Theorems 1 & 2): when an object updates, every
stored prediction involving it becomes stale from the update time on —
:meth:`remove_object` drops them, after which the fresh per-object join
re-adds the valid ones.  The store also supports :meth:`prune_expired`
garbage collection of intervals wholly in the past.
"""

from __future__ import annotations

import heapq
import sys
from typing import Dict, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..geometry import TimeInterval, merge_intervals
from ..geometry.constants import MERGE_TOL as _MERGE_TOL
from ..join import JoinTriple
from .columns import merge_interval_planes, pair_run_starts

__all__ = ["JoinResultStore", "ColumnResultStore"]

PairKey = Tuple[int, int]


def _as_list(values) -> List:
    """Sequence → plain list (``ndarray.tolist`` yields Python scalars)."""
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else list(values)


def _record_merge_diff(ledger, key: "PairKey", old_rows, merged) -> None:
    """Report a re-merged pair's row transitions as the exact set diff.

    ``old_rows`` is the pair's pre-mutation ``(start, end)`` list and
    ``merged`` the post-merge :class:`TimeInterval` list.  Rows within a
    pair are distinct (sorted, disjoint), so the symmetric set
    difference is precisely the state transition — a merge that only
    re-confirms an existing interval nets to no events at all.
    """
    old = set(old_rows)
    new = {(iv.start, iv.end) for iv in merged}
    for start, end in old - new:
        ledger.record(-1, key[0], key[1], start, end)
    for start, end in new - old:
        ledger.record(1, key[0], key[1], start, end)


class JoinResultStore:
    """Pair → interval-list map with per-object invalidation.

    A lazy min-expiry frontier (heap of ``(first interval end, key)``)
    lets :meth:`prune_expired` touch only pairs that actually have an
    expired interval — O(expired · log n) per call instead of a scan of
    every stored pair.  Entries are pushed whenever a pair's *first*
    interval end may have changed and validated on pop; removal paths
    (:meth:`remove_object`, re-merges) simply leave stale entries behind
    to be skipped later.
    """

    __slots__ = ("_pairs", "_by_oid", "_frontier", "_ledger")

    def __init__(self) -> None:
        self._pairs: Dict[PairKey, List[TimeInterval]] = {}
        self._by_oid: Dict[int, Set[PairKey]] = {}
        #: lazy min-heap over (intervals[0].end, key); may hold stale
        #: entries, but always holds a live entry for every stored pair.
        self._frontier: List[Tuple[float, PairKey]] = []
        #: attached :class:`~repro.deltas.DeltaLedger` (``None`` = off).
        #: Every mutation path below reports its exact row transitions
        #: to it, so folding the ledger reconstructs the store.
        self._ledger = None

    def attach_ledger(self, ledger) -> None:
        """Attach (or detach, with ``None``) a delta ledger.

        Once attached, every mutation — :meth:`add`, :meth:`add_batch`,
        :meth:`remove_object`, :meth:`prune_expired`, :meth:`clear` —
        records the signed row transitions it causes.
        """
        self._ledger = ledger

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: JoinTriple) -> None:
        """Record (or extend) a pair's intersection interval.

        The stored list is kept sorted and disjoint (the
        :func:`merge_intervals` invariant), so an interval that starts
        after the stored tail ends — the common case during maintenance,
        where each re-join appends a strictly later window — is a plain
        append; only overlapping or out-of-order arrivals pay for a full
        re-merge.
        """
        key = triple.key()
        intervals = self._pairs.get(key)
        ledger = self._ledger
        if intervals is None:
            self._pairs[key] = [triple.interval]
            self._by_oid.setdefault(triple.a_oid, set()).add(key)
            self._by_oid.setdefault(triple.b_oid, set()).add(key)
            heapq.heappush(self._frontier, (triple.interval.end, key))
            if ledger is not None:
                ledger.record(
                    1, key[0], key[1], triple.interval.start, triple.interval.end
                )
        elif triple.interval.start > intervals[-1].end + _MERGE_TOL:
            # Appending after the tail leaves intervals[0] (and hence the
            # pair's frontier entry) untouched.
            intervals.append(triple.interval)
            if ledger is not None:
                ledger.record(
                    1, key[0], key[1], triple.interval.start, triple.interval.end
                )
        else:
            old = (
                None
                if ledger is None
                else [(iv.start, iv.end) for iv in intervals]
            )
            intervals.append(triple.interval)
            merged = merge_intervals(intervals)
            self._pairs[key] = merged
            heapq.heappush(self._frontier, (merged[0].end, key))
            if ledger is not None:
                _record_merge_diff(ledger, key, old, merged)

    def add_all(self, triples: Iterator[JoinTriple]) -> None:
        for triple in triples:
            self.add(triple)

    def add_batch(self, a_oids, b_oids, starts, ends) -> None:
        """Columnar :meth:`add`: four parallel arrays, one tight loop.

        ``a_oids``/``b_oids``/``starts``/``ends`` are parallel sequences
        (NumPy arrays or lists) describing one triple per position.  The
        effect is exactly ``add(JoinTriple(a, b, TimeInterval(s, e)))``
        per position, in order, without constructing the triples — this
        is the append path the vectorized engine feeds from its sweep
        kernels, where per-pair attribute lookups would dominate.
        """
        pairs = self._pairs
        by_oid = self._by_oid
        frontier = self._frontier
        push = heapq.heappush
        ledger = self._ledger
        # Hoisted bound method: delta extraction inside the vectorized
        # append path is one plain-scalar call per row, no per-pair
        # objects (the DeltaEvent materializes lazily at enumeration).
        record = None if ledger is None else ledger.record
        for a, b, s, e in zip(
            _as_list(a_oids), _as_list(b_oids), _as_list(starts), _as_list(ends)
        ):
            key = (a, b)
            intervals = pairs.get(key)
            if intervals is None:
                pairs[key] = [TimeInterval(s, e)]
                by_oid.setdefault(a, set()).add(key)
                by_oid.setdefault(b, set()).add(key)
                push(frontier, (e, key))
                if record is not None:
                    record(1, a, b, s, e)
            elif s > intervals[-1].end + _MERGE_TOL:
                intervals.append(TimeInterval(s, e))
                if record is not None:
                    record(1, a, b, s, e)
            else:
                old = (
                    None
                    if ledger is None
                    else [(iv.start, iv.end) for iv in intervals]
                )
                intervals.append(TimeInterval(s, e))
                merged = merge_intervals(intervals)
                pairs[key] = merged
                push(frontier, (merged[0].end, key))
                if ledger is not None:
                    _record_merge_diff(ledger, key, old, merged)

    def flush(self) -> None:
        """No-op: the list store is always canonical.

        API parity with :class:`ColumnResultStore`, whose deferred
        merges must be forced before ledger reads or clock advances;
        engine code can call ``store.flush()`` unconditionally.
        """

    def remove_objects(self, oids) -> int:
        """Drop every pair involving any of ``oids``; returns how many.

        A pair touching two removed objects is counted once (its first
        removal already dropped it).
        """
        dropped = 0
        for oid in _as_list(oids):
            dropped += self.remove_object(oid)
        return dropped

    def remove_object(self, oid: int) -> int:
        """Drop every pair involving ``oid``; returns how many."""
        keys = self._by_oid.pop(oid, set())
        ledger = self._ledger
        for key in keys:
            intervals = self._pairs.pop(key, None)
            if ledger is not None and intervals is not None:
                for iv in intervals:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
            other = key[1] if key[0] == oid else key[0]
            other_keys = self._by_oid.get(other)
            if other_keys is not None:
                other_keys.discard(key)
                if not other_keys:
                    del self._by_oid[other]
        return len(keys)

    def prune_expired(self, t: float) -> int:
        """Discard intervals that ended before ``t``; returns pairs dropped.

        Interval lists are sorted and disjoint, so a pair's earliest end
        is ``intervals[0].end`` — exactly what the frontier heap orders
        by.  Pairs whose earliest end is ``>= t`` have nothing expired
        and are never touched.

        Pruned rows are reported to the attached delta ledger like any
        other removal — a delta consumer sees expirations as ``-1``
        events, not as silent drift between the stream and the store.
        """
        frontier = self._frontier
        ledger = self._ledger
        dropped = 0
        while frontier and frontier[0][0] < t:
            end, key = heapq.heappop(frontier)
            intervals = self._pairs.get(key)
            # Exact identity on purpose: a frontier entry is live iff it
            # still carries the stored first end bit-for-bit.
            if intervals is None or intervals[0].end != end:  # noqa: RC001
                continue  # stale entry: pair removed or re-merged since
            k = 0
            while k < len(intervals) and intervals[k].end < t:
                k += 1
            if ledger is not None:
                for iv in intervals[:k]:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
            if k == len(intervals):
                del self._pairs[key]
                for oid in key:
                    keys = self._by_oid.get(oid)
                    if keys is not None:
                        keys.discard(key)
                        if not keys:
                            del self._by_oid[oid]
                dropped += 1
            else:
                self._pairs[key] = intervals[k:]
                heapq.heappush(frontier, (intervals[k].end, key))
        return dropped

    def clear(self) -> None:
        ledger = self._ledger
        if ledger is not None:
            for key, intervals in self._pairs.items():
                for iv in intervals:
                    ledger.record(-1, key[0], key[1], iv.start, iv.end)
        self._pairs.clear()
        self._by_oid.clear()
        self._frontier.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pairs_at(self, t: float) -> Set[PairKey]:
        """The continuous-join answer at timestamp ``t``."""
        return {
            key
            for key, intervals in self._pairs.items()
            if any(iv.contains(t) for iv in intervals)
        }

    def intervals_for(self, key: PairKey) -> List[TimeInterval]:
        """Stored intervals for a pair (empty when unknown)."""
        return list(self._pairs.get(key, []))

    def pairs_for_object(self, oid: int) -> Set[PairKey]:
        """Stored pairs involving ``oid`` (the inverted index, copied)."""
        return set(self._by_oid.get(oid, ()))

    def pair_keys(self) -> List[PairKey]:
        """Every stored pair key, in deterministic (insertion) order."""
        return list(self._pairs)

    def approx_bytes(self) -> int:
        """Approximate resident bytes of the store's own structures.

        A shallow ``sys.getsizeof`` walk over the pair map, interval
        objects, inverted index and frontier — the benchmark's
        result-store memory column.  Interned keys/floats shared across
        containers are counted once per reference, so this slightly
        overstates; good enough for an order-of-magnitude comparison.
        """
        getsize = sys.getsizeof
        total = (
            getsize(self._pairs) + getsize(self._by_oid) + getsize(self._frontier)
        )
        for key, intervals in self._pairs.items():
            total += getsize(key) + getsize(key[0]) + getsize(key[1])
            total += getsize(intervals)
            for iv in intervals:
                total += getsize(iv) + getsize(iv.start) + getsize(iv.end)
        for keys in self._by_oid.values():
            total += getsize(keys)
        for entry in self._frontier:
            total += getsize(entry)
        return total

    def interval_rows(self) -> Dict[PairKey, Tuple[Tuple[float, float], ...]]:
        """The whole store as exact ``pair → ((start, end), …)`` rows.

        This is the bit-for-bit comparison form the delta machinery
        folds against (ledger baselines, :class:`~repro.deltas.
        DeltaView.rows`, checkpoint dumps).
        """
        return {
            key: tuple((iv.start, iv.end) for iv in intervals)
            for key, intervals in self._pairs.items()
        }

    def __len__(self) -> int:
        """Number of distinct pairs with any stored interval."""
        return len(self._pairs)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._pairs

    def __repr__(self) -> str:
        return f"JoinResultStore(pairs={len(self._pairs)})"


class ColumnResultStore:
    """The maintained answer as sorted interval planes (SoA layout).

    Store-identical to :class:`JoinResultStore` — same mutation
    semantics, same merge rule, same query answers bit-for-bit — but the
    state is four parallel NumPy planes ``(a, b, lo, hi)`` sorted by
    ``(a, b, lo)`` instead of a dict of per-pair ``TimeInterval`` lists.
    At 100k objects per side the list store's ~260k pair lists dominate
    the engine's memory; the planes hold the same rows in a few
    megabytes of contiguous arrays.

    Mutations are deferred: :meth:`add_batch` appends to a pending
    buffer, removals mark rows dead, and :meth:`flush` canonicalizes —
    one ``lexsort`` plus the vectorized
    :func:`~repro.core.columns.merge_interval_planes` pass per tick
    rather than per-row Python work.  Every query (and any ledger read)
    forces a flush first, so deferral is never observable.

    The inverted index is *searchsorted*: pair lookups binary-search the
    ``a`` plane (rows of one pair are contiguous), and a lazily built
    ``argsort`` of the ``b`` plane serves ``b``-side object lookups.

    An attached delta ledger is fed straight from the array diffs:
    removals record their dead rows, and each flush records the exact
    per-pair set difference between the pre-merge and post-merge rows —
    netted per tick this is the same event stream the list store emits
    (both equal the store's state diff at the tick boundary), which the
    ``SC701``–``SC703`` reconciliation checks verify.
    """

    __slots__ = (
        "_a",
        "_b",
        "_lo",
        "_hi",
        "_n",
        "_live",
        "_dead",
        "_pend",
        "_run_starts",
        "_n_pairs",
        "_b_order",
        "_ledger",
    )

    def __init__(self) -> None:
        self._a = np.empty(0, dtype=np.int64)
        self._b = np.empty(0, dtype=np.int64)
        self._lo = np.empty(0)
        self._hi = np.empty(0)
        #: live row count of the planes (dead rows included until flush).
        self._n = 0
        self._live = np.empty(0, dtype=bool)
        #: rows marked dead since the last flush.
        self._dead = 0
        #: pending ``(a, b, lo, hi)`` add batches, merged at flush.
        self._pend: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        #: pair-run boundaries of the canonical planes (searchsorted index).
        self._run_starts = np.empty(0, dtype=np.int64)
        self._n_pairs = 0
        #: lazy stable argsort of the ``b`` plane (b-side inverted index).
        self._b_order: "np.ndarray | None" = None
        self._ledger = None

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def attach_ledger(self, ledger) -> None:
        """Attach (or detach, with ``None``) a delta ledger.

        Pending mutations are flushed *before* the swap so rows added
        while detached are never retroactively reported to the new
        ledger (the checkpoint-restore re-add path relies on this).
        The ledger gets this store's ``flush`` as its drain hook, so
        reading it directly (not through the engine) still sees every
        deferred mutation of the tick.
        """
        self.flush()
        self._ledger = ledger
        if ledger is not None:
            ledger._flush = self.flush

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: JoinTriple) -> None:
        """Record (or extend) a pair's intersection interval."""
        self.add_batch(
            (triple.a_oid,),
            (triple.b_oid,),
            (triple.interval.start,),
            (triple.interval.end,),
        )

    def add_all(self, triples: Iterator[JoinTriple]) -> None:
        for triple in triples:
            self.add(triple)

    def add_batch(self, a_oids, b_oids, starts, ends) -> None:
        """Vectorized :meth:`add`: four parallel arrays, zero Python loops.

        Validates the rows like ``TimeInterval`` would and appends them
        to the pending buffer; the actual sorted merge is deferred to
        the next :meth:`flush` (any query forces one).  The merged
        outcome is order-independent — the interval merge is confluent —
        so deferral commutes with the list store's immediate merging.
        """
        a = np.array(a_oids, dtype=np.int64, copy=True)
        b = np.array(b_oids, dtype=np.int64, copy=True)
        lo = np.array(starts, dtype=np.float64, copy=True)
        hi = np.array(ends, dtype=np.float64, copy=True)
        k = a.shape[0]
        if not (b.shape[0] == lo.shape[0] == hi.shape[0] == k):
            raise ValueError("add_batch arrays must have equal length")
        if k == 0:
            return
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ValueError("interval endpoints may not be NaN")
        if np.isinf(lo).any():
            raise ValueError("interval may not start at +inf")
        bad = hi < lo
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            raise ValueError(f"empty interval: [{lo[i]}, {hi[i]}]")
        self._pend.append((a, b, lo, hi))

    def remove_object(self, oid: int) -> int:
        """Drop every pair involving ``oid``; returns how many."""
        self._merge_pending()
        oid = int(oid)
        n = self._n
        if n == 0:
            return 0
        rows_a = np.arange(*self._a_run(oid), dtype=np.int64)
        border = self._border()
        b_sorted = self._b[border]
        k0 = int(np.searchsorted(b_sorted, oid, side="left"))
        k1 = int(np.searchsorted(b_sorted, oid, side="right"))
        rows = np.unique(np.concatenate([rows_a, border[k0:k1]]))
        return self._kill_rows(rows[self._live[rows]])

    def remove_objects(self, oids) -> int:
        """Batch :meth:`remove_object`: one vectorized membership scan."""
        self._merge_pending()
        oid_arr = np.unique(np.asarray(_as_list(oids), dtype=np.int64))
        n = self._n
        if n == 0 or oid_arr.shape[0] == 0:
            return 0
        mask = np.isin(self._a[:n], oid_arr)
        mask |= np.isin(self._b[:n], oid_arr)
        mask &= self._live[:n]
        return self._kill_rows(np.nonzero(mask)[0])

    def _kill_rows(self, rows: np.ndarray) -> int:
        """Mark live rows dead; returns the count of pairs fully dropped.

        Callers only pass rows of pairs that die *entirely* (every row
        of a pair involving a removed object matches the removal), so
        the dropped-pair count is the number of distinct pairs among the
        rows — a boundary count over the pair-sorted planes.
        """
        k = rows.shape[0]
        if k == 0:
            return 0
        a, b = self._a[rows], self._b[rows]
        ledger = self._ledger
        if ledger is not None:
            record = ledger.record
            for ra, rb, rlo, rhi in zip(
                a.tolist(), b.tolist(),
                self._lo[rows].tolist(), self._hi[rows].tolist(),
            ):
                record(-1, ra, rb, rlo, rhi)
        dropped = int(np.count_nonzero((a[1:] != a[:-1]) | (b[1:] != b[:-1]))) + 1
        self._live[rows] = False
        self._dead += k
        self._n_pairs -= dropped
        return dropped

    def prune_expired(self, t: float) -> int:
        """Discard intervals that ended before ``t``; returns pairs dropped."""
        self.flush()
        n = self._n
        if n == 0:
            return 0
        dead = self._hi[:n] < t
        k = int(np.count_nonzero(dead))
        if k == 0:
            return 0
        rows = np.nonzero(dead)[0]
        ledger = self._ledger
        if ledger is not None:
            record = ledger.record
            for ra, rb, rlo, rhi in zip(
                self._a[rows].tolist(), self._b[rows].tolist(),
                self._lo[rows].tolist(), self._hi[rows].tolist(),
            ):
                record(-1, ra, rb, rlo, rhi)
        # A pair drops when *all* of its rows expired.
        run = np.zeros(n, dtype=np.int64)
        run[self._run_starts] = 1
        run = np.cumsum(run) - 1
        sizes = np.bincount(run, minlength=self._n_pairs)
        expired = np.bincount(run[rows], minlength=self._n_pairs)
        dropped = int(np.count_nonzero(expired == sizes))
        self._live[rows] = False
        self._dead += k
        self._n_pairs -= dropped
        return dropped

    def clear(self) -> None:
        self.flush()
        n = self._n
        ledger = self._ledger
        if ledger is not None:
            record = ledger.record
            for ra, rb, rlo, rhi in zip(
                self._a[:n].tolist(), self._b[:n].tolist(),
                self._lo[:n].tolist(), self._hi[:n].tolist(),
            ):
                record(-1, ra, rb, rlo, rhi)
        self._adopt(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty(0),
            np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Flush: canonicalize the planes
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Apply deferred mutations: drop dead rows, merge pending adds.

        Engines must call this before reading the attached ledger (or
        advancing its clock) so every event lands in the tick that
        caused it; queries call it implicitly.
        """
        if self._pend or self._dead:
            self._rebuild()

    def _merge_pending(self) -> None:
        """Flush only when pending adds exist (removals tolerate dead rows)."""
        if self._pend:
            self._rebuild()

    def _rebuild(self) -> None:
        n = self._n
        live = self._live[:n]
        if self._dead:
            base = (
                self._a[:n][live],
                self._b[:n][live],
                self._lo[:n][live],
                self._hi[:n][live],
            )
        else:
            base = (self._a[:n], self._b[:n], self._lo[:n], self._hi[:n])
        if not self._pend:
            # Dead-only flush: compaction preserves the (a, b, lo) sort
            # and cannot create new overlaps (per-pair rows stay
            # disjoint when some are removed), so skip sort and merge;
            # the -1 events were already recorded by `_kill_rows`.
            a, b, lo, hi = (np.ascontiguousarray(p) for p in base)
            self._adopt(a, b, lo, hi, pair_run_starts(a, b))
            return
        ledger = self._ledger
        affected = None
        old_rows = None
        if ledger is not None and self._pend:
            affected = set()
            for pa, pb, _, _ in self._pend:
                affected.update(zip(pa.tolist(), pb.tolist()))
            old_rows = {key: self._pair_rows(key) for key in affected}
        parts = [base] + self._pend
        a = np.concatenate([p[0] for p in parts])
        b = np.concatenate([p[1] for p in parts])
        lo = np.concatenate([p[2] for p in parts])
        hi = np.concatenate([p[3] for p in parts])
        if a.size and a.min() >= 0 and b.min() >= 0 and (
            a.max() < (1 << 31) and b.max() < (1 << 31)
        ):
            # Common case: both oids fit 31 bits, so the (a, b) pair
            # packs into one int64 sort key — one fewer stable pass
            # than the three-key lexsort, same order.
            order = np.lexsort((lo, (a << np.int64(31)) | b))
        else:
            order = np.lexsort((lo, b, a))
        a, b, lo, hi, starts = merge_interval_planes(
            a[order], b[order], lo[order], hi[order], _MERGE_TOL
        )
        self._adopt(a, b, lo, hi, starts)
        if affected is not None:
            for key in affected:
                old = old_rows[key]
                new = self._pair_rows(key)
                for start, end in old - new:
                    ledger.record(-1, key[0], key[1], start, end)
                for start, end in new - old:
                    ledger.record(1, key[0], key[1], start, end)

    def _adopt(self, a, b, lo, hi, starts) -> None:
        self._a, self._b, self._lo, self._hi = a, b, lo, hi
        self._n = a.shape[0]
        self._live = np.ones(self._n, dtype=bool)
        self._dead = 0
        self._pend = []
        self._run_starts = starts
        self._n_pairs = starts.shape[0]
        self._b_order = None

    # ------------------------------------------------------------------
    # Searchsorted inverted index
    # ------------------------------------------------------------------
    def _a_run(self, oid: int) -> Tuple[int, int]:
        """Row span whose ``a`` plane equals ``oid`` (planes are a-major)."""
        n = self._n
        i0 = int(np.searchsorted(self._a[:n], oid, side="left"))
        i1 = int(np.searchsorted(self._a[:n], oid, side="right"))
        return i0, i1

    def _pair_span(self, key: PairKey) -> Tuple[int, int]:
        """Row span holding pair ``key`` (empty span when absent)."""
        i0, i1 = self._a_run(int(key[0]))
        seg = self._b[i0:i1]
        j0 = i0 + int(np.searchsorted(seg, int(key[1]), side="left"))
        j1 = i0 + int(np.searchsorted(seg, int(key[1]), side="right"))
        return j0, j1

    def _pair_rows(self, key: PairKey) -> Set[Tuple[float, float]]:
        """Current live ``(start, end)`` rows of one pair, as a set."""
        j0, j1 = self._pair_span(key)
        if j0 == j1:
            return set()
        rows = np.arange(j0, j1, dtype=np.int64)
        if self._dead:
            rows = rows[self._live[rows]]
        return set(zip(self._lo[rows].tolist(), self._hi[rows].tolist()))

    def _border(self) -> np.ndarray:
        """Stable argsort of the ``b`` plane (built lazily per flush)."""
        if self._b_order is None or self._b_order.shape[0] != self._n:
            self._b_order = np.argsort(self._b[: self._n], kind="stable")
        return self._b_order

    # ------------------------------------------------------------------
    # Queries (every query sees the canonical planes)
    # ------------------------------------------------------------------
    def pairs_at(self, t: float) -> Set[PairKey]:
        """The continuous-join answer at timestamp ``t``."""
        self.flush()
        n = self._n
        mask = (self._lo[:n] <= t) & (t <= self._hi[:n])
        rows = np.nonzero(mask)[0]
        return set(zip(self._a[rows].tolist(), self._b[rows].tolist()))

    def intervals_for(self, key: PairKey) -> List[TimeInterval]:
        """Stored intervals for a pair (empty when unknown)."""
        self.flush()
        j0, j1 = self._pair_span(key)
        return [
            TimeInterval(self._lo[j], self._hi[j]) for j in range(j0, j1)
        ]

    def pairs_for_object(self, oid: int) -> Set[PairKey]:
        """Stored pairs involving ``oid`` (via the searchsorted index)."""
        self.flush()
        oid = int(oid)
        i0, i1 = self._a_run(oid)
        found: Set[PairKey] = {
            (oid, int(x)) for x in np.unique(self._b[i0:i1]).tolist()
        }
        border = self._border()
        b_sorted = self._b[border]
        k0 = int(np.searchsorted(b_sorted, oid, side="left"))
        k1 = int(np.searchsorted(b_sorted, oid, side="right"))
        rows = border[k0:k1]
        found.update(
            (int(x), oid) for x in np.unique(self._a[rows]).tolist()
        )
        return found

    def pair_keys(self) -> List[PairKey]:
        """Every stored pair key, in deterministic (sorted) order."""
        self.flush()
        starts = self._run_starts
        return list(
            zip(self._a[starts].tolist(), self._b[starts].tolist())
        )

    def interval_rows(self) -> Dict[PairKey, Tuple[Tuple[float, float], ...]]:
        """The whole store as exact ``pair → ((start, end), …)`` rows."""
        self.flush()
        n = self._n
        a = self._a[:n].tolist()
        b = self._b[:n].tolist()
        lo = self._lo[:n].tolist()
        hi = self._hi[:n].tolist()
        bounds = self._run_starts.tolist()
        bounds.append(n)
        out: Dict[PairKey, Tuple[Tuple[float, float], ...]] = {}
        for i in range(len(bounds) - 1):
            s, e = bounds[i], bounds[i + 1]
            out[(a[s], b[s])] = tuple(zip(lo[s:e], hi[s:e]))
        return out

    @property
    def _pairs(self) -> Dict[PairKey, List[TimeInterval]]:
        """Materialized ``pair → TimeInterval`` list view.

        Compatibility with the list store's inspection surface (the
        differential tests' ``dump`` helpers); built on demand, never
        part of the maintained state.
        """
        return {
            key: [TimeInterval(start, end) for start, end in rows]
            for key, rows in self.interval_rows().items()
        }

    def approx_bytes(self) -> int:
        """Resident bytes of the planes (the benchmark memory column)."""
        total = (
            self._a.nbytes
            + self._b.nbytes
            + self._lo.nbytes
            + self._hi.nbytes
            + self._live.nbytes
            + self._run_starts.nbytes
        )
        if self._b_order is not None:
            total += self._b_order.nbytes
        for batch in self._pend:
            total += sum(arr.nbytes for arr in batch)
        return total

    def __len__(self) -> int:
        """Number of distinct pairs with any stored interval."""
        self._merge_pending()
        return self._n_pairs

    def __contains__(self, key: PairKey) -> bool:
        self.flush()
        j0, j1 = self._pair_span(key)
        return j1 > j0

    def __repr__(self) -> str:
        return f"ColumnResultStore(pairs={len(self)}, rows={self._n})"
