"""Experiment configuration: the knobs of the paper's Table I."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..index import DEFAULT_BUCKETS_PER_TM, DEFAULT_NODE_CAPACITY
from ..storage import DEFAULT_BUFFER_PAGES, DEFAULT_PAGE_SIZE

__all__ = ["JoinConfig"]


@dataclass(frozen=True)
class JoinConfig:
    """Parameters shared by engine, indexes and workloads.

    Defaults follow the paper's Table I (bold values): 1000×1000 space
    domain, node capacity 30, maximum update interval ``T_M = 60``
    timestamps, 4 KiB pages behind a 50-page LRU buffer, and MTB time
    buckets of length ``T_M / 2``.
    """

    #: Side length of the square space domain.
    space_size: float = 1000.0
    #: Maximum update interval ``T_M`` (timestamps).
    t_m: float = 60.0
    #: Maximum entries per tree node.
    node_capacity: int = DEFAULT_NODE_CAPACITY
    #: Simulated disk page size in bytes.
    page_size: int = DEFAULT_PAGE_SIZE
    #: LRU buffer capacity in pages (shared by all trees).
    buffer_pages: int = DEFAULT_BUFFER_PAGES
    #: MTB bucket granularity ``m`` — bucket length is ``t_m / m``.
    buckets_per_tm: int = DEFAULT_BUCKETS_PER_TM
    #: TPR insertion horizon ``H``; ``None`` means ``t_m``.
    horizon: Optional[float] = None
    #: Route pair tests through the vectorized NumPy kernels
    #: (:mod:`repro.geometry.kernels`).  Identical results either way;
    #: off forces the scalar reference path for ablations.
    use_kernels: bool = True
    #: Route the columnar engine's hottest kernels (pair test, sweep
    #: bounds, insertion costs) through the optional Numba backend
    #: (:mod:`repro.geometry.compiled`).  The NumPy path is the
    #: bit-exact oracle, so results are identical either way; silently
    #: falls back to NumPy when Numba is not installed.  Also forced on
    #: by the ``REPRO_COMPILE=1`` environment variable.
    compile_kernels: bool = False
    #: Let :meth:`ContinuousJoinEngine.apply_updates` group-commit a
    #: same-timestamp batch (bulk index maintenance + one shared probe
    #: descent per dataset).  Results are bit-exact either way; off
    #: forces the per-update serial loop for ablations.
    batch_updates: bool = True
    #: Result-store layout used by :class:`~repro.core.columnar.
    #: ColumnarJoinEngine`: ``"columns"`` keeps the answer as sorted
    #: ``(a, b, lo, hi)`` interval planes
    #: (:class:`~repro.core.result.ColumnResultStore`), ``"pairs"`` as
    #: per-pair ``TimeInterval`` lists
    #: (:class:`~repro.core.result.JoinResultStore`).  Store-identical
    #: either way (the differential suite proves it); ``"pairs"`` is the
    #: ablation/oracle path.  The object engine always uses ``"pairs"``.
    result_store: str = "columns"
    #: Engine class the sharded engine builds per shard: ``"object"``
    #: (the seed :class:`~repro.core.engine.ContinuousJoinEngine`) or
    #: ``"columnar"`` (:class:`~repro.core.columnar.ColumnarJoinEngine`,
    #: vectorized maintenance inside every shard).  Merged results are
    #: identical either way.
    shard_engine: str = "object"
    #: Extra sanity checking inside the engine (slow; used by tests).
    validate: bool = field(default=False, compare=False)
    #: Run the :mod:`repro.check` invariant sanitizer after every
    #: build/tick/update (slow; debugging and CI smoke tests).  Also
    #: forced on by the ``REPRO_SANITIZE=1`` environment variable.
    sanitize: bool = field(default=False, compare=False)
    #: Record phase-attributed cost spans (:mod:`repro.obs`).  Off by
    #: default — the engine then skips recorder creation entirely and
    #: each counter increment pays one attribute test.  Also forced on
    #: by the ``REPRO_OBS=1`` environment variable.
    obs: bool = field(default=False, compare=False)
    #: Maintain a :class:`~repro.deltas.DeltaLedger` next to the result
    #: store: every mutation records signed ``(tick, pair, ±interval)``
    #: events, exposed via ``engine.deltas(t)`` / ``engine.watch(...)``.
    #: Off by default — the store's hot paths then pay one ``None``
    #: test per mutation.  Also forced on by ``REPRO_DELTAS=1``.
    deltas: bool = field(default=False, compare=False)
    #: Supervised shard round-trip timeout in wall seconds
    #: (:class:`~repro.par.supervisor.ShardSupervisor`): a worker that
    #: gives no reply within this window is declared hung and
    #: recovered.  ``None`` waits forever (liveness heartbeats still
    #: catch dead workers).
    shard_timeout: Optional[float] = field(default=30.0, compare=False)
    #: Liveness-poll granularity while awaiting a shard reply: the
    #: supervisor checks worker liveness every this many wall seconds.
    shard_heartbeat: float = field(default=0.05, compare=False)
    #: State-mutating commands a shard may accumulate in the
    #: supervisor's op log before a fresh checkpoint is taken (bounds
    #: both log memory and crash-recovery replay length).
    checkpoint_interval: int = field(default=16, compare=False)
    #: Failed respawn attempts per worker slot before its shards
    #: degrade to in-process serial execution.
    max_retries: int = field(default=2, compare=False)
    #: Fault-injection plan (:mod:`repro.faults` spec string) armed in
    #: the supervisor and its first-incarnation workers; ``None`` falls
    #: back to the ``REPRO_FAULTS`` environment variable.
    faults: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.sanitize and os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            object.__setattr__(self, "sanitize", True)
        if not self.obs and os.environ.get("REPRO_OBS", "") not in ("", "0"):
            object.__setattr__(self, "obs", True)
        if not self.compile_kernels and os.environ.get(
            "REPRO_COMPILE", ""
        ) not in ("", "0"):
            object.__setattr__(self, "compile_kernels", True)
        if not self.deltas and os.environ.get("REPRO_DELTAS", "") not in ("", "0"):
            object.__setattr__(self, "deltas", True)
        if self.space_size <= 0:
            raise ValueError("space_size must be positive")
        if self.t_m <= 0:
            raise ValueError("t_m must be positive")
        if self.buckets_per_tm < 1:
            raise ValueError("buckets_per_tm must be >= 1")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.shard_heartbeat <= 0:
            raise ValueError("shard_heartbeat must be positive")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.result_store not in ("columns", "pairs"):
            raise ValueError(
                f"result_store must be 'columns' or 'pairs', got {self.result_store!r}"
            )
        if self.shard_engine not in ("object", "columnar"):
            raise ValueError(
                f"shard_engine must be 'object' or 'columnar', got {self.shard_engine!r}"
            )

    @property
    def effective_horizon(self) -> float:
        """The TPR insertion horizon actually used."""
        return self.horizon if self.horizon is not None else self.t_m

    @property
    def bucket_length(self) -> float:
        """Length of one MTB time bucket."""
        return self.t_m / self.buckets_per_tm
