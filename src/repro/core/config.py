"""Experiment configuration: the knobs of the paper's Table I."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..index import DEFAULT_BUCKETS_PER_TM, DEFAULT_NODE_CAPACITY
from ..storage import DEFAULT_BUFFER_PAGES, DEFAULT_PAGE_SIZE

__all__ = ["JoinConfig"]


@dataclass(frozen=True)
class JoinConfig:
    """Parameters shared by engine, indexes and workloads.

    Defaults follow the paper's Table I (bold values): 1000×1000 space
    domain, node capacity 30, maximum update interval ``T_M = 60``
    timestamps, 4 KiB pages behind a 50-page LRU buffer, and MTB time
    buckets of length ``T_M / 2``.
    """

    #: Side length of the square space domain.
    space_size: float = 1000.0
    #: Maximum update interval ``T_M`` (timestamps).
    t_m: float = 60.0
    #: Maximum entries per tree node.
    node_capacity: int = DEFAULT_NODE_CAPACITY
    #: Simulated disk page size in bytes.
    page_size: int = DEFAULT_PAGE_SIZE
    #: LRU buffer capacity in pages (shared by all trees).
    buffer_pages: int = DEFAULT_BUFFER_PAGES
    #: MTB bucket granularity ``m`` — bucket length is ``t_m / m``.
    buckets_per_tm: int = DEFAULT_BUCKETS_PER_TM
    #: TPR insertion horizon ``H``; ``None`` means ``t_m``.
    horizon: Optional[float] = None
    #: Route pair tests through the vectorized NumPy kernels
    #: (:mod:`repro.geometry.kernels`).  Identical results either way;
    #: off forces the scalar reference path for ablations.
    use_kernels: bool = True
    #: Route the columnar engine's hottest kernels (pair test, sweep
    #: bounds, insertion costs) through the optional Numba backend
    #: (:mod:`repro.geometry.compiled`).  The NumPy path is the
    #: bit-exact oracle, so results are identical either way; silently
    #: falls back to NumPy when Numba is not installed.  Also forced on
    #: by the ``REPRO_COMPILE=1`` environment variable.
    compile_kernels: bool = False
    #: Let :meth:`ContinuousJoinEngine.apply_updates` group-commit a
    #: same-timestamp batch (bulk index maintenance + one shared probe
    #: descent per dataset).  Results are bit-exact either way; off
    #: forces the per-update serial loop for ablations.
    batch_updates: bool = True
    #: Extra sanity checking inside the engine (slow; used by tests).
    validate: bool = field(default=False, compare=False)
    #: Run the :mod:`repro.check` invariant sanitizer after every
    #: build/tick/update (slow; debugging and CI smoke tests).  Also
    #: forced on by the ``REPRO_SANITIZE=1`` environment variable.
    sanitize: bool = field(default=False, compare=False)
    #: Record phase-attributed cost spans (:mod:`repro.obs`).  Off by
    #: default — the engine then skips recorder creation entirely and
    #: each counter increment pays one attribute test.  Also forced on
    #: by the ``REPRO_OBS=1`` environment variable.
    obs: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.sanitize and os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            object.__setattr__(self, "sanitize", True)
        if not self.obs and os.environ.get("REPRO_OBS", "") not in ("", "0"):
            object.__setattr__(self, "obs", True)
        if not self.compile_kernels and os.environ.get(
            "REPRO_COMPILE", ""
        ) not in ("", "0"):
            object.__setattr__(self, "compile_kernels", True)
        if self.space_size <= 0:
            raise ValueError("space_size must be positive")
        if self.t_m <= 0:
            raise ValueError("t_m must be positive")
        if self.buckets_per_tm < 1:
            raise ValueError("buckets_per_tm must be >= 1")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")

    @property
    def effective_horizon(self) -> float:
        """The TPR insertion horizon actually used."""
        return self.horizon if self.horizon is not None else self.t_m

    @property
    def bucket_length(self) -> float:
        """Length of one MTB time bucket."""
        return self.t_m / self.buckets_per_tm
