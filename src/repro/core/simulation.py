"""Clock-driven simulation: engine + update stream + cost bookkeeping.

:class:`SimulationDriver` advances discrete timestamps, pulls the due
updates from an :class:`~repro.workloads.UpdateStream`, feeds them to a
:class:`~repro.core.engine.ContinuousJoinEngine`, and records per-step
costs.  The maintenance experiments (paper §VI-D.2) are this loop,
amortized over the number of updates.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from ..metrics import CostSnapshot
from ..workloads import UpdateStream
from .engine import ContinuousJoinEngine

__all__ = ["StepStats", "SimulationDriver"]


class StepStats(NamedTuple):
    """What one simulated timestamp cost."""

    timestamp: float
    n_updates: int
    cost: CostSnapshot
    result_size: int


class SimulationDriver:
    """Runs a continuous join forward in time, one timestamp per step.

    Each step's due updates form one same-timestamp batch handed to
    :meth:`~repro.core.engine.ContinuousJoinEngine.apply_updates`
    (group commit); ``batched=False`` feeds them one
    :meth:`~repro.core.engine.ContinuousJoinEngine.apply_update` at a
    time instead.  The maintained answer is bit-exact either way.
    """

    def __init__(
        self,
        engine: ContinuousJoinEngine,
        stream: UpdateStream,
        batched: bool = True,
    ):
        self.engine = engine
        self.stream = stream
        self.batched = batched
        self.history: List[StepStats] = []

    def step(self) -> StepStats:
        """Advance one timestamp: tick the clock, apply due updates."""
        engine = self.engine
        t = engine.now + 1.0
        before = engine.tracker.snapshot()
        engine.tick(t)
        if self._columnar_fast_path():
            # Array fast path: the stream hands over column batches and
            # the engine consumes them without materializing objects.
            upd_a, upd_b = self.stream.updates_at(t)
            n_updates = len(upd_a) + len(upd_b)
            engine.apply_update_columns(upd_a, upd_b)
        else:
            current = {**engine.objects_a, **engine.objects_b}
            updates = self.stream.updates_for(t, current)
            n_updates = len(updates)
            if self.batched and hasattr(engine, "apply_updates"):
                engine.apply_updates(updates)
            else:
                for obj in updates:
                    engine.apply_update(obj)
        cost = engine.tracker.snapshot() - before
        stats = StepStats(t, n_updates, cost, len(engine.result_at(t)))
        self.history.append(stats)
        return stats

    def _columnar_fast_path(self) -> bool:
        """Stream emits column batches and the engine accepts them."""
        return hasattr(self.stream, "updates_at") and hasattr(
            self.engine, "apply_update_columns"
        )

    def run(
        self,
        n_steps: int,
        on_step: Optional[Callable[[StepStats], None]] = None,
    ) -> List[StepStats]:
        """Run ``n_steps`` timestamps; returns their stats."""
        stats = []
        for _ in range(n_steps):
            step_stats = self.step()
            stats.append(step_stats)
            if on_step is not None:
                on_step(step_stats)
        return stats

    # ------------------------------------------------------------------
    def total_updates(self) -> int:
        return sum(s.n_updates for s in self.history)

    def amortized_cost(self) -> CostSnapshot:
        """Total maintenance cost divided by the number of updates."""
        total = CostSnapshot(0, 0, 0, 0, 0.0)
        for s in self.history:
            total = CostSnapshot(
                total.page_reads + s.cost.page_reads,
                total.page_writes + s.cost.page_writes,
                total.pair_tests + s.cost.pair_tests,
                total.node_visits + s.cost.node_visits,
                total.cpu_seconds + s.cost.cpu_seconds,
            )
        updates = max(1, self.total_updates())
        return total.scaled(updates)
