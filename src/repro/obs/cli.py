"""``python -m repro.obs`` — render recorded observability runs.

Subcommands
-----------

``report PATH...``
    Load one or more recording JSON files (directories are expanded to
    their ``*.json`` members) and print paper-style tables: figure
    tables across recordings (series / x / I/O / pair tests / CPU —
    the EXPERIMENTS.md columns), then per-recording phase, component
    and per-tick timeline breakdowns.
``csv SRC DST``
    Convert one recording JSON file to a flat per-span CSV.

Examples::

    python -m repro.obs report benchmarks/out/obs/
    python -m repro.obs report run.json --sections phases,timeline
    python -m repro.obs csv run.json run.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .report import iter_recordings, load_recording, render_report, write_csv

__all__ = ["main", "build_parser"]

_SECTIONS = ("figures", "phases", "components", "timeline")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Render phase-attributed cost recordings as "
        "paper-style tables",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print tables from recordings")
    p_report.add_argument("paths", nargs="+", metavar="PATH",
                          help="recording JSON files or directories of them")
    p_report.add_argument(
        "--sections", default=",".join(_SECTIONS), metavar="LIST",
        help="comma-separated subset of: " + ", ".join(_SECTIONS),
    )

    p_csv = sub.add_parser("csv", help="convert a recording JSON to CSV")
    p_csv.add_argument("src", help="recording JSON file")
    p_csv.add_argument("dst", help="output CSV path")
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "csv":
        write_csv(load_recording(args.src), args.dst)
        out.write(f"wrote {args.dst}\n")
        return 0
    sections = tuple(s.strip() for s in args.sections.split(",") if s.strip())
    unknown = [s for s in sections if s not in _SECTIONS]
    if unknown:
        out.write(f"unknown section(s): {', '.join(unknown)}\n")
        return 2
    recordings = iter_recordings(args.paths)
    if not recordings:
        out.write("no recordings found\n")
        return 1
    render_report(recordings, lambda line: out.write(line + "\n"), sections)
    return 0
