"""Entry point for ``python -m repro.obs``."""

import sys

from .cli import main

sys.exit(main())
