"""Structured observability: phase-scoped trace spans over CostTracker.

``repro.obs`` generalizes the flat counters of :mod:`repro.metrics` into
a tree of named spans.  Attach an :class:`ObsRecorder` to a
:class:`~repro.metrics.CostTracker` and every page read/write, pair test
and node visit is *attributed* to the innermost open span — phases like
``engine.tick`` (tagged with the simulation timestamp), join runs like
``join.tc``, and hot call sites like ``tpr.search`` — while the
tracker's global totals stay untouched.  Span rollups are bit-exact
against those totals by construction.

Recording is opt-in (``JoinConfig(obs=True)`` or ``REPRO_OBS=1``); when
off, the instrumentation reduces to one attribute test per increment.

Exports land as JSON/CSV; ``python -m repro.obs report <files>`` renders
paper-style phase, component, timeline and figure tables from them.
"""

from .recorder import NULL_SPAN, ObsRecorder, Span, tracker_span
from .report import (
    component_rows,
    figure_tables,
    iter_recordings,
    load_recording,
    phase_rows,
    render_report,
    timeline_rows,
    write_csv,
)

__all__ = [
    "ObsRecorder",
    "Span",
    "tracker_span",
    "NULL_SPAN",
    "load_recording",
    "iter_recordings",
    "phase_rows",
    "component_rows",
    "timeline_rows",
    "figure_tables",
    "render_report",
    "write_csv",
]
