"""Render recorded observability runs as paper-style tables.

Works on the JSON files written by :meth:`~repro.obs.ObsRecorder.
export_json`.  Four views:

* **phases** — the root span's direct children aggregated by name
  (``engine.build`` / ``engine.initial_join`` / ``engine.tick`` /
  ``engine.update`` / ``engine.expire``), plus an amortized per-update
  maintenance row — the paper's Figure 13 metric;
* **components** — every span name aggregated over the whole tree using
  *exclusive* counters and seconds (additive under nesting): where
  inside a tick the cost went — TPR descent vs. exact pair tests vs.
  MTB bucket scans vs. buffer traffic;
* **timeline** — per-tick rows from the phase spans tagged with their
  timestamp ``t``;
* **figures** — across many recordings whose ``meta`` carries
  ``figure``/``series``/``x``: the I/O and pair-test columns of the
  EXPERIMENTS.md tables, regenerated from recordings instead of ad-hoc
  snapshot diffs.
"""

from __future__ import annotations

import csv
import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from ..metrics import COUNTER_KEYS
from .recorder import FORMAT

__all__ = [
    "load_recording",
    "iter_recordings",
    "phase_rows",
    "component_rows",
    "timeline_rows",
    "figure_tables",
    "render_report",
    "write_csv",
]

Write = Callable[[str], Any]


def load_recording(path: "str | Path") -> Dict[str, Any]:
    """Load and validate one exported recording."""
    path = Path(path)
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise ValueError(
            f"{path} is not a repro.obs recording (expected format {FORMAT!r})"
        )
    return data


def iter_recordings(paths: Iterable["str | Path"]) -> List[Tuple[Path, Dict[str, Any]]]:
    """Expand files/directories into loaded recordings (sorted by path)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    return [(path, load_recording(path)) for path in files]


def _io(counts: Dict[str, Any]) -> int:
    return int(counts.get("page_reads", 0)) + int(counts.get("page_writes", 0))


def _children_of_root(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    spans = data["spans"]
    root_id = spans[0]["id"] if spans else None
    return [span for span in spans if span["parent"] == root_id]


def _self_seconds(data: Dict[str, Any]) -> Dict[int, float]:
    """Exclusive seconds per span id (inclusive minus children)."""
    child_seconds: Dict[int, float] = {}
    for span in data["spans"]:
        if span["parent"] is not None:
            child_seconds[span["parent"]] = (
                child_seconds.get(span["parent"], 0.0) + span["seconds"]
            )
    return {
        span["id"]: span["seconds"] - child_seconds.get(span["id"], 0.0)
        for span in data["spans"]
    }


# ----------------------------------------------------------------------
# Aggregations
# ----------------------------------------------------------------------
def phase_rows(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Top-level phases aggregated by name, in first-seen order.

    Appends a synthetic ``maintenance (per update)`` row amortizing the
    tick/update/expire phases over the number of update calls, when any
    updates were recorded.
    """
    groups: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    for span in _children_of_root(data):
        row = groups.setdefault(
            span["name"],
            {"phase": span["name"], "calls": 0, "seconds": 0.0,
             **{key: 0 for key in COUNTER_KEYS}},
        )
        row["calls"] += span["calls"]
        row["seconds"] += span["seconds"]
        for key in COUNTER_KEYS:
            row[key] += int(span["total"].get(key, 0))
    rows = list(groups.values())
    for row in rows:
        row["io"] = row["page_reads"] + row["page_writes"]

    update_calls = sum(
        row["calls"] for row in rows if row["phase"].endswith(".update")
    )
    if update_calls:
        maintenance = {
            "phase": "maintenance (per update)", "calls": update_calls,
            "seconds": 0.0, **{key: 0 for key in COUNTER_KEYS},
        }
        for row in rows:
            if row["phase"].rsplit(".", 1)[-1] in ("tick", "update", "expire"):
                maintenance["seconds"] += row["seconds"]
                for key in COUNTER_KEYS:
                    maintenance[key] += row[key]
        for key in COUNTER_KEYS:
            maintenance[key] = int(maintenance[key] / update_calls)
        maintenance["seconds"] /= update_calls
        maintenance["io"] = maintenance["page_reads"] + maintenance["page_writes"]
        rows.append(maintenance)
    return rows


def component_rows(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every span name aggregated with exclusive counters and seconds."""
    self_seconds = _self_seconds(data)
    groups: Dict[str, Dict[str, Any]] = {}
    for span in data["spans"]:
        row = groups.setdefault(
            span["name"],
            {"component": span["name"], "calls": 0, "seconds": 0.0,
             "extra": {}, **{key: 0 for key in COUNTER_KEYS}},
        )
        row["calls"] += span["calls"]
        row["seconds"] += self_seconds[span["id"]]
        for key, value in span["self"].items():
            if key in COUNTER_KEYS:
                row[key] += int(value)
            else:
                row["extra"][key] = row["extra"].get(key, 0) + value
    rows = sorted(
        groups.values(),
        key=lambda row: (row["pair_tests"], row["seconds"]),
        reverse=True,
    )
    for row in rows:
        row["io"] = row["page_reads"] + row["page_writes"]
    return rows


def timeline_rows(data: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-tick rows: phase spans grouped by their ``t`` tag."""
    groups: "OrderedDict[Any, Dict[str, Any]]" = OrderedDict()
    for span in _children_of_root(data):
        t = span["tags"].get("t")
        if t is None:
            continue
        row = groups.setdefault(
            t,
            {"t": t, "updates": 0, "seconds": 0.0,
             **{key: 0 for key in COUNTER_KEYS}},
        )
        if span["name"].endswith(".update"):
            row["updates"] += span["calls"]
        row["seconds"] += span["seconds"]
        for key in COUNTER_KEYS:
            row[key] += int(span["total"].get(key, 0))
    rows = sorted(groups.values(), key=lambda row: row["t"])
    for row in rows:
        row["io"] = row["page_reads"] + row["page_writes"]
    return rows


def figure_tables(
    recordings: Sequence[Tuple[Path, Dict[str, Any]]]
) -> "OrderedDict[str, List[Dict[str, Any]]]":
    """Group recordings carrying figure metadata into table rows."""
    tables: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
    for _path, data in recordings:
        meta = data.get("meta", {})
        if "figure" not in meta:
            continue
        totals = data.get("totals", {})
        tables.setdefault(str(meta["figure"]), []).append({
            "series": str(meta.get("series", "?")),
            "x": meta.get("x", "?"),
            "io": _io(totals),
            "pair_tests": int(totals.get("pair_tests", 0)),
            "seconds": float(data.get("seconds", 0.0)),
        })
    for rows in tables.values():
        rows.sort(key=lambda row: (row["series"], _x_key(row["x"])))
    return tables


def _x_key(x: Any) -> Tuple[int, Any]:
    """Sort numeric x-values numerically, everything else lexically."""
    if isinstance(x, (int, float)) and not isinstance(x, bool):
        return (0, x)
    return (1, str(x))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    return " ".join(f"{str(cell):>{width}s}" for cell, width in zip(cells, widths))


def _render_table(
    write: Write, title: str, header: Sequence[str],
    rows: Iterable[Sequence[object]], widths: Sequence[int],
) -> None:
    write("")
    write(f"--- {title} ---")
    write(_fmt_row(header, widths))
    for row in rows:
        write(_fmt_row(row, widths))


def render_report(
    recordings: Sequence[Tuple[Path, Dict[str, Any]]],
    write: Write,
    sections: Sequence[str] = ("figures", "phases", "components", "timeline"),
) -> None:
    """Print the selected sections for the loaded recordings."""
    if "figures" in sections:
        for figure, rows in figure_tables(recordings).items():
            _render_table(
                write, figure,
                ["series", "x", "I/O", "pair tests", "CPU (s)"],
                [
                    [r["series"], r["x"], r["io"], r["pair_tests"],
                     f"{r['seconds']:.3f}"]
                    for r in rows
                ],
                [24, 12, 10, 12, 10],
            )
    per_file = [s for s in sections if s in ("phases", "components", "timeline")]
    if not per_file:
        return
    for path, data in recordings:
        write("")
        write(f"=== {path} ===")
        meta = data.get("meta", {})
        if meta:
            write("meta: " + json.dumps(meta, sort_keys=True))
        totals = data.get("totals", {})
        write(
            f"totals: io={_io(totals)} "
            f"pair_tests={int(totals.get('pair_tests', 0))} "
            f"node_visits={int(totals.get('node_visits', 0))} "
            f"seconds={float(data.get('seconds', 0.0)):.3f}"
        )
        if "phases" in per_file:
            _render_table(
                write, "phases",
                ["phase", "calls", "I/O", "pair tests", "node visits", "CPU (s)"],
                [
                    [r["phase"], r["calls"], r["io"], r["pair_tests"],
                     r["node_visits"], f"{r['seconds']:.3f}"]
                    for r in phase_rows(data)
                ],
                [26, 8, 10, 12, 12, 10],
            )
        if "components" in per_file:
            _render_table(
                write, "components (exclusive)",
                ["component", "calls", "I/O", "pair tests", "node visits",
                 "self CPU (s)"],
                [
                    [r["component"], r["calls"], r["io"], r["pair_tests"],
                     r["node_visits"], f"{r['seconds']:.3f}"]
                    for r in component_rows(data)
                ],
                [26, 8, 10, 12, 12, 12],
            )
        if "timeline" in per_file:
            rows = timeline_rows(data)
            if rows:
                _render_table(
                    write, "timeline",
                    ["t", "updates", "I/O", "pair tests", "node visits",
                     "CPU (s)"],
                    [
                        [f"{r['t']:g}", r["updates"], r["io"], r["pair_tests"],
                         r["node_visits"], f"{r['seconds']:.3f}"]
                        for r in rows
                    ],
                    [10, 8, 10, 12, 12, 10],
                )


def write_csv(data: Dict[str, Any], path: "str | Path") -> Path:
    """Flatten one loaded recording's spans to CSV (one row per span)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    keys = sorted(
        {key for span in data["spans"] for key in span["total"]}
        | set(COUNTER_KEYS)
    )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["id", "parent", "name", "tags", "calls", "seconds"]
            + [f"self_{k}" for k in keys] + [f"total_{k}" for k in keys]
        )
        for span in data["spans"]:
            writer.writerow(
                [
                    span["id"], span["parent"], span["name"],
                    json.dumps(span["tags"], sort_keys=True),
                    span["calls"], f"{span['seconds']:.6f}",
                ]
                + [span["self"].get(k, 0) for k in keys]
                + [span["total"].get(k, 0) for k in keys]
            )
    return path
