"""Phase-scoped trace spans over the :class:`~repro.metrics.CostTracker`.

The paper's §VI evaluation is an exercise in cost *attribution*: I/O and
response time split between the initial join and per-update maintenance,
and — inside a tick — between TPR descent, exact pair tests and MTB
bucket scans.  :class:`ObsRecorder` makes that attribution first-class:

* a recorder owns a tree of :class:`Span` objects and a stack of the
  currently open ones (the root span is always open);
* attached to a :class:`~repro.metrics.CostTracker` (via
  :meth:`ObsRecorder.attach`), every counter increment lands on the
  **innermost open span** in addition to the tracker's global total;
* span totals roll up bottom-up, so the root's rollup is bit-exact
  equal to the tracker's counter deltas since :meth:`attach` — the
  recorder never changes what is counted, only *where* it is filed;
* every span carries a monotonic timer (:func:`~repro.metrics.
  monotonic_clock`), giving inclusive seconds per span and exclusive
  seconds after subtracting child time.

Two kinds of spans keep recordings compact:

* :meth:`ObsRecorder.span` opens a **distinct** child per call — used
  for phases (``engine.tick`` tagged with its timestamp forms the
  per-tick timeline);
* :meth:`ObsRecorder.aspan` opens an **aggregated** child: all calls
  with the same name and tags under the same parent accumulate into one
  span with a call count — used for hot call sites (tree descents, join
  runs) where one span per call would dwarf the recording.

The disabled path stays free: code instruments itself through
:func:`tracker_span`, which returns a shared no-op context manager when
no recorder is attached.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..metrics import COUNTER_KEYS, CostTracker, monotonic_clock

__all__ = ["Span", "ObsRecorder", "tracker_span", "NULL_SPAN"]

#: Current on-disk format tag of exported recordings.
FORMAT = "repro.obs/1"


class Span:
    """One node of the span tree: a named region with counters and a timer.

    ``counts`` holds the span's *exclusive* (self) counters — increments
    that arrived while this span was innermost.  :meth:`total` rolls up
    the subtree.  ``seconds`` is inclusive wall time over all ``calls``
    entries of the span.
    """

    __slots__ = (
        "sid", "name", "parent", "tags", "counts", "children",
        "seconds", "calls", "_t0", "_open", "_agg",
    )

    def __init__(
        self,
        sid: int,
        name: str,
        parent: Optional["Span"],
        tags: Optional[Dict[str, Any]] = None,
    ):
        self.sid = sid
        self.name = name
        self.parent = parent
        self.tags: Dict[str, Any] = tags if tags is not None else {}
        self.counts: Dict[str, Union[int, float]] = {}
        self.children: List[Span] = []
        self.seconds = 0.0
        self.calls = 0
        self._t0 = 0.0
        self._open = 0

    def count(self, key: str, n: Union[int, float] = 1) -> None:
        """Add ``n`` to this span's exclusive counter ``key``."""
        counts = self.counts
        counts[key] = counts.get(key, 0) + n

    def total(self) -> Dict[str, Union[int, float]]:
        """Rolled-up counters of this span's whole subtree."""
        total: Dict[str, Union[int, float]] = dict(self.counts)
        for child in self.children:
            for key, value in child.total().items():
                total[key] = total.get(key, 0) + value
        return total

    def self_seconds(self) -> float:
        """Exclusive wall time: inclusive minus the children's inclusive."""
        return self.seconds - sum(child.seconds for child in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and its subtree, depth-first in creation order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, calls={self.calls}, "
            f"seconds={self.seconds:.4f}, counts={self.counts})"
        )


class _SpanContext:
    """Reusable enter/exit plumbing for one span activation.

    Nest-safe for aggregated spans: if the span is already open
    (recursion through the same call site), only the outermost
    activation accumulates elapsed time.
    """

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "ObsRecorder", span: Span):
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span.calls += 1
        if span._open == 0:
            span._t0 = monotonic_clock()
        span._open += 1
        self._recorder._stack.append(span)
        return span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        stack = self._recorder._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (overlapping exits)
            stack.remove(span)
        span._open -= 1
        if span._open == 0:
            span.seconds += monotonic_clock() - span._t0


class _NullSpan:
    """Shared no-op context manager — the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()


def tracker_span(tracker: CostTracker, name: str, **tags: Any):
    """An aggregated span on ``tracker``'s recorder, or a no-op.

    The instrumentation idiom for hot call sites::

        with tracker_span(tracker, "tpr.search"):
            ...

    costs one attribute test when no recorder is attached.
    """
    obs = tracker.obs
    if obs is None:
        return NULL_SPAN
    return obs.aspan(name, **tags)


class ObsRecorder:
    """A recording: span tree, open-span stack, export.

    Parameters
    ----------
    label:
        Name of the root span (shows up as the recording's top row).
    meta:
        Free-form metadata stored with every export (figure/series/x
        tags, workload parameters, ...).
    """

    def __init__(self, label: str = "run", meta: Optional[Dict[str, Any]] = None):
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self._next_sid = 0
        self.root = self._new_span(label, None, None)
        self.root.calls = 1
        self.root._open = 1
        self.root._t0 = monotonic_clock()
        self._stack: List[Span] = [self.root]
        self.trackers: List[CostTracker] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def attach(self, tracker: CostTracker) -> None:
        """Start receiving ``tracker``'s increments (innermost-span filing)."""
        tracker.attach_obs(self)
        if tracker not in self.trackers:
            self.trackers.append(tracker)

    def detach(self) -> None:
        """Stop receiving increments from every attached tracker."""
        for tracker in self.trackers:
            tracker.attach_obs(None)
        self.trackers.clear()

    def count(self, key: str, n: Union[int, float] = 1) -> None:
        """File ``n`` of counter ``key`` on the innermost open span."""
        counts = self._stack[-1].counts
        counts[key] = counts.get(key, 0) + n

    def span(self, name: str, **tags: Any) -> _SpanContext:
        """Open a new, distinct child span of the innermost open span."""
        parent = self._stack[-1]
        span = self._new_span(name, parent, tags or None)
        parent.children.append(span)
        return _SpanContext(self, span)

    def aspan(self, name: str, **tags: Any) -> _SpanContext:
        """Open an aggregated child span (per parent, name and tags).

        Repeated calls under the same parent accumulate into one span
        whose ``calls`` counts the activations.
        """
        parent = self._stack[-1]
        key = (name, tuple(sorted(tags.items()))) if tags else name
        agg = getattr(parent, "_agg", None)
        if agg is None:
            agg = parent._agg = {}
        span = agg.get(key)
        if span is None:
            span = self._new_span(name, parent, tags or None)
            parent.children.append(span)
            agg[key] = span
        return _SpanContext(self, span)

    def _new_span(
        self, name: str, parent: Optional[Span], tags: Optional[Dict[str, Any]]
    ) -> Span:
        span = Span(self._next_sid, name, parent, tags)
        span._agg = None
        self._next_sid += 1
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span:
        """The innermost open span (the root when no phase is open)."""
        return self._stack[-1]

    def root_totals(self) -> Dict[str, Union[int, float]]:
        """Rolled-up counters of the whole recording.

        While attached from the start of a run, these are bit-exact
        equal to the tracker's global counters (the attribution contract
        tested by ``tests/obs/test_attribution.py``).
        """
        return self.root.total()

    def elapsed(self) -> float:
        """Wall seconds since the recording started."""
        return monotonic_clock() - self.root._t0

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in creation order."""
        return [span for span in self.root.walk() if span.name == name]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The whole recording as a JSON-ready dict (root still usable)."""
        root_seconds = self.root.seconds
        if self.root._open:
            root_seconds += monotonic_clock() - self.root._t0
        merged_meta = dict(self.meta)
        if meta:
            merged_meta.update(meta)
        spans = []
        for span in self.root.walk():
            seconds = span.seconds
            if span._open:  # still open at export time: include elapsed
                seconds += monotonic_clock() - span._t0
            spans.append({
                "id": span.sid,
                "parent": span.parent.sid if span.parent is not None else None,
                "name": span.name,
                "tags": span.tags,
                "calls": span.calls,
                "seconds": seconds,
                "self": span.counts,
                "total": span.total(),
            })
        return {
            "format": FORMAT,
            "meta": merged_meta,
            "seconds": root_seconds,
            "totals": self.root.total(),
            "spans": spans,
        }

    def export_json(
        self, path: Union[str, Path], meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Write the recording to ``path`` as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(meta), indent=1, sort_keys=True))
        return path

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per span (flat, parent ids) to ``path`` as CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = self.to_dict()
        keys = sorted(
            {key for span in data["spans"] for key in span["total"]}
            | set(COUNTER_KEYS)
        )
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["id", "parent", "name", "tags", "calls", "seconds"]
                + [f"self_{k}" for k in keys] + [f"total_{k}" for k in keys]
            )
            for span in data["spans"]:
                writer.writerow(
                    [
                        span["id"], span["parent"], span["name"],
                        json.dumps(span["tags"], sort_keys=True),
                        span["calls"], f"{span['seconds']:.6f}",
                    ]
                    + [span["self"].get(k, 0) for k in keys]
                    + [span["total"].get(k, 0) for k in keys]
                )
        return path

    def __repr__(self) -> str:
        return (
            f"ObsRecorder(spans={self._next_sid}, "
            f"open={[s.name for s in self._stack]})"
        )
