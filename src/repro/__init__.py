"""repro — Continuous Intersection Joins Over Moving Objects (ICDE 2008).

A from-scratch reproduction of Zhang, Lin, Ramamohanarao & Bertino,
*Continuous Intersection Joins Over Moving Objects*, ICDE 2008.

The package provides:

* a kinetic-geometry substrate (moving rectangles, exact intersection
  intervals, plane sweep) — :mod:`repro.geometry`;
* a simulated disk with pages and an LRU buffer — :mod:`repro.storage`;
* TPR-tree, TPR*-tree and MTB-tree indexes — :mod:`repro.index`;
* the join algorithms NaiveJoin, TP/ETP-Join, TC-Join, ImprovedJoin and
  MTB-Join — :mod:`repro.join`;
* a continuous-query engine with update streams — :mod:`repro.core`;
* the paper's workload generators — :mod:`repro.workloads`;
* §V extensions (TC window / kNN queries) and an exact-shape refinement
  step — :mod:`repro.queries`, :mod:`repro.refine`.

Quick start::

    from repro import ContinuousJoinEngine, uniform_workload

    scenario = uniform_workload(n_objects=200, seed=7)
    engine = ContinuousJoinEngine.create(scenario.set_a, scenario.set_b,
                                         algorithm="mtb")
    engine.run_initial_join()
    for pair in sorted(engine.result_at(engine.now)):
        print(pair)
"""

from .geometry import (
    INF,
    Box,
    KineticBox,
    TimeInterval,
    intersection_interval,
)
from .metrics import CostSnapshot, CostTracker
from .objects import MovingObject

__version__ = "1.0.0"

__all__ = [
    "INF",
    "Box",
    "KineticBox",
    "TimeInterval",
    "intersection_interval",
    "MovingObject",
    "CostTracker",
    "CostSnapshot",
    "ContinuousJoinEngine",
    "JoinConfig",
    "uniform_workload",
    "gaussian_workload",
    "battlefield_workload",
]


def __getattr__(name: str):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the heavier subpackages at the top level.

    Keeps ``import repro`` cheap while still allowing
    ``repro.ContinuousJoinEngine`` etc. in examples and docs.
    """
    if name in ("ContinuousJoinEngine", "JoinConfig"):
        from . import core

        return getattr(core, name)
    if name in ("uniform_workload", "gaussian_workload", "battlefield_workload"):
        from . import workloads

        return getattr(workloads, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
