"""ASCII visualization of scenarios and join answers.

Rendering a timestamp of a moving-object scenario as a character grid
is invaluable for debugging workloads and eyeballing join answers —
especially in a terminal-only environment.  Used by the CLI's ``show``
subcommand.

Legend: ``a`` marks dataset-A objects, ``b`` dataset-B objects, ``#``
cells holding both, and ``A``/``B``/``@`` the corresponding cells when
at least one resident object is part of a currently intersecting pair.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from .objects import MovingObject

__all__ = ["render_frame", "render_legend"]

PairKey = Tuple[int, int]


def render_frame(
    objects_a: Iterable[MovingObject],
    objects_b: Iterable[MovingObject],
    t: float,
    space_size: float = 1000.0,
    width: int = 72,
    height: int = 24,
    pairs: Optional[Set[PairKey]] = None,
) -> str:
    """A ``width × height`` character rendering of the scene at ``t``.

    ``pairs`` (as returned by an engine's ``result_at``) highlights the
    objects currently in the join answer.

    >>> from repro.workloads import uniform_workload
    >>> sc = uniform_workload(20, seed=1)
    >>> frame = render_frame(sc.set_a, sc.set_b, 0.0, width=40, height=10)
    >>> len(frame.splitlines())
    10
    """
    if width < 2 or height < 2:
        raise ValueError("frame must be at least 2x2")
    hot: Set[int] = set()
    if pairs:
        for a_oid, b_oid in pairs:
            hot.add(a_oid)
            hot.add(b_oid)

    # cell value bitmask: 1 = A present, 2 = B present, 4 = any hot.
    cells: List[List[int]] = [[0] * width for _ in range(height)]

    def mark(objects: Iterable[MovingObject], bit: int) -> None:
        for obj in objects:
            cx, cy = obj.mbr_at(t).center
            gx = min(width - 1, max(0, int(cx / space_size * width)))
            # Row 0 at the top = highest y.
            gy = min(height - 1, max(0, int((1 - cy / space_size) * height)))
            cells[gy][gx] |= bit
            if obj.oid in hot:
                cells[gy][gx] |= 4

    mark(objects_a, 1)
    mark(objects_b, 2)

    plain = {1: "a", 2: "b", 3: "#"}
    highlighted = {1: "A", 2: "B", 3: "@"}
    rows = []
    for row in cells:
        chars = []
        for value in row:
            if value == 0:
                chars.append(".")
            elif value & 4:
                chars.append(highlighted[value & 3])
            else:
                chars.append(plain[value & 3])
        rows.append("".join(chars))
    return "\n".join(rows)


def render_legend() -> str:
    """The legend line matching :func:`render_frame`'s symbols."""
    return (
        "a/b: dataset A/B object   #: both   "
        "A/B/@: object in a currently intersecting pair"
    )
