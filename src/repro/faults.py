"""Deterministic fault injection for the sharded execution layer.

Chaos testing the supervisor (:mod:`repro.par.supervisor`) needs
*reproducible* failures: a worker that dies exactly at tick 3, a reply
that arrives after the round-trip deadline, a result that cannot be
pickled.  This module is the single vocabulary for those injected
faults, shared by the worker loop (which arms worker-side faults), the
supervisor (which arms parent-side faults), and the chaos test matrix.

A *fault plan* is a semicolon-separated spec string, each entry
``kind`` or ``kind:key=value,key=value``::

    kill:op=tick,nth=2          die on the 2nd tick command
    hang:op=ops                 sleep "forever" before the 1st ops command
    delay:op=tick,seconds=0.5   stall half a second, then proceed
    error:op=prune              raise inside command dispatch
    badresult:op=store_dump     return an unpicklable result
    drop:nth=1                  parent side: discard one good reply

Recognised keys: ``op`` (command op to match; omitted = any command),
``shard`` (shard id filter), ``nth`` (1-based count of *matching*
commands before firing, default 1) and ``seconds`` (stall length for
``delay``/``hang``).  Every fault fires **at most once**; respawned
workers are always armed with the empty plan, so an injected crash
cannot re-fire during checkpoint/replay recovery and recovery itself is
deterministic.

Plans come from ``JoinConfig(faults="…")`` or the ``REPRO_FAULTS``
environment variable (the config wins; workers inherit the spec
explicitly through :func:`repro.par.worker.serve`, not through the
environment snapshot).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultInjected",
    "Unpicklable",
    "WORKER_KINDS",
    "PARENT_KINDS",
    "FAULTS_ENV",
]

#: Environment variable consulted when no explicit spec is given.
FAULTS_ENV = "REPRO_FAULTS"

#: Kinds acted on inside the worker process, before/around dispatch.
WORKER_KINDS = ("kill", "hang", "delay", "error", "badresult")
#: Kinds acted on in the supervisor, around the pipe round-trip.
PARENT_KINDS = ("drop",)

#: ``hang`` is an unbounded stall; long enough that only the
#: supervisor's timeout (or the test watchdog) can end the wait.
HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """Raised by the ``error`` fault kind inside command dispatch."""


class Unpicklable:
    """A value that defeats pickling (the ``badresult`` payload)."""

    def __reduce__(self):
        raise TypeError("injected unpicklable result")


@dataclass
class Fault:
    """One armed fault: what to do, and which command triggers it."""

    kind: str
    op: Optional[str] = None
    shard: Optional[int] = None
    nth: int = 1
    seconds: Optional[float] = None
    #: Matching commands seen so far (mutated as the plan observes).
    seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in WORKER_KINDS + PARENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("nth must be >= 1")

    @property
    def stall(self) -> float:
        if self.seconds is not None:
            return self.seconds
        return HANG_SECONDS if self.kind == "hang" else 0.05

    def matches(self, op: str, shard: Optional[int]) -> bool:
        """Observe one command; True when this fault should fire on it."""
        if self.fired:
            return False
        if self.op is not None and op != self.op:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        self.seen += 1
        if self.seen < self.nth:
            return False
        self.fired = True
        return True


def _known_ops() -> frozenset:
    """Op names an ``op=`` filter may name (lazy: the protocol module
    sits below :mod:`repro.par`, which imports this module at package
    init — resolving it at parse time avoids the cycle)."""
    from .par.protocol import known_fault_ops

    return known_fault_ops()


def _parse_entry(entry: str) -> Fault:
    kind, _, rest = entry.partition(":")
    kwargs = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or key not in ("op", "shard", "nth", "seconds"):
                raise ValueError(f"bad fault field {pair!r} in {entry!r}")
            if key == "op":
                op = value.strip()
                if op not in _known_ops():
                    raise ValueError(
                        f"unknown command op {op!r} in fault entry {entry!r}"
                    )
                kwargs[key] = op
            elif key == "seconds":
                kwargs[key] = float(value)
            else:
                kwargs[key] = int(value)
    return Fault(kind.strip(), **kwargs)


class FaultPlan:
    """An ordered set of armed faults plus the hooks that consult it.

    The worker loop calls :meth:`before_command` per command and
    :meth:`poison_results` per batch; the supervisor calls
    :meth:`should_drop` per received reply.  A plan with no faults is
    the common case and every hook is O(1) then.
    """

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Build a plan from a spec string (``None``/empty = no faults)."""
        if not spec:
            return cls()
        return cls([_parse_entry(e) for e in spec.split(";") if e.strip()])

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan named by ``REPRO_FAULTS`` (empty when unset)."""
        return cls.parse(os.environ.get(FAULTS_ENV, ""))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"

    # ------------------------------------------------------------------
    # Worker-side hooks
    # ------------------------------------------------------------------
    def before_command(self, cmd: Tuple) -> None:
        """Fire kill/hang/delay/error faults triggered by ``cmd``.

        ``kill`` exits the process without cleanup (``os._exit``) —
        the pipe breaks mid-batch exactly like a hard crash.  ``hang``
        and ``delay`` stall dispatch; ``error`` raises
        :class:`FaultInjected` so the serve loop's structured
        ``("error", …)`` reply path is exercised.
        """
        op, sid = cmd[0], cmd[1] if len(cmd) > 1 else None
        for fault in self.faults:
            if fault.kind in ("kill", "hang", "delay", "error") and fault.matches(
                op, sid
            ):
                if fault.kind == "kill":
                    os._exit(17)
                if fault.kind == "error":
                    raise FaultInjected(f"injected error on {op!r} (shard {sid})")
                time.sleep(fault.stall)

    def poison_results(self, cmds: Sequence[Tuple], results: List) -> None:
        """Replace matching commands' results with unpicklable values."""
        for fault in self.faults:
            if fault.kind != "badresult":
                continue
            for i, cmd in enumerate(cmds):
                op, sid = cmd[0], cmd[1] if len(cmd) > 1 else None
                if fault.matches(op, sid):
                    results[i] = Unpicklable()
                    break

    # ------------------------------------------------------------------
    # Parent-side hooks
    # ------------------------------------------------------------------
    def should_drop(self, slot: int) -> bool:
        """True when the supervisor must discard one received reply.

        ``shard`` in a ``drop`` entry filters on the *slot* index (the
        reply is a whole slot's batch, not a single shard's).
        """
        for fault in self.faults:
            if fault.kind == "drop" and fault.matches("reply", slot):
                return True
        return False
