"""Continuous window queries with TC processing (paper §V).

A continuous window query reports, at every timestamp, the objects whose
MBRs intersect a (possibly moving) query window.  The paper points out
this "is essentially computing the intersection between objects and
query windows", so the whole TC machinery transfers:

* a naive engine would compute each object–window intersection for
  ``[t_c, ∞)``;
* Theorem 1 cuts the window to ``[t_c, t_c + T_M]`` — the object updates
  again before that, and the query–object pair is then recomputed;
* indexing the objects in an MTB-tree gives the Theorem-2 per-bucket
  horizon ``[t_c, t_eb + T_M]`` for the initial evaluation, exactly as
  in MTB-Join.

Query windows are *queries*, not data: they never "update", so only
object updates invalidate results.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from ..core.config import JoinConfig
from ..core.result import JoinResultStore
from ..geometry import INF, KineticBox, intersection_interval
from ..index import MTBTree, TreeStorage
from ..join import JoinTriple
from ..metrics import CostTracker
from ..objects import MovingObject

__all__ = ["ContinuousWindowEngine"]


class ContinuousWindowEngine:
    """Maintains the answers of many continuous window queries at once.

    ``windows`` maps query id → kinetic box (static windows are kinetic
    boxes with zero velocity).  Query ids and object ids must be
    disjoint.  Results are ``(query_id, oid)`` pairs.
    """

    def __init__(
        self,
        objects: Iterable[MovingObject],
        windows: Mapping[int, KineticBox],
        config: Optional[JoinConfig] = None,
        start_time: float = 0.0,
        time_constrained: bool = True,
    ):
        self.config = config if config is not None else JoinConfig()
        self.now = float(start_time)
        #: ``False`` evaluates over ``[t, ∞)`` — the naive §V baseline
        #: used by the extension benchmark; answers are identical, cost
        #: is not.
        self.time_constrained = time_constrained
        self.windows: Dict[int, KineticBox] = dict(windows)
        self.objects: Dict[int, MovingObject] = {o.oid: o for o in objects}
        clash = self.windows.keys() & self.objects.keys()
        if clash:
            raise ValueError(f"query ids collide with object ids: {sorted(clash)[:5]}")
        self.storage = TreeStorage(
            page_size=self.config.page_size, buffer_pages=self.config.buffer_pages
        )
        self.tracker: CostTracker = self.storage.tracker
        self.forest = MTBTree(
            t_m=self.config.t_m,
            storage=self.storage,
            buckets_per_tm=self.config.buckets_per_tm,
            node_capacity=self.config.node_capacity,
            use_kernels=self.config.use_kernels,
        )
        for obj in self.objects.values():
            self.forest.insert(obj, self.now)
        self.store = JoinResultStore()
        self._evaluated = False

    # ------------------------------------------------------------------
    def evaluate_initial(self) -> None:
        """Compute the initial answers (Theorem-2 windows per bucket)."""
        for qid, window in self.windows.items():
            for _key, t_eb, tree in self.forest.trees():
                if self.time_constrained:
                    horizon_end = t_eb + self.config.t_m
                else:
                    horizon_end = INF
                for oid, interval in tree.search(window, self.now, horizon_end):
                    self.store.add(JoinTriple(qid, oid, interval))
        self._evaluated = True

    def tick(self, t: float) -> None:
        """Advance the engine clock (monotone)."""
        if t < self.now:
            raise ValueError("time went backwards")
        self.now = t

    def apply_update(self, obj: MovingObject) -> None:
        """Process one object update at the current timestamp.

        Theorem 1: re-evaluate the object against every window over
        ``[t, t + T_M]`` only.
        """
        if obj.oid not in self.objects:
            raise KeyError(f"unknown object {obj.oid}")
        self.objects[obj.oid] = obj
        t = self.now
        self.forest.update(obj, t)
        self.store.remove_object(obj.oid)
        t_end = t + self.config.t_m if self.time_constrained else INF
        for qid, window in self.windows.items():
            self.tracker.count_pair_tests()
            interval = intersection_interval(window, obj.kbox, t, t_end)
            if interval is not None:
                self.store.add(JoinTriple(qid, obj.oid, interval))

    def add_window(self, qid: int, window: KineticBox) -> None:
        """Register a new continuous window query at the current time."""
        if qid in self.windows or qid in self.objects:
            raise ValueError(f"id {qid} already in use")
        self.windows[qid] = window
        if self._evaluated:
            for _key, t_eb, tree in self.forest.trees():
                horizon_end = t_eb + self.config.t_m
                for oid, interval in tree.search(window, self.now, horizon_end):
                    self.store.add(JoinTriple(qid, oid, interval))

    def remove_window(self, qid: int) -> None:
        """Drop a continuous window query and its stored answers."""
        del self.windows[qid]
        self.store.remove_object(qid)

    # ------------------------------------------------------------------
    def result_at(self, t: Optional[float] = None) -> Set[Tuple[int, int]]:
        """All ``(query_id, oid)`` pairs intersecting at time ``t``."""
        if t is None:
            t = self.now
        return self.store.pairs_at(t)

    def result_for(self, qid: int, t: Optional[float] = None) -> Set[int]:
        """Objects currently inside one query window."""
        if t is None:
            t = self.now
        return {b for (a, b) in self.store.pairs_at(t) if a == qid}
