"""Continuous k-nearest-neighbour queries with TC processing (paper §V).

The paper notes the continuous kNN algorithms of Benetis et al. compute
candidates for a time interval ``[t_s, t_e]`` while traversing a
TPR-tree, and that TC processing applies directly: "if ``t_e > t_s +
T_M``, we can … reduce the time interval to ``[t_s, t_s + T_M]``".

This module implements that filter-and-refine scheme:

* :func:`knn_at` — exact k nearest neighbours of a moving query point at
  one timestamp, best-first over the TPR-tree with node min-distance
  bounds;
* :class:`ContinuousKNNEngine` — maintains, per Theorem-1 window
  ``[t, t + T_M]``, a *candidate set* guaranteed to contain the kNN at
  every timestamp in the window.  The candidate radius uses the exact
  kth distance at the window endpoints plus a Lipschitz safety margin:
  every object–query distance changes at most ``v_obj + v_query`` per
  time unit, so the kth-NN distance over the window is bounded by
  ``max(d_k(t_0), d_k(t_1)) + L·(t_1 − t_0)/2``.  Snapshots then refine
  within the candidates only.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

from ..core.config import JoinConfig
from ..geometry import Box, KineticBox
from ..index import MTBTree, TPRTree, TreeStorage
from ..objects import MovingObject

__all__ = ["knn_at", "ContinuousKNNEngine"]


def knn_at(
    tree: TPRTree, qx: float, qy: float, k: int, t: float
) -> List[Tuple[float, int]]:
    """Exact ``k`` nearest objects to point ``(qx, qy)`` at time ``t``.

    Best-first search: nodes are expanded in order of the minimum
    distance from the query point to their bound evaluated at ``t``.
    Returns ascending ``(distance, oid)`` pairs (fewer than ``k`` when
    the tree is smaller).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    point = Box.point(qx, qy)
    heap: List[Tuple[float, int, bool, int]] = []
    counter = 0
    root = tree.root_node()
    heap.append((0.0, counter, False, tree.root_id))
    results: List[Tuple[float, int]] = []
    del root
    while heap:
        dist, _, is_object, ref = heapq.heappop(heap)
        if is_object:
            results.append((dist, ref))
            if len(results) == k:
                return results
            continue
        node = tree.read_node(ref)
        for entry in node.entries:
            entry_dist = entry.kbox.at(t).min_distance(point)
            counter += 1
            heapq.heappush(heap, (entry_dist, counter, node.is_leaf, entry.ref))
    return results


class ContinuousKNNEngine:
    """TC-processed continuous kNN over one MTB-indexed dataset.

    The query point moves linearly (``KineticBox`` of zero extent).  On
    every object update — and whenever the Theorem-1 window expires —
    the candidate set is rebuilt for the next ``[t, t + T_M]`` window;
    snapshots only ever touch candidates.
    """

    def __init__(
        self,
        objects: List[MovingObject],
        query: KineticBox,
        k: int,
        config: Optional[JoinConfig] = None,
        max_speed: float = 5.0,
        start_time: float = 0.0,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if query.mbr.area != 0.0:
            raise ValueError("query must be a moving point (zero extent)")
        self.config = config if config is not None else JoinConfig()
        self.k = k
        self.query = query
        self.max_speed = float(max_speed)
        self.now = float(start_time)
        self.storage = TreeStorage(
            page_size=self.config.page_size, buffer_pages=self.config.buffer_pages
        )
        self.forest = MTBTree(
            t_m=self.config.t_m,
            storage=self.storage,
            buckets_per_tm=self.config.buckets_per_tm,
            node_capacity=self.config.node_capacity,
            use_kernels=self.config.use_kernels,
        )
        self.objects: Dict[int, MovingObject] = {}
        for obj in objects:
            self.objects[obj.oid] = obj
            self.forest.insert(obj, self.now)
        self._candidates: Set[int] = set()
        self._window_end = self.now
        self._refresh_candidates(self.now)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def tick(self, t: float) -> None:
        """Advance the clock, renewing the candidate window if expired."""
        if t < self.now:
            raise ValueError("time went backwards")
        self.now = t
        if t >= self._window_end:
            self._refresh_candidates(t)

    def apply_update(self, obj: MovingObject) -> None:
        """Process an object update at the current timestamp."""
        if obj.oid not in self.objects:
            raise KeyError(f"unknown object {obj.oid}")
        self.objects[obj.oid] = obj
        self.forest.update(obj, self.now)
        # Cheap incremental repair: the updated object may enter or
        # leave the candidate set; everything else is untouched.
        if self._in_candidate_region(obj, self.now):
            self._candidates.add(obj.oid)
        else:
            self._candidates.discard(obj.oid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def knn(self, t: Optional[float] = None) -> List[Tuple[float, int]]:
        """The exact kNN at time ``t`` (ascending ``(distance, oid)``)."""
        if t is None:
            t = self.now
        if not self.now <= t < self._window_end:
            if t < self.now:
                raise ValueError("kNN snapshots only answer the present")
            self._refresh_candidates(t)
        qx, qy = self.query.at(t).center
        point = Box.point(qx, qy)
        scored = sorted(
            (self.objects[oid].mbr_at(t).min_distance(point), oid)
            for oid in self._candidates
        )
        return scored[: self.k]

    @property
    def candidate_count(self) -> int:
        """Current filter-set size (diagnostics)."""
        return len(self._candidates)

    # ------------------------------------------------------------------
    def _refresh_candidates(self, t: float) -> None:
        """Rebuild the candidate set for the window ``[t, t + T_M]``."""
        t_end = t + self.config.t_m
        radius = self._safe_radius(t, t_end)
        self._candidates = set()
        region = self._query_region(radius)
        for _key, t_eb, tree in self.forest.trees():
            horizon_end = min(t_end, t_eb + self.config.t_m)
            if horizon_end <= t:
                continue
            for oid, _interval in tree.search(region, t, horizon_end):
                self._candidates.add(oid)
        self._window_end = t_end

    def _safe_radius(self, t0: float, t1: float) -> float:
        """Radius guaranteed to cover the kNN throughout ``[t0, t1]``."""
        d0 = self._exact_kth_distance(t0)
        d1 = self._exact_kth_distance(t1)
        lipschitz = self.max_speed + self._query_speed()
        return max(d0, d1) + lipschitz * (t1 - t0) / 2.0

    def _exact_kth_distance(self, t: float) -> float:
        """kth-NN distance at ``t`` via best-first search per bucket tree.

        Each bucket tree yields its own k best candidates; the global
        kth distance is the kth smallest of the merged lists.
        """
        qx, qy = self.query.at(t).center
        merged = []
        for _key, _end, tree in self.forest.trees():
            merged.extend(knn_at(tree, qx, qy, self.k, t))
        if not merged:
            return 0.0
        merged.sort()
        return merged[min(self.k, len(merged)) - 1][0]

    def _query_speed(self) -> float:
        vx, vy = self.query.vbr.x_lo, self.query.vbr.y_lo
        return math.hypot(vx, vy)

    def _query_region(self, radius: float) -> KineticBox:
        """The query point dilated by ``radius``, moving with the query."""
        qx, qy = self.query.at(self.now).center
        return KineticBox.rigid(
            Box(qx - radius, qx + radius, qy - radius, qy + radius),
            self.query.vbr.x_lo,
            self.query.vbr.y_lo,
            self.now,
        )

    def _in_candidate_region(self, obj: MovingObject, t: float) -> bool:
        radius = self._safe_radius(t, self._window_end)
        region = self._query_region(radius)
        from ..geometry import intersection_interval

        return (
            intersection_interval(region, obj.kbox, t, self._window_end) is not None
        )
