"""§V extensions: TC processing applied to other continuous queries."""

from .knn import ContinuousKNNEngine, knn_at
from .window import ContinuousWindowEngine

__all__ = ["ContinuousWindowEngine", "ContinuousKNNEngine", "knn_at"]
