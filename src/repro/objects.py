"""The moving-object model shared by indexes, joins and workloads.

A :class:`MovingObject` is the paper's unit of data (§II-A): a unique id,
an MBR at a reference time, and a rigid velocity.  The reference time is
the timestamp of the object's *last update*; the maximum update interval
``T_M`` guarantees the stored motion is never older than ``T_M``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .geometry import Box, KineticBox

__all__ = ["MovingObject"]


class MovingObject:
    """A rigid moving rectangle with an identity.

    ``oid`` must be unique across *both* joined datasets (the paper's
    ``A ∪ B``).  ``kbox.vbr`` is degenerate (a point in velocity space)
    because data objects translate rigidly; bounding velocity rectangles
    only appear in index nodes.

    >>> obj = MovingObject(7, Box(0, 1, 0, 1), 0.5, -0.25, t_ref=10.0)
    >>> obj.kbox.at(12.0)
    Box(1, 2, -0.5, 0.5)
    """

    __slots__ = ("oid", "kbox")

    def __init__(
        self, oid: int, mbr: Box, vx: float, vy: float, t_ref: float
    ):
        self.oid = int(oid)
        self.kbox = KineticBox.rigid(mbr, vx, vy, t_ref)

    # ------------------------------------------------------------------
    @property
    def t_ref(self) -> float:
        """Timestamp of the motion parameters (= last update time)."""
        return self.kbox.t_ref

    @property
    def velocity(self) -> Tuple[float, float]:
        """The rigid ``(vx, vy)`` velocity."""
        return (self.kbox.vbr.x_lo, self.kbox.vbr.y_lo)

    def mbr_at(self, t: float) -> Box:
        """The object's MBR at timestamp ``t``."""
        return self.kbox.at(t)

    def updated(
        self,
        t: float,
        mbr: Optional[Box] = None,
        vx: Optional[float] = None,
        vy: Optional[float] = None,
    ) -> "MovingObject":
        """A new version of this object as of an update at time ``t``.

        Unspecified parameters carry over: the MBR defaults to the
        extrapolated current position, the velocity to the old velocity.
        """
        old_vx, old_vy = self.velocity
        return MovingObject(
            self.oid,
            mbr if mbr is not None else self.mbr_at(t),
            vx if vx is not None else old_vx,
            vy if vy is not None else old_vy,
            t_ref=t,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MovingObject):
            return NotImplemented
        return self.oid == other.oid and self.kbox == other.kbox

    def __hash__(self) -> int:
        return hash((self.oid, self.kbox))

    def __repr__(self) -> str:
        vx, vy = self.velocity
        return (
            f"MovingObject(oid={self.oid}, mbr={self.kbox.mbr!r}, "
            f"v=({vx:g}, {vy:g}), t_ref={self.t_ref:g})"
        )
