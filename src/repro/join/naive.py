"""NaiveJoin: synchronous tree traversal over an explicit time window.

This is the paper's Figure 2 algorithm.  Two TPR-trees are traversed
top-down in lockstep; a pair of entries is pursued iff their kinetic
boxes intersect at some time in the processing window.  With the window
``[t_c, ∞)`` this *is* NaiveJoin; the TC-Join of §IV-B is the identical
traversal with the window cut to ``[t_u, t_u + T_M]`` (see
:mod:`repro.join.tc`).

The traversal handles trees of different heights (bucket trees in an
MTB forest routinely differ): when one side reaches its leaves first,
only the taller side keeps descending, with the leaf side's *node bound*
used for pruning.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry import INF, intersection_interval
from ..index import TPRTree
from ..index.node import Node
from ..metrics import CostTracker
from ..obs import tracker_span
from .types import JoinTriple

__all__ = ["naive_join"]


def naive_join(
    tree_a: TPRTree,
    tree_b: TPRTree,
    t_start: float,
    t_end: float = INF,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """All intersecting pairs between two trees during ``[t_start, t_end]``.

    Returns triples whose intervals are clipped to the window.  Pair
    tests are counted on ``tracker`` (defaults to ``tree_a``'s tracker).
    """
    if tracker is None:
        tracker = tree_a.storage.tracker
    results: List[JoinTriple] = []
    with tracker_span(tracker, "join.naive"):
        root_a = tree_a.root_node()
        root_b = tree_b.root_node()
        if not root_a.entries or not root_b.entries:
            return results
        _join_nodes(tree_a, tree_b, root_a, root_b, t_start, t_end, tracker, results)
    return results


def _join_nodes(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    t0: float,
    t1: float,
    tracker: CostTracker,
    out: List[JoinTriple],
) -> None:
    if node_a.is_leaf and node_b.is_leaf:
        for ea in node_a.entries:
            for eb in node_b.entries:
                tracker.count_pair_tests()
                interval = intersection_interval(ea.kbox, eb.kbox, t0, t1)
                if interval is not None:
                    out.append(JoinTriple(ea.ref, eb.ref, interval))
        return
    if not node_a.is_leaf and not node_b.is_leaf:
        for ea in node_a.entries:
            for eb in node_b.entries:
                tracker.count_pair_tests()
                if intersection_interval(ea.kbox, eb.kbox, t0, t1) is not None:
                    child_a = tree_a.read_node(ea.ref)
                    child_b = tree_b.read_node(eb.ref)
                    _join_nodes(
                        tree_a, tree_b, child_a, child_b, t0, t1, tracker, out
                    )
        return
    # Height mismatch: descend only the non-leaf side, pruning against
    # the leaf side's node bound.
    if node_a.is_leaf:
        bound_a = node_a.bound_at(t0)
        for eb in node_b.entries:
            tracker.count_pair_tests()
            if intersection_interval(bound_a, eb.kbox, t0, t1) is not None:
                child_b = tree_b.read_node(eb.ref)
                _join_nodes(tree_a, tree_b, node_a, child_b, t0, t1, tracker, out)
        return
    bound_b = node_b.bound_at(t0)
    for ea in node_a.entries:
        tracker.count_pair_tests()
        if intersection_interval(ea.kbox, bound_b, t0, t1) is not None:
            child_a = tree_a.read_node(ea.ref)
            _join_nodes(tree_a, tree_b, child_a, node_b, t0, t1, tracker, out)
