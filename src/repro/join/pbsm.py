"""PBSM: a partition-based spatial-merge join for moving rectangles.

The paper's related work (§VII) cites Patel & DeWitt's partition-based
spatial-merge join as a classic *non-index* way to compute an
intersection join.  It is the natural baseline when no TPR-tree exists
yet — e.g. computing the very first answer over freshly received data —
so this module adapts it to moving objects:

1. each object's *swept bound* over the processing window (its sweep
   ``lb/ub`` per axis, as in :mod:`repro.geometry.plane_sweep`) is
   computed;
2. the space is cut into a ``g × g`` grid of tiles; every object is
   assigned to each tile its swept bound overlaps (replication);
3. each tile runs a plane-sweep join of its resident objects;
4. duplicate pairs (objects replicated into several shared tiles) are
   removed by the standard reference-tile check: a pair is reported
   only by the tile containing the top-left corner of their swept
   overlap.

Like the tree joins, the window must be finite — an unbounded window
makes every swept bound cover the whole space (the same degeneration
that breaks plane sweep, §IV-D.1).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import INF, KineticBox, intersection_interval, sweep_bounds
from ..metrics import CostTracker
from ..obs import tracker_span
from ..objects import MovingObject
from .types import JoinTriple

__all__ = ["pbsm_join"]


def pbsm_join(
    objects_a: Sequence[MovingObject],
    objects_b: Sequence[MovingObject],
    t_start: float,
    t_end: float,
    space_size: float = 1000.0,
    grid: Optional[int] = None,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """All intersecting pairs during ``[t_start, t_end]``, without an index.

    ``grid`` is the number of tiles per axis (``None`` picks
    ``~sqrt(n / 64)`` so tiles hold ~64 objects on uniform data).

    >>> from repro.workloads import uniform_workload
    >>> sc = uniform_workload(80, seed=1)
    >>> len(pbsm_join(sc.set_a, sc.set_b, 0.0, 60.0)) >= 0
    True
    """
    if t_end == INF or math.isinf(t_start):
        raise ValueError("pbsm_join requires a finite window")
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    if tracker is None:
        tracker = CostTracker()
    n = max(len(objects_a), len(objects_b), 1)
    if grid is None:
        grid = max(1, int(math.sqrt(n / 64.0)))
    tile = space_size / grid

    with tracker_span(tracker, "join.pbsm"):
        return _pbsm_tiles(objects_a, objects_b, t_start, t_end,
                           grid, tile, tracker)


def _pbsm_tiles(
    objects_a: Sequence[MovingObject],
    objects_b: Sequence[MovingObject],
    t_start: float,
    t_end: float,
    grid: int,
    tile: float,
    tracker: CostTracker,
) -> List[JoinTriple]:
    tiles_a = _partition(objects_a, t_start, t_end, grid, tile)
    tiles_b = _partition(objects_b, t_start, t_end, grid, tile)

    results: List[JoinTriple] = []
    for key, bucket_a in tiles_a.items():
        bucket_b = tiles_b.get(key)
        if not bucket_b:
            continue
        for obj_a, rect_a in bucket_a:
            for obj_b, rect_b in bucket_b:
                # Reference-tile dedup: only the tile holding the
                # top-left (min-x, min-y) corner of the swept overlap
                # reports the pair.
                lo_x = max(rect_a[0], rect_b[0])
                lo_y = max(rect_a[2], rect_b[2])
                if rect_a[1] < rect_b[0] or rect_b[1] < rect_a[0]:
                    continue
                if rect_a[3] < rect_b[2] or rect_b[3] < rect_a[2]:
                    continue
                if _tile_of(lo_x, lo_y, grid, tile) != key:
                    continue
                tracker.count_pair_tests()
                interval = intersection_interval(
                    obj_a.kbox, obj_b.kbox, t_start, t_end
                )
                if interval is not None:
                    results.append(JoinTriple(obj_a.oid, obj_b.oid, interval))
    return results


SweptRect = Tuple[float, float, float, float]


def _swept_rect(kbox: KineticBox, t0: float, t1: float) -> SweptRect:
    x_lo, x_hi = sweep_bounds(kbox, 0, t0, t1)
    y_lo, y_hi = sweep_bounds(kbox, 1, t0, t1)
    return (x_lo, x_hi, y_lo, y_hi)


def _tile_of(x: float, y: float, grid: int, tile: float) -> Tuple[int, int]:
    gx = min(grid - 1, max(0, int(x // tile)))
    gy = min(grid - 1, max(0, int(y // tile)))
    return gx, gy


def _partition(
    objects: Sequence[MovingObject],
    t0: float,
    t1: float,
    grid: int,
    tile: float,
) -> Dict[Tuple[int, int], List[Tuple[MovingObject, SweptRect]]]:
    tiles: Dict[Tuple[int, int], List[Tuple[MovingObject, SweptRect]]] = {}
    for obj in objects:
        rect = _swept_rect(obj.kbox, t0, t1)
        gx0, gy0 = _tile_of(rect[0], rect[2], grid, tile)
        gx1, gy1 = _tile_of(rect[1], rect[3], grid, tile)
        for gx in range(gx0, gx1 + 1):
            for gy in range(gy0, gy1 + 1):
                tiles.setdefault((gx, gy), []).append((obj, rect))
    return tiles
