"""ImprovedJoin: TC traversal with plane sweep, dimension selection and
intersection check (paper Figure 6).

The traversal is NaiveJoin's synchronous descent, upgraded with the
three techniques that *time-constrained processing enables* (§IV-D):

* **IC — intersection check.**  Only entries intersecting the (moving)
  overlap of the two node bounds can join.  Each node's entries are
  pre-filtered against the *other* node's bound, and — crucially — the
  window shrinks to the interval ``[t_s, t_e]`` during which the two
  node bounds actually intersect.  The constraint tightens level by
  level as the recursion descends.
* **DS — dimension selection.**  The sweep dimension is the one whose
  entries move slowest (smallest sum of absolute bound speeds), which
  minimizes sweep-range inflation and thus candidate pairs.
* **PS — plane sweep.**  Candidate pairs are enumerated in sweep order
  instead of all-pairs.

Each technique can be toggled independently — the Figure 8 ablation
runs None / IC / PS / DS+PS / IC+PS / ALL.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry import (
    INF,
    all_pairs_intersection,
    intersection_interval,
    ps_intersection,
    select_sweep_dimension,
)
from ..index import TPRTree
from ..index.entry import Entry
from ..index.node import Node
from ..metrics import CostTracker
from .types import JoinTriple

__all__ = ["improved_join", "JoinTechniques"]


class JoinTechniques:
    """Which of the §IV-D techniques a run applies.

    >>> JoinTechniques.all()
    JoinTechniques(ps=True, ds=True, ic=True)
    >>> JoinTechniques.none()
    JoinTechniques(ps=False, ds=False, ic=False)
    """

    __slots__ = ("use_ps", "use_ds", "use_ic")

    def __init__(self, use_ps: bool = True, use_ds: bool = True, use_ic: bool = True):
        self.use_ps = use_ps
        self.use_ds = use_ds
        self.use_ic = use_ic

    @classmethod
    def all(cls) -> "JoinTechniques":
        return cls(True, True, True)

    @classmethod
    def none(cls) -> "JoinTechniques":
        return cls(False, False, False)

    def __repr__(self) -> str:
        return (
            f"JoinTechniques(ps={self.use_ps}, ds={self.use_ds}, ic={self.use_ic})"
        )


def improved_join(
    tree_a: TPRTree,
    tree_b: TPRTree,
    t_start: float,
    t_end: float,
    techniques: Optional[JoinTechniques] = None,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """All intersecting pairs during ``[t_start, t_end]`` (Figure 6).

    ``t_end`` must be finite: plane sweep and the tightening
    intersection check both *require* a constrained window — that is the
    paper's central point.  Use :func:`repro.join.naive.naive_join` for
    unconstrained runs.
    """
    if t_end == INF:
        raise ValueError(
            "improved_join requires a finite window; TC processing is what "
            "enables the improvement techniques"
        )
    if techniques is None:
        techniques = JoinTechniques.all()
    if tracker is None:
        tracker = tree_a.storage.tracker
    results: List[JoinTriple] = []
    root_a = tree_a.root_node()
    root_b = tree_b.root_node()
    if not root_a.entries or not root_b.entries:
        return results
    # Per-run node-bound cache, keyed by page id.  A node joins against
    # many partner nodes; its bound is computed once, referenced at the
    # run's start time — which stays a valid (conservative) bound inside
    # every descendant window, since windows only move forward in time.
    bounds: dict = {}
    _join_nodes(
        tree_a, tree_b, root_a, root_b, t_start, t_end,
        techniques, tracker, results, bounds, t_start,
    )
    return results


def _cached_bound(node: Node, side: str, bounds: dict, t_ref: float):
    # Keyed by (side, page id): the two trees may live on separate
    # storages whose page ids collide.
    key = (side, node.page_id)
    bound = bounds.get(key)
    if bound is None:
        bound = node.bound_at(t_ref)
        bounds[key] = bound
    return bound


def _join_nodes(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    t0: float,
    t1: float,
    tech: JoinTechniques,
    tracker: CostTracker,
    out: List[JoinTriple],
    bounds: dict,
    t_run: float,
) -> None:
    entries_a = node_a.entries
    entries_b = node_b.entries
    if not entries_a or not entries_b:
        return

    if tech.use_ic:
        bound_a = _cached_bound(node_a, "a", bounds, t_run)
        bound_b = _cached_bound(node_b, "b", bounds, t_run)
        tracker.count_pair_tests()
        window = intersection_interval(bound_a, bound_b, t0, t1)
        if window is None:
            return
        t0, t1 = window.start, window.end
        entries_a = _filter_against(entries_a, bound_b, t0, t1, tracker)
        if not entries_a:
            return
        entries_b = _filter_against(entries_b, bound_a, t0, t1, tracker)
        if not entries_b:
            return

    # Height mismatch: single-side descent (window already tightened).
    if node_a.is_leaf != node_b.is_leaf:
        _descend_single_side(
            tree_a, tree_b, node_a, node_b, entries_a, entries_b,
            t0, t1, tech, tracker, out, bounds, t_run,
        )
        return

    boxes_a = [e.kbox for e in entries_a]
    boxes_b = [e.kbox for e in entries_b]
    counter = [0]
    if tech.use_ps:
        dim = select_sweep_dimension(boxes_a, boxes_b) if tech.use_ds else 0
        pairs = ps_intersection(boxes_a, boxes_b, t0, t1, dim=dim, counter=counter)
    else:
        pairs = all_pairs_intersection(boxes_a, boxes_b, t0, t1, counter=counter)
    tracker.count_pair_tests(counter[0])

    if node_a.is_leaf:
        for i, j, interval in pairs:
            out.append(JoinTriple(entries_a[i].ref, entries_b[j].ref, interval))
        return
    for i, j, interval in pairs:
        child_a = tree_a.read_node(entries_a[i].ref)
        child_b = tree_b.read_node(entries_b[j].ref)
        # The per-pair time tightening is part of the intersection-check
        # technique (§IV-D.3): "[t_s, t_e] here serves as [t, t'] to the
        # lower level".  Without IC the full window is passed down, which
        # keeps the "None"/PS-only ablation configurations faithful to
        # NaiveJoin's recursion.
        if tech.use_ic:
            child_t0, child_t1 = interval.start, interval.end
        else:
            child_t0, child_t1 = t0, t1
        _join_nodes(
            tree_a, tree_b, child_a, child_b,
            child_t0, child_t1, tech, tracker, out, bounds, t_run,
        )


def _filter_against(
    entries: List[Entry],
    other_bound,
    t0: float,
    t1: float,
    tracker: CostTracker,
) -> List[Entry]:
    """IC entry filter: keep entries touching the other node's bound."""
    kept = []
    for entry in entries:
        tracker.count_pair_tests()
        if intersection_interval(entry.kbox, other_bound, t0, t1) is not None:
            kept.append(entry)
    return kept


def _descend_single_side(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    entries_a: List[Entry],
    entries_b: List[Entry],
    t0: float,
    t1: float,
    tech: JoinTechniques,
    tracker: CostTracker,
    out: List[JoinTriple],
    bounds: dict,
    t_run: float,
) -> None:
    if node_a.is_leaf:
        bound_a = _cached_bound(node_a, "a", bounds, t_run)
        for eb in entries_b:
            tracker.count_pair_tests()
            window = intersection_interval(bound_a, eb.kbox, t0, t1)
            if window is not None:
                child_b = tree_b.read_node(eb.ref)
                _join_nodes(
                    tree_a, tree_b, node_a, child_b,
                    window.start, window.end, tech, tracker, out,
                    bounds, t_run,
                )
        return
    bound_b = _cached_bound(node_b, "b", bounds, t_run)
    for ea in entries_a:
        tracker.count_pair_tests()
        window = intersection_interval(ea.kbox, bound_b, t0, t1)
        if window is not None:
            child_a = tree_a.read_node(ea.ref)
            _join_nodes(
                tree_a, tree_b, child_a, node_b,
                window.start, window.end, tech, tracker, out,
                bounds, t_run,
            )
