"""ImprovedJoin: TC traversal with plane sweep, dimension selection and
intersection check (paper Figure 6).

The traversal is NaiveJoin's synchronous descent, upgraded with the
three techniques that *time-constrained processing enables* (§IV-D):

* **IC — intersection check.**  Only entries intersecting the (moving)
  overlap of the two node bounds can join.  Each node's entries are
  pre-filtered against the *other* node's bound, and — crucially — the
  window shrinks to the interval ``[t_s, t_e]`` during which the two
  node bounds actually intersect.  The constraint tightens level by
  level as the recursion descends.
* **DS — dimension selection.**  The sweep dimension is the one whose
  entries move slowest (smallest sum of absolute bound speeds), which
  minimizes sweep-range inflation and thus candidate pairs.
* **PS — plane sweep.**  Candidate pairs are enumerated in sweep order
  instead of all-pairs.

Each technique can be toggled independently — the Figure 8 ablation
runs None / IC / PS / DS+PS / IC+PS / ALL.

Orthogonally to the paper's techniques, ``use_kernels`` routes the
per-entry work (IC filtering, sweep bounds, exact pair tests) through
the vectorized :mod:`repro.geometry.kernels` layer: a node's entries
are packed once per run into a :class:`~repro.geometry.KineticBatch`
and every candidate set is tested in one NumPy call.  The kernels are
bit-exact against the scalar path, so toggling the flag changes cost,
never results.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry import (
    INF,
    all_pairs_intersection,
    intersection_interval,
    kernels,
    ps_intersection,
    select_sweep_dimension,
)
from ..index import TPRTree
from ..index.entry import Entry
from ..index.node import Node
from ..metrics import CostTracker
from ..obs import tracker_span
from .types import JoinTriple

__all__ = ["improved_join", "JoinTechniques"]


class JoinTechniques:
    """Which of the §IV-D techniques a run applies.

    ``use_kernels`` additionally selects the vectorized NumPy pair-test
    path (on by default; results are identical either way, so it is an
    implementation ablation rather than a paper technique).

    >>> JoinTechniques.all()
    JoinTechniques(ps=True, ds=True, ic=True, kernels=True)
    >>> JoinTechniques.none()
    JoinTechniques(ps=False, ds=False, ic=False, kernels=True)
    """

    __slots__ = ("use_ps", "use_ds", "use_ic", "use_kernels")

    def __init__(
        self,
        use_ps: bool = True,
        use_ds: bool = True,
        use_ic: bool = True,
        use_kernels: bool = True,
    ):
        self.use_ps = use_ps
        self.use_ds = use_ds
        self.use_ic = use_ic
        self.use_kernels = use_kernels

    @classmethod
    def all(cls) -> "JoinTechniques":
        return cls(True, True, True)

    @classmethod
    def none(cls) -> "JoinTechniques":
        return cls(False, False, False)

    def __repr__(self) -> str:
        return (
            f"JoinTechniques(ps={self.use_ps}, ds={self.use_ds}, "
            f"ic={self.use_ic}, kernels={self.use_kernels})"
        )


class _JoinContext:
    """Per-run caches shared across the recursion.

    A node joins against many partner nodes; its kinetic bound and its
    SoA batch are each computed once, keyed by (side, page id) — the two
    trees may live on separate storages whose page ids collide.  Bounds
    are referenced at the run's start time, which stays a valid
    (conservative) bound inside every descendant window, since windows
    only move forward in time.
    """

    __slots__ = ("t_run", "use_kernels", "_bounds", "_batches")

    def __init__(self, t_run: float, use_kernels: bool):
        self.t_run = t_run
        self.use_kernels = use_kernels and kernels.HAVE_NUMPY
        self._bounds: dict = {}
        self._batches: dict = {}

    def bound(self, node: Node, side: str):
        key = (side, node.page_id)
        bound = self._bounds.get(key)
        if bound is None:
            bound = node.bound_at(self.t_run)
            self._bounds[key] = bound
        return bound

    def batch(self, node: Node, side: str):
        key = (side, node.page_id)
        batch = self._batches.get(key)
        if batch is None:
            batch = kernels.KineticBatch.from_entries(node.entries)
            self._batches[key] = batch
        return batch


def improved_join(
    tree_a: TPRTree,
    tree_b: TPRTree,
    t_start: float,
    t_end: float,
    techniques: Optional[JoinTechniques] = None,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """All intersecting pairs during ``[t_start, t_end]`` (Figure 6).

    ``t_end`` must be finite: plane sweep and the tightening
    intersection check both *require* a constrained window — that is the
    paper's central point.  Use :func:`repro.join.naive.naive_join` for
    unconstrained runs.
    """
    if t_end == INF:
        raise ValueError(
            "improved_join requires a finite window; TC processing is what "
            "enables the improvement techniques"
        )
    if techniques is None:
        techniques = JoinTechniques.all()
    if tracker is None:
        tracker = tree_a.storage.tracker
    results: List[JoinTriple] = []
    with tracker_span(tracker, "join.improved"):
        root_a = tree_a.root_node()
        root_b = tree_b.root_node()
        if not root_a.entries or not root_b.entries:
            return results
        ctx = _JoinContext(t_start, techniques.use_kernels)
        _join_nodes(
            tree_a, tree_b, root_a, root_b, t_start, t_end,
            techniques, tracker, results, ctx,
        )
    return results


def _join_nodes(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    t0: float,
    t1: float,
    tech: JoinTechniques,
    tracker: CostTracker,
    out: List[JoinTriple],
    ctx: _JoinContext,
) -> None:
    entries_a = node_a.entries
    entries_b = node_b.entries
    if not entries_a or not entries_b:
        return
    use_k = ctx.use_kernels
    batch_a = ctx.batch(node_a, "a") if use_k else None
    batch_b = ctx.batch(node_b, "b") if use_k else None

    if tech.use_ic:
        bound_a = ctx.bound(node_a, "a")
        bound_b = ctx.bound(node_b, "b")
        tracker.count_pair_tests()
        window = intersection_interval(bound_a, bound_b, t0, t1)
        if window is None:
            return
        t0, t1 = window.start, window.end
        if use_k:
            entries_a, batch_a = _filter_batch(
                entries_a, batch_a, bound_b, t0, t1, tracker
            )
            if not entries_a:
                return
            entries_b, batch_b = _filter_batch(
                entries_b, batch_b, bound_a, t0, t1, tracker
            )
        else:
            entries_a = _filter_against(entries_a, bound_b, t0, t1, tracker)
            if not entries_a:
                return
            entries_b = _filter_against(entries_b, bound_a, t0, t1, tracker)
        if not entries_b:
            return

    # Height mismatch: single-side descent (window already tightened).
    if node_a.is_leaf != node_b.is_leaf:
        _descend_single_side(
            tree_a, tree_b, node_a, node_b, entries_a, entries_b,
            batch_a, batch_b, t0, t1, tech, tracker, out, ctx,
        )
        return

    counter = [0]
    if use_k:
        if tech.use_ps:
            dim = (
                kernels.batch_select_sweep_dimension(batch_a, batch_b)
                if tech.use_ds
                else 0
            )
            pairs = kernels.batch_ps_intersection(
                batch_a, batch_b, t0, t1, dim=dim, counter=counter
            )
        else:
            pairs = kernels.batch_all_pairs_intersection(
                batch_a, batch_b, t0, t1, counter=counter
            )
    else:
        boxes_a = [e.kbox for e in entries_a]
        boxes_b = [e.kbox for e in entries_b]
        if tech.use_ps:
            dim = select_sweep_dimension(boxes_a, boxes_b) if tech.use_ds else 0
            pairs = ps_intersection(
                boxes_a, boxes_b, t0, t1, dim=dim, counter=counter,
                use_kernels=False,
            )
        else:
            pairs = all_pairs_intersection(
                boxes_a, boxes_b, t0, t1, counter=counter, use_kernels=False
            )
    tracker.count_pair_tests(counter[0])

    if node_a.is_leaf:
        for i, j, interval in pairs:
            out.append(JoinTriple(entries_a[i].ref, entries_b[j].ref, interval))
        return
    for i, j, interval in pairs:
        child_a = tree_a.read_node(entries_a[i].ref)
        child_b = tree_b.read_node(entries_b[j].ref)
        # The per-pair time tightening is part of the intersection-check
        # technique (§IV-D.3): "[t_s, t_e] here serves as [t, t'] to the
        # lower level".  Without IC the full window is passed down, which
        # keeps the "None"/PS-only ablation configurations faithful to
        # NaiveJoin's recursion.
        if tech.use_ic:
            child_t0, child_t1 = interval.start, interval.end
        else:
            child_t0, child_t1 = t0, t1
        _join_nodes(
            tree_a, tree_b, child_a, child_b,
            child_t0, child_t1, tech, tracker, out, ctx,
        )


def _filter_against(
    entries: List[Entry],
    other_bound,
    t0: float,
    t1: float,
    tracker: CostTracker,
) -> List[Entry]:
    """IC entry filter: keep entries touching the other node's bound."""
    kept = []
    for entry in entries:
        tracker.count_pair_tests()
        if intersection_interval(entry.kbox, other_bound, t0, t1) is not None:
            kept.append(entry)
    return kept


def _filter_batch(
    entries: List[Entry],
    batch,
    other_bound,
    t0: float,
    t1: float,
    tracker: CostTracker,
):
    """IC entry filter over a whole node in one kernel call."""
    tracker.count_pair_tests(len(entries))
    mask = kernels.batch_filter_against(batch, other_bound, t0, t1)
    if mask.all():
        return entries, batch
    kept = [e for e, keep in zip(entries, mask.tolist()) if keep]
    if not kept:
        return kept, None
    return kept, batch.compress(mask)


def _descend_single_side(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    entries_a: List[Entry],
    entries_b: List[Entry],
    batch_a,
    batch_b,
    t0: float,
    t1: float,
    tech: JoinTechniques,
    tracker: CostTracker,
    out: List[JoinTriple],
    ctx: _JoinContext,
) -> None:
    if node_a.is_leaf:
        bound_a = ctx.bound(node_a, "a")
        for eb, window in _entry_windows(
            bound_a, entries_b, batch_b, t0, t1, tracker, bound_is_a=True
        ):
            child_b = tree_b.read_node(eb.ref)
            _join_nodes(
                tree_a, tree_b, node_a, child_b,
                window[0], window[1], tech, tracker, out, ctx,
            )
        return
    bound_b = ctx.bound(node_b, "b")
    for ea, window in _entry_windows(
        bound_b, entries_a, batch_a, t0, t1, tracker, bound_is_a=False
    ):
        child_a = tree_a.read_node(ea.ref)
        _join_nodes(
            tree_a, tree_b, child_a, node_b,
            window[0], window[1], tech, tracker, out, ctx,
        )


def _entry_windows(
    bound,
    entries: List[Entry],
    batch,
    t0: float,
    t1: float,
    tracker: CostTracker,
    bound_is_a: bool,
):
    """``(entry, (t_s, t_e))`` for entries intersecting a node bound.

    ``bound_is_a`` keeps the A-before-B argument orientation of the
    scalar calls; the probe kernel's windows are orientation-independent
    (see :func:`~repro.geometry.kernels.batch_probe_windows`), so one
    kernel serves both directions bit-exactly.
    """
    if batch is not None:
        tracker.count_pair_tests(len(entries))
        lo, hi, ok = kernels.batch_probe_windows(batch, bound, t0, t1)
        for idx in kernels.np.nonzero(ok)[0].tolist():
            yield entries[idx], (float(lo[idx]), float(hi[idx]))
        return
    for entry in entries:
        tracker.count_pair_tests()
        if bound_is_a:
            window = intersection_interval(bound, entry.kbox, t0, t1)
        else:
            window = intersection_interval(entry.kbox, bound, t0, t1)
        if window is not None:
            yield entry, (window.start, window.end)
