"""Common result types for the join algorithms.

A join produces :class:`JoinTriple` records ``(a_oid, b_oid, interval)``:
object ``a_oid`` from set *A* and ``b_oid`` from set *B* intersect during
``interval``.  Intervals from time-constrained runs are clipped to the
run's window; unconstrained runs may return unbounded intervals.
"""

from __future__ import annotations

from typing import NamedTuple

from ..geometry import TimeInterval

__all__ = ["JoinTriple"]


class JoinTriple(NamedTuple):
    """One join pair with its intersection interval."""

    a_oid: int
    b_oid: int
    interval: TimeInterval

    def key(self) -> "tuple[int, int]":
        """The ``(a, b)`` identity of the pair, minus timing."""
        return (self.a_oid, self.b_oid)
