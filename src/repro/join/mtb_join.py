"""MTB-Join: time-bucketed joins with per-bucket time constraints (§IV-C).

Theorem 2 tightens Theorem 1: an updated object ``O`` only needs joining
with set ``B`` until ``lut(B) + T_M``, where ``lut(B)`` is the latest
update timestamp of ``B``.  The MTB-tree groups ``B`` by last-update
bucket, so the join of ``O`` against bucket tree ``Tr_i`` (bucket ending
at ``t_eb``) uses the window ``[t_c, t_eb + T_M]`` — every object in
that bucket *must* update again by ``t_eb + T_M``, at which point the
pair is recomputed from the other side.

Two entry points:

* :func:`mtb_join_object` — the maintenance primitive: one updated
  object against a forest;
* :func:`mtb_join` — forest × forest, used when both datasets are
  bucketed (each bucket-tree pair gets the window
  ``[t_c, min(t_eb_a, t_eb_b) + T_M]``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..geometry import KineticBox
from ..index import MTBTree
from ..metrics import CostTracker
from ..obs import tracker_span
from .improved import JoinTechniques, improved_join
from .naive import naive_join
from .types import JoinTriple

__all__ = ["mtb_join_object", "mtb_join_objects", "mtb_join"]


def mtb_join_object(
    forest: MTBTree,
    kbox: KineticBox,
    oid: int,
    t_now: float,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """Join one (just-updated) object against an MTB forest.

    Returns triples with ``a_oid = oid`` and the forest object in
    ``b_oid``; callers joining "a B-object against forest A" swap the
    roles afterwards.  Each bucket tree is probed over its own window
    ``[t_now, t_eb + T_M]``.
    """
    if tracker is None:
        tracker = forest.storage.tracker
    triples: List[JoinTriple] = []
    with tracker_span(tracker, "join.mtb.object"):
        for _key, t_eb, tree in forest.trees():
            horizon_end = t_eb + forest.t_m
            if horizon_end <= t_now:
                # Bucket fully drained by the T_M guarantee; nothing to do.
                continue
            for other_oid, interval in tree.search(kbox, t_now, horizon_end):
                triples.append(JoinTriple(oid, other_oid, interval))
    return triples


def mtb_join_objects(
    forest: MTBTree,
    probes: Sequence[Tuple[int, KineticBox]],
    t_now: float,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """Join a batch of (just-updated) objects against an MTB forest.

    The group-commit counterpart of :func:`mtb_join_object`: all probes
    share one :meth:`~repro.index.tpr.TPRTree.search_batch` descent per
    bucket tree, so node reads and SoA packing are amortized over the
    batch.  The returned triples equal (as a set) the concatenation of
    ``mtb_join_object(forest, kbox, oid, t_now)`` over the probes, with
    bit-identical intervals.
    """
    if tracker is None:
        tracker = forest.storage.tracker
    triples: List[JoinTriple] = []
    if not probes:
        return triples
    kboxes = [kbox for _oid, kbox in probes]
    with tracker_span(tracker, "join.mtb.batch", n=len(probes)):
        for _key, t_eb, tree in forest.trees():
            horizon_end = t_eb + forest.t_m
            if horizon_end <= t_now:
                continue
            found = tree.search_batch(kboxes, t_now, horizon_end)
            for (oid, _kbox), hits in zip(probes, found):
                for other_oid, interval in hits:
                    triples.append(JoinTriple(oid, other_oid, interval))
    return triples


def mtb_join(
    forest_a: MTBTree,
    forest_b: MTBTree,
    t_now: float,
    techniques: Optional[JoinTechniques] = None,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """Forest × forest join with per-bucket-pair time constraints.

    A pair drawn from buckets ending at ``t_a`` and ``t_b`` stays valid
    until whichever side updates first — bounded by
    ``min(t_a, t_b) + T_M`` — so that is the window used for the pair of
    bucket trees.  ``techniques=None`` uses the plain traversal;
    otherwise ImprovedJoin runs per tree pair.
    """
    if forest_a.t_m != forest_b.t_m:
        raise ValueError("forests must share the same maximum update interval")
    if tracker is None:
        tracker = forest_a.storage.tracker
    t_m = forest_a.t_m
    triples: List[JoinTriple] = []
    with tracker_span(tracker, "join.mtb"):
        for _ka, end_a, tree_a in forest_a.trees():
            for _kb, end_b, tree_b in forest_b.trees():
                horizon_end = min(end_a, end_b) + t_m
                if horizon_end <= t_now:
                    continue
                with tracker_span(
                    tracker, "join.mtb.bucket", bucket_a=_ka, bucket_b=_kb
                ):
                    if techniques is None:
                        found = naive_join(
                            tree_a, tree_b, t_now, horizon_end, tracker
                        )
                    else:
                        found = improved_join(
                            tree_a, tree_b, t_now, horizon_end, techniques, tracker
                        )
                triples.extend(found)
    return triples
