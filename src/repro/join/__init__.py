"""Join algorithms over moving-object indexes.

* :func:`naive_join` — synchronous traversal, window ``[t_c, ∞)``;
* :func:`tc_join` — the same traversal time-constrained to
  ``[t_u, t_u + T_M]`` (Theorem 1);
* :func:`improved_join` — TC traversal with plane sweep, dimension
  selection and intersection check (Figure 6);
* :func:`tp_join` / :func:`influence_scan` — the TP-join primitives
  behind the ETP-Join competitor;
* :func:`mtb_join` / :func:`mtb_join_object` — bucketed joins with the
  Theorem-2 window;
* :func:`brute_force_join` — the O(|A||B|) oracle used in tests.
"""

from .brute import brute_force_join, brute_force_pairs_at
from .improved import JoinTechniques, improved_join
from .mtb_join import mtb_join, mtb_join_object, mtb_join_objects
from .naive import naive_join
from .pbsm import pbsm_join
from .tc import tc_join
from .tp import TPAnswer, influence_scan, tp_join
from .types import JoinTriple

__all__ = [
    "JoinTriple",
    "JoinTechniques",
    "naive_join",
    "tc_join",
    "improved_join",
    "tp_join",
    "influence_scan",
    "TPAnswer",
    "mtb_join",
    "mtb_join_object",
    "mtb_join_objects",
    "pbsm_join",
    "brute_force_join",
    "brute_force_pairs_at",
]
