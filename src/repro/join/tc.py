"""TC-Join: time-constrained processing of the intersection join (§IV-B).

Theorem 1 (paper): the join result of object ``O`` (updated at ``t_u``)
with the other dataset only needs to be valid during ``[t_u, t_u+T_M]``,
because ``O`` is guaranteed to update again within the maximum update
interval ``T_M`` — and its next update recomputes its pairs.  The union
of all such constrained runs answers the continuous query at all times.

TC-Join is therefore NaiveJoin with the processing window cut from
``[t_u, ∞)`` to ``[t_u, t_u + T_M]``.  With the improvement techniques
of §IV-D switched on it becomes the paper's ImprovedJoin over the same
window.
"""

from __future__ import annotations

from typing import List, Optional

from ..index import TPRTree
from ..metrics import CostTracker
from ..obs import tracker_span
from .improved import JoinTechniques, improved_join
from .naive import naive_join
from .types import JoinTriple

__all__ = ["tc_join"]


def tc_join(
    tree_a: TPRTree,
    tree_b: TPRTree,
    t_now: float,
    t_m: float,
    techniques: Optional[JoinTechniques] = None,
    tracker: Optional[CostTracker] = None,
) -> List[JoinTriple]:
    """Join two trees over the Theorem-1 window ``[t_now, t_now + T_M]``.

    ``techniques=None`` runs the plain (NaiveJoin-style) traversal — the
    configuration of the Figure 7 experiment; pass
    :meth:`JoinTechniques.all` for the full ImprovedJoin.
    """
    if t_m <= 0:
        raise ValueError("t_m must be positive")
    t_end = t_now + t_m
    if tracker is None:
        tracker = tree_a.storage.tracker
    with tracker_span(tracker, "join.tc"):
        if techniques is None:
            return naive_join(tree_a, tree_b, t_now, t_end, tracker)
        return improved_join(tree_a, tree_b, t_now, t_end, techniques, tracker)
