"""TP-Join — the time-parameterized intersection join (Tao & Papadias,
SIGMOD 2002) — and the building blocks of its continuous extension
ETP-Join (paper §III).

A TP query answers a triple *(objects, expiry time, event)*: the current
join pairs, the timestamp at which that answer stops being valid, and
the pair(s) whose intersection status flips at that timestamp.  The
*influence time* of a pair is when it next changes the result:

* a currently intersecting pair influences the result when it separates
  (the end of its intersection interval, if finite);
* a currently disjoint pair influences the result when it first meets
  (the start of its future intersection interval, if any).

The synchronous traversal descends into a node pair iff (i) the node
bounds currently intersect — current results may be below — or (ii) the
node pair's earliest possible influence time does not exceed the best
(smallest) influence time found so far, which lower-bounds any event
beneath the pair.  The running minimum makes traversal order matter;
entry pairs are visited in ascending earliest-contact order to tighten
the bound early.

ETP-Join (the extension, driven by :class:`repro.core.engine.
ETPMaintenance`) re-runs this traversal at every result change and
consults :func:`influence_scan` on every object update — the costly
behaviour the paper's TC processing is designed to beat.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set, Tuple

from ..geometry import INF, KineticBox, intersection_interval
from ..index import TPRTree
from ..index.node import Node
from ..metrics import CostTracker
from ..obs import tracker_span
from .types import JoinTriple

__all__ = ["TPAnswer", "tp_join", "influence_scan"]


class TPAnswer(NamedTuple):
    """The TP-join triple: current pairs, expiry, and the next events."""

    pairs: Set[Tuple[int, int]]
    expiry: float
    #: ``(a_oid, b_oid, starts)`` — pairs whose status flips at ``expiry``;
    #: ``starts`` is True when the pair begins intersecting.
    events: List[Tuple[int, int, bool]]


class _TPState:
    """Mutable traversal state: the best influence time and its events."""

    __slots__ = ("min_inf", "events")

    def __init__(self) -> None:
        self.min_inf = INF
        self.events: List[Tuple[int, int, bool]] = []

    def offer(self, time: float, event: Tuple[int, int, bool]) -> None:
        if time < self.min_inf:
            self.min_inf = time
            self.events = [event]
        # Exact tie: simultaneous events share one expiry; a tolerance
        # here would wrongly batch merely-close events together.
        elif time == self.min_inf and self.min_inf < INF:  # noqa: RC001
            self.events.append(event)


def tp_join(
    tree_a: TPRTree,
    tree_b: TPRTree,
    t_now: float,
    tracker: Optional[CostTracker] = None,
) -> TPAnswer:
    """Run the TP intersection join at timestamp ``t_now``."""
    if tracker is None:
        tracker = tree_a.storage.tracker
    pairs: Set[Tuple[int, int]] = set()
    state = _TPState()
    with tracker_span(tracker, "join.tp"):
        root_a = tree_a.root_node()
        root_b = tree_b.root_node()
        if root_a.entries and root_b.entries:
            _tp_nodes(tree_a, tree_b, root_a, root_b, t_now, tracker, pairs, state)
    return TPAnswer(pairs, state.min_inf, state.events)


def _tp_nodes(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    t_now: float,
    tracker: CostTracker,
    pairs: Set[Tuple[int, int]],
    state: _TPState,
) -> None:
    if node_a.is_leaf and node_b.is_leaf:
        for ea in node_a.entries:
            for eb in node_b.entries:
                tracker.count_pair_tests()
                interval = intersection_interval(ea.kbox, eb.kbox, t_now, INF)
                if interval is None:
                    continue
                if interval.start <= t_now:
                    # The TP answer is valid *from t_now until the
                    # expiry*: a pair separating exactly at t_now is
                    # already gone for every later instant, so it is
                    # neither a current pair nor a future event.
                    if interval.end > t_now:
                        pairs.add((ea.ref, eb.ref))
                        if interval.end < INF:
                            state.offer(interval.end, (ea.ref, eb.ref, False))
                else:
                    state.offer(interval.start, (ea.ref, eb.ref, True))
        return

    if node_a.is_leaf != node_b.is_leaf:
        _tp_single_side(tree_a, tree_b, node_a, node_b, t_now, tracker, pairs, state)
        return

    candidates: List[Tuple[float, bool, int, int]] = []
    for ea_idx, ea in enumerate(node_a.entries):
        for eb_idx, eb in enumerate(node_b.entries):
            tracker.count_pair_tests()
            interval = intersection_interval(ea.kbox, eb.kbox, t_now, INF)
            if interval is None:
                continue
            intersecting_now = interval.start <= t_now
            candidates.append((interval.start, intersecting_now, ea_idx, eb_idx))
    # Ascending earliest-contact order: currently intersecting pairs
    # first, then by how soon the bounds can meet — tightens min_inf
    # before the doubtful pairs are (maybe) pruned.
    candidates.sort(key=lambda c: c[0])
    for start, intersecting_now, ea_idx, eb_idx in candidates:
        if not intersecting_now and start > state.min_inf:
            continue
        child_a = tree_a.read_node(node_a.entries[ea_idx].ref)
        child_b = tree_b.read_node(node_b.entries[eb_idx].ref)
        _tp_nodes(tree_a, tree_b, child_a, child_b, t_now, tracker, pairs, state)


def _tp_single_side(
    tree_a: TPRTree,
    tree_b: TPRTree,
    node_a: Node,
    node_b: Node,
    t_now: float,
    tracker: CostTracker,
    pairs: Set[Tuple[int, int]],
    state: _TPState,
) -> None:
    """Height-mismatch case: descend only the taller side."""
    if node_a.is_leaf:
        bound = node_a.bound_at(t_now)
        for eb in node_b.entries:
            tracker.count_pair_tests()
            interval = intersection_interval(bound, eb.kbox, t_now, INF)
            if interval is None:
                continue
            if interval.start <= t_now or interval.start <= state.min_inf:
                child_b = tree_b.read_node(eb.ref)
                _tp_nodes(
                    tree_a, tree_b, node_a, child_b, t_now, tracker, pairs, state
                )
        return
    bound = node_b.bound_at(t_now)
    for ea in node_a.entries:
        tracker.count_pair_tests()
        interval = intersection_interval(ea.kbox, bound, t_now, INF)
        if interval is None:
            continue
        if interval.start <= t_now or interval.start <= state.min_inf:
            child_a = tree_a.read_node(ea.ref)
            _tp_nodes(tree_a, tree_b, child_a, node_b, t_now, tracker, pairs, state)


def influence_scan(
    tree: TPRTree,
    kbox: KineticBox,
    t_now: float,
    tracker: Optional[CostTracker] = None,
) -> Tuple[List[JoinTriple], float]:
    """Scan one object against a tree: current partners + influence time.

    Used by ETP-Join when an object updates — the paper's "traversing
    the tree to find the object's influence time T_INF(O)".  Returns the
    object's intersection triples (as ``JoinTriple`` with the *other*
    object id in ``b_oid`` and a dummy ``-1`` in ``a_oid``) over
    ``[t_now, ∞)`` and the earliest strictly-future influence time among
    them.
    """
    if tracker is None:
        tracker = tree.storage.tracker
    triples: List[JoinTriple] = []
    min_inf = INF
    with tracker_span(tracker, "join.tp.influence"):
        stack = [tree.root_id]
        while stack:
            node = tree.read_node(stack.pop())
            for entry in node.entries:
                tracker.count_pair_tests()
                interval = intersection_interval(entry.kbox, kbox, t_now, INF)
                if interval is None:
                    continue
                if node.is_leaf:
                    triples.append(JoinTriple(-1, entry.ref, interval))
                    if interval.start > t_now:
                        min_inf = min(min_inf, interval.start)
                    elif t_now < interval.end < INF:
                        min_inf = min(min_inf, interval.end)
                else:
                    stack.append(entry.ref)
    return triples, min_inf
