"""Brute-force oracle joins used by the test suite.

No index, no pruning: every pair of objects is tested with the exact
moving-rectangle intersection primitive.  All tree-based algorithms are
validated against these answers.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..geometry import INF, intersection_interval
from ..objects import MovingObject
from .types import JoinTriple

__all__ = ["brute_force_join", "brute_force_pairs_at"]


def brute_force_join(
    objects_a: Iterable[MovingObject],
    objects_b: Iterable[MovingObject],
    t_start: float,
    t_end: float = INF,
) -> List[JoinTriple]:
    """Every intersecting pair during ``[t_start, t_end]``, O(|A||B|)."""
    list_b = list(objects_b)
    results: List[JoinTriple] = []
    for a in objects_a:
        for b in list_b:
            interval = intersection_interval(a.kbox, b.kbox, t_start, t_end)
            if interval is not None:
                results.append(JoinTriple(a.oid, b.oid, interval))
    return results


def brute_force_pairs_at(
    objects_a: Iterable[MovingObject],
    objects_b: Iterable[MovingObject],
    t: float,
) -> Set[Tuple[int, int]]:
    """The exact answer set ``{(a, b)}`` at a single timestamp."""
    list_b = [(b.oid, b.kbox.at(t)) for b in objects_b]
    pairs: Set[Tuple[int, int]] = set()
    for a in objects_a:
        box_a = a.kbox.at(t)
        for b_oid, box_b in list_b:
            if box_a.intersects(box_b):
                pairs.add((a.oid, b_oid))
    return pairs
