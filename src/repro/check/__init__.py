"""Machine-checked correctness rules: runtime sanitizer + domain lint.

Two layers guard the invariants the paper's correctness rests on
(Theorems 1–2, TPR-tree bounding, MTB bucketing):

* :mod:`repro.check.sanitize` — walks *live* structures (trees,
  forests, result stores) and reports ``SCxxx`` findings; wired into
  the engines via ``JoinConfig(sanitize=True)`` and into
  ``python -m repro.check sanitize`` for persisted indexes.
* :mod:`repro.check.lint` — per-file AST lint (``RC000``–``RC006``)
  over source files, run as ``python -m repro.check lint src/`` and as
  a blocking CI job.
* :mod:`repro.check.flow` — *cross-module* flow analysis
  (``RC1xx``/``RC2xx``) over a package symbol table
  (:mod:`repro.check.symbols`): shard-protocol completeness,
  kernel-triple parity, and error-code registry consistency, run as
  ``python -m repro.check flow src/`` and as a blocking CI job.

See :mod:`repro.check.errors` for the full error-code registry.
"""

from .errors import (
    FLOW_CODES,
    LINT_CODES,
    RETIRED_CODES,
    SANITIZER_CODES,
    Finding,
    InvariantViolation,
)
from .flow import check_flow, flow_paths
from .lint import lint_file, lint_paths, lint_source
from .symbols import SymbolTable
from .sanitize import (
    check_index,
    check_mtb_forest,
    check_result_store,
    check_sharded_state,
    check_supervisor_state,
    check_tpr_tree,
    raise_on_findings,
    sanitize_engine,
)

__all__ = [
    "Finding",
    "InvariantViolation",
    "LINT_CODES",
    "SANITIZER_CODES",
    "FLOW_CODES",
    "RETIRED_CODES",
    "SymbolTable",
    "check_flow",
    "flow_paths",
    "lint_file",
    "lint_paths",
    "lint_source",
    "check_tpr_tree",
    "check_mtb_forest",
    "check_result_store",
    "check_sharded_state",
    "check_supervisor_state",
    "check_index",
    "sanitize_engine",
    "raise_on_findings",
]
