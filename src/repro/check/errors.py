"""Finding and error types shared by the sanitizer and the linter.

Both layers of :mod:`repro.check` report problems as :class:`Finding`
records — a stable machine-readable code, a human message, and a
location.  The runtime sanitizer raises them bundled in an
:class:`InvariantViolation`; the linter prints them and sets the exit
code.

Error-code registry
-------------------
Sanitizer codes (``SCxxx``, checked at runtime against live structures):

========  ============================================================
``SC101``  TPR-tree level/height bookkeeping inconsistent
``SC102``  TPR-tree node occupancy outside ``[min_fill, capacity]``
``SC103``  parent entry bound fails to contain its child subtree
``SC104``  leaf entries and object table out of sync
``SC201``  object filed in an MTB bucket not matching its update time
``SC202``  MTB forest bookkeeping (tags/sizes/empty buckets) corrupt
``SC203``  MTB bucket newer than the current timestamp (lut monotone)
``SC301``  result-store interval list not sorted
``SC302``  result-store intervals not pairwise disjoint
``SC303``  stored interval exceeds the Theorem-1/2 TC bound
``SC304``  result-store pair/oid inverted index inconsistent
``SC305``  stored pair missing its live min-expiry frontier entry
``SC401``  stripe partition fails to cover the domain
``SC402``  shard residency disagrees with the swept ghost-halo rule
``SC403``  co-located pair copies diverge (or an endpoint is absent)
``SC501``  supervisor op log exceeds the checkpoint interval
``SC502``  checkpoint epoch/clock disagrees with the shard's engine
``SC503``  shard commands addressed to a dead worker slot
``SC601``  column-store id ↔ row map broken
``SC602``  pre-shifted column bounds drifted from a fresh recompute
``SC603``  column reference time ahead of the clock / non-finite data
``SC701``  folded delta view diverges from the live result store
``SC702``  delta event stream not strictly tick-monotone
``SC703``  ill-formed delta event (duplicate add / removal of absent row)
``SC801``  columnar result planes out of order or not pairwise disjoint
``SC802``  columnar result inverted index disagrees with the planes
``SC803``  columnar result bookkeeping incoherent after a flush
========  ============================================================

Lint codes (``RCxxx``, checked statically over source files):

========  ============================================================
``RC000``  file does not parse (syntax error)
``RC001``  raw float ``==``/``!=`` on time/coordinate values
``RC002``  wall-clock call or import inside core/join/index
``RC003``  mutable default argument
``RC004``  bare ``except:``
``RC005``  public ``geometry/`` function missing type annotations
``RC006``  pair-test tolerance not sourced from ``geometry.constants``
========  ============================================================

Flow codes (``RC1xx``/``RC2xx``, checked statically *across* modules
by :mod:`repro.check.flow`):

========  ============================================================
``RC101``  protocol/emitted op without a dispatch arm
``RC102``  dispatch arm for an op missing from the protocol registry
``RC103``  dispatch arm mutates state but its op is not ``mutating``
``RC104``  checkpoint produced/consumed key mismatch
``RC105``  fault spec names an unknown fault kind or command op
``RC106``  bare op-name string literal outside ``par/protocol.py``
``RC107``  worker dispatch present without a protocol module
``RC201``  kernel facade/NumPy signature drift
``RC202``  tolerance constant not sourced from ``geometry.constants``
``RC203``  kernel variant missing or wired to the facade out of order
``RC211``  duplicate or retired-and-reused error code
``RC212``  code raised in source but unregistered / undocumented
``RC213``  registered code never referenced by a detection test
========  ============================================================

Codes are never recycled: a code that is dropped from a live registry
moves to :data:`RETIRED_CODES` permanently, and the flow lint's
``RC211`` enforces that it never reappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "Finding",
    "InvariantViolation",
    "SANITIZER_CODES",
    "LINT_CODES",
    "FLOW_CODES",
    "RETIRED_CODES",
]

SANITIZER_CODES = (
    "SC101", "SC102", "SC103", "SC104",
    "SC201", "SC202", "SC203",
    "SC301", "SC302", "SC303", "SC304", "SC305",
    "SC401", "SC402", "SC403",
    "SC501", "SC502", "SC503",
    "SC601", "SC602", "SC603",
    "SC701", "SC702", "SC703",
    "SC801", "SC802", "SC803",
)

LINT_CODES = ("RC000", "RC001", "RC002", "RC003", "RC004", "RC005", "RC006")

FLOW_CODES = (
    "RC101", "RC102", "RC103", "RC104", "RC105", "RC106", "RC107",
    "RC201", "RC202", "RC203",
    "RC211", "RC212", "RC213",
)

#: Codes permanently removed from the live registries.  Never reuse a
#: retired code for a new check — historical findings and docs keep
#: their meaning.  Enforced statically by the flow lint (``RC211``).
RETIRED_CODES = ()


@dataclass(frozen=True)
class Finding:
    """One detected violation: code, human message, and location.

    ``location`` is ``path:line`` for lint findings and a structure
    path (e.g. ``tree_a/node 7``) for sanitizer findings.
    """

    code: str
    message: str
    location: str = ""

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"{where}{self.code} {self.message}"


class InvariantViolation(AssertionError):
    """Raised by the runtime sanitizer when any invariant check fails.

    Subclasses :class:`AssertionError` so existing ``validate()``
    call sites (and ``pytest.raises(AssertionError)``) keep working.
    """

    def __init__(self, findings: Sequence[Finding]):
        self.findings: List[Finding] = list(findings)
        lines = "\n".join(f"  {f}" for f in self.findings)
        super().__init__(
            f"{len(self.findings)} invariant violation(s):\n{lines}"
        )
