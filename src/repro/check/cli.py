"""``python -m repro.check`` — lint and sanitize from the command line.

Subcommands
-----------

``lint PATH...``
    Run the RC000–RC006 domain lint over files or directory trees.
    Prints one line per finding; exits 1 when anything is found.
``flow PATH...``
    Run the cross-module flow analysis (RC1xx/RC2xx) over package
    source roots: shard-protocol completeness, kernel-triple parity,
    and error-code registry consistency.  Exits 1 on any finding.
``sanitize PATH...``
    Audit persisted join state: a ``.db`` file saved with
    :func:`repro.index.save_tree`, a directory holding a forest
    saved with :func:`repro.index.save_forest`, or a ``.json``
    sharded-engine snapshot written from
    :meth:`repro.par.ShardedJoinEngine.export_state` (checked with the
    SC401–SC403 shard invariants).  Prints SC-code findings; exits 1
    when any invariant is violated.

Examples::

    python -m repro.check lint src/
    python -m repro.check flow src/ --format json
    python -m repro.check sanitize /tmp/tree.db --at 12.5
    python -m repro.check sanitize /tmp/sharded_state.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .errors import Finding
from .flow import flow_paths
from .lint import lint_paths
from .sanitize import check_index, check_sharded_state

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.check`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Invariant sanitizer and domain lint for the "
        "TC-join reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="static domain lint (RC000-RC006)")
    p_lint.add_argument("paths", nargs="+", metavar="PATH",
                        help="files or directories to lint")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")

    p_flow = sub.add_parser("flow",
                            help="cross-module flow analysis (RC1xx/RC2xx): "
                                 "shard protocol, kernel triple, code registry")
    p_flow.add_argument("paths", nargs="+", metavar="PATH",
                        help="package source roots (e.g. src/)")
    p_flow.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")

    p_san = sub.add_parser("sanitize",
                           help="audit a persisted tree/forest or a sharded "
                                "state snapshot (SC codes)")
    p_san.add_argument("paths", nargs="+", metavar="PATH",
                       help="saved tree file, saved-forest directory, or "
                            "sharded export_state() .json snapshot")
    p_san.add_argument("--at", type=float, default=None,
                       help="timestamp to check at (default: the index's "
                            "latest object update time)")
    return parser


def _load_index(path: str):
    from ..index import load_forest, load_tree

    if os.path.isdir(path):
        return load_forest(path)
    return load_tree(path)


def _audit(path: str, at: Optional[float]) -> List[Finding]:
    label = os.path.basename(path.rstrip("/")) or path
    if path.endswith(".json"):
        import json

        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
        return check_sharded_state(state, label=label)
    index = _load_index(path)
    if at is None:
        luts = [obj.t_ref for obj in index.all_objects()]
        at = max(luts) if luts else 0.0
    return check_index(index, at, label=label)


def _report(findings: Sequence[Finding], out, what: str,
            fmt: str = "text") -> int:
    if fmt == "json":
        out.write(json.dumps({
            "check": what,
            "count": len(findings),
            "findings": [
                {"code": f.code, "message": f.message, "location": f.location}
                for f in findings
            ],
        }, indent=2) + "\n")
        return 1 if findings else 0
    for finding in findings:
        out.write(f"{finding}\n")
    if findings:
        out.write(f"{len(findings)} {what} finding(s)\n")
        return 1
    out.write(f"clean: no {what} findings\n")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _report(lint_paths(Path(p) for p in args.paths), out, "lint",
                       args.format)
    if args.command == "flow":
        return _report(flow_paths(Path(p) for p in args.paths), out, "flow",
                       args.format)
    findings: List[Finding] = []
    for path in args.paths:
        findings.extend(_audit(path, args.at))
    return _report(findings, out, "sanitizer")
