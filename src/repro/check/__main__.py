"""``python -m repro.check`` — see :mod:`repro.check.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
