"""Runtime invariant sanitizer for the TC-join data structures.

The paper's correctness hangs on a handful of structural invariants:

* **TPR/TPR*-tree** (Šaltenis et al.): every parent entry's kinetic
  bound conservatively contains its child subtree at the current
  timestamp *and* for the whole horizon; occupancy stays within
  ``[min_fill, capacity]``; the leaf entries and the object table agree
  bit-for-bit.
* **MTB-tree** (paper §IV-C): an object lives in exactly the bucket of
  its last update time, bucket keys never run ahead of the clock, and
  the per-bucket trees sum to the forest's object table.
* **JoinResultStore** (Theorems 1–2): each pair's interval list is
  sorted and pairwise disjoint, no stored interval reaches past the
  TC bound ``max(lut_a, lut_b) + T_M`` (``lut`` widened to the bucket
  end under MTB bucketing), and the lazy min-expiry frontier holds a
  live entry for every stored pair.
* **ColumnResultStore**: the SoA layout of the same answer — planes
  sorted by ``(a, b, lo)`` with disjoint per-pair intervals, the
  searchsorted inverted index agreeing with the planes, coherent
  post-flush bookkeeping, and the identical Theorem-1/2 bound.
* **Sharded engine** (:mod:`repro.par`): the stripe partition covers
  the whole domain, every object is resident in exactly the shards its
  swept ghost halo touches, and pairs co-located on several shards
  carry bit-identical interval lists.
* **Shard supervisor** (:mod:`repro.par.supervisor`): recovery op logs
  stay bounded by the checkpoint interval, each shard's replay base
  agrees with its checkpoint epoch and never runs ahead of the engine
  clock, and no shard's commands route to a dead worker slot.

Every checker walks a live structure and returns
:class:`~repro.check.errors.Finding` records instead of asserting, so
callers can aggregate, report, or raise.  The checkers are duck-typed
(no imports from :mod:`repro.index` or :mod:`repro.core`) — both those
packages delegate their ``validate()`` paths here without creating an
import cycle.

Enable continuous checking with ``JoinConfig(sanitize=True)`` (or the
``REPRO_SANITIZE=1`` environment variable); audit a persisted index
with ``python -m repro.check sanitize PATH``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..geometry import INF
from ..geometry.constants import CONTAIN_EPS, MERGE_TOL
from ..geometry.kinetic import KineticBox
from ..geometry.plane_sweep import sweep_bounds
from .errors import Finding, InvariantViolation

__all__ = [
    "check_tpr_tree",
    "check_mtb_forest",
    "check_result_store",
    "check_sharded_state",
    "check_supervisor_state",
    "check_column_store",
    "check_column_result_store",
    "check_delta_ledger",
    "check_index",
    "sanitize_engine",
    "sanitize_columnar_engine",
    "raise_on_findings",
]


def raise_on_findings(findings: Sequence[Finding]) -> None:
    """Raise :class:`InvariantViolation` when ``findings`` is non-empty."""
    if findings:
        raise InvariantViolation(findings)


# ----------------------------------------------------------------------
# TPR / TPR*-tree structure
# ----------------------------------------------------------------------
def check_tpr_tree(
    tree,
    t_now: float,
    check_times: Optional[Sequence[float]] = None,
    label: str = "tree",
) -> List[Finding]:
    """Structural invariants of one TPR(*)-tree (codes SC101–SC104).

    ``check_times`` are the timestamps at which parent-child kinetic
    containment is verified; the default is the reference time and the
    end of the insertion horizon, the two ends of the paper's validity
    window.
    """
    if check_times is None:
        check_times = [t_now, t_now + tree.horizon]
    findings: List[Finding] = []
    seen_oids: List[int] = []

    root = tree.read_node(tree.root_id)
    if root.level != tree.height - 1:
        findings.append(Finding(
            "SC101",
            f"root level {root.level} does not match height {tree.height}",
            f"{label}/node {tree.root_id}",
        ))

    def visit(page_id: int, expected_level: Optional[int]) -> None:
        node = tree.read_node(page_id)
        where = f"{label}/node {page_id}"
        if expected_level is not None and node.level != expected_level:
            findings.append(Finding(
                "SC101",
                f"level {node.level} where parent implies {expected_level}",
                where,
            ))
        if page_id != tree.root_id and len(node.entries) < tree.min_fill:
            findings.append(Finding(
                "SC102",
                f"underfull node: {len(node.entries)} < min_fill {tree.min_fill}",
                where,
            ))
        if len(node.entries) > tree.node_capacity:
            findings.append(Finding(
                "SC102",
                f"overfull node: {len(node.entries)} > capacity {tree.node_capacity}",
                where,
            ))
        for entry in node.entries:
            if node.is_leaf:
                seen_oids.append(entry.ref)
                if entry.ref not in tree.objects:
                    findings.append(Finding(
                        "SC104", f"leaf oid {entry.ref} missing from object table", where
                    ))
                elif tree.objects.get(entry.ref).kbox != entry.kbox:
                    findings.append(Finding(
                        "SC104",
                        f"object table disagrees with leaf entry for oid {entry.ref}",
                        where,
                    ))
            else:
                child = tree.read_node(entry.ref)
                if not child.entries:
                    findings.append(Finding(
                        "SC102", f"child node {entry.ref} is empty", where
                    ))
                else:
                    for t in check_times:
                        t_eval = max(t_now, t)
                        child_box = child.bound_at(t_eval).at(t_eval)
                        parent_box = entry.kbox.at(t_eval).expanded(
                            CONTAIN_EPS, CONTAIN_EPS, CONTAIN_EPS, CONTAIN_EPS
                        )
                        if not parent_box.contains(child_box):
                            findings.append(Finding(
                                "SC103",
                                f"bound of child {entry.ref} escapes its parent "
                                f"entry at t={t_eval:g}",
                                where,
                            ))
                visit(entry.ref, node.level - 1)

    visit(tree.root_id, root.level)
    if sorted(seen_oids) != sorted(tree.objects):
        findings.append(Finding(
            "SC104",
            f"leaf entries ({len(seen_oids)}) do not match object table "
            f"({len(tree.objects)})",
            label,
        ))
    return findings


# ----------------------------------------------------------------------
# MTB forest
# ----------------------------------------------------------------------
def check_mtb_forest(forest, t_now: float, label: str = "forest") -> List[Finding]:
    """MTB bucket invariants (codes SC201–SC203) plus per-bucket trees."""
    findings: List[Finding] = []
    total = 0
    for key, _end, tree in forest.trees():
        where = f"{label}/bucket {key}"
        if not len(tree):
            findings.append(Finding("SC202", "empty bucket tree retained", where))
        findings.extend(check_tpr_tree(tree, t_now, label=where))
        for obj in tree.all_objects():
            if obj.t_ref > t_now:
                findings.append(Finding(
                    "SC203",
                    f"object {obj.oid} updated at t={obj.t_ref:g}, after the "
                    f"clock t={t_now:g}",
                    where,
                ))
            if forest.bucket_key(obj.t_ref) != key:
                findings.append(Finding(
                    "SC201",
                    f"object {obj.oid} (lut {obj.t_ref:g}) belongs in bucket "
                    f"{forest.bucket_key(obj.t_ref)}, found in {key}",
                    where,
                ))
            if obj.oid not in forest.objects:
                findings.append(Finding(
                    "SC202", f"object {obj.oid} missing from forest table", where
                ))
            elif forest.objects.tag(obj.oid) != key:
                findings.append(Finding(
                    "SC202",
                    f"forest table files object {obj.oid} under bucket "
                    f"{forest.objects.tag(obj.oid)}, tree says {key}",
                    where,
                ))
        total += len(tree)
    if total != len(forest.objects):
        findings.append(Finding(
            "SC202",
            f"bucket trees hold {total} objects, forest table {len(forest.objects)}",
            label,
        ))
    return findings


# ----------------------------------------------------------------------
# Join result store
# ----------------------------------------------------------------------
def check_result_store(
    store,
    t_m: Optional[float] = None,
    anchors: Optional[Dict[int, float]] = None,
    floor: Optional[float] = None,
    label: str = "store",
) -> List[Finding]:
    """Result-store invariants (codes SC301–SC305).

    ``anchors`` maps oid → the Theorem-1/2 window anchor for that
    object (its last update time, widened to the bucket end under MTB
    bucketing); with ``t_m`` given, every stored interval must end by
    ``max(anchor_a, anchor_b, floor) + t_m``.  ``floor`` covers the
    initial join, whose window is anchored at the build timestamp.
    Pass ``t_m=None`` for strategies without a TC bound (NaiveJoin).

    SC305 audits the lazy min-expiry frontier: a pair whose
    ``(first interval end, key)`` entry is missing would be invisible
    to :meth:`~repro.core.result.JoinResultStore.prune_expired`.
    """
    findings: List[Finding] = []
    pairs = store._pairs
    by_oid = store._by_oid
    has_frontier = hasattr(store, "_frontier")
    frontier = set(store._frontier) if has_frontier else set()
    for key, intervals in pairs.items():
        where = f"{label}/pair {key}"
        if not intervals:
            findings.append(Finding("SC304", "pair with no stored intervals", where))
            continue
        for prev, cur in zip(intervals, intervals[1:]):
            if cur.start < prev.start:
                findings.append(Finding(
                    "SC301", f"intervals out of order: {cur} after {prev}", where
                ))
            elif cur.start <= prev.end + MERGE_TOL:
                findings.append(Finding(
                    "SC302", f"intervals not disjoint: {prev} then {cur}", where
                ))
        if t_m is not None and anchors is not None:
            anchor = max(anchors.get(key[0], -INF), anchors.get(key[1], -INF))
            if floor is not None:
                anchor = max(anchor, floor)
            if anchor > -INF:
                bound = anchor + t_m + MERGE_TOL
                for iv in intervals:
                    if iv.end > bound:
                        findings.append(Finding(
                            "SC303",
                            f"interval {iv} exceeds the TC bound "
                            f"{anchor:g} + T_M = {anchor + t_m:g}",
                            where,
                        ))
        for oid in key:
            if key not in by_oid.get(oid, ()):
                findings.append(Finding(
                    "SC304", f"pair not registered under oid {oid}", where
                ))
        if has_frontier and (intervals[0].end, key) not in frontier:
            findings.append(Finding(
                "SC305",
                f"no live frontier entry for first end {intervals[0].end:g}; "
                "prune_expired would never visit this pair",
                where,
            ))
    for oid, keys in by_oid.items():
        for key in keys:
            if key not in pairs:
                findings.append(Finding(
                    "SC304",
                    f"oid {oid} references unknown pair {key}",
                    f"{label}/oid {oid}",
                ))
            elif oid not in key:
                findings.append(Finding(
                    "SC304",
                    f"oid {oid} indexed under foreign pair {key}",
                    f"{label}/oid {oid}",
                ))
    return findings


# ----------------------------------------------------------------------
# Sharded engine state
# ----------------------------------------------------------------------
def check_sharded_state(
    state: Dict[str, object], label: str = "sharded"
) -> List[Finding]:
    """Shard invariants of a sharded-engine export (codes SC401–SC403).

    ``state`` is the JSON-safe snapshot produced by
    :meth:`~repro.par.sharded.ShardedJoinEngine.export_state` (format
    ``"repro.par/1"``).  Everything is recomputed from the exported
    object parameters — the checker shares no code with
    :mod:`repro.par` beyond the geometry primitives, so it audits the
    engine rather than restating it.

    * **SC401** — the stripe partition covers the domain: cuts strictly
      increasing, shard ids exactly ``0..K-1``.
    * **SC402** — ghost membership matches the horizon rule: each
      object's declared member set equals the stripes its kinetic box
      sweeps over ``[t_ref, t_ref + ghost_horizon]``, and each shard
      holds exactly its members.
    * **SC403** — the merged store is a duplicate-free union: a pair
      stored on several shards carries a bit-identical interval list on
      every copy, and a shard storing a pair holds both endpoints.
    """
    findings: List[Finding] = []
    fmt = state.get("format")
    if fmt != "repro.par/1":
        findings.append(Finding("SC401", f"unknown export format {fmt!r}", label))
        return findings
    cuts = [float(c) for c in state["cuts"]]
    axis = int(state["axis"])
    horizon = float(state["ghost_horizon"])
    shards = state["shards"]
    n_shards = len(cuts) + 1

    # SC401: K-1 increasing cuts <=> K stripes tiling (-inf, +inf).
    if any(b <= a for a, b in zip(cuts, cuts[1:])):
        findings.append(Finding(
            "SC401", f"cuts not strictly increasing: {cuts}", label
        ))
    shard_ids = [int(s["shard"]) for s in shards]
    if sorted(shard_ids) != list(range(n_shards)):
        findings.append(Finding(
            "SC401",
            f"{len(cuts)} cuts imply shards 0..{n_shards - 1}, engine "
            f"reports {sorted(shard_ids)}",
            label,
        ))
        return findings  # membership recompute needs a sane shard set

    # SC402: recompute each object's swept ghost membership from its
    # exported kinetic parameters and compare against both the declared
    # member list and the actual shard contents.
    residents_a = {int(s["shard"]): set(s["objects_a"]) for s in shards}
    residents_b = {int(s["shard"]): set(s["objects_b"]) for s in shards}
    members_of: Dict[int, Set[int]] = {}
    for entry in state["objects"]:
        oid = int(entry["oid"])
        where = f"{label}/object {oid}"
        kbox = KineticBox.from_params(tuple(entry["params"]))
        lo, hi = sweep_bounds(kbox, axis, kbox.t_ref, kbox.t_ref + horizon)
        # Stripe boundaries belong to both neighbors (closed semantics).
        expected = list(range(bisect_left(cuts, lo), bisect_right(cuts, hi) + 1))
        declared = [int(m) for m in entry["members"]]
        members_of[oid] = set(expected)
        if declared != expected:
            findings.append(Finding(
                "SC402",
                f"declared members {declared} != swept-halo members {expected}",
                where,
            ))
        residents = residents_a if entry["dataset"] == "a" else residents_b
        for sid in range(n_shards):
            if oid in residents[sid]:
                if sid not in expected:
                    findings.append(Finding(
                        "SC402",
                        f"resident on shard {sid} outside its halo {expected}",
                        where,
                    ))
            elif sid in expected:
                findings.append(Finding(
                    "SC402", f"missing from member shard {sid}", where
                ))
    for sid in range(n_shards):
        for oid in sorted(
            (residents_a[sid] | residents_b[sid]) - set(members_of)
        ):
            findings.append(Finding(
                "SC402",
                f"shard resident {oid} unknown to the engine",
                f"{label}/shard {sid}",
            ))

    # SC403: co-located pair copies must agree bit-for-bit, and a shard
    # can only have computed a pair it holds both endpoints of.
    first_copy: Dict[Tuple[int, int], Tuple[int, List]] = {}
    for s in shards:
        sid = int(s["shard"])
        for key_list, ivs in s["store"]:
            key = (int(key_list[0]), int(key_list[1]))
            where = f"{label}/shard {sid}/pair {key}"
            for oid in key:
                if sid not in members_of.get(oid, ()):
                    findings.append(Finding(
                        "SC403",
                        f"stored pair endpoint {oid} is not a member of "
                        f"shard {sid}",
                        where,
                    ))
            prior = first_copy.get(key)
            if prior is None:
                first_copy[key] = (sid, ivs)
            elif prior[1] != ivs:
                findings.append(Finding(
                    "SC403",
                    f"interval list {ivs} differs from shard {prior[0]}'s "
                    f"copy {prior[1]}",
                    where,
                ))
    return findings


# ----------------------------------------------------------------------
# Shard supervisor state
# ----------------------------------------------------------------------
def check_supervisor_state(
    state: Dict[str, object], label: str = "supervisor"
) -> List[Finding]:
    """Supervision invariants of a supervisor export (codes SC501–SC503).

    ``state`` is the JSON-safe snapshot produced by
    :meth:`~repro.par.supervisor.ShardSupervisor.export_state` (format
    ``"repro.par.supervisor/1"``).

    * **SC501** — every shard's op log is bounded: its length never
      exceeds the checkpoint interval (the supervisor must have taken
      a checkpoint and truncated the log by then), and logged commands
      are all state-mutating ops.
    * **SC502** — checkpoint/engine epoch agreement: each shard's
      replay base carries exactly the shard's current epoch, and its
      reference time never runs ahead of the engine clock.
    * **SC503** — no commands are addressed to a dead slot: every
      non-degraded shard is assigned to a slot that exists and is
      alive (degraded shards execute in-process and need no worker).
    """
    findings: List[Finding] = []
    fmt = state.get("format")
    if fmt != "repro.par.supervisor/1":
        findings.append(Finding("SC501", f"unknown export format {fmt!r}", label))
        return findings
    interval = state.get("checkpoint_interval")
    now = state.get("now")
    slots = {int(s["slot"]): s for s in state["slots"]}
    mutating = {"build", "restore", "initial_join", "tick", "ops", "prune"}

    for entry in state["shards"]:
        sid = int(entry["shard"])
        where = f"{label}/shard {sid}"

        # SC501: bounded, well-formed op log.
        log_len = int(entry["oplog_len"])
        if interval is not None and log_len > int(interval):
            findings.append(Finding(
                "SC501",
                f"op log holds {log_len} commands, checkpoint interval "
                f"is {interval}",
                where,
            ))
        for op in entry.get("oplog_ops", ()):
            if op not in mutating:
                findings.append(Finding(
                    "SC501", f"non-mutating command {op!r} in the op log", where
                ))

        # SC502: replay base agrees with the shard's epoch and clock.
        checkpoint = entry.get("checkpoint")
        if checkpoint is not None:
            if int(checkpoint["epoch"]) != int(entry["epoch"]):
                findings.append(Finding(
                    "SC502",
                    f"checkpoint epoch {checkpoint['epoch']} != shard "
                    f"epoch {entry['epoch']}",
                    where,
                ))
            if now is not None and float(checkpoint["now"]) > float(now):
                findings.append(Finding(
                    "SC502",
                    f"checkpoint reference time {checkpoint['now']} is "
                    f"ahead of the engine clock {now}",
                    where,
                ))
        elif log_len:
            findings.append(Finding(
                "SC502", f"{log_len} logged commands but no replay base", where
            ))

        # SC503: commands must be routable to a live executor.
        slot = slots.get(int(entry["slot"]))
        if slot is None:
            findings.append(Finding(
                "SC503", f"assigned to unknown slot {entry['slot']}", where
            ))
        elif not entry.get("degraded") and not (
            slot.get("alive") or slot.get("degraded")
        ):
            findings.append(Finding(
                "SC503",
                f"assigned to dead slot {entry['slot']} without "
                f"degradation",
                where,
            ))
    return findings


# ----------------------------------------------------------------------
# Columnar store / engine
# ----------------------------------------------------------------------
def check_column_store(store, t_now: float, label: str = "columns") -> List[Finding]:
    """Invariants of one :class:`~repro.core.columns.ColumnStore` (SC601–SC603).

    * **SC601** — the id ↔ row map is a bijection onto the dense live
      prefix: every id files exactly one row in ``[0, n)``, every live
      row's stored id points back at it.
    * **SC602** — the incrementally maintained pre-shifted bounds are
      *bit-identical* to a fresh recompute (``slo = mlo - vlo * tref``);
      any drift here would silently break the kernels' exactness
      contract.
    * **SC603** — reference times never run ahead of the engine clock
      and all live values are finite.
    """
    import numpy as np

    findings: List[Finding] = []
    n = store.n
    row_of = store._row_of
    if len(row_of) != n:
        findings.append(Finding(
            "SC601", f"row map holds {len(row_of)} ids for {n} live rows", label
        ))
    for oid, row in row_of.items():
        if not 0 <= row < n:
            findings.append(Finding(
                "SC601", f"id {oid} filed at row {row} outside [0, {n})", label
            ))
        elif int(store.oid[row]) != oid:
            findings.append(Finding(
                "SC601",
                f"row {row} stores id {int(store.oid[row])}, map says {oid}",
                label,
            ))
    live = slice(0, n)
    # Exact equality on purpose: the incremental shift must be the very
    # bits a fresh pack would produce (see the kernels' exactness
    # contract).
    expect_slo = store.mlo[:, live] - store.vlo[:, live] * store.tref[live]
    expect_shi = store.mhi[:, live] - store.vhi[:, live] * store.tref[live]
    if not np.array_equal(store.slo[:, live], expect_slo):  # noqa: RC001
        findings.append(Finding(
            "SC602", "pre-shifted lower bounds drifted from recompute", label
        ))
    if not np.array_equal(store.shi[:, live], expect_shi):  # noqa: RC001
        findings.append(Finding(
            "SC602", "pre-shifted upper bounds drifted from recompute", label
        ))
    if n:
        if float(store.tref[live].max()) > t_now:
            findings.append(Finding(
                "SC603",
                f"reference time {float(store.tref[live].max()):g} runs ahead "
                f"of the clock t={t_now:g}",
                label,
            ))
        for name in ("mlo", "mhi", "vlo", "vhi"):
            if not np.isfinite(getattr(store, name)[:, live]).all():
                findings.append(Finding(
                    "SC603", f"non-finite values in column {name}", label
                ))
    return findings


def check_delta_ledger(store, source, label: str = "ledger") -> List[Finding]:
    """Reconcile a delta event source against its live store (SC701–SC703).

    ``source`` is anything with the ledger read surface — a
    :class:`~repro.deltas.DeltaLedger` (per-engine, possibly carrying a
    restore baseline) or a :class:`~repro.deltas.ShardDeltaMerger` (the
    sharded parent).  Three invariants:

    * **SC702** — the tick sequence is strictly increasing (events are
      appended in clock order, never back-dated).
    * **SC703** — the netted stream is well-formed: folding it never
      adds a row twice nor removes an absent one (the exactly-once
      grammar; a duplicated or lost emission surfaces here).
    * **SC701** — the fold lands exactly on the store: baseline ⊕
      events equals the live interval rows bit-for-bit.
    """
    from ..deltas import DeltaReplayError, DeltaView

    findings: List[Finding] = []
    ticks = source.ticks()
    for i in range(1, len(ticks)):
        if not ticks[i - 1] < ticks[i]:
            findings.append(Finding(
                "SC702",
                f"tick sequence not strictly increasing: "
                f"{ticks[i - 1]:g} then {ticks[i]:g}",
                f"{label}/tick {i}",
            ))
            return findings
    baseline = getattr(source, "baseline_rows", None)
    view = DeltaView(baseline() if baseline is not None else None)
    for t in ticks:
        for event in source.events_at(t):
            try:
                view.apply(event)
            except DeltaReplayError as exc:
                findings.append(Finding(
                    "SC703", str(exc), f"{label}/tick {t:g}"
                ))
                return findings
    folded = view.rows()
    live = store.interval_rows()
    if folded != live:  # noqa: RC001 - bit-exact reconciliation on purpose
        missing = sorted(set(live) - set(folded))[:3]
        extra = sorted(set(folded) - set(live))[:3]
        drifted = sorted(
            key for key in set(live) & set(folded)
            if live[key] != folded[key]  # noqa: RC001
        )[:3]
        findings.append(Finding(
            "SC701",
            "folded delta view diverges from the live store "
            f"({len(folded)} vs {len(live)} pairs; missing {missing}, "
            f"extra {extra}, drifted {drifted})",
            label,
        ))
    return findings


def check_column_result_store(
    store,
    t_m: Optional[float] = None,
    anchors: Optional[Dict[int, float]] = None,
    floor: Optional[float] = None,
    label: str = "column-store",
) -> List[Finding]:
    """Columnar result-store invariants (codes SC801–SC803, plus SC303).

    The SoA analogue of :func:`check_result_store`, audited directly on
    the planes of a :class:`~repro.core.result.ColumnResultStore` (the
    store is flushed first so the canonical layout is what's checked):

    * **SC801** — the planes are sorted by ``(a, b, lo)`` and each
      pair's intervals are pairwise disjoint beyond the merge tolerance
      (the columnar mirror of SC301/SC302).
    * **SC802** — the searchsorted inverted index agrees with the
      planes: the cached pair-run boundaries equal a fresh recompute,
      and the lazy ``b``-side ordering, when built, actually sorts the
      ``b`` plane.
    * **SC803** — bookkeeping is coherent after a flush: no pending
      batches or dead rows survive, the pair count matches the run
      boundaries, and every row is a valid interval (finite start,
      no NaN, ``lo <= hi``).

    The Theorem-1/2 window bound is shared with the list store and
    reported under the same **SC303** code (``anchors``/``floor``
    semantics identical to :func:`check_result_store`).  Ledger
    reconciliation stays with :func:`check_delta_ledger` — the SC701–703
    fold works off ``interval_rows()`` and needs no layout-specific
    twin.
    """
    import numpy as np

    findings: List[Finding] = []
    store.flush()
    n = store._n
    a = store._a[:n]
    b = store._b[:n]
    lo = store._lo[:n]
    hi = store._hi[:n]

    # SC801: global (a, b, lo) order, per-pair disjointness.
    if n > 1:
        same_pair = (a[1:] == a[:-1]) & (b[1:] == b[:-1])
        pair_order = (a[1:] > a[:-1]) | ((a[1:] == a[:-1]) & (b[1:] >= b[:-1]))
        if not bool(pair_order.all()):
            row = int(np.nonzero(~pair_order)[0][0]) + 1
            findings.append(Finding(
                "SC801",
                f"pair keys out of order at row {row}: "
                f"({int(a[row - 1])}, {int(b[row - 1])}) then "
                f"({int(a[row])}, {int(b[row])})",
                label,
            ))
        bad_lo = same_pair & (lo[1:] < lo[:-1])
        if bool(bad_lo.any()):
            row = int(np.nonzero(bad_lo)[0][0]) + 1
            findings.append(Finding(
                "SC801",
                f"interval starts out of order within pair "
                f"({int(a[row])}, {int(b[row])}) at row {row}",
                label,
            ))
        overlap = same_pair & ~bad_lo & (lo[1:] <= hi[:-1] + MERGE_TOL)
        if bool(overlap.any()):
            row = int(np.nonzero(overlap)[0][0]) + 1
            findings.append(Finding(
                "SC801",
                f"intervals not disjoint within pair "
                f"({int(a[row])}, {int(b[row])}): "
                f"[{lo[row - 1]:g}, {hi[row - 1]:g}] then "
                f"[{lo[row]:g}, {hi[row]:g}]",
                label,
            ))

    # SC802: cached index structures versus a fresh recompute.  The
    # boundary scan is restated inline (not imported from repro.core) so
    # the checker audits the store without sharing its code.
    if n == 0:
        expect_runs = np.empty(0, dtype=np.int64)
    else:
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.logical_or(a[1:] != a[:-1], b[1:] != b[:-1], out=boundary[1:])
        expect_runs = np.nonzero(boundary)[0]
    if not np.array_equal(store._run_starts, expect_runs):  # noqa: RC001
        findings.append(Finding(
            "SC802",
            f"cached pair-run boundaries ({store._run_starts.shape[0]}) "
            f"diverge from recompute ({expect_runs.shape[0]})",
            label,
        ))
    if store._b_order is not None:
        order = store._b_order
        if order.shape[0] != n or not bool(
            np.all(b[order][1:] >= b[order][:-1]) if n > 1 else True
        ):
            findings.append(Finding(
                "SC802", "b-side inverted index does not sort the b plane", label
            ))

    # SC803: flush left coherent bookkeeping and valid rows.
    if store._pend or store._dead:
        findings.append(Finding(
            "SC803",
            f"flush left {len(store._pend)} pending batches and "
            f"{store._dead} dead rows",
            label,
        ))
    if not bool(store._live[:n].all()):
        findings.append(Finding(
            "SC803", "dead rows survived a flush", label
        ))
    if store._n_pairs != expect_runs.shape[0]:
        findings.append(Finding(
            "SC803",
            f"pair count {store._n_pairs} does not match "
            f"{expect_runs.shape[0]} pair runs",
            label,
        ))
    if n:
        if bool(np.isnan(lo).any()) or bool(np.isnan(hi).any()):
            findings.append(Finding("SC803", "NaN interval endpoints", label))
        if bool(np.isinf(lo).any()):
            findings.append(Finding("SC803", "interval starting at +inf", label))
        bad = hi < lo
        if bool(bad.any()):
            row = int(np.nonzero(bad)[0][0])
            findings.append(Finding(
                "SC803", f"empty interval [{lo[row]:g}, {hi[row]:g}]", label
            ))

    # SC303: the shared Theorem-1/2 window bound, on the planes.
    if t_m is not None and anchors is not None and n:
        anchor = np.full(n, -INF)
        if anchors:
            keys = np.fromiter(anchors.keys(), dtype=np.int64, count=len(anchors))
            vals = np.fromiter(anchors.values(), dtype=float, count=len(anchors))
            order = np.argsort(keys)
            keys, vals = keys[order], vals[order]

            def look(oids: np.ndarray) -> np.ndarray:
                pos = np.searchsorted(keys, oids)
                pos[pos >= keys.shape[0]] = 0
                hit = keys[pos] == oids
                out = np.where(hit, vals[pos], -INF)
                return out

            anchor = np.maximum(look(a), look(b))
        if floor is not None:
            anchor = np.maximum(anchor, floor)
        bound = anchor + t_m + MERGE_TOL
        bad = (anchor > -INF) & (hi > bound)
        if bool(bad.any()):
            row = int(np.nonzero(bad)[0][0])
            findings.append(Finding(
                "SC303",
                f"interval [{lo[row]:g}, {hi[row]:g}] of pair "
                f"({int(a[row])}, {int(b[row])}) exceeds the TC bound "
                f"{anchor[row]:g} + T_M = {anchor[row] + t_m:g}",
                f"{label}/pair ({int(a[row])}, {int(b[row])})",
            ))
    return findings


def sanitize_columnar_engine(engine) -> List[Finding]:
    """Check everything a columnar engine maintains.

    Both column stores (SC601–SC603) plus the result-store invariants —
    SC301–SC305 when the engine keeps per-pair interval lists,
    SC801–SC803 when it keeps interval planes — with the same
    Theorem-1/2 interval bound the object engine is audited against:
    per-object anchors are the reference times (TC) or their bucket
    ends (MTB), straight from the live ``tref`` column.
    """
    t = engine.now
    findings: List[Finding] = []
    findings.extend(check_column_store(engine.columns_a, t, label="columns_a"))
    findings.extend(check_column_store(engine.columns_b, t, label="columns_b"))
    anchors: Dict[int, float] = {}
    for store in (engine.columns_a, engine.columns_b):
        oids = store.oids.tolist()
        if engine.algorithm == "mtb":
            length = engine.config.bucket_length
            ends = (
                (store.bucket_keys(length) + 1).astype(float) * length
            ).tolist()
        else:
            ends = store.tref[: store.n].tolist()
        anchors.update(zip(oids, ends))
    # Duck-typed layout dispatch (this module never imports repro.core):
    # the SoA store is the one with cached pair-run boundaries.
    checker = (
        check_column_result_store
        if hasattr(engine.store, "_run_starts")
        else check_result_store
    )
    findings.extend(checker(
        engine.store,
        t_m=engine.config.t_m,
        anchors=anchors,
        floor=getattr(engine, "start_time", None),
    ))
    if engine.ledger is not None:
        engine.store.flush()
        findings.extend(check_delta_ledger(engine.store, engine.ledger))
    return findings


# ----------------------------------------------------------------------
# Dispatchers
# ----------------------------------------------------------------------
def check_index(index, t_now: float, label: str = "index") -> List[Finding]:
    """Audit one index — a TPR(*)-tree or an MTB forest."""
    if hasattr(index, "trees"):
        return check_mtb_forest(index, t_now, label=label)
    return check_tpr_tree(index, t_now, label=label)


def _tree_anchors(strategy) -> Dict[int, float]:
    """oid → last update time, from the strategy's single trees."""
    anchors: Dict[int, float] = {}
    for name in ("tree_a", "tree_b"):
        tree = getattr(strategy, name, None)
        if tree is not None:
            for obj in tree.all_objects():
                anchors[obj.oid] = obj.t_ref
    return anchors


def _forest_anchors(*forests) -> Dict[int, float]:
    """oid → bucket-end of its last update time (the Theorem-2 widening)."""
    anchors: Dict[int, float] = {}
    for forest in forests:
        if forest is None:
            continue
        for obj in forest.all_objects():
            anchors[obj.oid] = forest.bucket_end(forest.bucket_key(obj.t_ref))
    return anchors


def sanitize_engine(engine) -> List[Finding]:
    """Check every structure a continuous-join engine maintains.

    Accepts both :class:`~repro.core.engine.ContinuousJoinEngine`
    (whatever its strategy) and
    :class:`~repro.core.selfjoin.ContinuousSelfJoinEngine`; the
    structures present are discovered by attribute.
    """
    t = engine.now
    findings: List[Finding] = []

    # Self-join engine: one forest, one canonical-pair store.
    if not hasattr(engine, "_strategy"):
        findings.extend(check_mtb_forest(engine.forest, t, label="forest"))
        findings.extend(check_result_store(
            engine.store,
            t_m=engine.config.t_m,
            anchors=_forest_anchors(engine.forest),
            floor=getattr(engine, "start_time", None),
        ))
        return findings

    strategy = engine._strategy
    for name in ("tree_a", "tree_b"):
        tree = getattr(strategy, name, None)
        if tree is not None:
            findings.extend(check_tpr_tree(tree, t, label=name))
    for name in ("forest_a", "forest_b"):
        forest = getattr(strategy, name, None)
        if forest is not None:
            findings.extend(check_mtb_forest(forest, t, label=name))

    store = getattr(strategy, "store", None)
    if store is not None:
        t_m: Optional[float] = None
        anchors: Optional[Dict[int, float]] = None
        if engine.algorithm == "tc":
            t_m = engine.config.t_m
            anchors = _tree_anchors(strategy)
        elif engine.algorithm == "mtb":
            t_m = engine.config.t_m
            anchors = _forest_anchors(
                getattr(strategy, "forest_a", None),
                getattr(strategy, "forest_b", None),
            )
        findings.extend(check_result_store(
            store, t_m=t_m, anchors=anchors,
            floor=getattr(engine, "start_time", None),
        ))
        ledger = getattr(engine, "ledger", None)
        if ledger is not None:
            findings.extend(check_delta_ledger(store, ledger))
    return findings
