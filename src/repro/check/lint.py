"""Static domain lint for the TC-join codebase (``RC001``–``RC006``).

An AST-based pass over source files that machine-checks the project's
coding rules — the ones whose violation produces silently wrong join
results rather than crashes:

``RC001``
    Raw float ``==``/``!=`` on time or coordinate values.  Timestamps
    and box bounds are derived floats; exact equality on them is almost
    always a rounding bug.  The interval algebra
    (``geometry/interval.py``) is the sanctioned home of exact endpoint
    comparison and is exempt, as are ``__eq__``/``__ne__``/``__hash__``
    implementations and comparisons against the exact sentinels ``0.0``
    and ``±INF``.
``RC002``
    Wall-clock access (``time.time``, ``time.monotonic``,
    ``datetime.now``, …) anywhere but the single sanctioned clock
    module :mod:`repro.metrics`, which exports ``monotonic_clock``
    (mirroring how ``geometry/constants.py`` is the single source of
    tolerances for RC006).  The simulation-time layers (``core/``,
    ``join/``, ``index/``) are held to the stricter rule that they may
    not even *import* ``time``/``datetime`` — they run on simulation
    time only.
``RC003``
    Mutable default argument (``def f(x=[])``).
``RC004``
    Bare ``except:``.
``RC005``
    Public module-level function or public method in ``geometry/``
    missing parameter or return annotations — the geometry substrate is
    the package's typed contract surface.
``RC006``
    Scalar/kernel drift guard: ``geometry/intersection.py`` and
    ``geometry/kernels.py`` must source their tolerances from
    :mod:`repro.geometry.constants` and may not re-inline the literal
    values; the bit-exactness contract between the two paths (DESIGN.md
    §5.1) depends on a single shared definition.

Deliberate violations may be suppressed per line with
``# noqa: RC00x`` (comma-separated codes), which should carry a
justification comment.

Run as ``python -m repro.check lint src/``; exits non-zero on any
finding.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from .errors import Finding

__all__ = ["lint_file", "lint_paths", "lint_source"]

#: Terminal identifiers treated as time/coordinate values by RC001.
TIME_COORD_NAMES = frozenset({
    "t", "t0", "t1", "t_ref", "tref", "t_now", "t_start", "t_end",
    "t_u", "t_eval", "t_mid", "t_eb", "start", "end", "lo", "hi",
    "x_lo", "x_hi", "y_lo", "y_hi", "lut", "expiry", "min_inf", "time",
})

#: Call targets counted as wall-clock reads by RC002.
WALL_CLOCK_ATTRS = frozenset({
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "clock"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Directories whose code runs on simulation time only (RC002).
SIM_TIME_DIRS = ("core", "join", "index")

#: The one file allowed to read the real clock (RC002): it exports
#: ``monotonic_clock``, the package's single sanctioned clock source.
CLOCK_MODULE = "metrics.py"

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")


def _noqa_codes(line: str) -> Set[str]:
    match = _NOQA_RE.search(line)
    if not match:
        return set()
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The identifier a Name/Attribute operand ultimately denotes."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_exact_sentinel(node: ast.expr) -> bool:
    """Whether comparing against ``node`` is exact: ``0``/``0.0``/±INF."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_exact_sentinel(node.operand)
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value == 0
    name = _terminal_name(node)
    return name is not None and name.lower() in ("inf", "infinity")


def _tolerance_values() -> Set[float]:
    """Float constants exported by :mod:`repro.geometry.constants`."""
    from ..geometry import constants

    return {
        value
        for name, value in vars(constants).items()
        if not name.startswith("_") and isinstance(value, float)
    }


class _Linter(ast.NodeVisitor):
    """Single-file visitor collecting RC001–RC005 findings."""

    def __init__(self, rel_parts: Sequence[str], display_path: str):
        self.rel_parts = tuple(rel_parts)
        self.display_path = display_path
        self.findings: List[Finding] = []
        self._func_stack: List[str] = []
        self.in_sim_dir = any(part in SIM_TIME_DIRS for part in self.rel_parts[:-1])
        self.is_clock_module = self.rel_parts[-1] == CLOCK_MODULE
        self.in_interval_module = self.rel_parts[-2:] == ("geometry", "interval.py")
        self.in_geometry = "geometry" in self.rel_parts[:-1]
        self._class_depth = 0

    # -- plumbing ------------------------------------------------------
    def _add(self, code: str, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(code, message, f"{self.display_path}:{line}")
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        public_class = not node.name.startswith("_")
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._handle_function(child, method_of_public_class=public_class)
            else:
                self.visit(child)
        self._class_depth -= 1

    def _handle_function(
        self,
        node,
        method_of_public_class: bool = False,
    ) -> None:
        self._check_mutable_defaults(node)
        if self.in_geometry:
            self._check_annotations(node, method_of_public_class)
        self._func_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._func_stack.pop()

    # -- RC001 ---------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        self.generic_visit(node)
        if self.in_interval_module:
            return
        if self._func_stack and self._func_stack[-1] in (
            "__eq__", "__ne__", "__hash__"
        ):
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_exact_sentinel(left) or _is_exact_sentinel(right):
                continue
            for side in (left, right):
                name = _terminal_name(side)
                if name in TIME_COORD_NAMES:
                    self._add(
                        "RC001",
                        f"raw float equality on time/coordinate value "
                        f"{name!r}; compare with a tolerance or restrict "
                        f"to geometry/interval.py",
                        node,
                    )
                    break

    # -- RC002 ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if self.in_sim_dir:
            for alias in node.names:
                if alias.name.split(".")[0] in ("time", "datetime"):
                    self._add(
                        "RC002",
                        f"import of {alias.name!r} in a simulation-time "
                        f"layer; route timing through "
                        f"repro.metrics.monotonic_clock",
                        node,
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_sim_dir and node.level == 0 and node.module:
            if node.module.split(".")[0] in ("time", "datetime"):
                self._add(
                    "RC002",
                    f"import from {node.module!r} in a simulation-time "
                    f"layer; route timing through "
                    f"repro.metrics.monotonic_clock",
                    node,
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.is_clock_module and isinstance(node.func, ast.Attribute):
            owner = _terminal_name(node.func.value)
            if (owner, node.func.attr) in WALL_CLOCK_ATTRS:
                where = (
                    "a simulation-time layer"
                    if self.in_sim_dir
                    else "non-clock code"
                )
                self._add(
                    "RC002",
                    f"wall-clock call {owner}.{node.func.attr}() in "
                    f"{where}; use repro.metrics.monotonic_clock (the "
                    f"single sanctioned clock source)",
                    node,
                )
        self.generic_visit(node)

    # -- RC003 ---------------------------------------------------------
    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._add(
                    "RC003",
                    f"mutable default argument in {node.name}(); "
                    f"use None and create inside",
                    default,
                )

    # -- RC004 ---------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add("RC004", "bare except: catches SystemExit/KeyboardInterrupt", node)
        self.generic_visit(node)

    # -- RC005 ---------------------------------------------------------
    def _check_annotations(self, node, method_of_public_class: bool) -> None:
        if node.name.startswith("_"):
            return
        is_module_level = not self._func_stack and self._class_depth == 0
        if not (is_module_level or method_of_public_class):
            return
        # Properties and other descriptor-decorated methods keep their
        # contract on the getter's return type; skip decorated defs
        # except the classmethod/staticmethod builders.
        decorators = {
            _terminal_name(d) if not isinstance(d, ast.Call) else _terminal_name(d.func)
            for d in node.decorator_list
        }
        if decorators - {"classmethod", "staticmethod"}:
            return
        args = [
            a
            for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        missing = [a.arg for a in args if a.annotation is None]
        if node.args.vararg is not None and node.args.vararg.annotation is None:
            missing.append("*" + node.args.vararg.arg)
        if node.args.kwarg is not None and node.args.kwarg.annotation is None:
            missing.append("**" + node.args.kwarg.arg)
        if missing:
            self._add(
                "RC005",
                f"public geometry function {node.name}() missing parameter "
                f"annotations: {', '.join(missing)}",
                node,
            )
        if node.returns is None and node.name != "__init__":
            self._add(
                "RC005",
                f"public geometry function {node.name}() missing return annotation",
                node,
            )


# ----------------------------------------------------------------------
# RC006 — tolerance drift guard
# ----------------------------------------------------------------------
_DRIFT_GUARDED = (("geometry", "intersection.py"), ("geometry", "kernels.py"))


def _check_drift_guard(
    tree: ast.Module, rel_parts: Sequence[str], display_path: str
) -> List[Finding]:
    tail = tuple(rel_parts[-2:])
    if tail not in _DRIFT_GUARDED:
        return []
    findings: List[Finding] = []
    imports_constants = any(
        isinstance(node, ast.ImportFrom)
        and (node.module or "").split(".")[-1] == "constants"
        for node in ast.walk(tree)
    )
    if not imports_constants:
        findings.append(Finding(
            "RC006",
            "pair-test path must import its tolerances from "
            "repro.geometry.constants (shared pre-shifted-constant contract)",
            f"{display_path}:1",
        ))
    shared = _tolerance_values()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value in shared
        ):
            findings.append(Finding(
                "RC006",
                f"inline tolerance literal {node.value!r}; reference "
                f"repro.geometry.constants instead",
                f"{display_path}:{node.lineno}",
            ))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str, rel_parts: Sequence[str], display_path: str
) -> List[Finding]:
    """Lint one file's source text.

    ``rel_parts`` is the path relative to the lint root, split into
    parts — it decides which directory-scoped rules apply.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("RC000", f"syntax error: {exc.msg}",
                        f"{display_path}:{exc.lineno or 0}")]
    linter = _Linter(rel_parts, display_path)
    linter.visit(tree)
    findings = linter.findings + _check_drift_guard(tree, rel_parts, display_path)
    lines = source.splitlines()
    kept: List[Finding] = []
    for finding in findings:
        lineno = int(finding.location.rsplit(":", 1)[-1] or 0)
        line = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        if finding.code not in _noqa_codes(line):
            kept.append(finding)
    kept.sort(key=lambda f: (f.location.rsplit(":", 1)[0],
                             int(f.location.rsplit(":", 1)[-1] or 0), f.code))
    return kept


def lint_file(path: Path, root: Optional[Path] = None) -> List[Finding]:
    """Lint one ``.py`` file; ``root`` anchors directory-scoped rules."""
    path = Path(path)
    base = root if root is not None else path.parent
    try:
        rel_parts = path.relative_to(base).parts
    except ValueError:
        rel_parts = path.parts[-2:]
    return lint_source(path.read_text(), rel_parts, str(path))


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint files and directory trees; directories are walked recursively."""
    findings: List[Finding] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                findings.extend(lint_file(file, root=path))
        else:
            findings.extend(lint_file(path))
    return findings
