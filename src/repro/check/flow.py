"""Cross-module flow lint (``RC1xx`` protocol, ``RC2xx`` kernels/registry).

Where :mod:`repro.check.lint` checks one file at a time, this pass
builds a package-wide :class:`~repro.check.symbols.SymbolTable` and
verifies the *cross-file contracts* the reproduction's aggressive
refactors lean on.  Everything is extracted from the real source via
AST — there are no duplicated op lists or code tables to drift.

Protocol completeness (``RC101``–``RC107``)
    The declared command vocabulary (:mod:`repro.par.protocol`), the
    worker dispatch (``execute`` / ``apply_shard_ops``), the emission
    sites in the sharded engine and supervisor, the op-log
    ``mutating`` flags, the checkpoint blob's produced/consumed keys,
    and the fault-spec grammar must all agree.

Kernel-triple parity (``RC201``–``RC203``)
    The scalar pair-test path, the NumPy kernels, and the compiled
    facade must keep matching signatures, source their tolerances from
    ``geometry/constants.py`` (generalizing ``RC006`` over the whole
    triple), and wire the compiled bodies to the facade in field order.

Registry consistency (``RC211``–``RC213``)
    Every ``SC``/``RC`` code is unique and never recycled from
    :data:`~repro.check.errors.RETIRED_CODES`; every code raised in
    source is registered and documented in DESIGN.md; every registered
    code is referenced by at least one detection test.

Code table
----------

========  ============================================================
``RC101``  protocol/emitted op without a dispatch arm
``RC102``  dispatch arm for an op missing from the protocol registry
``RC103``  dispatch arm mutates state but its op is not ``mutating``
``RC104``  checkpoint produced/consumed key mismatch
``RC105``  fault spec names an unknown fault kind or command op
``RC106``  bare op-name string literal outside ``par/protocol.py``
``RC107``  worker dispatch present without a protocol module
``RC201``  kernel facade/NumPy signature drift
``RC202``  tolerance constant not sourced from ``geometry.constants``
``RC203``  kernel variant missing or wired to the facade out of order
``RC211``  duplicate or retired-and-reused error code
``RC212``  code raised in source but unregistered / undocumented
``RC213``  registered code never referenced by a detection test
========  ============================================================

Run as ``python -m repro.check flow src/``; DESIGN.md and ``tests/``
are located next to the analyzed root when present (the registry
checks that need them are skipped when they are absent, so the pass
also works on fixture trees).
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import Finding
from .symbols import (
    UNRESOLVED,
    ModuleInfo,
    MutationIndex,
    SymbolTable,
    terminal_call_name,
)

__all__ = ["check_flow", "flow_paths"]

#: Trailing parameters a NumPy kernel may carry beyond its facade
#: signature (batching/instrumentation knobs the compiled path lacks).
ALLOWED_EXTRA_PARAMS = frozenset({"backend", "counter", "chunk", "dim"})

_CODE_RE = re.compile(r"^(SC|RC)\d{3}$")
_FAULT_ENTRY_RE = re.compile(
    r"^[a-z_]+(:[a-z_]+=[^,;=]+(,[a-z_]+=[^,;=]+)*)?$"
)


# ----------------------------------------------------------------------
# Shared extraction helpers
# ----------------------------------------------------------------------
def _command_specs(
    table: SymbolTable, proto: ModuleInfo
) -> Optional[Dict[str, Dict[str, object]]]:
    """Per-op facts from the ``COMMANDS`` dict literal in protocol.py."""
    node = proto.assigns.get("COMMANDS")
    if not isinstance(node, ast.Dict):
        return None
    specs: Dict[str, Dict[str, object]] = {}
    for key, value in zip(node.keys, node.values):
        if key is None:
            continue
        op = table.const_eval(proto, key)
        if not isinstance(op, str):
            continue
        entry: Dict[str, object] = {
            "mutating": None,
            "n_args": None,
            "line": getattr(value, "lineno", 0),
        }
        if isinstance(value, ast.Call):
            for kw in value.keywords:
                if kw.arg in ("mutating", "n_args"):
                    val = table.const_eval(proto, kw.value)
                    if val is not UNRESOLVED:
                        entry[kw.arg] = val
        specs[op] = entry
    return specs


def _dispatch_arms(
    table: SymbolTable, mod: ModuleInfo, func: ast.FunctionDef
) -> Optional[Tuple[str, Dict[str, ast.If]]]:
    """``(op_variable, {op: If-node})`` of a string-dispatch function.

    The dispatch variable is the name most often compared ``==`` a
    resolvable string constant; each such comparison contributes one
    arm whose body is the If branch.
    """
    counts: Counter = Counter()
    comparisons: List[Tuple[ast.If, ast.Name, ast.expr]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            sides = (test.left, test.comparators[0])
            for name_side, const_side in (sides, sides[::-1]):
                if isinstance(name_side, ast.Name) and isinstance(
                    table.const_eval(mod, const_side), str
                ):
                    counts[name_side.id] += 1
                    comparisons.append((node, name_side, const_side))
                    break
    if not counts:
        return None
    opvar = counts.most_common(1)[0][0]
    arms: Dict[str, ast.If] = {}
    for if_node, name_side, const_side in comparisons:
        if name_side.id != opvar:
            continue
        op = table.const_eval(mod, const_side)
        if isinstance(op, str) and op not in arms:
            arms[op] = if_node
    return opvar, arms


def _engine_class_name(func: ast.FunctionDef) -> Optional[str]:
    """Class named by the registry param's ``Dict[int, <Class>]``."""
    if not func.args.args:
        return None
    annotation = func.args.args[0].annotation
    if annotation is None:
        return None
    skip = {"Dict", "dict", "List", "Optional", "Tuple", "Sequence", "Any"}
    candidates = [
        n.id
        for n in ast.walk(annotation)
        if isinstance(n, ast.Name) and n.id not in skip and n.id[:1].isupper()
    ]
    return candidates[-1] if candidates else None


def _docstring_ids(tree: ast.Module) -> Set[int]:
    """``id()`` of every docstring Constant node in the module."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


# ----------------------------------------------------------------------
# Protocol completeness (RC101-RC107)
# ----------------------------------------------------------------------
def _emitted_ops(
    table: SymbolTable, mod: ModuleInfo
) -> Dict[str, ast.AST]:
    """Command/shard ops this module emits: first elements of tuple
    literals plus first arguments of ``_fan_all``/``_run_everywhere``.

    The tuple-literal op slot must be a *name* resolving to a string:
    commands are always spelled with protocol constants, so a bare
    string there is RC106's finding, and plain data tuples that happen
    to start with a string literal are not misread as commands.
    """
    out: Dict[str, ast.AST] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Tuple) and node.elts:
            if not isinstance(node.elts[0], (ast.Name, ast.Attribute)):
                continue
            val = table.const_eval(mod, node.elts[0])
            if isinstance(val, str):
                out.setdefault(val, node)
        elif isinstance(node, ast.Call):
            name = terminal_call_name(node)
            if name in ("_fan_all", "_run_everywhere") and node.args:
                val = table.const_eval(mod, node.args[0])
                if isinstance(val, str):
                    out.setdefault(val, node)
    return out


def _produced_dict_keys(
    table: SymbolTable, mod: ModuleInfo, func: ast.FunctionDef
) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if key is None:
                    continue
                val = table.const_eval(mod, key)
                if isinstance(val, str):
                    keys.add(val)
    return keys


def _consumed_dict_keys(
    mod: ModuleInfo, roots: Iterable[ast.FunctionDef]
) -> Set[str]:
    """String keys read (``blob["k"]`` / ``blob.get("k")``) by the
    given functions and the module-local helpers they call."""
    keys: Set[str] = set()
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        func = stack.pop()
        if func.name in seen:
            continue
        seen.add(func.name)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    keys.add(node.args[0].value)
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in mod.functions
                ):
                    stack.append(mod.functions[node.func.id])
    return keys


def _fault_spec_errors(
    text: str, kinds: Set[str], ops: Set[str]
) -> List[str]:
    """Problems in one fault-spec string; ``[]`` when clean, and also
    ``[]`` when the string does not look like a fault spec at all."""
    entries = [e.strip() for e in text.split(";") if e.strip()]
    if not entries or not all(_FAULT_ENTRY_RE.match(e) for e in entries):
        return []
    if not any(":" in e and e.partition(":")[0] in kinds for e in entries):
        return []
    problems: List[str] = []
    for entry in entries:
        kind, _, rest = entry.partition(":")
        if kind not in kinds:
            problems.append(f"unknown fault kind {kind!r}")
            continue
        if not rest:
            continue
        for pair in rest.split(","):
            key, _, value = pair.partition("=")
            if key.strip() == "op" and value.strip() not in ops:
                problems.append(f"unknown command op {value.strip()!r}")
    return problems


def _check_protocol(
    table: SymbolTable, tests_root: Optional[Path]
) -> List[Finding]:
    findings: List[Finding] = []
    proto = table.find("par.protocol")
    wrk = table.find("par.worker")
    if wrk is None:
        return findings
    execute = wrk.functions.get("execute")
    if proto is None:
        if execute is not None:
            findings.append(Finding(
                "RC107",
                "worker command dispatch exists but there is no "
                "par/protocol.py declaring the command vocabulary",
                wrk.where(execute),
            ))
        return findings
    specs = _command_specs(table, proto)
    if specs is None or execute is None:
        return findings

    extracted = _dispatch_arms(table, wrk, execute)
    arms: Dict[str, ast.If] = {}
    registry_param = (
        execute.args.args[0].arg if execute.args.args else None
    )
    if extracted is not None:
        _opvar, arms = extracted

    # RC101/RC102: registry <-> dispatch arms, both directions.
    for op, spec in specs.items():
        if op not in arms:
            findings.append(Finding(
                "RC101",
                f"protocol op {op!r} has no dispatch arm in "
                f"{wrk.name}.execute()",
                f"{proto.path}:{spec['line']}",
            ))
    for op, if_node in arms.items():
        if op not in specs:
            findings.append(Finding(
                "RC102",
                f"dispatch arm for {op!r} but the op is not declared "
                f"in the protocol COMMANDS registry",
                wrk.where(if_node),
            ))

    # Shard sub-ops: same cross-check against apply_shard_ops.
    shard_ops_val = table.resolve_name(proto, "SHARD_OPS")
    shard_ops: Set[str] = (
        set(shard_ops_val) if isinstance(shard_ops_val, tuple) else set()
    )
    shard_arms: Dict[str, ast.If] = {}
    shard_dispatch = wrk.functions.get("apply_shard_ops")
    if shard_dispatch is not None:
        extracted = _dispatch_arms(table, wrk, shard_dispatch)
        if extracted is not None:
            _var, shard_arms = extracted
        for op in sorted(shard_ops):
            if op not in shard_arms:
                findings.append(Finding(
                    "RC101",
                    f"shard sub-op {op!r} has no dispatch arm in "
                    f"apply_shard_ops()",
                    wrk.where(shard_dispatch),
                ))
        for op, if_node in shard_arms.items():
            if op not in shard_ops:
                findings.append(Finding(
                    "RC102",
                    f"apply_shard_ops() arm for {op!r} but the sub-op "
                    f"is not declared in SHARD_OPS",
                    wrk.where(if_node),
                ))

    # RC103: inferred-mutating arms must be flagged mutating.
    engine_methods: Dict[str, ast.FunctionDef] = {}
    class_name = _engine_class_name(execute)
    if class_name is not None:
        info = table.find_class(class_name)
        if info is not None:
            engine_methods = info.methods
    index = MutationIndex(wrk, engine_methods)
    for op, if_node in arms.items():
        spec = specs.get(op)
        if spec is None or spec["mutating"] is not False:
            continue
        if index.stmts_mutate(if_node.body, registry_name=registry_param):
            findings.append(Finding(
                "RC103",
                f"dispatch arm for {op!r} reaches a state-mutating "
                f"call but the op is not flagged mutating (it would "
                f"be skipped by checkpoint/replay recovery)",
                wrk.where(if_node),
            ))

    # RC101 (emission direction): every op the engine/supervisor emits
    # must have a dispatch arm somewhere.
    for mod_suffix in ("par.sharded", "par.supervisor"):
        mod = table.find(mod_suffix)
        if mod is None:
            continue
        for op, node in _emitted_ops(table, mod).items():
            if op in arms or op in shard_arms:
                continue
            findings.append(Finding(
                "RC101",
                f"{mod.name} emits op {op!r} which has no dispatch arm",
                mod.where(node),
            ))

    # RC104: checkpoint blob keys, both directions.
    producer = wrk.functions.get("make_checkpoint")
    consumers = [
        f
        for f in (
            wrk.functions.get("restore_engine"),
            wrk.functions.get("checkpoint_spec"),
        )
        if f is not None
    ]
    if producer is not None and consumers:
        produced = _produced_dict_keys(table, wrk, producer)
        consumed = _consumed_dict_keys(wrk, consumers)
        if produced:
            for key in sorted(consumed - produced):
                findings.append(Finding(
                    "RC104",
                    f"checkpoint consumers read key {key!r} which "
                    f"make_checkpoint() never produces",
                    wrk.where(consumers[0]),
                ))
            for key in sorted(produced - consumed):
                findings.append(Finding(
                    "RC104",
                    f"make_checkpoint() produces key {key!r} which no "
                    f"consumer ever reads",
                    wrk.where(producer),
                ))

    # RC105: fault specs (in any analyzed module and in tests/) may
    # only name declared kinds and ops.
    faults_mod = table.find("faults")
    kinds_val = UNRESOLVED
    if faults_mod is not None:
        worker_kinds = table.resolve_name(faults_mod, "WORKER_KINDS")
        parent_kinds = table.resolve_name(faults_mod, "PARENT_KINDS")
        if isinstance(worker_kinds, tuple) and isinstance(parent_kinds, tuple):
            kinds_val = set(worker_kinds) | set(parent_kinds)
    reply_op = table.resolve_name(proto, "REPLY_DROP_OP")
    known_ops = set(specs) | (
        {reply_op} if isinstance(reply_op, str) else set()
    )
    if kinds_val is not UNRESOLVED:
        sources: List[Tuple[str, ast.Module]] = [
            (str(mod.path), mod.tree) for mod in table.modules.values()
        ]
        if tests_root is not None:
            for path in sorted(tests_root.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                try:
                    sources.append((str(path), ast.parse(path.read_text())))
                except SyntaxError:
                    continue
        for display, tree in sources:
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                ):
                    continue
                for problem in _fault_spec_errors(
                    node.value, kinds_val, known_ops
                ):
                    findings.append(Finding(
                        "RC105",
                        f"fault spec {node.value!r}: {problem}",
                        f"{display}:{node.lineno}",
                    ))

    # RC106: the protocol consumers may not spell op names as bare
    # string literals (dict keys and docstrings are data, not commands).
    vocab = set(specs) | shard_ops
    for mod_suffix in ("par.worker", "par.supervisor", "par.sharded"):
        mod = table.find(mod_suffix)
        if mod is None:
            continue
        skip: Set[int] = _docstring_ids(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Dict):
                skip.update(id(k) for k in node.keys if k is not None)
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in vocab
                and id(node) not in skip
            ):
                findings.append(Finding(
                    "RC106",
                    f"bare op-name literal {node.value!r}; use the "
                    f"constant from par/protocol.py",
                    f"{mod.path}:{node.lineno}",
                ))
    return findings


# ----------------------------------------------------------------------
# Kernel-triple parity (RC201-RC203)
# ----------------------------------------------------------------------
def _check_kernels(table: SymbolTable) -> List[Finding]:
    findings: List[Finding] = []
    constants = table.find("geometry.constants")
    kernels = table.find("geometry.kernels")
    compiled = table.find("geometry.compiled")
    scalar = table.find("geometry.intersection")
    triple = [m for m in (scalar, kernels, compiled) if m is not None]

    # RC202: every triple member imports the shared constants and
    # re-inlines none of their values.
    if constants is not None and triple:
        values = set()
        for name, expr in constants.assigns.items():
            if name.startswith("_"):
                continue
            val = table.const_eval(constants, expr)
            if isinstance(val, float) and abs(val) not in (0.0, 1.0):
                values.add(val)
        for mod in triple:
            imports_constants = any(
                table.find(src) is constants
                for src, _orig in mod.imports.values()
            )
            if not imports_constants:
                findings.append(Finding(
                    "RC202",
                    f"{mod.name} must import its tolerances from "
                    f"{constants.name} (kernel-triple drift guard)",
                    f"{mod.path}:1",
                ))
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, float)
                    and node.value in values
                ):
                    findings.append(Finding(
                        "RC202",
                        f"inline tolerance literal {node.value!r} "
                        f"duplicates a {constants.name} constant",
                        f"{mod.path}:{node.lineno}",
                    ))

    # RC201/RC203: facade methods vs NumPy kernels, and wiring order.
    if compiled is None or kernels is None:
        return findings
    backend = compiled.classes.get("CompiledBackend")
    if backend is None:
        for info in compiled.classes.values():
            if "__init__" in info.methods:
                backend = info
                break
    if backend is None:
        return findings
    for mname, method in backend.methods.items():
        if mname.startswith("_"):
            continue
        target = (
            kernels.functions.get("batch_" + mname)
            or kernels.functions.get("_" + mname)
            or kernels.functions.get(mname)
        )
        if target is None:
            findings.append(Finding(
                "RC203",
                f"facade method {mname}() has no NumPy kernel variant "
                f"(looked for batch_{mname}/_{mname}/{mname} in "
                f"{kernels.name})",
                compiled.where(method),
            ))
            continue
        fparams = [a.arg for a in method.args.args][1:]
        kparams = [a.arg for a in target.args.args]
        if kparams[: len(fparams)] != fparams:
            findings.append(Finding(
                "RC201",
                f"signature drift: {mname}({', '.join(fparams)}) vs "
                f"{target.name}({', '.join(kparams)})",
                compiled.where(method),
            ))
            continue
        extra = [
            p for p in kparams[len(fparams):] if p not in ALLOWED_EXTRA_PARAMS
        ]
        if extra:
            findings.append(Finding(
                "RC201",
                f"{target.name}() carries unexpected extra parameter(s) "
                f"{', '.join(extra)} beyond the facade signature",
                kernels.where(target),
            ))
    init = backend.methods.get("__init__")
    if init is not None:
        stems = [
            (a.arg[:-3] if a.arg.endswith("_fn") else a.arg)
            for a in init.args.args[1:]
        ]
        for node in ast.walk(compiled.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == backend.name
            ):
                continue
            for i, arg in enumerate(node.args):
                if i >= len(stems):
                    break
                leaf = arg
                while isinstance(leaf, ast.Call) and len(leaf.args) == 1:
                    leaf = leaf.args[0]
                if isinstance(leaf, ast.Name):
                    impl = leaf.id
                elif isinstance(leaf, ast.Attribute):
                    impl = leaf.attr
                else:
                    continue
                if stems[i] not in impl:
                    findings.append(Finding(
                        "RC203",
                        f"{backend.name}(...) argument {i} is {impl!r} "
                        f"but the field there is {stems[i]!r} — kernel "
                        f"variants wired out of order",
                        compiled.where(node),
                    ))
    return findings


# ----------------------------------------------------------------------
# Registry consistency (RC211-RC213)
# ----------------------------------------------------------------------
def _check_registry(
    table: SymbolTable,
    docs_path: Optional[Path],
    tests_root: Optional[Path],
) -> List[Finding]:
    findings: List[Finding] = []
    errors_mod = table.find("check.errors")
    if errors_mod is None:
        return findings
    registries: Dict[str, Tuple[str, ...]] = {}
    for reg in ("SANITIZER_CODES", "LINT_CODES", "FLOW_CODES", "RETIRED_CODES"):
        val = table.resolve_name(errors_mod, reg)
        registries[reg] = val if isinstance(val, tuple) else ()
    where_reg = f"{errors_mod.path}:1"

    # RC211: uniqueness across live registries, no retired reuse.
    owner: Dict[str, str] = {}
    for reg in ("SANITIZER_CODES", "LINT_CODES", "FLOW_CODES"):
        for code in registries[reg]:
            if code in owner:
                findings.append(Finding(
                    "RC211",
                    f"code {code} registered twice "
                    f"({owner[code]} and {reg})",
                    where_reg,
                ))
            else:
                owner[code] = reg
    for code in registries["RETIRED_CODES"]:
        if code in owner:
            findings.append(Finding(
                "RC211",
                f"retired code {code} re-used in {owner[code]}",
                where_reg,
            ))

    # RC212: raised-in-source codes must be registered…
    raised: Dict[str, str] = {}
    for mod in table.modules.values():
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Finding"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and _CODE_RE.match(node.args[0].value)
            ):
                raised.setdefault(node.args[0].value, mod.where(node))
    for code in sorted(raised):
        if code not in owner:
            findings.append(Finding(
                "RC212",
                f"code {code} is raised in source but not registered "
                f"in check/errors.py",
                raised[code],
            ))

    # …and every registered code must be documented and test-covered.
    if docs_path is not None:
        docs_text = docs_path.read_text()
        for code in sorted(owner):
            if code not in docs_text:
                findings.append(Finding(
                    "RC212",
                    f"registered code {code} is missing from the "
                    f"{docs_path.name} invariant tables",
                    str(docs_path),
                ))
    if tests_root is not None:
        tests_text = "\n".join(
            path.read_text()
            for path in sorted(tests_root.rglob("*.py"))
            if "__pycache__" not in path.parts
        )
        for code in sorted(owner):
            if code not in tests_text:
                findings.append(Finding(
                    "RC213",
                    f"registered code {code} is never referenced by any "
                    f"detection test under {tests_root.name}/",
                    where_reg,
                ))
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check_flow(
    root: Path,
    docs_path: Optional[Path] = None,
    tests_root: Optional[Path] = None,
) -> List[Finding]:
    """Run every cross-module flow check over one source root.

    ``docs_path``/``tests_root`` default to ``DESIGN.md`` and
    ``tests/`` next to the root's parent when they exist; checks that
    need an absent input are skipped, so fixture trees analyze cleanly.
    """
    root = Path(root)
    if docs_path is None:
        candidate = root.resolve().parent / "DESIGN.md"
        docs_path = candidate if candidate.is_file() else None
    if tests_root is None:
        candidate = root.resolve().parent / "tests"
        tests_root = candidate if candidate.is_dir() else None
    table = SymbolTable.build(root)
    findings = (
        _check_protocol(table, tests_root)
        + _check_kernels(table)
        + _check_registry(table, docs_path, tests_root)
    )
    findings.sort(
        key=lambda f: (
            f.location.rsplit(":", 1)[0],
            int(f.location.rsplit(":", 1)[-1] or 0)
            if f.location.rsplit(":", 1)[-1].isdigit()
            else 0,
            f.code,
        )
    )
    return findings


def flow_paths(paths: Iterable[Path]) -> List[Finding]:
    """Run :func:`check_flow` over one or more source roots."""
    findings: List[Finding] = []
    for raw in paths:
        findings.extend(check_flow(Path(raw)))
    return findings
