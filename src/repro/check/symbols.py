"""Package symbol table for the cross-module flow analysis.

:mod:`repro.check.flow` needs to answer questions no single-file lint
can: *which string does this name resolve to two imports away*, *which
functions does this dispatch arm reach*, *does that function mutate the
engine*.  This module builds the shared substrate:

* :class:`SymbolTable` — every module under a root, parsed once, with
  its module-level assignments, import links, functions, and classes
  indexed by name (:class:`ModuleInfo` / :class:`ClassInfo`);
* :meth:`SymbolTable.const_eval` — a small constant evaluator that
  folds literals, follows ``Name`` references through module-level
  assignments *and* ``from X import Y`` links across modules, and
  understands the tuple/set/frozenset composition the registries use
  (so ``WORKER_KINDS + PARENT_KINDS`` or ``frozenset({OP_BUILD, …})``
  resolve to concrete values);
* :class:`MutationIndex` — a deliberately *bounded* reachability
  analysis deciding whether a statement region mutates shard state:
  seed-named calls (``apply_update*``/``insert*``/``delete*``/``add*``/
  ``prune*``/…), stores into the dispatch registry, recursion through
  module-local helpers, and exactly one hop into engine-class methods
  (where a ``self.<attr>`` store or a seed-named call counts).  The
  bound is what keeps the verdict trustworthy: unbounded call-graph
  closure would mark every read-only arm mutating through shared
  utility code.

Everything here is pure AST work — nothing under analysis is imported
or executed, so the table is safe to build over broken fixture trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set, Tuple

__all__ = [
    "UNRESOLVED",
    "ModuleInfo",
    "ClassInfo",
    "SymbolTable",
    "MutationIndex",
    "MUTATION_SEEDS",
    "terminal_call_name",
]

#: Sentinel for "this expression is not statically resolvable".
UNRESOLVED = object()

#: Name prefixes treated as state-mutating calls by the mutation index.
MUTATION_SEEDS = (
    "apply_update",
    "insert",
    "delete",
    "add",
    "prune",
    "remove",
    "evict",
    "admit",
    "bulk_",
)


@dataclass
class ClassInfo:
    """One class definition: its node and methods by name."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution indexes."""

    name: str
    path: Path
    tree: ast.Module
    is_package: bool
    #: local name -> (source module dotted name, original name) from
    #: ``from X import Y [as Z]`` (relative imports pre-resolved).
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level single-target assignments, by target name.
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    def where(self, node: ast.AST) -> str:
        return f"{self.path}:{getattr(node, 'lineno', 0)}"


def terminal_call_name(node: ast.Call) -> Optional[str]:
    """The identifier a call ultimately invokes (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _resolve_relative(package: str, level: int, module: Optional[str]) -> str:
    """Absolute dotted name of a ``from``-import target."""
    if level == 0:
        return module or ""
    parts = package.split(".") if package else []
    if level - 1:
        parts = parts[: -(level - 1)] if level - 1 <= len(parts) else []
    base = ".".join(parts)
    if module:
        return f"{base}.{module}" if base else module
    return base


class SymbolTable:
    """Every module under one root, indexed for cross-module lookups."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: Path) -> "SymbolTable":
        """Parse every ``.py`` file under ``root`` into one table.

        Module names are dotted paths relative to ``root`` (so under a
        ``src/`` root the package prefix — ``repro.…`` — is included).
        Unparseable files are skipped; the flow checks treat missing
        modules as "nothing to verify" rather than crashing.
        """
        table = cls()
        root = Path(root)
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root)
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][: -len(".py")]
            if not parts:
                continue
            name = ".".join(parts)
            try:
                tree = ast.parse(path.read_text())
            except SyntaxError:
                continue
            table.modules[name] = table._index(name, path, tree, is_package)
        return table

    def _index(
        self, name: str, path: Path, tree: ast.Module, is_package: bool
    ) -> ModuleInfo:
        mod = ModuleInfo(name=name, path=path, tree=tree, is_package=is_package)
        for node in tree.body:
            if isinstance(node, ast.ImportFrom):
                base = _resolve_relative(mod.package, node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.imports[alias.asname or alias.name] = (base, alias.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    mod.assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    mod.assigns[node.target.id] = node.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(name=node.name, node=node)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[child.name] = child
                mod.classes[node.name] = info
        return mod

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, suffix: str) -> Optional[ModuleInfo]:
        """The module whose dotted name is, or ends with, ``suffix``."""
        if suffix in self.modules:
            return self.modules[suffix]
        tail = "." + suffix
        matches = [m for name, m in self.modules.items() if name.endswith(tail)]
        return matches[0] if len(matches) == 1 else None

    def find_class(self, class_name: str) -> Optional[ClassInfo]:
        """The unique class of that name anywhere in the table."""
        matches = [
            mod.classes[class_name]
            for mod in self.modules.values()
            if class_name in mod.classes
        ]
        return matches[0] if len(matches) == 1 else None

    def import_graph(self) -> Dict[str, Set[str]]:
        """module name -> set of table-internal modules it imports from."""
        graph: Dict[str, Set[str]] = {}
        for name, mod in self.modules.items():
            deps = {src for src, _orig in mod.imports.values()}
            graph[name] = {d for d in deps if self.find(d) is not None and d}
        return graph

    # ------------------------------------------------------------------
    # Constant evaluation
    # ------------------------------------------------------------------
    def resolve_name(
        self, mod: ModuleInfo, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Any:
        """Fold a module-level name to its constant value, following
        assignments in this module and ``from``-import links."""
        seen = _seen if _seen is not None else set()
        key = (mod.name, name)
        if key in seen:
            return UNRESOLVED
        seen.add(key)
        if name in mod.assigns:
            return self.const_eval(mod, mod.assigns[name], _seen=seen)
        if name in mod.imports:
            src_name, orig = mod.imports[name]
            src = self.find(src_name) if src_name else None
            if src is not None:
                return self.resolve_name(src, orig, _seen=seen)
        return UNRESOLVED

    def const_eval(
        self,
        mod: ModuleInfo,
        node: ast.expr,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Any:
        """Evaluate an expression to a constant, or :data:`UNRESOLVED`."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.resolve_name(mod, node.id, _seen=_seen)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            items = [self.const_eval(mod, e, _seen=_seen) for e in node.elts]
            if any(item is UNRESOLVED for item in items):
                return UNRESOLVED
            return frozenset(items) if isinstance(node, ast.Set) else tuple(items)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            operand = self.const_eval(mod, node.operand, _seen=_seen)
            if isinstance(operand, (int, float)):
                return -operand
            return UNRESOLVED
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.const_eval(mod, node.left, _seen=_seen)
            right = self.const_eval(mod, node.right, _seen=_seen)
            if left is UNRESOLVED or right is UNRESOLVED:
                return UNRESOLVED
            try:
                return left + right
            except TypeError:
                return UNRESOLVED
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "set", "tuple", "list")
            and not node.keywords
            and len(node.args) <= 1
        ):
            if not node.args:
                return frozenset() if node.func.id in ("frozenset", "set") else ()
            inner = self.const_eval(mod, node.args[0], _seen=_seen)
            if inner is UNRESOLVED:
                return UNRESOLVED
            try:
                items = tuple(inner)
            except TypeError:
                return UNRESOLVED
            return (
                frozenset(items)
                if node.func.id in ("frozenset", "set")
                else tuple(items)
            )
        return UNRESOLVED


class MutationIndex:
    """Bounded "does this code mutate shard state" reachability.

    Scope, by construction (see the module docstring for why bounded):

    1. a call whose terminal name starts with a mutation seed;
    2. a store into a subscript of the dispatch registry parameter
       (``engines[sid] = …``);
    3. recursion through functions defined in the *same module* as the
       dispatcher (``apply_shard_ops``, ``_prune``, …);
    4. one hop into a method of the engine class (resolved from the
       registry parameter's ``Dict[int, <EngineClass>]`` annotation),
       where a ``self.<attr>`` store or a seed-named call is evidence.
    """

    def __init__(
        self,
        module: ModuleInfo,
        engine_methods: Optional[Dict[str, ast.FunctionDef]] = None,
        seeds: Sequence[str] = MUTATION_SEEDS,
    ):
        self.module = module
        self.engine_methods = engine_methods or {}
        self.seeds = tuple(seeds)
        self._method_verdicts: Dict[str, bool] = {}

    def seeded(self, name: Optional[str]) -> bool:
        return name is not None and any(
            name.startswith(seed) for seed in self.seeds
        )

    def method_mutates(self, name: str) -> bool:
        """Direct evidence only: a ``self.<attr>`` store or seeded call."""
        if name in self._method_verdicts:
            return self._method_verdicts[name]
        method = self.engine_methods.get(name)
        verdict = False
        if method is not None:
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if any(
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        for t in targets
                    ):
                        verdict = True
                        break
                if isinstance(node, ast.Call) and self.seeded(
                    terminal_call_name(node)
                ):
                    verdict = True
                    break
        self._method_verdicts[name] = verdict
        return verdict

    def stmts_mutate(
        self,
        stmts: Sequence[ast.stmt],
        registry_name: Optional[str] = None,
        _seen: Optional[Set[str]] = None,
    ) -> bool:
        """Whether a statement region mutates state, within the bound."""
        seen = _seen if _seen is not None else set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if registry_name is not None and any(
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == registry_name
                        for t in targets
                    ):
                        return True
                if not isinstance(node, ast.Call):
                    continue
                name = terminal_call_name(node)
                if self.seeded(name):
                    return True
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self.module.functions
                    and node.func.id not in seen
                ):
                    seen.add(node.func.id)
                    if self.stmts_mutate(
                        self.module.functions[node.func.id].body,
                        registry_name=None,
                        _seen=seen,
                    ):
                        return True
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in self.engine_methods
                ):
                    if self.method_mutates(node.func.attr):
                        return True
        return False
