"""API consistency: every ``__all__`` name resolves and is documented."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.geometry",
    "repro.geometry.nd",
    "repro.storage",
    "repro.index",
    "repro.join",
    "repro.core",
    "repro.check",
    "repro.par",
    "repro.workloads",
    "repro.queries",
    "repro.refine",
    "repro.analysis",
    "repro.metrics",
    "repro.objects",
    "repro.viz",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (
            f"{module_name}.__all__ lists unresolvable name {name!r}"
        )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item) or isinstance(item, type):
            assert item.__doc__, f"{module_name}.{name} lacks a docstring"


def test_algorithm_registry_matches_engine():
    from repro.core import ALGORITHMS, ContinuousJoinEngine

    for algorithm in ALGORITHMS:
        engine = ContinuousJoinEngine([], [], algorithm=algorithm)
        assert engine.algorithm == algorithm
