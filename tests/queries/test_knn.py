"""Continuous kNN: exact snapshots against the brute-force oracle."""

import pytest

from repro.core import JoinConfig
from repro.geometry import Box, KineticBox
from repro.index import TPRStarTree
from repro.queries import ContinuousKNNEngine, knn_at
from repro.workloads import UpdateStream, uniform_workload


def brute_knn(objects, qx, qy, k, t):
    point = Box.point(qx, qy)
    return sorted((o.mbr_at(t).min_distance(point), o.oid) for o in objects)[:k]


class TestKnnAt:
    def test_matches_bruteforce(self):
        scenario = uniform_workload(250, seed=5, object_size_pct=1.0)
        tree = TPRStarTree()
        for o in scenario.set_a:
            tree.insert(o, 0.0)
        for t in (0.0, 4.0, 9.0):
            got = knn_at(tree, 480, 520, 7, t)
            want = brute_knn(scenario.set_a, 480, 520, 7, t)
            assert [oid for _, oid in got] == [oid for _, oid in want]
            for (gd, _), (wd, _) in zip(got, want):
                assert gd == pytest.approx(wd)

    def test_k_larger_than_population(self):
        scenario = uniform_workload(5, seed=1)
        tree = TPRStarTree()
        for o in scenario.set_a:
            tree.insert(o, 0.0)
        assert len(knn_at(tree, 0, 0, 20, 0.0)) == 5

    def test_invalid_k(self):
        tree = TPRStarTree()
        with pytest.raises(ValueError):
            knn_at(tree, 0, 0, 0, 0.0)


class TestContinuousKNNEngine:
    def make(self, k=5, t_m=10.0, seed=6, vq=(0.6, -0.3)):
        scenario = uniform_workload(
            150, seed=seed, max_speed=3.0, object_size_pct=1.0, t_m=t_m
        )
        query = KineticBox.moving_point(500, 500, vq[0], vq[1], 0.0)
        engine = ContinuousKNNEngine(
            scenario.set_a, query, k=k,
            config=JoinConfig(t_m=t_m), max_speed=3.0,
        )
        return scenario, engine

    def test_initial_knn(self):
        _scenario, engine = self.make()
        got = [oid for _, oid in engine.knn(0.0)]
        want = [
            oid for _, oid in brute_knn(engine.objects.values(), 500, 500, 5, 0.0)
        ]
        assert got == want

    def test_continuous_correctness_under_updates(self):
        scenario, engine = self.make()
        stream = UpdateStream(scenario, seed=12)
        shadow_b = {o.oid: o for o in scenario.set_b}
        for step in range(1, 35):
            t = float(step)
            engine.tick(t)
            for obj in stream.updates_for(t, {**engine.objects, **shadow_b}):
                if obj.oid in engine.objects:
                    engine.apply_update(obj)
                else:
                    shadow_b[obj.oid] = obj
            qx, qy = engine.query.at(t).center
            got = [oid for _, oid in engine.knn()]
            want = [
                oid for _, oid in brute_knn(engine.objects.values(), qx, qy, 5, t)
            ]
            assert got == want, t

    def test_candidate_set_much_smaller_than_population(self):
        _scenario, engine = self.make()
        assert engine.candidate_count < len(engine.objects) / 3

    def test_validation(self):
        scenario = uniform_workload(20, seed=2)
        boxy_query = KineticBox.rigid(Box(0, 5, 0, 5), 0, 0, 0.0)
        with pytest.raises(ValueError):
            ContinuousKNNEngine(scenario.set_a, boxy_query, k=3)
        point = KineticBox.moving_point(0, 0, 0, 0, 0.0)
        with pytest.raises(ValueError):
            ContinuousKNNEngine(scenario.set_a, point, k=0)

    def test_unknown_update_rejected(self):
        scenario, engine = self.make()
        with pytest.raises(KeyError):
            engine.apply_update(scenario.set_b[0])


class TestOneShotPaths:
    """One-shot snapshot paths of the kNN engine: future-time queries
    that renew the candidate window on demand, the filter-set bound,
    and the clock/identity guards."""

    def test_future_snapshot_renews_the_window(self):
        """``knn(t)`` beyond the current Theorem-1 window refreshes the
        candidate set for ``[t, t + T_M]`` and stays exact.  ``t`` must
        stay inside the Theorem-2 bucket horizon ``t_eb + T_M`` — with
        no updates arriving, predictions beyond it have all expired,
        which is outside the model's contract."""
        _scenario, engine = self.make_static()
        far = engine.config.t_m * 1.2  # past the initial window end
        qx, qy = engine.query.at(far).center
        got = [oid for _, oid in engine.knn(far)]
        want = [
            oid
            for _, oid in brute_knn(engine.objects.values(), qx, qy, 5, far)
        ]
        assert got == want
        assert engine._window_end >= far

    def test_candidate_set_covers_k_and_filters(self):
        _scenario, engine = self.make_static()
        assert engine.k <= engine.candidate_count <= len(engine.objects)

    def test_static_query_point(self):
        """Zero-velocity query: the Lipschitz margin reduces to object
        speed only, and snapshots stay exact across the window."""
        _scenario, engine = self.make_static(vq=(0.0, 0.0))
        for t in (0.0, 3.0, 7.0):
            got = [oid for _, oid in engine.knn(t)]
            want = [
                oid
                for _, oid in brute_knn(engine.objects.values(), 500, 500, 5, t)
            ]
            assert got == want, t

    def test_past_snapshot_rejected(self):
        _scenario, engine = self.make_static()
        engine.tick(3.0)
        with pytest.raises(ValueError, match="present"):
            engine.knn(1.0)
        with pytest.raises(ValueError, match="backwards"):
            engine.tick(2.0)

    def test_unknown_object_update_rejected(self):
        _scenario, engine = self.make_static()
        stray = engine.objects.pop(next(iter(engine.objects)))
        with pytest.raises(KeyError):
            engine.apply_update(stray)

    def make_static(self, vq=(0.6, -0.3)):
        scenario = uniform_workload(
            150, seed=6, max_speed=3.0, object_size_pct=1.0, t_m=10.0
        )
        query = KineticBox.moving_point(500, 500, vq[0], vq[1], 0.0)
        engine = ContinuousKNNEngine(
            scenario.set_a, query, k=5,
            config=JoinConfig(t_m=10.0), max_speed=3.0,
        )
        return scenario, engine
