"""Continuous window queries vs a per-timestamp oracle."""

import pytest

from repro.core import JoinConfig
from repro.geometry import Box, KineticBox
from repro.queries import ContinuousWindowEngine
from repro.workloads import UpdateStream, uniform_workload


def oracle(windows, objects, t):
    pairs = set()
    for qid, window in windows.items():
        wbox = window.at(t)
        for oid, obj in objects.items():
            if wbox.intersects(obj.mbr_at(t)):
                pairs.add((qid, oid))
    return pairs


def build(n=100, t_m=12.0, seed=3, n_windows=3):
    scenario = uniform_workload(n, seed=seed, max_speed=3.0, object_size_pct=1.0, t_m=t_m)
    windows = {
        9_000_000 + i: KineticBox.rigid(
            Box(150 * i, 150 * i + 250, 100, 450),
            (-1) ** i * 0.8, 0.4, 0.0,
        )
        for i in range(n_windows)
    }
    engine = ContinuousWindowEngine(scenario.set_a, windows, JoinConfig(t_m=t_m))
    engine.evaluate_initial()
    return scenario, windows, engine


class TestContinuousWindow:
    def test_initial_answer(self):
        _scenario, windows, engine = build()
        objects = dict(engine.objects)
        assert engine.result_at(0.0) == oracle(windows, objects, 0.0)

    def test_continuous_correctness_under_updates(self):
        scenario, windows, engine = build()
        stream = UpdateStream(scenario, seed=10)
        shadow_b = {o.oid: o for o in scenario.set_b}
        for step in range(1, 35):
            t = float(step)
            engine.tick(t)
            for obj in stream.updates_for(t, {**engine.objects, **shadow_b}):
                if obj.oid in engine.objects:
                    engine.apply_update(obj)
                else:
                    shadow_b[obj.oid] = obj
            assert engine.result_at() == oracle(windows, engine.objects, t), t

    def test_result_for_single_window(self):
        _scenario, windows, engine = build()
        qid = next(iter(windows))
        expected = {b for (a, b) in engine.result_at(0.0) if a == qid}
        assert engine.result_for(qid, 0.0) == expected

    def test_add_and_remove_window(self):
        _scenario, windows, engine = build()
        new_qid = 9_999_999
        new_window = KineticBox.rigid(Box(0, 1000, 0, 1000), 0, 0, 0.0)
        engine.add_window(new_qid, new_window)
        # The whole-space window sees every object.
        assert engine.result_for(new_qid, 0.0) == set(engine.objects)
        engine.remove_window(new_qid)
        assert engine.result_for(new_qid, 0.0) == set()

    def test_id_collisions_rejected(self):
        scenario, windows, engine = build()
        with pytest.raises(ValueError):
            engine.add_window(next(iter(windows)), KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0))
        some_oid = next(iter(engine.objects))
        with pytest.raises(ValueError):
            ContinuousWindowEngine(
                scenario.set_a,
                {some_oid: KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0)},
            )

    def test_unknown_update_rejected(self):
        scenario, _windows, engine = build()
        foreign = scenario.set_b[0]
        with pytest.raises(KeyError):
            engine.apply_update(foreign)

    def test_clock_monotone(self):
        _scenario, _windows, engine = build()
        engine.tick(5.0)
        with pytest.raises(ValueError):
            engine.tick(4.0)

    def test_unconstrained_variant_identical_answers(self):
        """time_constrained=False changes cost, never answers (§V)."""
        scenario = uniform_workload(
            80, seed=5, max_speed=3.0, object_size_pct=1.0, t_m=12.0
        )
        windows = {
            9_000_000: KineticBox.rigid(Box(100, 400, 100, 400), 0.5, -0.5, 0.0)
        }
        tc = ContinuousWindowEngine(
            scenario.set_a, windows, JoinConfig(t_m=12.0), time_constrained=True
        )
        naive = ContinuousWindowEngine(
            scenario.set_a, windows, JoinConfig(t_m=12.0), time_constrained=False
        )
        tc.evaluate_initial()
        naive.evaluate_initial()
        streams = [UpdateStream(scenario, seed=7), UpdateStream(scenario, seed=7)]
        shadows = [dict(), dict()]
        for i, (eng, stream) in enumerate(zip((tc, naive), streams)):
            shadows[i] = {o.oid: o for o in scenario.set_b}
        for step in range(1, 25):
            t = float(step)
            for i, (eng, stream) in enumerate(zip((tc, naive), streams)):
                eng.tick(t)
                for obj in stream.updates_for(t, {**eng.objects, **shadows[i]}):
                    if obj.oid in eng.objects:
                        eng.apply_update(obj)
                    else:
                        shadows[i][obj.oid] = obj
            assert tc.result_at() == naive.result_at(), t


class TestOneShotPaths:
    """One-shot evaluation paths: pinned before the continuous-query
    work builds on them (future snapshots, the untimed §V baseline,
    pre-evaluation registration, and clock/identity guards)."""

    def test_future_snapshot_without_ticking(self):
        """``result_at(t)`` answers any t inside the TC horizon from the
        initial evaluation alone — no tick, no updates."""
        _scenario, windows, engine = build(t_m=12.0)
        objects = dict(engine.objects)
        for t in (0.5, 3.0, 5.5):
            assert engine.result_at(t) == oracle(windows, objects, t), t

    def test_untimed_baseline_matches_tc_inside_the_horizon(self):
        scenario = uniform_workload(
            80, seed=9, max_speed=3.0, object_size_pct=1.0, t_m=6.0
        )
        windows = {
            9_000_001: KineticBox.rigid(Box(200, 600, 200, 600), 0.5, -0.5, 0.0)
        }
        tc = ContinuousWindowEngine(
            scenario.set_a, windows, JoinConfig(t_m=6.0), time_constrained=True
        )
        naive = ContinuousWindowEngine(
            scenario.set_a, windows, JoinConfig(t_m=6.0), time_constrained=False
        )
        tc.evaluate_initial()
        naive.evaluate_initial()
        for t in (0.0, 2.0, 5.9):
            assert tc.result_at(t) == naive.result_at(t), t

    def test_untimed_baseline_answers_beyond_the_horizon(self):
        """The naive path stores ``[t, ∞)`` intervals, so (unlike TC)
        its one-shot answer stays exact past ``t_m`` with no updates."""
        scenario = uniform_workload(
            60, seed=11, max_speed=2.0, object_size_pct=1.0, t_m=4.0
        )
        windows = {
            9_000_002: KineticBox.rigid(Box(100, 700, 100, 700), 0.0, 0.0, 0.0)
        }
        naive = ContinuousWindowEngine(
            scenario.set_a, windows, JoinConfig(t_m=4.0), time_constrained=False
        )
        naive.evaluate_initial()
        far = 9.0  # > t_m
        assert naive.result_at(far) == oracle(windows, naive.objects, far)

    def test_window_added_before_evaluation_is_included(self):
        _scenario, windows, engine = build()
        fresh = ContinuousWindowEngine(
            list(engine.objects.values()), windows, JoinConfig(t_m=12.0)
        )
        qid = 9_100_000
        fresh.add_window(qid, KineticBox.rigid(Box(0, 1000, 0, 1000), 0, 0, 0.0))
        fresh.evaluate_initial()
        assert fresh.result_for(qid, 0.0) == set(fresh.objects)

    def test_clock_and_identity_guards(self):
        _scenario, _windows, engine = build()
        engine.tick(2.0)
        with pytest.raises(ValueError, match="backwards"):
            engine.tick(1.0)
        stray = next(iter(engine.objects.values()))
        engine.objects.pop(stray.oid)
        with pytest.raises(KeyError):
            engine.apply_update(stray)
