"""The attribution contract: span rollups are bit-exact vs. the tracker.

Runs real engines (all four algorithms) through build, initial join,
ticks, updates and expiry with recording enabled and asserts that the
root rollup of every recording equals the global ``CostTracker``
counters — the recorder changes *where* increments are filed, never how
many there are.  Also pins the enablement surface (``JoinConfig.obs``,
``REPRO_OBS``) and that recording does not change join results.
"""

from __future__ import annotations

import pytest

from repro.core import ContinuousJoinEngine, ContinuousSelfJoinEngine, JoinConfig
from repro.metrics import COUNTER_KEYS
from repro.workloads import UpdateStream, make_workload

ALGORITHMS = ("naive", "etp", "tc", "mtb")


def drive(engine, scenario, ticks=8, seed=3):
    """Initial join then a few timestamps of updates against the engine."""
    engine.run_initial_join()
    stream = UpdateStream(scenario, seed=seed)
    current = dict(engine.objects_a)
    current.update(engine.objects_b)
    for step in range(1, ticks + 1):
        t = float(step)
        engine.tick(t)
        for obj in stream.updates_for(t, current):
            current[obj.oid] = obj
            engine.apply_update(obj)
        engine.result_at(t)
    engine.prune_expired()


def counter_dict(tracker):
    return {key: getattr(tracker, key) for key in COUNTER_KEYS}


def obs_counters(recorder):
    totals = recorder.root_totals()
    return {key: int(totals.get(key, 0)) for key in COUNTER_KEYS}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_rollup_matches_tracker_bit_exactly(algorithm):
    scenario = make_workload(60, seed=11)
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=JoinConfig(obs=True, buffer_pages=8),
    )
    drive(engine, scenario)
    assert obs_counters(engine.obs) == counter_dict(engine.tracker)
    # Real work happened (the equality is not vacuous).
    assert engine.tracker.pair_tests > 0
    assert engine.tracker.node_visits > 0


def test_rollup_matches_for_selfjoin_engine():
    scenario = make_workload(50, seed=5)
    engine = ContinuousSelfJoinEngine(
        scenario.set_a, config=JoinConfig(obs=True, buffer_pages=8)
    )
    engine.run_initial_join()
    stream = UpdateStream(scenario, seed=2)
    # The stream schedules both scenario sets; the self-join engine only
    # manages set A, so B-updates are extrapolated but not applied.
    current = {obj.oid: obj for obj in scenario.set_b}
    current.update(engine.objects)
    for step in range(1, 6):
        engine.tick(float(step))
        for obj in stream.updates_for(float(step), current):
            if obj.oid in engine.objects:
                current[obj.oid] = obj
                engine.apply_update(obj)
    assert obs_counters(engine.obs) == counter_dict(engine.tracker)
    assert engine.tracker.pair_tests > 0


def test_phases_and_hot_spans_are_present():
    scenario = make_workload(40, seed=9)
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(obs=True),
    )
    drive(engine, scenario, ticks=4)
    names = {span.name for span in engine.obs.root.walk()}
    assert {"engine.build", "engine.initial_join", "engine.tick",
            "engine.update", "engine.expire"} <= names
    assert "join.mtb" in names and "join.mtb.object" in names
    assert "tpr.insert" in names and "tpr.search" in names
    # One distinct tick span per timestamp forms the timeline.
    ticks = engine.obs.find("engine.tick")
    assert [span.tags["t"] for span in ticks] == [1.0, 2.0, 3.0, 4.0]


def test_buffer_traffic_attributed_under_pressure():
    scenario = make_workload(80, seed=13)
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="tc",
        config=JoinConfig(obs=True, buffer_pages=4),
    )
    drive(engine, scenario, ticks=4)
    totals = engine.obs.root_totals()
    assert totals["buffer_misses"] == engine.storage.buffer.misses
    assert totals["buffer_hits"] == engine.storage.buffer.hits
    assert totals.get("buffer_evictions", 0) > 0
    # Misses are what the tracker bills as physical reads.
    assert totals["buffer_misses"] == engine.tracker.page_reads


def test_recording_does_not_change_results():
    scenario = make_workload(60, seed=21)
    plain = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb", config=JoinConfig()
    )
    recorded = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(obs=True),
    )
    drive(plain, scenario)
    drive(recorded, scenario)
    assert plain.result_at(8.0) == recorded.result_at(8.0)
    assert counter_dict(plain.tracker) == counter_dict(recorded.tracker)


def test_obs_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    scenario = make_workload(20, seed=1)
    engine = ContinuousJoinEngine(scenario.set_a, scenario.set_b)
    assert engine.obs is None
    assert engine.tracker.obs is None
    with pytest.raises(RuntimeError):
        engine.export_obs("unused.json")


def test_env_var_forces_recording_on(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    assert JoinConfig().obs is True
    monkeypatch.setenv("REPRO_OBS", "0")
    assert JoinConfig().obs is False
    monkeypatch.delenv("REPRO_OBS")
    assert JoinConfig().obs is False
