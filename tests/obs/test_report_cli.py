"""``python -m repro.obs report``: tables from recorded engine runs.

Builds a miniature Figure-7-style experiment (TC-constrained vs.
unconstrained initial join at two sizes), exports one recording per
cell, and checks the rendered figure table carries exactly the tracker's
I/O and pair-test numbers — the report is derived from recordings, not
from separate bookkeeping.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.obs import load_recording, phase_rows, timeline_rows
from repro.obs.cli import main
from repro.workloads import make_workload


def record_initial_join(tmp_path, algorithm, series, n, seed=17):
    scenario = make_workload(n, seed=seed)
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=JoinConfig(obs=True, buffer_pages=8),
    )
    cost = engine.run_initial_join()
    path = engine.export_obs(
        tmp_path / f"{series}_{n}.json",
        meta={"figure": "Fig 7 (mini)", "series": series, "x": n},
    )
    return path, engine, cost


@pytest.fixture(scope="module")
def recordings(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("obs_fig7")
    cells = {}
    for series, algorithm in (("TC", "tc"), ("non-TC", "naive")):
        for n in (30, 60):
            path, engine, _cost = record_initial_join(
                tmp_path, algorithm, series, n
            )
            cells[(series, n)] = (path, engine)
    return tmp_path, cells


def test_report_reproduces_tracker_columns(recordings):
    tmp_path, cells = recordings
    out = io.StringIO()
    assert main(["report", str(tmp_path), "--sections", "figures"], out=out) == 0
    lines = out.getvalue().splitlines()
    assert any("Fig 7 (mini)" in line for line in lines)
    for (series, n), (_path, engine) in cells.items():
        io_total = engine.tracker.page_reads + engine.tracker.page_writes
        row = next(
            line for line in lines
            if line.split()[:2] == [series, str(n)]
        )
        cols = row.split()
        assert cols[2] == str(io_total)
        assert cols[3] == str(engine.tracker.pair_tests)


def test_phase_rows_split_build_from_initial_join(recordings):
    _tmp_path, cells = recordings
    path, engine = cells[("TC", 60)]
    data = load_recording(path)
    rows = {row["phase"]: row for row in phase_rows(data)}
    assert set(rows) == {"engine.build", "engine.initial_join"}
    total = engine.tracker.pair_tests
    assert (rows["engine.build"]["pair_tests"]
            + rows["engine.initial_join"]["pair_tests"]) == total
    assert rows["engine.initial_join"]["pair_tests"] > 0


def test_timeline_requires_tick_tags(recordings):
    _tmp_path, cells = recordings
    path, _engine = cells[("TC", 30)]
    # No ticks were run: the recording has no t-tagged phases.
    assert timeline_rows(load_recording(path)) == []


def test_report_renders_per_tick_timeline(tmp_path):
    scenario = make_workload(30, seed=23)
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(obs=True),
    )
    engine.run_initial_join()
    for step in (1.0, 2.0):
        engine.tick(step)
        engine.apply_update(next(iter(engine.objects_a.values())))
    path = engine.export_obs(tmp_path / "run.json")
    rows = timeline_rows(load_recording(path))
    assert [row["t"] for row in rows] == [1.0, 2.0]
    assert all(row["updates"] == 1 for row in rows)
    out = io.StringIO()
    assert main(["report", str(path), "--sections", "timeline"], out=out) == 0
    assert "timeline" in out.getvalue()


def test_csv_subcommand(tmp_path, recordings):
    _src_dir, cells = recordings
    path, _engine = cells[("non-TC", 30)]
    dst = tmp_path / "out.csv"
    out = io.StringIO()
    assert main(["csv", str(path), str(dst)], out=out) == 0
    header = dst.read_text().splitlines()[0]
    assert header.startswith("id,parent,name,tags,calls,seconds")


def test_cli_error_paths(tmp_path):
    out = io.StringIO()
    assert main(["report", str(tmp_path)], out=out) == 1
    assert "no recordings" in out.getvalue()

    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError):
        main(["report", str(bogus)], out=io.StringIO())

    out = io.StringIO()
    assert main(
        ["report", str(bogus), "--sections", "nonsense"], out=out
    ) == 2
    assert "unknown section" in out.getvalue()
