"""Unit tests for the span recorder: filing, rollup, timing, export."""

from __future__ import annotations

import csv
import json

from repro.metrics import COUNTER_KEYS, CostTracker
from repro.obs import NULL_SPAN, ObsRecorder, tracker_span
from repro.obs.recorder import FORMAT


class TestSpanFiling:
    def test_counts_land_on_innermost_open_span(self):
        rec = ObsRecorder()
        rec.count("pair_tests", 1)  # no span open: files on the root
        with rec.span("outer"):
            rec.count("pair_tests", 2)
            with rec.span("inner"):
                rec.count("pair_tests", 4)
            rec.count("pair_tests", 8)
        (outer,) = rec.find("outer")
        (inner,) = rec.find("inner")
        assert rec.root.counts == {"pair_tests": 1}
        assert outer.counts == {"pair_tests": 10}
        assert inner.counts == {"pair_tests": 4}

    def test_rollup_is_sum_of_subtree(self):
        rec = ObsRecorder()
        with rec.span("a"):
            rec.count("page_reads", 1)
            with rec.span("b"):
                rec.count("page_reads", 2)
        with rec.span("c"):
            rec.count("page_writes", 5)
        assert rec.root_totals() == {"page_reads": 3, "page_writes": 5}
        (a,) = rec.find("a")
        assert a.total() == {"page_reads": 3}

    def test_distinct_spans_per_call(self):
        rec = ObsRecorder()
        for t in (1.0, 2.0):
            with rec.span("engine.tick", t=t):
                pass
        ticks = rec.find("engine.tick")
        assert [s.tags["t"] for s in ticks] == [1.0, 2.0]
        assert all(s.calls == 1 for s in ticks)

    def test_aggregated_spans_accumulate(self):
        rec = ObsRecorder()
        with rec.span("phase"):
            for n in (1, 2, 3):
                with rec.aspan("tpr.search"):
                    rec.count("node_visits", n)
        (agg,) = rec.find("tpr.search")
        assert agg.calls == 3
        assert agg.counts == {"node_visits": 6}

    def test_aggregation_is_per_parent_and_tags(self):
        rec = ObsRecorder()
        with rec.span("p1"):
            with rec.aspan("s"):
                pass
            with rec.aspan("s", side="a"):
                pass
        with rec.span("p2"):
            with rec.aspan("s"):
                pass
        assert len(rec.find("s")) == 3

    def test_recursive_aggregated_span_nests_per_parent(self):
        # Aggregation is keyed per *parent*: re-entering the same call
        # site while it is open files the inner activation as a child,
        # so exclusive times and counts stay additive under recursion.
        rec = ObsRecorder()
        with rec.aspan("recursive") as outer:
            rec.count("pair_tests", 1)
            with rec.aspan("recursive") as inner:
                assert inner is not outer
                assert inner.parent is outer
                rec.count("pair_tests", 2)
        spans = rec.find("recursive")
        assert [s.calls for s in spans] == [1, 1]
        assert outer.counts == {"pair_tests": 1}
        assert outer.total() == {"pair_tests": 3}
        assert all(s._open == 0 for s in spans)
        assert inner.seconds <= outer.seconds <= rec.elapsed()

    def test_self_seconds_excludes_children(self):
        rec = ObsRecorder()
        with rec.span("parent"):
            with rec.span("child"):
                pass
        (parent,) = rec.find("parent")
        (child,) = rec.find("child")
        assert parent.self_seconds() <= parent.seconds
        assert abs(parent.self_seconds() - (parent.seconds - child.seconds)) < 1e-12


class TestTrackerIntegration:
    def test_attach_routes_all_four_counters(self):
        tracker = CostTracker()
        rec = ObsRecorder()
        rec.attach(tracker)
        with rec.span("phase"):
            tracker.count_read(2)
            tracker.count_write(3)
            tracker.count_pair_tests(5)
            tracker.count_node_visit(7)
        assert rec.root_totals() == {
            "page_reads": 2, "page_writes": 3,
            "pair_tests": 5, "node_visits": 7,
        }
        # The tracker's own totals are unchanged by attribution.
        assert (tracker.page_reads, tracker.page_writes,
                tracker.pair_tests, tracker.node_visits) == (2, 3, 5, 7)

    def test_detach_stops_filing(self):
        tracker = CostTracker()
        rec = ObsRecorder()
        rec.attach(tracker)
        tracker.count_read()
        rec.detach()
        tracker.count_read()
        assert tracker.obs is None
        assert rec.root_totals() == {"page_reads": 1}
        assert tracker.page_reads == 2

    def test_tracker_span_is_noop_without_recorder(self):
        tracker = CostTracker()
        assert tracker_span(tracker, "anything") is NULL_SPAN
        with tracker_span(tracker, "anything"):
            tracker.count_read()
        assert tracker.page_reads == 1

    def test_tracker_span_opens_aggregated_span(self):
        tracker = CostTracker()
        rec = ObsRecorder()
        rec.attach(tracker)
        for _ in range(2):
            with tracker_span(tracker, "tpr.search"):
                tracker.count_pair_tests()
        (span,) = rec.find("tpr.search")
        assert span.calls == 2
        assert span.counts == {"pair_tests": 2}

    def test_timed_nesting_accumulates_once(self):
        tracker = CostTracker()
        with tracker.timed():
            with tracker.timed():
                pass
        first = tracker.cpu_seconds
        assert first >= 0.0
        with tracker.timed():
            pass
        assert tracker.cpu_seconds >= first


class TestExport:
    def _small_recording(self) -> ObsRecorder:
        rec = ObsRecorder("run", meta={"series": "TC"})
        tracker = CostTracker()
        rec.attach(tracker)
        with rec.span("engine.tick", t=1.0):
            with tracker_span(tracker, "tpr.search"):
                tracker.count_pair_tests(3)
                tracker.count_node_visit(2)
        return rec

    def test_to_dict_shape(self):
        data = self._small_recording().to_dict(meta={"x": 100})
        assert data["format"] == FORMAT
        assert data["meta"] == {"series": "TC", "x": 100}
        assert data["totals"] == {"pair_tests": 3, "node_visits": 2}
        names = [span["name"] for span in data["spans"]]
        assert names == ["run", "engine.tick", "tpr.search"]
        root, tick, search = data["spans"]
        assert root["parent"] is None
        assert tick["parent"] == root["id"]
        assert search["parent"] == tick["id"]
        assert tick["total"] == {"pair_tests": 3, "node_visits": 2}
        assert tick["self"] == {}
        # Root is still open at export time: elapsed seconds included.
        assert root["seconds"] > 0.0

    def test_json_roundtrip(self, tmp_path):
        rec = self._small_recording()
        path = rec.export_json(tmp_path / "run.json")
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT
        assert data["totals"] == {"pair_tests": 3, "node_visits": 2}

    def test_csv_has_row_per_span(self, tmp_path):
        rec = self._small_recording()
        path = rec.export_csv(tmp_path / "run.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        by_name = {row["name"]: row for row in rows}
        assert by_name["tpr.search"]["self_pair_tests"] == "3"
        assert by_name["run"]["total_node_visits"] == "2"
        for key in COUNTER_KEYS:
            assert f"self_{key}" in rows[0] and f"total_{key}" in rows[0]

    def test_export_leaves_recording_usable(self):
        rec = self._small_recording()
        rec.to_dict()
        with rec.span("more"):
            rec.count("pair_tests", 1)
        assert rec.root_totals()["pair_tests"] == 4
