"""Observability contract of the columnar engine.

Satellite of the columnar tick loop: with recording *off* the vectorized
loop must stay span-free (the ``_span`` guard returns the singleton
``NULL_SPAN`` — no tag dicts, no span allocation), with recording *on*
the root rollup must equal the tracker counters bit-exactly and the
per-phase timeline must exist.  Counter attribution is whole-batch: one
``pair_tests`` increment per sweep, not one per candidate pair.
"""

from __future__ import annotations

import pytest

from repro.core import ColumnarJoinEngine, JoinConfig
from repro.metrics import COUNTER_KEYS
from repro.obs import NULL_SPAN
from repro.workloads import VectorUpdateStream, make_workload_arrays

T_M = 10.0


def arrays(seed=17):
    return make_workload_arrays(
        64, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=seed
    )


def build(obs: bool):
    arr = arrays()
    engine = ColumnarJoinEngine(
        arr.columns_a(),
        arr.columns_b(),
        algorithm="mtb",
        config=JoinConfig(t_m=T_M, obs=obs),
    )
    return engine, arr


def drive(engine, arr, ticks=8, seed=3):
    engine.run_initial_join()
    stream = VectorUpdateStream(arr, seed=seed)
    for step in range(1, ticks + 1):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
        engine.result_at(t)
    engine.prune_expired()


def counter_dict(tracker):
    return {key: getattr(tracker, key) for key in COUNTER_KEYS}


def obs_counters(recorder):
    totals = recorder.root_totals()
    return {key: int(totals.get(key, 0)) for key in COUNTER_KEYS}


def test_obs_off_tick_loop_is_span_free():
    """Regression guard: obs-off phases must not allocate spans at all."""
    engine, _ = build(obs=False)
    assert engine.obs is None
    assert engine._span("engine.update_batch", t=0.0, n=0) is NULL_SPAN
    assert engine._span("engine.initial_join") is NULL_SPAN
    # And the guard is the NULL_SPAN singleton, not a fresh no-op object:
    assert engine._span("a") is engine._span("b")


def test_rollup_matches_tracker_bit_exactly():
    engine, arr = build(obs=True)
    drive(engine, arr)
    assert obs_counters(engine.obs) == counter_dict(engine.tracker)
    assert engine.tracker.pair_tests > 0  # not vacuous


def test_phase_timeline_present():
    engine, arr = build(obs=True)
    drive(engine, arr, ticks=4)
    names = {span.name for span in engine.obs.root.walk()}
    assert {"engine.initial_join", "engine.update_batch", "engine.expire"} <= names
    batches = engine.obs.find("engine.update_batch")
    assert [span.tags["t"] for span in batches] == [1.0, 2.0, 3.0, 4.0]
    # Whole-batch op counts ride on the span tags.
    assert all(span.tags["n"] >= 0 for span in batches)


def test_recording_does_not_change_results_or_counters():
    plain, arr_p = build(obs=False)
    recorded, arr_r = build(obs=True)
    drive(plain, arr_p)
    drive(recorded, arr_r)
    assert plain.result_at(8.0) == recorded.result_at(8.0)
    assert counter_dict(plain.tracker) == counter_dict(recorded.tracker)
    assert sorted(plain.store._pairs) == sorted(recorded.store._pairs)


def test_export_requires_obs(tmp_path):
    engine, _ = build(obs=False)
    with pytest.raises(RuntimeError, match="obs"):
        engine.export_obs(tmp_path / "unused.json")


def test_export_writes_json(tmp_path):
    engine, arr = build(obs=True)
    drive(engine, arr, ticks=2)
    path = tmp_path / "columnar.json"
    engine.export_obs(path)
    assert path.exists() and path.stat().st_size > 0
