"""Vectorized workloads: array generator equivalence and stream fixtures.

Two contracts are pinned here:

1. **Byte-identity of the seeded legacy streams.**  Vectorizing the
   generator must not move a single random draw: ``make_workload`` and
   ``UpdateStream`` outputs for a fixed seed are part of the repo's
   reproducibility surface (benchmark cells and differential fixtures
   reference them by seed).  The digests below were captured before the
   vectorization refactor; any drift fails loudly.
2. **Exact equivalence of the array generator.**
   ``make_workload_arrays(...).to_scenario()`` must reproduce
   ``make_workload(...)`` object-for-object — same oids, same kinetic
   parameters, same RNG advancement.

``VectorUpdateStream`` is deterministic per seed but intentionally *not*
draw-compatible with the scalar stream (it bulk-draws per tick); its
contract is the ``T_M`` guarantee plus engine-visible validity, tested
against the sanitizer.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import ColumnarJoinEngine, JoinConfig
from repro.workloads import (
    DISTRIBUTIONS,
    UpdateStream,
    VectorUpdateStream,
    make_workload,
    make_workload_arrays,
)

N, T_M, SCENARIO_SEED, STREAM_SEED = 48, 20.0, 7, 9

# sha256 (first 16 hex) over repr((oid,) + kbox.params()) per object,
# set A then set B, for make_workload(48, dist, t_m=20.0, seed=7).
SCENARIO_DIGESTS = {
    "uniform": "fcf77733a3f61096",
    "gaussian": "4cf60e6197a319e9",
    "battlefield": "742cb0921ad1ef8e",
    "road": "686221e228326420",
}

# sha256 (first 16 hex) over repr((t, oid) + kbox.params()) per emitted
# update, for UpdateStream(scenario, seed=9).by_timestamp(1.0, 12.0).
STREAM_DIGESTS = {
    "uniform": "3e2529b8b8f6c478",
    "gaussian": "ec1ede16ee6edbb9",
    "battlefield": "6d7b1d384ed0a81b",
    "road": "4eb4e84e6491ada4",
}


def scenario_digest(scenario):
    h = hashlib.sha256()
    for o in list(scenario.set_a) + list(scenario.set_b):
        h.update(repr((o.oid,) + o.kbox.params()).encode())
    return h.hexdigest()[:16]


def stream_digest(scenario, seed=STREAM_SEED):
    h = hashlib.sha256()
    stream = UpdateStream(scenario, seed=seed)
    for t, batch in stream.by_timestamp(1.0, 12.0):
        for o in batch:
            h.update(repr((t, o.oid) + o.kbox.params()).encode())
    return h.hexdigest()[:16]


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_seeded_scenarios_are_byte_stable(distribution):
    scenario = make_workload(N, distribution, t_m=T_M, seed=SCENARIO_SEED)
    assert scenario_digest(scenario) == SCENARIO_DIGESTS[distribution]


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_seeded_streams_are_byte_stable(distribution):
    scenario = make_workload(N, distribution, t_m=T_M, seed=SCENARIO_SEED)
    assert stream_digest(scenario) == STREAM_DIGESTS[distribution]


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_array_generator_reproduces_object_generator(distribution):
    arrays = make_workload_arrays(N, distribution, t_m=T_M, seed=SCENARIO_SEED)
    legacy = make_workload(N, distribution, t_m=T_M, seed=SCENARIO_SEED)
    rebuilt = arrays.to_scenario()
    for built, want in (
        (rebuilt.set_a, legacy.set_a),
        (rebuilt.set_b, legacy.set_b),
    ):
        assert [o.oid for o in built] == [o.oid for o in want]
        for x, y in zip(built, want):
            assert x.kbox.params() == y.kbox.params()
    # Identical RNG advancement too: the digests transfer as-is.
    assert scenario_digest(rebuilt) == SCENARIO_DIGESTS[distribution]


def test_array_scenario_columns_match_objects():
    arrays = make_workload_arrays(N, "uniform", t_m=T_M, seed=SCENARIO_SEED)
    scenario = arrays.to_scenario()
    for cols, objs in (
        (arrays.columns_a(), scenario.set_a),
        (arrays.columns_b(), scenario.set_b),
    ):
        assert cols.oid.tolist() == [o.oid for o in objs]
        for i, o in enumerate(objs):
            params = (
                cols.mlo[0, i], cols.mhi[0, i], cols.mlo[1, i], cols.mhi[1, i],
                cols.vlo[0, i], cols.vhi[0, i], cols.vlo[1, i], cols.vhi[1, i],
                cols.tref[i],
            )
            assert params == o.kbox.params()
        assert np.array_equal(cols.vlo, cols.vhi)  # rigid objects


def test_vector_stream_is_deterministic_per_seed():
    def emitted(seed):
        arrays = make_workload_arrays(N, "uniform", t_m=T_M, seed=SCENARIO_SEED)
        stream = VectorUpdateStream(arrays, seed=seed)
        out = []
        for step in range(1, 13):
            for cols in stream.updates_at(float(step)):
                out.append(
                    (cols.oid.tobytes(), cols.mlo.tobytes(), cols.vlo.tobytes())
                )
        return out

    assert emitted(4) == emitted(4)
    assert emitted(4) != emitted(5)


@pytest.mark.parametrize("distribution", ["uniform", "battlefield", "road"])
def test_vector_stream_respects_t_m(distribution):
    """Every object updates within T_M of its previous reference time."""
    arrays = make_workload_arrays(N, distribution, t_m=T_M, seed=SCENARIO_SEED)
    stream = VectorUpdateStream(arrays, seed=STREAM_SEED)
    last = {int(oid): 0.0 for oid in arrays.oid_a.tolist() + arrays.oid_b.tolist()}
    seen = set()
    for step in range(1, int(T_M) + 1):
        t = float(step)
        for cols in stream.updates_at(t):
            assert np.all(cols.tref == t)  # noqa: RC001
            for oid in cols.oid.tolist():
                assert t - last[oid] <= T_M
                last[oid] = t
                seen.add(oid)
    assert seen == set(last)  # everyone updated at least once within T_M


def test_vector_stream_drives_engine_cleanly():
    """Sanitized engine accepts the stream's batches for a full window."""
    arrays = make_workload_arrays(
        N, "battlefield", t_m=12.0, max_speed=3.0, seed=SCENARIO_SEED
    )
    engine = ColumnarJoinEngine(
        arrays.columns_a(),
        arrays.columns_b(),
        algorithm="mtb",
        config=JoinConfig(t_m=12.0, sanitize=True),
    )
    engine.run_initial_join()
    stream = VectorUpdateStream(arrays, seed=STREAM_SEED)
    applied = 0
    for step in range(1, 13):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
        applied += len(upd_a) + len(upd_b)
    assert applied == engine.update_count > 0


def test_vector_stream_positions_stay_in_space():
    arrays = make_workload_arrays(N, "road", t_m=T_M, seed=SCENARIO_SEED)
    stream = VectorUpdateStream(arrays, seed=STREAM_SEED)
    hi = arrays.space_size - arrays.object_side
    for step in range(1, 25):
        for cols in stream.updates_at(float(step)):
            assert np.all(cols.mlo >= 0.0)
            assert np.all(cols.mlo <= hi)
