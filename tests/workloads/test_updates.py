"""Tests for the update stream: the T_M contract and domain containment."""

import pytest

from repro.workloads import UpdateStream, battlefield_workload, uniform_workload


def drive(scenario, stream, steps):
    """Apply the stream to a plain dict of current objects."""
    current = {o.oid: o for o in scenario.set_a + scenario.set_b}
    last_update = {oid: 0.0 for oid in current}
    for step in range(1, steps + 1):
        t = float(step)
        for obj in stream.updates_for(t, current):
            assert obj.t_ref == t
            current[obj.oid] = obj
            last_update[obj.oid] = t
    return current, last_update


class TestTMContract:
    def test_every_object_updates_within_tm(self):
        scenario = uniform_workload(150, seed=8, t_m=12.0)
        stream = UpdateStream(scenario, seed=3)
        steps = 40
        current, last_update = drive(scenario, stream, steps)
        for oid, last in last_update.items():
            assert steps - last <= 12.0, oid

    def test_average_interval_near_half_tm(self):
        """Uniform rescheduling gives ~T_M/2 expected update spacing."""
        scenario = uniform_workload(200, seed=9, t_m=20.0)
        stream = UpdateStream(scenario, seed=5)
        count = 0
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        steps = 100
        for step in range(1, steps + 1):
            batch = stream.updates_for(float(step), current)
            for obj in batch:
                current[obj.oid] = obj
            count += len(batch)
        mean_interval = (400 * steps) / count
        assert 7.0 < mean_interval < 14.0  # ≈ 10.5 for uniform [1, 20]


class TestDomain:
    def test_objects_stay_in_domain(self):
        scenario = uniform_workload(100, seed=2, t_m=10.0, max_speed=5.0)
        stream = UpdateStream(scenario, seed=2)
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        for step in range(1, 60):
            for obj in stream.updates_for(float(step), current):
                current[obj.oid] = obj
                mbr = obj.kbox.mbr
                assert -1e-9 <= mbr.x_lo and mbr.x_hi <= scenario.space_size + 1e-9
                assert -1e-9 <= mbr.y_lo and mbr.y_hi <= scenario.space_size + 1e-9

    def test_determinism(self):
        scenario = uniform_workload(50, seed=7, t_m=10.0)
        s1 = UpdateStream(scenario, seed=11)
        s2 = UpdateStream(scenario, seed=11)
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        for step in range(1, 15):
            b1 = s1.updates_for(float(step), current)
            b2 = s2.updates_for(float(step), current)
            assert b1 == b2
            for obj in b1:
                current[obj.oid] = obj


class TestBattlefieldHoming:
    def test_sides_keep_converging(self):
        scenario = battlefield_workload(100, seed=4, t_m=10.0, max_speed=3.0)
        stream = UpdateStream(scenario, seed=6)
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        a_ids = {o.oid for o in scenario.set_a}
        for step in range(1, 20):
            for obj in stream.updates_for(float(step), current):
                current[obj.oid] = obj
                x = obj.kbox.mbr.center[0]
                vx = obj.velocity[0]
                if obj.oid in a_ids and x < scenario.space_size * 0.6:
                    assert vx > 0  # still charging toward the enemy
                if obj.oid not in a_ids and x > scenario.space_size * 0.4:
                    assert vx < 0

    def test_due_counts(self):
        scenario = uniform_workload(30, seed=1, t_m=5.0)
        stream = UpdateStream(scenario, seed=1)
        assert stream.due_counts(0.0) == 0
        assert stream.due_counts(5.0) == 60  # everyone due by T_M


class TestByTimestamp:
    def test_matches_tick_by_tick_updates_for(self):
        scenario = uniform_workload(60, seed=13, t_m=9.0)
        manual = UpdateStream(scenario, seed=4)
        grouped = UpdateStream(scenario, seed=4)
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        it = grouped.by_timestamp(t_start=1.0, t_end=12.0)
        total = 0
        for step in range(1, 13):
            t = float(step)
            want = manual.updates_for(t, current)
            got_t, got = next(it)
            assert got_t == t
            assert got == want
            total += len(want)
            for obj in want:
                current[obj.oid] = obj
        assert total > 0, "vacuous: the stream never produced an update"
        with pytest.raises(StopIteration):
            next(it)

    def test_batches_are_same_tick_groups(self):
        scenario = uniform_workload(40, seed=2, t_m=6.0)
        for t, batch in UpdateStream(scenario, seed=9).by_timestamp(t_end=10.0):
            assert all(obj.t_ref == t for obj in batch)

    def test_seeding_from_caller_state(self):
        """Passing ``current`` starts from the caller's object versions."""
        scenario = uniform_workload(30, seed=5, t_m=7.0)
        current = {o.oid: o for o in scenario.set_a + scenario.set_b}
        grouped = UpdateStream(scenario, seed=8)
        manual = UpdateStream(scenario, seed=8)
        got = list(grouped.by_timestamp(t_start=1.0, t_end=5.0, current=current))
        want = []
        state = dict(current)
        for step in range(1, 6):
            batch = manual.updates_for(float(step), state)
            for obj in batch:
                state[obj.oid] = obj
            want.append((float(step), batch))
        assert got == want
