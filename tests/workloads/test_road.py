"""Road-network workload: placement, kinematics, and engine exactness."""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.join import brute_force_pairs_at
from repro.workloads import UpdateStream, road_network_workload
from repro.workloads.generator import ROAD_GRID


class TestRoadPlacement:
    def test_objects_on_roads(self):
        sc = road_network_workload(200, seed=3)
        spacing = sc.space_size / ROAD_GRID
        centers = [r * spacing + spacing / 2 for r in range(ROAD_GRID)]
        for obj in sc.set_a + sc.set_b:
            x, y = obj.kbox.mbr.x_lo, obj.kbox.mbr.y_lo
            on_h = any(abs(y - c) < 1e-6 for c in centers)
            on_v = any(abs(x - c) < 1e-6 for c in centers)
            assert on_h or on_v, (x, y)

    def test_velocities_axis_aligned(self):
        sc = road_network_workload(200, seed=4, max_speed=3.0)
        for obj in sc.set_a + sc.set_b:
            vx, vy = obj.velocity
            assert vx == 0.0 or vy == 0.0
            assert abs(vx) + abs(vy) > 0.0
            assert abs(vx) + abs(vy) <= 3.0 + 1e-9

    def test_distribution_registered(self):
        sc = road_network_workload(10, seed=0)
        assert sc.distribution == "road"


class TestRoadUpdates:
    def test_updates_stay_on_roads_and_axis_aligned(self):
        sc = road_network_workload(80, seed=5, t_m=8.0, max_speed=3.0)
        stream = UpdateStream(sc, seed=6)
        current = {o.oid: o for o in sc.set_a + sc.set_b}
        spacing = sc.space_size / ROAD_GRID
        centers = [
            min(r * spacing + spacing / 2, sc.space_size - sc.object_side)
            for r in range(ROAD_GRID)
        ]
        for step in range(1, 30):
            for obj in stream.updates_for(float(step), current):
                current[obj.oid] = obj
                vx, vy = obj.velocity
                assert vx == 0.0 or vy == 0.0
                x, y = obj.kbox.mbr.x_lo, obj.kbox.mbr.y_lo
                if vx != 0.0:  # horizontal travel → y on a road center
                    assert any(abs(y - c) < 1e-6 for c in centers), y
                else:
                    assert any(abs(x - c) < 1e-6 for c in centers), x

    def test_engine_exact_on_road_workload(self):
        sc = road_network_workload(
            90, seed=7, t_m=10.0, max_speed=3.0, object_size_pct=1.5
        )
        engine = ContinuousJoinEngine.create(
            sc.set_a, sc.set_b, algorithm="mtb", config=JoinConfig(t_m=10.0)
        )
        engine.run_initial_join()
        driver = SimulationDriver(engine, UpdateStream(sc, seed=8))
        for _ in range(25):
            driver.step()
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), engine.now
            )
            assert engine.result_at(engine.now) == want

    def test_dimension_selection_exploits_road_skew(self):
        """Velocity skew is what DS is for: on road data it must pick a
        sensible dimension without error and the join stays exact."""
        from repro.geometry import select_sweep_dimension

        sc = road_network_workload(100, seed=9)
        dim = select_sweep_dimension(
            [o.kbox for o in sc.set_a], [o.kbox for o in sc.set_b]
        )
        assert dim in (0, 1)
