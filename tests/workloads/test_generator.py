"""Tests for the dataset generators (paper §VI-A)."""

import numpy as np
import pytest

from repro.workloads import (
    DISTRIBUTIONS,
    battlefield_workload,
    gaussian_workload,
    make_workload,
    uniform_workload,
)


class TestBasics:
    def test_cardinalities_and_ids_disjoint(self):
        sc = make_workload(100, "uniform", seed=1)
        assert len(sc.set_a) == len(sc.set_b) == 100
        ids_a = {o.oid for o in sc.set_a}
        ids_b = {o.oid for o in sc.set_b}
        assert len(ids_a) == len(ids_b) == 100
        assert not ids_a & ids_b

    def test_deterministic_per_seed(self):
        s1 = make_workload(50, "uniform", seed=9)
        s2 = make_workload(50, "uniform", seed=9)
        assert s1.set_a == s2.set_a
        assert s1.set_b == s2.set_b
        s3 = make_workload(50, "uniform", seed=10)
        assert s1.set_a != s3.set_a

    def test_object_size(self):
        sc = make_workload(20, "uniform", object_size_pct=0.5, space_size=1000.0)
        assert sc.object_side == pytest.approx(5.0)
        for obj in sc.set_a:
            assert obj.kbox.mbr.side(0) == pytest.approx(5.0)
            assert obj.kbox.mbr.side(1) == pytest.approx(5.0)

    def test_objects_inside_domain(self):
        for dist in DISTRIBUTIONS:
            sc = make_workload(200, dist, seed=4)
            for obj in sc.set_a + sc.set_b:
                mbr = obj.kbox.mbr
                assert 0 <= mbr.x_lo and mbr.x_hi <= sc.space_size
                assert 0 <= mbr.y_lo and mbr.y_hi <= sc.space_size

    def test_speed_bounded(self):
        sc = make_workload(300, "uniform", max_speed=2.5, seed=5)
        for obj in sc.set_a + sc.set_b:
            vx, vy = obj.velocity
            assert (vx**2 + vy**2) ** 0.5 <= 2.5 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            make_workload(0, "uniform")
        with pytest.raises(ValueError):
            make_workload(10, "hexagonal")
        with pytest.raises(ValueError):
            make_workload(10, "uniform", object_size_pct=0.0)


class TestDistributions:
    def test_gaussian_clusters_at_center(self):
        sc = gaussian_workload(500, seed=2)
        xs = np.array([o.kbox.mbr.center[0] for o in sc.set_a])
        uni = uniform_workload(500, seed=2)
        xs_uni = np.array([o.kbox.mbr.center[0] for o in uni.set_a])
        # Gaussian positions concentrate: much lower spread than uniform.
        assert xs.std() < xs_uni.std() * 0.7
        assert abs(xs.mean() - 500.0) < 30.0

    def test_battlefield_sides_and_headings(self):
        sc = battlefield_workload(300, seed=3)
        xs_a = np.array([o.kbox.mbr.center[0] for o in sc.set_a])
        xs_b = np.array([o.kbox.mbr.center[0] for o in sc.set_b])
        assert xs_a.mean() < 300.0       # A starts on the left…
        assert xs_b.mean() > 700.0       # …B on the right
        for obj in sc.set_a:
            assert obj.velocity[0] > 0   # A charges right
        for obj in sc.set_b:
            assert obj.velocity[0] < 0   # B charges left

    def test_wrapper_functions(self):
        assert uniform_workload(10, seed=0).distribution == "uniform"
        assert gaussian_workload(10, seed=0).distribution == "gaussian"
        assert battlefield_workload(10, seed=0).distribution == "battlefield"
