"""Scenario JSON persistence round-trips."""

import json

import pytest

from repro.workloads import (
    UpdateStream,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    uniform_workload,
)


class TestScenarioIO:
    def test_roundtrip_objects(self, tmp_path):
        scenario = uniform_workload(40, seed=6, max_speed=3.0, t_m=20.0)
        path = str(tmp_path / "scenario.json")
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.set_a == scenario.set_a
        assert loaded.set_b == scenario.set_b
        assert loaded.distribution == scenario.distribution
        assert loaded.t_m == scenario.t_m
        assert loaded.object_side == scenario.object_side

    def test_dict_roundtrip(self):
        scenario = uniform_workload(10, seed=1)
        data = scenario_to_dict(scenario)
        json.dumps(data)  # must be JSON-serializable
        again = scenario_from_dict(data)
        assert again.set_a == scenario.set_a

    def test_version_checked(self):
        scenario = uniform_workload(5, seed=2)
        data = scenario_to_dict(scenario)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            scenario_from_dict(data)

    def test_reloaded_scenario_drives_update_stream(self, tmp_path):
        scenario = uniform_workload(20, seed=3, t_m=10.0)
        path = str(tmp_path / "s.json")
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        s1 = UpdateStream(loaded, seed=5)
        s2 = UpdateStream(loaded, seed=5)
        current = {o.oid: o for o in loaded.set_a + loaded.set_b}
        for t in range(1, 6):
            assert s1.updates_for(float(t), current) == s2.updates_for(
                float(t), current
            )
