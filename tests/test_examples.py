"""The example scripts must stay runnable.

Every example is compiled; the two fastest are executed end-to-end
(they assert internally against oracles).  The longer simulations are
exercised by the benchmark suite instead.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "police_dispatch.py", "battlefield.py"} <= names
    assert len(ALL_EXAMPLES) >= 5


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", ["quickstart.py", "police_dispatch.py"])
def test_fast_examples_run(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
