"""Tests for the MovingObject model and the top-level package API."""

import pytest

import repro
from repro.geometry import Box
from repro.objects import MovingObject


class TestMovingObject:
    def test_basic(self):
        obj = MovingObject(7, Box(0, 1, 0, 1), 0.5, -0.25, t_ref=10.0)
        assert obj.oid == 7
        assert obj.t_ref == 10.0
        assert obj.velocity == (0.5, -0.25)
        assert obj.mbr_at(12.0) == Box(1, 2, -0.5, 0.5)

    def test_updated_defaults(self):
        obj = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, t_ref=0.0)
        newer = obj.updated(4.0)
        assert newer.oid == 1
        assert newer.t_ref == 4.0
        assert newer.kbox.mbr == Box(4, 5, 0, 1)   # extrapolated position
        assert newer.velocity == (1.0, 0.0)        # velocity carried over

    def test_updated_overrides(self):
        obj = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, t_ref=0.0)
        newer = obj.updated(4.0, mbr=Box(9, 10, 9, 10), vx=-2.0, vy=3.0)
        assert newer.kbox.mbr == Box(9, 10, 9, 10)
        assert newer.velocity == (-2.0, 3.0)

    def test_equality_and_hash(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1, 0, 0.0)
        b = MovingObject(1, Box(0, 1, 0, 1), 1, 0, 0.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.updated(1.0)

    def test_repr(self):
        obj = MovingObject(3, Box(0, 1, 0, 1), 1, 2, 0.0)
        assert "oid=3" in repr(obj)


class TestPackageAPI:
    def test_version(self):
        assert repro.__version__

    def test_lazy_top_level_exports(self):
        assert repro.ContinuousJoinEngine is not None
        assert repro.JoinConfig is not None
        assert callable(repro.uniform_workload)
        assert callable(repro.gaussian_workload)
        assert callable(repro.battlefield_workload)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_docstring_quickstart_runs(self):
        scenario = repro.uniform_workload(50, seed=7)
        engine = repro.ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="mtb"
        )
        engine.run_initial_join()
        assert isinstance(engine.result_at(engine.now), set)
