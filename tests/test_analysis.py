"""The analytic cost model: sanity, limits, and loose agreement with
measured uniform workloads."""

import math

import pytest

from repro.analysis import (
    WorkloadModel,
    expected_join_pairs,
    expected_node_pair_accesses,
    pair_intersection_probability,
    tc_speedup_ratio,
)
from repro.join import brute_force_join
from repro.workloads import uniform_workload


class TestProbability:
    def test_static_touching_squares(self):
        # Two unit squares in a 10x10 domain: P = (2/10)^2 = 0.04.
        p = pair_intersection_probability(1, 1, 10, 0, 0)
        assert p == pytest.approx(0.04)

    def test_window_grows_probability(self):
        p0 = pair_intersection_probability(1, 1, 100, 1.0, 0)
        p10 = pair_intersection_probability(1, 1, 100, 1.0, 10)
        p50 = pair_intersection_probability(1, 1, 100, 1.0, 50)
        assert p0 < p10 < p50

    def test_saturates_at_one(self):
        assert pair_intersection_probability(60, 60, 100, 1, 100) == 1.0

    def test_infinite_window(self):
        assert pair_intersection_probability(1, 1, 1000, 0.5, math.inf) == 1.0
        static = pair_intersection_probability(1, 1, 1000, 0.0, math.inf)
        assert static == pytest.approx((2 / 1000) ** 2)


class TestModelValidation:
    def test_invalid_model(self):
        with pytest.raises(ValueError):
            WorkloadModel(0, 1000, 1, 1)
        with pytest.raises(ValueError):
            WorkloadModel(10, -1, 1, 1)


class TestAgainstMeasurement:
    def test_expected_pairs_within_factor_of_measured(self):
        """Model vs measured pair counts on the default uniform workload
        — agreement within a factor of 3 is what this model promises."""
        n = 800
        t_m = 60.0
        scenario = uniform_workload(
            n, seed=42, max_speed=2.0, object_size_pct=0.5, t_m=t_m
        )
        measured = len(brute_force_join(scenario.set_a, scenario.set_b, 0.0, t_m))
        model = WorkloadModel(
            n_objects=n,
            space_size=scenario.space_size,
            object_side=scenario.object_side,
            max_speed=scenario.max_speed,
        )
        predicted = expected_join_pairs(model, t_m)
        assert measured / 3 <= predicted <= measured * 3, (predicted, measured)

    def test_tc_speedup_direction(self):
        """The model must predict the Figure-7 direction: unbounded
        windows cost strictly more, and more so for small slow objects."""
        small = WorkloadModel(1000, 1000.0, 1.0, 2.0)
        assert tc_speedup_ratio(small, 60.0) > 10.0
        huge = WorkloadModel(1000, 1000.0, 400.0, 2.0)
        assert tc_speedup_ratio(huge, 60.0) < tc_speedup_ratio(small, 60.0)

    def test_speedup_at_least_one(self):
        model = WorkloadModel(10, 100.0, 90.0, 0.0)
        assert tc_speedup_ratio(model, 10.0) >= 1.0


class TestNodeAccessModel:
    def test_window_monotone(self):
        model = WorkloadModel(5000, 1000.0, 1.0, 2.0)
        narrow = expected_node_pair_accesses(model, 10.0)
        wide = expected_node_pair_accesses(model, 60.0)
        unbounded = expected_node_pair_accesses(model, math.inf)
        assert narrow < wide <= unbounded

    def test_unbounded_saturates_to_all_pairs(self):
        """With an infinite window every node pair meets (the paper's
        degeneration argument): probability 1 at every level."""
        model = WorkloadModel(5000, 1000.0, 1.0, 2.0)
        total = expected_node_pair_accesses(
            model, math.inf, node_capacity=30, fill=0.7
        )
        fanout = 30 * 0.7
        nodes1 = 5000 / fanout
        assert total >= nodes1 * nodes1  # leaf-parent level alone

    def test_larger_trees_cost_more(self):
        small = WorkloadModel(1000, 1000.0, 1.0, 2.0)
        large = WorkloadModel(10000, 1000.0, 1.0, 2.0)
        assert expected_node_pair_accesses(
            small, 60.0
        ) < expected_node_pair_accesses(large, 60.0)
