"""Runtime sanitizer: each corruption is caught with the right SC code,
and clean engines stay clean with ``sanitize=True``."""

from __future__ import annotations

import io

import pytest

from repro.check import (
    InvariantViolation,
    check_mtb_forest,
    check_result_store,
    check_supervisor_state,
    check_tpr_tree,
)
from repro.check.cli import main
from repro.core import ContinuousJoinEngine, ContinuousSelfJoinEngine, JoinConfig
from repro.core.result import JoinResultStore
from repro.geometry import Box, KineticBox, TimeInterval
from repro.index import MTBTree, TPRStarTree, TreeStorage, save_forest, save_tree
from repro.join import JoinTriple

from ..conftest import random_objects


def codes(findings) -> set:
    return {f.code for f in findings}


def build_tree(n: int = 40, t0: float = 0.0) -> TPRStarTree:
    tree = TPRStarTree(
        storage=TreeStorage(), node_capacity=8, horizon=10.0, use_kernels=False
    )
    for obj in random_objects(7, n, t_ref=t0, space=200.0):
        tree.insert(obj, t0)
    return tree


def far_box(t_ref: float) -> KineticBox:
    return KineticBox.rigid(Box(1e6, 1e6 + 1, 1e6, 1e6 + 1), 0.0, 0.0, t_ref)


# ----------------------------------------------------------------------
# TPR-tree corruption
# ----------------------------------------------------------------------
class TestTPRTree:
    def test_clean_tree_has_no_findings(self):
        tree = build_tree()
        assert check_tpr_tree(tree, 0.0) == []

    def test_corrupted_root_level_is_sc101(self):
        tree = build_tree()
        root = tree.root_node()
        root.level += 1
        tree.storage.write_node(root)
        assert "SC101" in codes(check_tpr_tree(tree, 0.0))

    def test_underfull_node_is_sc102(self):
        tree = build_tree()
        root = tree.root_node()
        assert not root.is_leaf, "need a non-root level to underfill"
        child = tree.read_node(root.entries[0].ref)
        child.entries = child.entries[:1]
        tree.storage.write_node(child)
        assert "SC102" in codes(check_tpr_tree(tree, 0.0))

    def test_shrunk_parent_bound_is_sc103(self):
        tree = build_tree()
        root = tree.root_node()
        assert not root.is_leaf, "need an internal level to corrupt"
        root.entries[0].kbox = far_box(0.0)
        tree.storage.write_node(root)
        assert "SC103" in codes(check_tpr_tree(tree, 0.0))

    def test_mutated_leaf_entry_is_sc104(self):
        tree = build_tree()
        leaf = tree.read_node(tree.root_node().entries[0].ref)
        assert leaf.is_leaf
        leaf.entries[0].kbox = far_box(0.0)
        tree.storage.write_node(leaf)
        assert "SC104" in codes(check_tpr_tree(tree, 0.0))

    def test_dropped_object_row_is_sc104(self):
        tree = build_tree()
        oid = next(iter(tree.objects))
        tree.objects.pop(oid)
        assert "SC104" in codes(check_tpr_tree(tree, 0.0))


# ----------------------------------------------------------------------
# MTB forest corruption
# ----------------------------------------------------------------------
def build_forest(t_now: float = 1.0) -> MTBTree:
    forest = MTBTree(t_m=10.0, buckets_per_tm=2, node_capacity=8)
    for obj in random_objects(11, 30, t_ref=1.0, space=200.0):
        forest.insert(obj, t_now)
    return forest


class TestMTBForest:
    def test_clean_forest_has_no_findings(self):
        assert check_mtb_forest(build_forest(), 1.0) == []

    def test_misfiled_object_is_sc201(self):
        forest = build_forest()
        # An object last updated at t=7 (bucket 1) filed under bucket 0.
        (stray,) = random_objects(13, 1, id_offset=900, t_ref=7.0, space=200.0)
        forest._tree_for(forest.bucket_key(1.0)).insert(stray, 7.0)
        forest.objects.put(stray, forest.bucket_key(1.0))
        assert "SC201" in codes(check_mtb_forest(forest, 8.0))

    def test_wrong_table_tag_is_sc202(self):
        forest = build_forest()
        oid = next(iter(forest.objects))
        obj = forest.objects.get(oid)
        forest.objects.put(obj, forest.bucket_key(obj.t_ref) + 5)
        assert "SC202" in codes(check_mtb_forest(forest, 1.0))

    def test_future_update_is_sc203(self):
        forest = build_forest()
        assert "SC203" in codes(check_mtb_forest(forest, 0.5))


# ----------------------------------------------------------------------
# Result-store corruption
# ----------------------------------------------------------------------
def store_with(intervals) -> JoinResultStore:
    store = JoinResultStore()
    store.add(JoinTriple(1, 2, TimeInterval(0.0, 1.0)))
    store._pairs[(1, 2)] = list(intervals)
    # Keep the prune frontier consistent with the injected list so only
    # the corruption under test is reported.
    store._frontier = [(intervals[0].end, (1, 2))] if intervals else []
    return store


class TestResultStore:
    def test_clean_store_has_no_findings(self):
        store = store_with([TimeInterval(0.0, 2.0), TimeInterval(5.0, 6.0)])
        assert check_result_store(store) == []

    def test_out_of_order_is_sc301(self):
        store = store_with([TimeInterval(5.0, 6.0), TimeInterval(0.0, 2.0)])
        assert "SC301" in codes(check_result_store(store))

    def test_overlapping_intervals_are_sc302(self):
        store = store_with([TimeInterval(0.0, 5.0), TimeInterval(4.0, 8.0)])
        assert "SC302" in codes(check_result_store(store))

    def test_tc_bound_violation_is_sc303(self):
        store = store_with([TimeInterval(0.0, 100.0)])
        findings = check_result_store(
            store, t_m=10.0, anchors={1: 0.0, 2: 0.0}, floor=0.0
        )
        assert "SC303" in codes(findings)

    def test_within_tc_bound_is_clean(self):
        store = store_with([TimeInterval(0.0, 9.5)])
        findings = check_result_store(
            store, t_m=10.0, anchors={1: 0.0, 2: 0.0}, floor=0.0
        )
        assert findings == []

    def test_unregistered_pair_is_sc304(self):
        store = store_with([TimeInterval(0.0, 1.0)])
        store._pairs[(3, 4)] = [TimeInterval(0.0, 1.0)]
        assert "SC304" in codes(check_result_store(store))

    def test_missing_frontier_entry_is_sc305(self):
        store = store_with([TimeInterval(0.0, 2.0)])
        store._frontier = []  # prune_expired would never see the pair
        assert "SC305" in codes(check_result_store(store))

    def test_stale_frontier_entries_are_tolerated(self):
        store = store_with([TimeInterval(0.0, 2.0)])
        store._frontier.append((0.5, (9, 9)))  # lazy leftovers are fine
        assert check_result_store(store) == []


# ----------------------------------------------------------------------
# Engine wiring: JoinConfig.sanitize catches corruption mid-run
# ----------------------------------------------------------------------
def build_engine(algorithm: str, sanitize: bool = True) -> ContinuousJoinEngine:
    config = JoinConfig(t_m=20.0, node_capacity=8, sanitize=sanitize)
    engine = ContinuousJoinEngine(
        random_objects(3, 30, space=200.0),
        random_objects(4, 30, id_offset=100, space=200.0),
        algorithm,
        config,
    )
    engine.run_initial_join()
    return engine


class TestEngineWiring:
    @pytest.mark.parametrize("algorithm", ["naive", "etp", "tc", "mtb"])
    def test_clean_run_with_sanitize_on(self, algorithm):
        engine = build_engine(algorithm)
        for step in range(1, 6):
            t = float(step)
            engine.tick(t)
            for oid in (step, 100 + step):
                engine.apply_update(
                    (engine.objects_a.get(oid) or engine.objects_b[oid]).updated(t)
                )

    def test_tick_raises_on_corrupted_tree(self):
        engine = build_engine("tc")
        tree = engine._strategy.tree_a
        leaf = tree.read_node(tree.root_node().entries[0].ref)
        leaf.entries[0].kbox = far_box(0.0)
        tree.storage.write_node(leaf)
        with pytest.raises(InvariantViolation) as excinfo:
            engine.tick(1.0)
        assert "SC104" in {f.code for f in excinfo.value.findings}

    def test_sanitize_off_skips_checks(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        engine = build_engine("tc", sanitize=False)
        tree = engine._strategy.tree_a
        leaf = tree.read_node(tree.root_node().entries[0].ref)
        leaf.entries[0].kbox = far_box(0.0)
        tree.storage.write_node(leaf)
        engine.tick(1.0)  # corruption goes unnoticed by design

    def test_selfjoin_clean_run(self, sanitized):
        engine = ContinuousSelfJoinEngine(
            random_objects(5, 40, space=200.0),
            JoinConfig(t_m=20.0, node_capacity=8),
        )
        assert engine.config.sanitize  # flipped on by the fixture's env var
        engine.run_initial_join()
        for step in range(1, 6):
            t = float(step)
            engine.tick(t)
            engine.apply_update(engine.objects[step].updated(t))

    def test_env_var_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert JoinConfig().sanitize
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not JoinConfig().sanitize


# ----------------------------------------------------------------------
# CLI audit of persisted indexes
# ----------------------------------------------------------------------
class TestSanitizeCLI:
    def test_clean_tree_audits_clean(self, tmp_path):
        path = tmp_path / "tree.db"
        save_tree(build_tree(), str(path))
        out = io.StringIO()
        assert main(["sanitize", str(path)], out=out) == 0
        assert "clean" in out.getvalue()

    def test_corrupted_tree_audit_fails(self, tmp_path):
        tree = build_tree()
        leaf = tree.read_node(tree.root_node().entries[0].ref)
        leaf.entries[0].kbox = far_box(0.0)
        tree.storage.write_node(leaf)
        path = tmp_path / "tree.db"
        save_tree(tree, str(path))
        out = io.StringIO()
        assert main(["sanitize", str(path)], out=out) == 1
        assert "SC104" in out.getvalue()

    def test_forest_directory_audits_clean(self, tmp_path):
        save_forest(build_forest(), str(tmp_path / "forest"))
        out = io.StringIO()
        assert main(["sanitize", str(tmp_path / "forest")], out=out) == 0


def supervisor_state(shard=None, slot=None, **top):
    """A clean supervisor export, with targeted overrides per test."""
    shard_entry = {
        "shard": 0,
        "slot": 0,
        "degraded": False,
        "epoch": 1,
        "oplog_len": 2,
        "oplog_ops": ["tick", "ops"],
        "checkpoint": {"kind": "restore", "epoch": 1, "now": 3.0},
    }
    if shard:
        shard_entry.update(shard)
    slot_entry = {"slot": 0, "alive": True, "degraded": False}
    if slot:
        slot_entry.update(slot)
    state = {
        "format": "repro.par.supervisor/1",
        "now": 5.0,
        "checkpoint_interval": 4,
        "slots": [slot_entry],
        "shards": [shard_entry],
    }
    state.update(top)
    return state


class TestSupervisorState:
    """SC501–SC503: supervision invariants over exported state."""

    def test_clean_state_has_no_findings(self):
        assert check_supervisor_state(supervisor_state()) == []

    def test_unknown_format_flagged(self):
        found = check_supervisor_state(supervisor_state(format="bogus/9"))
        assert codes(found) == {"SC501"}

    def test_sc501_overlong_oplog(self):
        found = check_supervisor_state(
            supervisor_state(shard={"oplog_len": 9})
        )
        assert "SC501" in codes(found)

    def test_sc501_non_mutating_command_logged(self):
        found = check_supervisor_state(
            supervisor_state(shard={"oplog_ops": ["tick", "pairs_at"]})
        )
        assert "SC501" in codes(found)

    def test_sc502_epoch_disagreement(self):
        found = check_supervisor_state(
            supervisor_state(
                shard={"checkpoint": {"kind": "restore", "epoch": 0, "now": 3.0}}
            )
        )
        assert codes(found) == {"SC502"}

    def test_sc502_checkpoint_ahead_of_clock(self):
        found = check_supervisor_state(
            supervisor_state(
                shard={"checkpoint": {"kind": "restore", "epoch": 1, "now": 9.0}}
            )
        )
        assert codes(found) == {"SC502"}

    def test_sc502_log_without_replay_base(self):
        found = check_supervisor_state(
            supervisor_state(shard={"checkpoint": None})
        )
        assert codes(found) == {"SC502"}

    def test_sc503_unknown_slot(self):
        found = check_supervisor_state(supervisor_state(shard={"slot": 7}))
        assert codes(found) == {"SC503"}

    def test_sc503_dead_slot(self):
        found = check_supervisor_state(
            supervisor_state(slot={"alive": False})
        )
        assert codes(found) == {"SC503"}

    def test_degraded_shard_needs_no_live_slot(self):
        found = check_supervisor_state(
            supervisor_state(
                shard={"degraded": True}, slot={"alive": False, "degraded": True}
            )
        )
        assert found == []


# ----------------------------------------------------------------------
# Column-store corruption (SC601-SC603)
# ----------------------------------------------------------------------
class TestColumnStore:
    def build_store(self, n: int = 16):
        from repro.core import ColumnStore

        return ColumnStore.from_objects(
            random_objects(13, n, t_ref=0.0, space=200.0)
        )

    def check(self, store, t_now: float = 0.0):
        from repro.check.sanitize import check_column_store

        return check_column_store(store, t_now)

    def test_clean_store_has_no_findings(self):
        assert self.check(self.build_store()) == []

    def test_dropped_row_map_entry_is_sc601(self):
        store = self.build_store()
        store._row_of.pop(int(store.oid[0]))
        assert "SC601" in codes(self.check(store))

    def test_swapped_row_map_entries_are_sc601(self):
        store = self.build_store()
        a, b = int(store.oid[0]), int(store.oid[1])
        store._row_of[a], store._row_of[b] = store._row_of[b], store._row_of[a]
        assert "SC601" in codes(self.check(store))

    def test_drifted_shifted_bound_is_sc602(self):
        store = self.build_store()
        store.slo[0, 0] += 1e-3
        assert "SC602" in codes(self.check(store))

    def test_future_reference_time_is_sc603(self):
        store = self.build_store()
        store.tref[0] = 5.0
        store.slo[:, 0] = store.mlo[:, 0] - store.vlo[:, 0] * 5.0
        store.shi[:, 0] = store.mhi[:, 0] - store.vhi[:, 0] * 5.0
        found = self.check(store, t_now=1.0)
        assert "SC603" in codes(found)

    def test_non_finite_column_is_sc603(self):
        import numpy as np

        store = self.build_store()
        store.vlo[0, 0] = np.nan
        assert "SC603" in codes(self.check(store, t_now=0.0))


# ----------------------------------------------------------------------
# Delta ledger reconciliation (SC701-SC703)
# ----------------------------------------------------------------------
class TestDeltaLedger:
    """``check_delta_ledger`` reconciles an event source against its
    live store: fold lands on the store (SC701), ticks strictly
    increase (SC702), and the stream is well-formed (SC703)."""

    def build(self):
        from repro.deltas import DeltaLedger

        store = JoinResultStore()
        ledger = DeltaLedger(0.0)
        store.attach_ledger(ledger)
        store.add(JoinTriple(1, 2, TimeInterval(0.0, 3.0)))
        store.add(JoinTriple(3, 4, TimeInterval(1.0, 9.0)))
        ledger.advance(1.0)
        store.remove_object(1)
        return store, ledger

    def check(self, store, ledger):
        from repro.check.sanitize import check_delta_ledger

        return check_delta_ledger(store, ledger)

    def test_clean_ledger_has_no_findings(self):
        store, ledger = self.build()
        assert self.check(store, ledger) == []

    def test_unreported_mutation_is_sc701(self):
        store, ledger = self.build()
        store.attach_ledger(None)  # mutate behind the ledger's back
        store.remove_object(3)
        assert codes(self.check(store, ledger)) == {"SC701"}

    def test_drifted_interval_is_sc701(self):
        store, ledger = self.build()
        store._pairs[(3, 4)][0] = TimeInterval(1.0, 9.5)
        found = self.check(store, ledger)
        assert codes(found) == {"SC701"}
        assert "drifted" in found[0].message

    def test_backdated_tick_is_sc702(self):
        store, ledger = self.build()
        ledger._ticks.append(0.5)  # corrupt: records landed out of order
        ledger._raw[0.5] = [(1, 7, 8, 0.0, 1.0)]
        assert codes(self.check(store, ledger)) == {"SC702"}

    def test_duplicated_emission_is_sc703(self):
        store, ledger = self.build()
        ledger.advance(2.0)
        ledger.record(1, 3, 4, 1.0, 9.0)  # row is already present
        assert codes(self.check(store, ledger)) == {"SC703"}

    def test_lost_emission_is_sc703(self):
        store, ledger = self.build()
        ledger.advance(2.0)
        ledger.record(-1, 9, 9, 0.0, 1.0)  # row was never added
        assert codes(self.check(store, ledger)) == {"SC703"}

    def test_sanitize_flag_runs_the_reconciliation(self):
        """``sanitize=True`` + ``deltas=True`` wires SC70x into the
        engine's validate path end to end."""
        engine = ContinuousJoinEngine(
            random_objects(3, 12, t_ref=0.0, space=200.0),
            random_objects(4, 12, id_offset=100, t_ref=0.0, space=200.0),
            "mtb",
            JoinConfig(t_m=10.0, sanitize=True, deltas=True),
        )
        engine.run_initial_join()
        engine._sanitize()
        engine._strategy.store.attach_ledger(None)
        engine._strategy.store.clear()
        with pytest.raises(InvariantViolation) as err:
            engine._sanitize()
        assert any(f.code == "SC701" for f in err.value.findings)


# ----------------------------------------------------------------------
# Columnar result store (SC801-SC803)
# ----------------------------------------------------------------------
class TestColumnResultStore:
    """``check_column_result_store`` audits the SoA interval planes:
    order/disjointness (SC801), index agreement (SC802), post-flush
    bookkeeping (SC803), and the shared TC bound (SC303)."""

    def build(self):
        from repro.core.result import ColumnResultStore

        store = ColumnResultStore()
        store.add_batch((1, 1, 3), (2, 2, 4), (0.0, 5.0, 1.0), (1.0, 6.0, 9.0))
        store.flush()
        return store

    def check(self, store, **kw):
        from repro.check.sanitize import check_column_result_store

        return check_column_result_store(store, **kw)

    def test_clean_store_has_no_findings(self):
        store = self.build()
        assert self.check(store) == []
        assert self.check(
            store, t_m=10.0, anchors={1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}
        ) == []

    def test_pair_keys_out_of_order_is_sc801(self):
        store = self.build()
        store._a[0] = 9  # rows no longer sorted by (a, b)
        found = self.check(store)
        assert "SC801" in codes(found)

    def test_overlapping_intervals_is_sc801(self):
        store = self.build()
        store._lo[1] = 0.5  # second (1, 2) interval now overlaps the first
        assert codes(self.check(store)) == {"SC801"}

    def test_interval_starts_out_of_order_is_sc801(self):
        store = self.build()
        store._lo[1], store._lo[0] = store._lo[0], store._lo[1]
        assert "SC801" in codes(self.check(store))

    def test_stale_run_boundaries_is_sc802(self):
        store = self.build()
        store._run_starts = store._run_starts[:-1]
        found = self.check(store)
        assert "SC802" in codes(found)

    def test_corrupt_b_order_is_sc802(self):
        store = self.build()
        store.pairs_for_object(2)  # force the lazy b-side index
        store._b_order = store._b_order[::-1].copy()
        store._b[0], store._b[1] = 7, 2  # make the reversal observable
        store._a[1] = 1
        found = self.check(store)
        assert "SC802" in codes(found)

    def test_pair_count_mismatch_is_sc803(self):
        store = self.build()
        store._n_pairs += 1
        assert codes(self.check(store)) == {"SC803"}

    def test_empty_interval_is_sc803(self):
        store = self.build()
        store._hi[2] = store._lo[2] - 1.0
        assert "SC803" in codes(self.check(store))

    def test_nan_endpoint_is_sc803(self):
        import numpy as np

        store = self.build()
        store._hi[2] = np.nan
        assert "SC803" in codes(self.check(store))

    def test_dead_row_after_flush_is_sc803(self):
        store = self.build()
        store._live[0] = False  # dead row without pending bookkeeping
        assert "SC803" in codes(self.check(store))

    def test_interval_past_tc_bound_is_sc303(self):
        store = self.build()
        found = self.check(
            store, t_m=1.0, anchors={1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}, floor=0.0
        )
        assert codes(found) == {"SC303"}

    def test_sanitize_flag_wires_sc80x_into_the_columnar_engine(self):
        """``sanitize=True`` on a columnar engine audits the plane
        store end to end."""
        from repro.core.columnar import ColumnarJoinEngine

        engine = ColumnarJoinEngine(
            random_objects(5, 12, t_ref=0.0, space=200.0),
            random_objects(6, 12, id_offset=100, t_ref=0.0, space=200.0),
            "tc",
            JoinConfig(t_m=10.0, sanitize=True),
        )
        engine.run_initial_join()
        engine._sanitize()
        engine.store._run_starts = engine.store._run_starts[:-1]
        with pytest.raises(InvariantViolation) as err:
            engine._sanitize()
        assert any(f.code == "SC802" for f in err.value.findings)
