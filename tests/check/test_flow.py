"""Cross-module flow lint: every seeded defect is caught with the
exact RC1xx/RC2xx code, fixture trees analyze clean otherwise, and the
real source tree is flow-clean end to end."""

from __future__ import annotations

import io
import json
from pathlib import Path
from textwrap import dedent

from repro.check import check_flow
from repro.check.cli import main
from repro.check.symbols import SymbolTable

SRC = Path(__file__).resolve().parents[2] / "src"


# ----------------------------------------------------------------------
# A minimal — but complete — fixture package: protocol + worker +
# emitter + faults + kernel triple + code registry.  Each defect test
# overrides exactly one file.
# ----------------------------------------------------------------------
PROTOCOL = """
    OP_BUILD = "build"
    OP_TICK = "tick"
    OP_PAIRS = "pairs_at"

    SHARD_OP_UPDATE = "update"
    SHARD_OPS = (SHARD_OP_UPDATE,)
    REPLY_DROP_OP = "reply"


    class CommandSpec:
        def __init__(self, op, n_args=0, mutating=False, doc=""):
            self.op = op
            self.n_args = n_args
            self.mutating = mutating
            self.doc = doc


    COMMANDS = {
        OP_BUILD: CommandSpec(OP_BUILD, n_args=1, mutating=True),
        OP_TICK: CommandSpec(OP_TICK, n_args=1, mutating=True),
        OP_PAIRS: CommandSpec(OP_PAIRS, n_args=1, mutating=False),
    }
"""

WORKER = """
    from typing import Dict, List

    from .protocol import OP_BUILD, OP_PAIRS, OP_TICK, SHARD_OP_UPDATE


    class Engine:
        def tick(self, t):
            self.now = t

        def result_at(self, t):
            return []


    def build_engine(spec):
        return Engine()


    def make_checkpoint(engine):
        return {"format": "ckpt/1", "spec": engine.now, "rows": []}


    def restore_engine(blob):
        if blob.get("format") != "ckpt/1":
            raise ValueError("format")
        engine = build_engine(blob["spec"])
        engine.rows = blob["rows"]
        return engine


    def checkpoint_spec(blob):
        return blob["spec"]


    def apply_shard_ops(engine, shard_ops):
        for kind, payload in shard_ops:
            if kind == SHARD_OP_UPDATE:
                engine.tick(payload)


    def execute(registry: Dict[int, Engine], cmds: List):
        results = []
        for cmd in cmds:
            op, sid = cmd[0], cmd[1]
            if op == OP_BUILD:
                registry[sid] = build_engine(cmd[2])
                results.append(True)
            elif op == OP_TICK:
                eng = registry[sid]
                eng.tick(cmd[2])
                results.append(True)
            elif op == OP_PAIRS:
                eng = registry[sid]
                results.append(eng.result_at(cmd[2]))
            else:
                raise ValueError(op)
        return results
"""

SHARDED = """
    from .protocol import OP_BUILD, OP_PAIRS, OP_TICK, SHARD_OP_UPDATE


    class ShardedEngine:
        def _fan_all(self, op, *args):
            return [(op, sid) + args for sid in (0, 1)]

        def build(self, spec):
            return [(OP_BUILD, 0, spec)]

        def step(self, t, obj):
            cmds = [(OP_TICK, 0, t), (OP_PAIRS, 0, t)]
            shard_ops = [(SHARD_OP_UPDATE, obj)]
            return cmds, shard_ops
"""

# Fixture fault kinds deliberately collide with nothing real: the flow
# lint also scans the repo's tests/ tree, so the broken specs embedded
# below must not parse as real fault specs there.
FAULTS = """
    WORKER_KINDS = ("zap", "stall")
    PARENT_KINDS = ("discard",)

    DEFAULT_CHAOS = "zap:op=tick;discard:nth=2"
"""

CONSTANTS = """
    EPS = 1e-12
    TOL = 1e-9
"""

INTERSECTION = """
    from .constants import EPS


    def pair_test(a, b):
        return abs(a - b) <= EPS
"""

KERNELS = """
    from .constants import EPS


    def batch_pair_windows(batch_a, ia, batch_b, jb, t0, t1, backend=None):
        return EPS


    def batch_sweep(batch, dim):
        return batch
"""

COMPILED = """
    from .constants import EPS


    class CompiledBackend:
        def __init__(self, pair_windows_fn, sweep_fn):
            self._pair_windows = pair_windows_fn
            self._sweep = sweep_fn

        def pair_windows(self, batch_a, ia, batch_b, jb, t0, t1):
            return self._pair_windows(batch_a, ia, batch_b, jb, t0, t1)

        def sweep(self, batch, dim):
            return self._sweep(batch, dim)


    def _pair_windows_impl(batch_a, ia, batch_b, jb, t0, t1):
        return EPS


    def _sweep_impl(batch, dim):
        return batch


    def get_backend():
        return CompiledBackend(_pair_windows_impl, _sweep_impl)
"""

ERRORS = """
    SANITIZER_CODES = ("SC901", "SC902")
    LINT_CODES = ("RC901",)
    FLOW_CODES = ("RC902",)
    RETIRED_CODES = ("RC890",)
"""

BASE_FILES = {
    "pkg/__init__.py": "",
    "pkg/par/__init__.py": "",
    "pkg/par/protocol.py": PROTOCOL,
    "pkg/par/worker.py": WORKER,
    "pkg/par/sharded.py": SHARDED,
    "pkg/faults.py": FAULTS,
    "pkg/geometry/__init__.py": "",
    "pkg/geometry/constants.py": CONSTANTS,
    "pkg/geometry/intersection.py": INTERSECTION,
    "pkg/geometry/kernels.py": KERNELS,
    "pkg/geometry/compiled.py": COMPILED,
    "pkg/check/__init__.py": "",
    "pkg/check/errors.py": ERRORS,
}


def write_tree(tmp_path: Path, overrides=None) -> Path:
    files = dict(BASE_FILES)
    files.update(overrides or {})
    for rel, text in files.items():
        if text is None:
            continue
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(text))
    return tmp_path


def flow(tmp_path, overrides=None, **kwargs):
    return check_flow(write_tree(tmp_path, overrides), **kwargs)


def codes(findings) -> set:
    return {f.code for f in findings}


# ----------------------------------------------------------------------
# Shard-protocol completeness (RC101-RC107)
# ----------------------------------------------------------------------
class TestProtocolFlow:
    def test_clean_fixture_is_clean(self, tmp_path):
        assert flow(tmp_path) == []

    def test_dropped_dispatch_arm_is_rc101(self, tmp_path):
        # Neutralize the tick arm's test: no comparison, no arm.
        broken = WORKER.replace("elif op == OP_TICK:", "elif False:")
        found = flow(tmp_path, {"pkg/par/worker.py": broken})
        # Both directions notice: the registry declares tick, and the
        # sharded engine still emits it.
        assert codes(found) == {"RC101"}
        assert len(found) == 2

    def test_undeclared_arm_is_rc102(self, tmp_path):
        slim = PROTOCOL.replace(
            "OP_PAIRS: CommandSpec(OP_PAIRS, n_args=1, mutating=False),\n", ""
        )
        found = flow(tmp_path, {"pkg/par/protocol.py": slim})
        assert codes(found) == {"RC102"}

    def test_undeclared_shard_arm_is_rc102(self, tmp_path):
        slim = PROTOCOL.replace("SHARD_OPS = (SHARD_OP_UPDATE,)", "SHARD_OPS = ()")
        found = flow(tmp_path, {"pkg/par/protocol.py": slim})
        assert codes(found) == {"RC102"}

    def test_unflagged_mutating_arm_is_rc103(self, tmp_path):
        unflagged = PROTOCOL.replace(
            "OP_TICK: CommandSpec(OP_TICK, n_args=1, mutating=True),",
            "OP_TICK: CommandSpec(OP_TICK, n_args=1, mutating=False),",
        )
        found = flow(tmp_path, {"pkg/par/protocol.py": unflagged})
        assert codes(found) == {"RC103"}
        assert "tick" in found[0].message

    def test_registry_store_counts_as_mutation(self, tmp_path):
        unflagged = PROTOCOL.replace(
            "OP_BUILD: CommandSpec(OP_BUILD, n_args=1, mutating=True),",
            "OP_BUILD: CommandSpec(OP_BUILD, n_args=1, mutating=False),",
        )
        found = flow(tmp_path, {"pkg/par/protocol.py": unflagged})
        assert codes(found) == {"RC103"}

    def test_checkpoint_key_mismatch_is_rc104(self, tmp_path):
        skewed = WORKER.replace(
            'engine.rows = blob["rows"]', 'engine.rows = blob["rows_v2"]'
        )
        found = flow(tmp_path, {"pkg/par/worker.py": skewed})
        assert codes(found) == {"RC104"}
        messages = " ".join(f.message for f in found)
        assert "rows_v2" in messages  # consumed but never produced
        assert "'rows'" in messages  # produced but never consumed

    def test_unknown_fault_op_is_rc105(self, tmp_path):
        chaos = FAULTS.replace("zap:op=tick", "zap:op=tik")
        found = flow(tmp_path, {"pkg/faults.py": chaos})
        assert codes(found) == {"RC105"}
        assert "tik" in found[0].message

    def test_unknown_fault_kind_is_rc105(self, tmp_path):
        chaos = FAULTS.replace("discard:nth=2", "discarded:nth=2")
        found = flow(tmp_path, {"pkg/faults.py": chaos})
        assert codes(found) == {"RC105"}

    def test_bare_op_literal_is_rc106(self, tmp_path):
        leaky = SHARDED.replace(
            "cmds = [(OP_TICK, 0, t), (OP_PAIRS, 0, t)]",
            "cmds = [(OP_TICK, 0, t), (OP_PAIRS, 0, t)]\n"
            '            probe = "pairs_at"',
        )
        found = flow(tmp_path, {"pkg/par/sharded.py": leaky})
        assert codes(found) == {"RC106"}
        assert "pairs_at" in found[0].message

    def test_op_literal_as_dict_key_is_data_not_a_finding(self, tmp_path):
        tagged = SHARDED.replace(
            "shard_ops = [(SHARD_OP_UPDATE, obj)]",
            "shard_ops = [(SHARD_OP_UPDATE, obj)]\n"
            '            stats = {"tick": t}',
        )
        assert flow(tmp_path, {"pkg/par/sharded.py": tagged}) == []

    def test_missing_protocol_module_is_rc107(self, tmp_path):
        standalone = """
            def execute(registry, cmds):
                results = []
                for cmd in cmds:
                    op = cmd[0]
                    if op == "build":
                        registry[cmd[1]] = object()
                return results
        """
        found = flow(tmp_path, {
            "pkg/par/protocol.py": None,
            "pkg/par/worker.py": standalone,
            "pkg/par/sharded.py": "",
            "pkg/faults.py": "",
        })
        assert codes(found) == {"RC107"}


# ----------------------------------------------------------------------
# Kernel-triple parity (RC201-RC203)
# ----------------------------------------------------------------------
class TestKernelFlow:
    def test_reordered_kernel_params_are_rc201(self, tmp_path):
        drifted = KERNELS.replace(
            "def batch_pair_windows(batch_a, ia, batch_b, jb, t0, t1, backend=None):",
            "def batch_pair_windows(batch_a, batch_b, ia, jb, t0, t1, backend=None):",
        )
        found = flow(tmp_path, {"pkg/geometry/kernels.py": drifted})
        assert codes(found) == {"RC201"}

    def test_undeclared_extra_param_is_rc201(self, tmp_path):
        widened = KERNELS.replace(
            "def batch_sweep(batch, dim):",
            "def batch_sweep(batch, dim, verbose=False):",
        )
        found = flow(tmp_path, {"pkg/geometry/kernels.py": widened})
        assert codes(found) == {"RC201"}
        assert "verbose" in found[0].message

    def test_inline_tolerance_literal_is_rc202(self, tmp_path):
        inlined = KERNELS.replace("return EPS", "return 1e-12")
        found = flow(tmp_path, {"pkg/geometry/kernels.py": inlined})
        assert codes(found) == {"RC202"}

    def test_missing_constants_import_is_rc202(self, tmp_path):
        detached = """
            def pair_test(a, b):
                return a <= b
        """
        found = flow(tmp_path, {"pkg/geometry/intersection.py": detached})
        assert codes(found) == {"RC202"}

    def test_missing_kernel_variant_is_rc203(self, tmp_path):
        slim = KERNELS.replace(
            "def batch_sweep(batch, dim):\n        return batch", ""
        )
        found = flow(tmp_path, {"pkg/geometry/kernels.py": slim})
        assert codes(found) == {"RC203"}
        assert "sweep" in found[0].message

    def test_swapped_constructor_wiring_is_rc203(self, tmp_path):
        crossed = COMPILED.replace(
            "return CompiledBackend(_pair_windows_impl, _sweep_impl)",
            "return CompiledBackend(_sweep_impl, _pair_windows_impl)",
        )
        found = flow(tmp_path, {"pkg/geometry/compiled.py": crossed})
        assert codes(found) == {"RC203"}
        assert len(found) == 2  # both positions are wrong


# ----------------------------------------------------------------------
# Registry consistency (RC211-RC213)
# ----------------------------------------------------------------------
class TestRegistryFlow:
    def test_duplicate_code_is_rc211(self, tmp_path):
        doubled = ERRORS.replace(
            'LINT_CODES = ("RC901",)', 'LINT_CODES = ("RC901", "SC901")'
        )
        found = flow(tmp_path, {"pkg/check/errors.py": doubled})
        assert codes(found) == {"RC211"}
        assert "SC901" in found[0].message

    def test_retired_code_reuse_is_rc211(self, tmp_path):
        recycled = ERRORS.replace(
            'FLOW_CODES = ("RC902",)', 'FLOW_CODES = ("RC902", "RC890")'
        )
        found = flow(tmp_path, {"pkg/check/errors.py": recycled})
        assert codes(found) == {"RC211"}
        assert "retired" in found[0].message

    def test_unregistered_raised_code_is_rc212(self, tmp_path):
        rogue = """
    from .errors import Finding


    def audit(thing):
        return [Finding("RC999", "unregistered", "x")]
"""
        finding_class = (
            "\n\n"
            "    class Finding:\n"
            '        def __init__(self, code, message, location=""):\n'
            "            self.code = code\n"
        )
        found = flow(tmp_path, {
            "pkg/check/errors.py": ERRORS + finding_class,
            "pkg/check/audit.py": rogue,
        })
        assert codes(found) == {"RC212"}
        assert "RC999" in found[0].message

    def test_undocumented_code_is_rc212(self, tmp_path):
        docs = tmp_path / "docs.md"
        docs.write_text("Codes: SC901 SC902 RC901.\n")  # RC902 missing
        found = flow(tmp_path, {}, docs_path=docs)
        assert codes(found) == {"RC212"}
        assert "RC902" in found[0].message

    def test_untested_code_is_rc213(self, tmp_path):
        tests = tmp_path / "fixture_tests"
        tests.mkdir()
        (tests / "test_codes.py").write_text(
            'REFERENCED = ("SC901", "SC902", "RC901")\n'  # RC902 missing
        )
        found = flow(tmp_path, {}, tests_root=tests)
        assert codes(found) == {"RC213"}
        assert "RC902" in found[0].message


# ----------------------------------------------------------------------
# The symbol-table substrate
# ----------------------------------------------------------------------
class TestSymbolTable:
    def test_const_eval_follows_imports(self, tmp_path):
        table = SymbolTable.build(write_tree(tmp_path))
        sharded = table.find("par.sharded")
        assert table.resolve_name(sharded, "OP_TICK") == "tick"

    def test_registry_tuples_fold(self, tmp_path):
        table = SymbolTable.build(write_tree(tmp_path))
        proto = table.find("par.protocol")
        assert table.resolve_name(proto, "SHARD_OPS") == ("update",)

    def test_broken_files_are_skipped(self, tmp_path):
        root = write_tree(tmp_path, {"pkg/extra.py": "def broken(:\n"})
        table = SymbolTable.build(root)
        assert table.find("extra") is None
        assert table.find("par.worker") is not None


# ----------------------------------------------------------------------
# The real tree and the CLI
# ----------------------------------------------------------------------
class TestRealSource:
    def test_src_is_flow_clean(self):
        assert check_flow(SRC) == []

    def test_cli_flow_clean_exit_zero(self):
        out = io.StringIO()
        assert main(["flow", str(SRC)], out=out) == 0
        assert "clean" in out.getvalue()

    def test_cli_flow_findings_exit_one_json(self, tmp_path):
        broken = FAULTS.replace("zap:op=tick", "zap:op=tik")
        root = write_tree(tmp_path, {"pkg/faults.py": broken})
        out = io.StringIO()
        assert main(["flow", str(root), "--format", "json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["check"] == "flow"
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "RC105"

    def test_cli_lint_shares_json_format(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(x=[]):\n    return x\n")
        out = io.StringIO()
        assert main(["lint", str(target), "--format", "json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["check"] == "lint"
        assert [f["code"] for f in payload["findings"]] == ["RC003"]
