"""The RC001–RC006 domain lint: detection, exemptions, suppression."""

from __future__ import annotations

import io
from pathlib import Path
from textwrap import dedent

from repro.check import lint_paths, lint_source
from repro.check.cli import main

SRC = Path(__file__).resolve().parents[2] / "src"


def codes(findings) -> list:
    return [f.code for f in findings]


def lint(source: str, rel=("join", "mod.py")) -> list:
    return lint_source(dedent(source), rel, "/".join(rel))


# ----------------------------------------------------------------------
# RC000 — unparseable source
# ----------------------------------------------------------------------
class TestRC000:
    def test_syntax_error_is_rc000(self):
        findings = lint("def broken(:\n    pass\n")
        assert codes(findings) == ["RC000"]

    def test_rc000_carries_the_error_line(self):
        (finding,) = lint("x = 1\ndef broken(:\n")
        assert finding.location.endswith(":2")


# ----------------------------------------------------------------------
# RC001 — raw float equality on time/coordinate values
# ----------------------------------------------------------------------
class TestRC001:
    def test_detects_time_equality(self):
        findings = lint("""
            def f(t_now, expiry):
                return t_now == expiry
        """)
        assert codes(findings) == ["RC001"]

    def test_detects_attribute_operand(self):
        findings = lint("""
            def f(iv, t):
                return iv.start != t
        """)
        assert codes(findings) == ["RC001"]

    def test_zero_and_inf_sentinels_exempt(self):
        findings = lint("""
            def f(t, t1):
                return t == 0.0 or t1 == INF or t1 == -INF
        """)
        assert findings == []

    def test_dunder_eq_exempt(self):
        findings = lint("""
            class Box:
                def __eq__(self, other):
                    return self.lo == other.lo
        """)
        assert findings == []

    def test_interval_module_exempt(self):
        source = """
            def touches(end: float, start: float) -> bool:
                return end == start
        """
        assert lint(source, rel=("geometry", "interval.py")) == []
        assert codes(lint(source, rel=("geometry", "nd.py"))) == ["RC001"]

    def test_non_time_names_not_flagged(self):
        findings = lint("""
            def f(count, total):
                return count == total
        """)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = lint("""
            def f(t_now, expiry):
                return t_now == expiry  # noqa: RC001
        """)
        assert findings == []


# ----------------------------------------------------------------------
# RC002 — wall-clock access in simulation-time layers
# ----------------------------------------------------------------------
class TestRC002:
    def test_detects_time_import_in_core(self):
        findings = lint("import time\n", rel=("core", "engine.py"))
        assert codes(findings) == ["RC002"]

    def test_detects_wall_clock_call(self):
        findings = lint(
            """
            def f():
                return time.perf_counter()
            """,
            rel=("index", "tpr.py"),
        )
        assert codes(findings) == ["RC002"]

    def test_metrics_layer_allowed(self):
        findings = lint("import time\n", rel=("metrics.py",))
        assert findings == []

    def test_clock_module_may_call_the_clock(self):
        findings = lint(
            """
            import time
            monotonic_clock = time.perf_counter

            def probe():
                return time.perf_counter()
            """,
            rel=("metrics.py",),
        )
        assert findings == []

    def test_wall_clock_call_outside_sim_dirs_flagged(self):
        # The single-source rule: even non-simulation layers must route
        # real-clock reads through repro.metrics.monotonic_clock.
        findings = lint(
            """
            def stamp():
                return time.monotonic()
            """,
            rel=("storage", "buffer.py"),
        )
        assert codes(findings) == ["RC002"]
        assert "monotonic_clock" in findings[0].message

    def test_sim_dir_may_not_even_import_time(self):
        assert codes(lint("import time\n", rel=("join", "mod.py"))) == ["RC002"]
        assert lint("import time\n", rel=("workloads", "gen.py")) == []


# ----------------------------------------------------------------------
# RC003 / RC004 — mutable defaults and bare except
# ----------------------------------------------------------------------
class TestRC003AndRC004:
    def test_detects_mutable_default(self):
        findings = lint("""
            def f(xs=[]):
                return xs
        """)
        assert codes(findings) == ["RC003"]

    def test_none_default_allowed(self):
        findings = lint("""
            def f(xs=None):
                return xs or []
        """)
        assert findings == []

    def test_detects_bare_except(self):
        findings = lint("""
            def f():
                try:
                    return 1
                except:
                    return 2
        """)
        assert codes(findings) == ["RC004"]

    def test_typed_except_allowed(self):
        findings = lint("""
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
        """)
        assert findings == []


# ----------------------------------------------------------------------
# RC005 — geometry annotation coverage
# ----------------------------------------------------------------------
class TestRC005:
    def test_detects_unannotated_public_geometry_function(self):
        findings = lint(
            """
            def area(w, h):
                return w * h
            """,
            rel=("geometry", "shapes.py"),
        )
        assert codes(findings) == ["RC005", "RC005"]  # params + return

    def test_annotated_function_clean(self):
        findings = lint(
            """
            def area(w: float, h: float) -> float:
                return w * h
            """,
            rel=("geometry", "shapes.py"),
        )
        assert findings == []

    def test_private_and_non_geometry_exempt(self):
        private = lint(
            """
            def _area(w, h):
                return w * h
            """,
            rel=("geometry", "shapes.py"),
        )
        elsewhere = lint("""
            def area(w, h):
                return w * h
        """)
        assert private == [] and elsewhere == []


# ----------------------------------------------------------------------
# RC006 — scalar/kernel tolerance drift guard
# ----------------------------------------------------------------------
class TestRC006:
    def test_detects_inlined_tolerance_and_missing_import(self):
        findings = lint(
            """
            _EPS = 1e-12
            """,
            rel=("geometry", "kernels.py"),
        )
        assert codes(findings) == ["RC006", "RC006"]  # no import + literal

    def test_shared_constants_import_clean(self):
        findings = lint(
            """
            from .constants import PAIR_TEST_EPS as _EPS
            """,
            rel=("geometry", "kernels.py"),
        )
        assert findings == []

    def test_other_files_unguarded(self):
        findings = lint("_EPS = 1e-12\n", rel=("geometry", "box.py"))
        assert findings == []


# ----------------------------------------------------------------------
# The repository itself must lint clean
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_lint_exit_codes(tmp_path):
    out = io.StringIO()
    assert main(["lint", str(SRC)], out=out) == 0
    assert "clean" in out.getvalue()

    bad = tmp_path / "join" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(t_now, expiry):\n    return t_now == expiry\n")
    out = io.StringIO()
    assert main(["lint", str(tmp_path)], out=out) == 1
    assert "RC001" in out.getvalue()
