"""Tests for join result types and the brute-force oracle itself."""

from repro.geometry import Box, INF, TimeInterval
from repro.join import JoinTriple, brute_force_join, brute_force_pairs_at
from repro.objects import MovingObject


class TestJoinTriple:
    def test_fields_and_key(self):
        triple = JoinTriple(1, 2, TimeInterval(0, 5))
        assert triple.a_oid == 1
        assert triple.b_oid == 2
        assert triple.key() == (1, 2)

    def test_tuple_compatibility(self):
        a, b, iv = JoinTriple(1, 2, TimeInterval(0, 5))
        assert (a, b) == (1, 2)
        assert iv == TimeInterval(0, 5)


class TestBruteForce:
    def test_known_configuration(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1, 0, 0.0)
        b1 = MovingObject(10, Box(4, 5, 0, 1), 0, 0, 0.0)   # met at t=3..5
        b2 = MovingObject(11, Box(4, 5, 50, 51), 0, 0, 0.0)  # never
        triples = brute_force_join([a], [b1, b2], 0.0)
        assert len(triples) == 1
        assert triples[0].key() == (1, 10)
        assert triples[0].interval.start == 3.0

    def test_window_excludes(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1, 0, 0.0)
        b = MovingObject(10, Box(4, 5, 0, 1), 0, 0, 0.0)
        assert brute_force_join([a], [b], 0.0, 2.0) == []

    def test_pairs_at_snapshot(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1, 0, 0.0)
        b = MovingObject(10, Box(4, 5, 0, 1), 0, 0, 0.0)
        assert brute_force_pairs_at([a], [b], 0.0) == set()
        assert brute_force_pairs_at([a], [b], 4.0) == {(1, 10)}
        assert brute_force_pairs_at([a], [b], 6.0) == set()

    def test_pairs_at_touching_counts(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0)
        b = MovingObject(10, Box(1, 2, 0, 1), 0, 0, 0.0)
        assert brute_force_pairs_at([a], [b], 0.0) == {(1, 10)}

    def test_unbounded_interval(self):
        a = MovingObject(1, Box(0, 10, 0, 10), 1, 1, 0.0)
        b = MovingObject(10, Box(2, 3, 2, 3), 1, 1, 0.0)
        [triple] = brute_force_join([a], [b], 0.0)
        assert triple.interval.end == INF
