"""NaiveJoin vs the brute-force oracle, including asymmetric trees."""

import random

from repro.geometry import INF
from repro.index import TPRStarTree, TreeStorage
from repro.join import brute_force_join, naive_join

from ..conftest import random_objects


def norm(triples):
    return sorted(
        (a, b, round(iv.start, 6), iv.end if iv.end == INF else round(iv.end, 6))
        for a, b, iv in triples
    )


def build_pair(n_a, n_b, seed=0):
    storage = TreeStorage()
    tree_a = TPRStarTree(storage=storage)
    tree_b = TPRStarTree(storage=storage)
    objs_a = random_objects(seed, n_a)
    objs_b = random_objects(seed + 1, n_b, id_offset=100000)
    for o in objs_a:
        tree_a.insert(o, 0.0)
    for o in objs_b:
        tree_b.insert(o, 0.0)
    return tree_a, tree_b, objs_a, objs_b


class TestNaiveJoin:
    def test_windowed_matches_bruteforce(self):
        tree_a, tree_b, objs_a, objs_b = build_pair(250, 250, seed=10)
        got = norm(naive_join(tree_a, tree_b, 0.0, 60.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 60.0))
        assert got == want
        assert got  # non-trivial workload

    def test_unbounded_matches_bruteforce(self):
        tree_a, tree_b, objs_a, objs_b = build_pair(150, 150, seed=11)
        got = norm(naive_join(tree_a, tree_b, 0.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0))
        assert got == want

    def test_asymmetric_sizes(self):
        """Different tree heights exercise the single-side descent."""
        tree_a, tree_b, objs_a, objs_b = build_pair(800, 20, seed=12)
        assert tree_a.height > tree_b.height
        got = norm(naive_join(tree_a, tree_b, 0.0, 40.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 40.0))
        assert got == want
        # And mirrored.
        got_rev = norm(naive_join(tree_b, tree_a, 0.0, 40.0))
        want_rev = norm(brute_force_join(objs_b, objs_a, 0.0, 40.0))
        assert got_rev == want_rev

    def test_empty_tree_short_circuits(self):
        storage = TreeStorage()
        tree_a = TPRStarTree(storage=storage)
        tree_b = TPRStarTree(storage=storage)
        for o in random_objects(1, 50):
            tree_a.insert(o, 0.0)
        assert naive_join(tree_a, tree_b, 0.0) == []
        assert naive_join(tree_b, tree_a, 0.0) == []

    def test_later_start_time(self):
        tree_a, tree_b, objs_a, objs_b = build_pair(200, 200, seed=13)
        got = norm(naive_join(tree_a, tree_b, 25.0, 80.0))
        want = norm(brute_force_join(objs_a, objs_b, 25.0, 80.0))
        assert got == want

    def test_counts_pair_tests(self):
        tree_a, tree_b, _objs_a, _objs_b = build_pair(100, 100, seed=14)
        tracker = tree_a.storage.tracker
        before = tracker.pair_tests
        naive_join(tree_a, tree_b, 0.0, 60.0)
        assert tracker.pair_tests > before
