"""PBSM join: exactness (incl. duplicate elimination) vs brute force."""

import pytest

from repro.geometry import INF
from repro.join import brute_force_join, pbsm_join
from repro.metrics import CostTracker
from repro.workloads import make_workload

from ..conftest import random_objects


def norm(triples):
    return sorted((a, b, round(iv.start, 6), round(iv.end, 6)) for a, b, iv in triples)


class TestPBSM:
    @pytest.mark.parametrize("grid", [1, 2, 4, 8])
    def test_matches_bruteforce_any_grid(self, grid):
        objs_a = random_objects(60, 150)
        objs_b = random_objects(61, 150, id_offset=100000)
        got = norm(pbsm_join(objs_a, objs_b, 0.0, 60.0, grid=grid))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 60.0))
        assert got == want, grid

    def test_no_duplicate_pairs(self):
        """Replicated objects must be deduplicated by the reference tile."""
        objs_a = random_objects(62, 200, max_speed=5.0)
        objs_b = random_objects(63, 200, id_offset=100000, max_speed=5.0)
        triples = pbsm_join(objs_a, objs_b, 0.0, 60.0, grid=6)
        keys = [(t.a_oid, t.b_oid) for t in triples]
        assert len(keys) == len(set(keys))

    def test_auto_grid(self):
        objs_a = random_objects(64, 120)
        objs_b = random_objects(65, 120, id_offset=100000)
        got = norm(pbsm_join(objs_a, objs_b, 0.0, 40.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 40.0))
        assert got == want

    @pytest.mark.parametrize("distribution", ["gaussian", "battlefield"])
    def test_skewed_distributions(self, distribution):
        scenario = make_workload(
            150, distribution, max_speed=3.0, object_size_pct=1.0, seed=5
        )
        got = norm(pbsm_join(
            scenario.set_a, scenario.set_b, 0.0, 30.0,
            space_size=scenario.space_size, grid=5,
        ))
        want = norm(brute_force_join(scenario.set_a, scenario.set_b, 0.0, 30.0))
        assert got == want

    def test_unbounded_window_rejected(self):
        objs = random_objects(1, 5)
        with pytest.raises(ValueError):
            pbsm_join(objs, objs, 0.0, INF)
        with pytest.raises(ValueError):
            pbsm_join(objs, objs, 5.0, 4.0)

    def test_partitioning_reduces_tests(self):
        """The whole point: far fewer exact tests than all-pairs."""
        objs_a = random_objects(66, 400, max_speed=1.0)
        objs_b = random_objects(67, 400, id_offset=100000, max_speed=1.0)
        tracker = CostTracker()
        pbsm_join(objs_a, objs_b, 0.0, 20.0, grid=8, tracker=tracker)
        assert tracker.pair_tests < 400 * 400 / 4

    def test_empty_inputs(self):
        objs = random_objects(2, 10)
        assert pbsm_join([], objs, 0.0, 10.0) == []
        assert pbsm_join(objs, [], 0.0, 10.0) == []
