"""ImprovedJoin: every technique combination must be exact."""

import random

import pytest

from repro.geometry import INF
from repro.index import TPRStarTree, TreeStorage
from repro.join import JoinTechniques, brute_force_join, improved_join

from ..conftest import random_objects

ALL_COMBOS = [
    (ps, ds, ic)
    for ps in (False, True)
    for ds in (False, True)
    for ic in (False, True)
]


def norm(triples):
    return sorted((a, b, round(iv.start, 6), round(iv.end, 6)) for a, b, iv in triples)


def build_pair(n, seed):
    storage = TreeStorage()
    tree_a = TPRStarTree(storage=storage)
    tree_b = TPRStarTree(storage=storage)
    objs_a = random_objects(seed, n)
    objs_b = random_objects(seed + 1, n, id_offset=100000)
    for o in objs_a:
        tree_a.insert(o, 0.0)
    for o in objs_b:
        tree_b.insert(o, 0.0)
    return tree_a, tree_b, objs_a, objs_b


class TestCorrectness:
    @pytest.mark.parametrize("ps,ds,ic", ALL_COMBOS)
    def test_every_combination_matches_bruteforce(self, ps, ds, ic):
        tree_a, tree_b, objs_a, objs_b = build_pair(200, seed=100)
        tech = JoinTechniques(use_ps=ps, use_ds=ds, use_ic=ic)
        got = norm(improved_join(tree_a, tree_b, 0.0, 60.0, tech))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 60.0))
        assert got == want

    def test_multiple_seeds_all_techniques(self):
        for seed in (7, 21, 55):
            tree_a, tree_b, objs_a, objs_b = build_pair(150, seed=seed)
            got = norm(improved_join(tree_a, tree_b, 0.0, 60.0))
            want = norm(brute_force_join(objs_a, objs_b, 0.0, 60.0))
            assert got == want, seed

    def test_asymmetric_heights(self):
        storage = TreeStorage()
        tree_a = TPRStarTree(storage=storage)
        tree_b = TPRStarTree(storage=storage)
        objs_a = random_objects(3, 700)
        objs_b = random_objects(4, 25, id_offset=100000)
        for o in objs_a:
            tree_a.insert(o, 0.0)
        for o in objs_b:
            tree_b.insert(o, 0.0)
        assert tree_a.height != tree_b.height
        got = norm(improved_join(tree_a, tree_b, 0.0, 45.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 45.0))
        assert got == want

    def test_unbounded_window_rejected(self):
        tree_a, tree_b, _a, _b = build_pair(20, seed=1)
        with pytest.raises(ValueError):
            improved_join(tree_a, tree_b, 0.0, INF)

    def test_empty_trees(self):
        storage = TreeStorage()
        tree_a = TPRStarTree(storage=storage)
        tree_b = TPRStarTree(storage=storage)
        assert improved_join(tree_a, tree_b, 0.0, 60.0) == []


class TestEfficiency:
    def test_techniques_reduce_pair_tests(self):
        """ALL must do strictly less exact-test work than None."""
        tree_a, tree_b, _a, _b = build_pair(400, seed=200)
        tracker = tree_a.storage.tracker

        tracker.reset()
        improved_join(tree_a, tree_b, 0.0, 60.0, JoinTechniques.none())
        tests_none = tracker.pair_tests

        tracker.reset()
        improved_join(tree_a, tree_b, 0.0, 60.0, JoinTechniques.all())
        tests_all = tracker.pair_tests

        assert tests_all < tests_none / 2

    def test_ic_tightens_windows(self):
        """IC alone must also reduce tests (space + time pruning)."""
        tree_a, tree_b, _a, _b = build_pair(400, seed=201)
        tracker = tree_a.storage.tracker

        tracker.reset()
        improved_join(tree_a, tree_b, 0.0, 60.0, JoinTechniques.none())
        tests_none = tracker.pair_tests

        tracker.reset()
        improved_join(
            tree_a, tree_b, 0.0, 60.0,
            JoinTechniques(use_ps=False, use_ds=False, use_ic=True),
        )
        tests_ic = tracker.pair_tests
        assert tests_ic < tests_none
