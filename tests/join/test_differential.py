"""Differential equivalence across every join implementation.

One seeded workload grid (three sizes x two distributions) pushed
through all the window-join implementations and the brute-force oracle.
Three layers of agreement are required:

* **Store level** — brute force, NaiveJoin and the improved TC join
  must populate bit-identical :class:`JoinResultStore` contents for the
  same window ``[0, T_M]``.
* **Ablation level** — ``use_kernels`` on vs. off is bit-exact at the
  triple level (floats compared with ``==``, no rounding).
* **Answer level** — all five algorithms (naive, improved, PBSM,
  MTB-join, TP-join) report the oracle's exact pair set at sampled
  timestamps, each over the window it guarantees.
"""

from __future__ import annotations

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, JoinResultStore
from repro.index import MTBTree, TPRStarTree, TreeStorage
from repro.par import ShardedJoinEngine
from repro.join import (
    JoinTechniques,
    brute_force_join,
    brute_force_pairs_at,
    improved_join,
    mtb_join,
    naive_join,
    pbsm_join,
    tp_join,
)
from repro.workloads import UpdateStream, make_workload

T_M = 30.0
SIZES = (30, 60, 120)
DISTRIBUTIONS = ("uniform", "gaussian")
SAMPLE_TIMES = (0.0, 4.5, 11.0, 19.5, 29.0)
GRID = [
    pytest.param(n, dist, id=f"{dist}-{n}")
    for n in SIZES
    for dist in DISTRIBUTIONS
]


@pytest.fixture(scope="module")
def workloads():
    """Scenario plus freshly built TPR trees and MTB forests per cell."""
    cells = {}
    for n in SIZES:
        for dist in DISTRIBUTIONS:
            scenario = make_workload(
                n, dist, max_speed=3.0, object_size_pct=0.8,
                t_m=T_M, seed=100 + n,
            )
            storage = TreeStorage()
            tree_a = TPRStarTree(storage=storage, horizon=T_M)
            tree_b = TPRStarTree(storage=storage, horizon=T_M)
            forest_a = MTBTree(t_m=T_M, storage=storage)
            forest_b = MTBTree(t_m=T_M, storage=storage)
            for obj in scenario.set_a:
                tree_a.insert(obj, 0.0)
                forest_a.insert(obj, 0.0)
            for obj in scenario.set_b:
                tree_b.insert(obj, 0.0)
                forest_b.insert(obj, 0.0)
            cells[(n, dist)] = (scenario, tree_a, tree_b, forest_a, forest_b)
    return cells


def store_of(triples) -> JoinResultStore:
    store = JoinResultStore()
    store.add_all(iter(triples))
    return store


def snapshot(store: JoinResultStore):
    """Exact (unrounded) contents of a store, order-normalized."""
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in store.intervals_for(key)))
        for key in store._pairs
    )


def exact(triples):
    return sorted((a, b, iv.start, iv.end) for a, b, iv in triples)


@pytest.mark.parametrize("n,dist", GRID)
def test_store_contents_identical_across_interval_joins(workloads, n, dist):
    scenario, tree_a, tree_b, _fa, _fb = workloads[(n, dist)]
    oracle = snapshot(store_of(
        brute_force_join(scenario.set_a, scenario.set_b, 0.0, T_M)
    ))
    assert snapshot(store_of(naive_join(tree_a, tree_b, 0.0, T_M))) == oracle
    assert snapshot(store_of(
        improved_join(tree_a, tree_b, 0.0, T_M, JoinTechniques.all())
    )) == oracle
    assert snapshot(store_of(
        improved_join(tree_a, tree_b, 0.0, T_M, JoinTechniques.none())
    )) == oracle
    assert len(oracle) > 0, "vacuous workload: no intersecting pairs"


@pytest.mark.parametrize("n,dist", GRID)
def test_kernels_ablation_is_bit_exact(workloads, n, dist):
    _scenario, tree_a, tree_b, _fa, _fb = workloads[(n, dist)]
    for techniques in (JoinTechniques.all(), JoinTechniques.none()):
        on = JoinTechniques(techniques.use_ps, techniques.use_ds,
                            techniques.use_ic, use_kernels=True)
        off = JoinTechniques(techniques.use_ps, techniques.use_ds,
                             techniques.use_ic, use_kernels=False)
        assert exact(improved_join(tree_a, tree_b, 0.0, T_M, on)) == \
            exact(improved_join(tree_a, tree_b, 0.0, T_M, off))


@pytest.mark.parametrize("n,dist", GRID)
def test_all_five_algorithms_agree_at_sampled_times(workloads, n, dist):
    scenario, tree_a, tree_b, forest_a, forest_b = workloads[(n, dist)]
    stores = {
        "naive": store_of(naive_join(tree_a, tree_b, 0.0, T_M)),
        "improved": store_of(
            improved_join(tree_a, tree_b, 0.0, T_M, JoinTechniques.all())
        ),
        "pbsm": store_of(pbsm_join(scenario.set_a, scenario.set_b, 0.0, T_M)),
        # MTB windows run to bucket-end + T_M >= T_M, a superset window.
        "mtb": store_of(mtb_join(forest_a, forest_b, 0.0, JoinTechniques.all())),
    }
    for t in SAMPLE_TIMES:
        want = brute_force_pairs_at(scenario.set_a, scenario.set_b, t)
        for name, store in stores.items():
            got = store.pairs_at(t)
            assert got == want, (name, t, got ^ want)
        # TP-join answers one timestamp at a time, straight off the trees.
        assert tp_join(tree_a, tree_b, t).pairs == want, ("tp", t)


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
def test_engines_agree_under_sanitizer(dist):
    """All engine algorithms, invariant-sanitized, match the oracle."""
    scenario = make_workload(
        40, dist, max_speed=3.0, object_size_pct=0.8, t_m=8.0, seed=31
    )
    config = JoinConfig(t_m=8.0, sanitize=True)
    engines = {
        algorithm: ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm=algorithm, config=config
        )
        for algorithm in ("naive", "etp", "tc", "mtb")
    }
    streams = {
        algorithm: UpdateStream(scenario, seed=7) for algorithm in engines
    }
    for engine in engines.values():
        engine.run_initial_join()
    objects = {obj.oid: obj for obj in scenario.set_a + scenario.set_b}
    for step in range(1, 5):
        t = float(step)
        for algorithm, engine in engines.items():
            engine.tick(t)
            current = {**engine.objects_a, **engine.objects_b}
            for obj in streams[algorithm].updates_for(t, current):
                engine.apply_update(obj)
                objects[obj.oid] = obj
        want = brute_force_pairs_at(
            [objects[o.oid] for o in scenario.set_a],
            [objects[o.oid] for o in scenario.set_b],
            t,
        )
        for algorithm, engine in engines.items():
            assert engine.result_at(t) == want, (algorithm, t)


# ----------------------------------------------------------------------
# Parallel maintenance paths: group commit and sharding are bit-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("algorithm", ["naive", "tc", "mtb"])
def test_group_commit_matches_per_update_loop(dist, algorithm):
    """``apply_updates`` (batched index maintenance + one vectorized
    probe pass) leaves a store bit-identical to the per-update loop."""
    scenario = make_workload(
        40, dist, max_speed=3.0, object_size_pct=0.8, t_m=8.0, seed=31
    )
    config = JoinConfig(t_m=8.0, sanitize=True)
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm,
        JoinConfig(t_m=8.0, sanitize=True, batch_updates=False),
    )
    batched = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm, config
    )
    serial.run_initial_join()
    batched.run_initial_join()
    stream = UpdateStream(scenario, seed=7)
    nonempty = 0
    for t, batch in stream.by_timestamp(t_start=1.0, t_end=4.0):
        serial.tick(t)
        batched.tick(t)
        for obj in batch:
            serial.apply_update(obj)
        batched.apply_updates(batch)
        assert snapshot(serial._strategy.store) == \
            snapshot(batched._strategy.store), (algorithm, dist, t)
        nonempty += bool(serial.result_at(t))
    assert nonempty > 0, "vacuous run: the answer was always empty"


@pytest.mark.parametrize("shards,workers", [(1, 0), (2, 0), (4, 0), (4, 2)])
def test_sharded_engine_matches_serial(shards, workers):
    """Merged shard stores equal the unsharded engine's store at every
    sampled timestamp, including objects that cross stripe boundaries."""
    scenario = make_workload(
        40, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=8.0, seed=37
    )
    config = JoinConfig(t_m=8.0, node_capacity=8)
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config
    )
    serial.run_initial_join()
    crossings = 0
    nonempty = 0
    with ShardedJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config,
        shards=shards, workers=workers,
    ) as sharded:
        sharded.run_initial_join()
        stream = UpdateStream(scenario, seed=38)
        for t, batch in stream.by_timestamp(t_start=1.0, t_end=5.0):
            serial.tick(t)
            sharded.tick(t)
            before = {o.oid: sharded._members[o.oid] for o in batch}
            for obj in batch:
                serial.apply_update(obj)
            sharded.apply_updates(batch)
            crossings += sum(
                1 for o in batch if sharded._members[o.oid] != before[o.oid]
            )
            assert sharded.result_at(t) == serial.result_at(t), (shards, t)
            assert snapshot(sharded.merged_store()) == \
                snapshot(serial._strategy.store), (shards, workers, t)
            nonempty += bool(serial.result_at(t))
    assert nonempty > 0, "vacuous run: the answer was always empty"
    if shards > 1:
        assert crossings > 0, "no object ever crossed a stripe boundary"
