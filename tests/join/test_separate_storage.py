"""Joins across trees living on *separate* storages.

Page ids are only unique per disk, so two independently created trees
routinely share page-id ranges.  The improved join's per-run bound
cache must never mix the two sides up (regression for the cache
keying), and all joins must stay exact.
"""

from repro.index import TPRStarTree
from repro.join import JoinTechniques, brute_force_join, improved_join, naive_join

from ..conftest import random_objects


def build_separate(n=250, seed=90):
    # No shared TreeStorage: page ids of both trees start at 0.
    tree_a = TPRStarTree()
    tree_b = TPRStarTree()
    objs_a = random_objects(seed, n)
    objs_b = random_objects(seed + 1, n, id_offset=100000)
    for o in objs_a:
        tree_a.insert(o, 0.0)
    for o in objs_b:
        tree_b.insert(o, 0.0)
    assert tree_a.root_id == tree_b.root_id or True  # ids overlap by design
    return tree_a, tree_b, objs_a, objs_b


def norm(triples):
    return sorted((a, b, round(iv.start, 6), round(iv.end, 6)) for a, b, iv in triples)


class TestSeparateStorages:
    def test_improved_join_bound_cache_isolation(self):
        tree_a, tree_b, objs_a, objs_b = build_separate()
        got = norm(improved_join(tree_a, tree_b, 0.0, 60.0, JoinTechniques.all()))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 60.0))
        assert got == want

    def test_naive_join(self):
        tree_a, tree_b, objs_a, objs_b = build_separate(n=150, seed=93)
        got = norm(naive_join(tree_a, tree_b, 0.0, 40.0))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 40.0))
        assert got == want

    def test_page_id_ranges_actually_collide(self):
        """Guard the premise: without shared storage the id spaces overlap."""
        tree_a, tree_b, _a, _b = build_separate(n=100, seed=95)
        ids_a = {node.page_id for node in tree_a.iter_nodes()}
        ids_b = {node.page_id for node in tree_b.iter_nodes()}
        assert ids_a & ids_b
